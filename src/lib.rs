//! # dvm-repro
//!
//! A from-scratch Rust reproduction of *Devirtualizing Memory in
//! Heterogeneous Systems* (Haria, Hill, Swift — ASPLOS 2018): identity
//! mapping (VA==PA), Devirtualized Access Validation, Permission-Entry
//! page tables, the Access Validation Cache, and the full evaluation
//! pipeline (Graphicionado-style accelerator, graph workloads, cDVM).
//!
//! This crate is a thin umbrella over the workspace; depend on
//! [`dvm_core`] (re-exported here as [`core`]) for the library API. See
//! `README.md` for a tour and `DESIGN.md` for the system inventory.
//!
//! # Examples
//!
//! ```
//! use dvm_repro::core::{Os, OsConfig, Permission, MachineConfig};
//!
//! # fn main() -> Result<(), dvm_repro::core::DvmError> {
//! let mut os = Os::new(OsConfig {
//!     machine: MachineConfig { mem_bytes: 256 << 20 },
//!     ..OsConfig::default()
//! });
//! let pid = os.spawn()?;
//! let va = os.mmap(pid, 1 << 20, Permission::ReadWrite)?;
//! assert_eq!(os.translate(pid, va).unwrap().0.raw(), va.raw()); // VA == PA
//! # Ok(())
//! # }
//! ```

pub use dvm_core as core;

// Direct access to the substrates for downstream users who need them.
pub use dvm_accel as accel;
pub use dvm_cpu as cpu;
pub use dvm_energy as energy;
pub use dvm_farm as farm;
pub use dvm_graph as graph;
pub use dvm_mem as mem;
pub use dvm_mmu as mmu;
pub use dvm_os as os;
pub use dvm_pagetable as pagetable;
pub use dvm_sim as sim;
pub use dvm_types as types;
