//! Run BFS on a Graphicionado-style accelerator under every
//! memory-management scheme and compare execution time, TLB/AVC behaviour
//! and dynamic energy — a one-graph miniature of the paper's Figure 8/9.
//!
//! ```text
//! cargo run --release --example graph_accelerator
//! ```

use dvm_core::{run_paper_configs, Workload};
use dvm_graph::{rmat, RmatParams};
use dvm_sim::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scale-18 R-MAT graph: 262K vertices, 2M edges, ~28 MiB footprint —
    // far beyond the 512 KiB reach of the accelerator's 128-entry 4K TLB.
    println!("generating R-MAT graph (scale 18, edge factor 8)...");
    let graph = rmat(18, 8, RmatParams::default(), 2026);
    let workload = Workload::Bfs { root: 0 };

    println!("running BFS under all 7 memory-management schemes...\n");
    let reports = run_paper_configs(&workload, &graph)?;
    let ideal = reports.last().expect("ideal run").cycles as f64;

    let mut table = Table::new(&[
        "scheme",
        "cycles",
        "vs ideal",
        "tlb miss",
        "walk mem refs",
        "mm energy (uJ)",
    ]);
    for report in &reports {
        table.row(&[
            report.mmu.name().into(),
            report.cycles.to_string(),
            format!("{:.3}x", report.cycles as f64 / ideal),
            report
                .tlb_miss_rate()
                .map_or("-".into(), |r| format!("{:.1}%", r * 100.0)),
            report.walk_mem_refs.to_string(),
            format!("{:.1}", report.mm_energy_pj / 1e6),
        ]);
    }
    println!("{table}");

    let pe_plus = &reports[5];
    println!(
        "DVM-PE+ validated {} accesses as identity ({} preloads overlapped, {} squashed)",
        pe_plus.identity_validations, pe_plus.run.edges_processed, pe_plus.preload_squashes
    );
    println!(
        "speedup of DVM-PE+ over 4K conventional VM: {:.2}x",
        reports[0].cycles as f64 / pe_plus.cycles as f64
    );
    println!(
        "access-latency tails (p99): 4K < {} cycles, DVM-PE+ < {} cycles",
        reports[0].run.latency_hist.percentile(0.99),
        pe_plus.run.latency_hist.percentile(0.99)
    );
    Ok(())
}
