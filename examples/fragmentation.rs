//! Identity mapping under allocator churn: an shbench-style stress that
//! shows how much of a machine can stay VA==PA (paper Table 4), plus the
//! fork/copy-on-write interaction from §5.
//!
//! ```text
//! cargo run --release --example fragmentation
//! ```

use dvm_core::{MachineConfig, Os, OsConfig, Permission, ShbenchConfig};
use dvm_os::shbench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: shbench churn on a 4 GiB machine.
    println!("== shbench churn (4 GiB machine) ==");
    for (label, config) in [
        (
            "small chunks (100..10K bytes)",
            ShbenchConfig::experiment1(),
        ),
        (
            "large chunks (100K..10M bytes)",
            ShbenchConfig::experiment2(),
        ),
        ("4 instances, large chunks", ShbenchConfig::experiment3()),
    ] {
        let mut os = Os::new(OsConfig {
            machine: MachineConfig { mem_bytes: 4 << 30 },
            ..OsConfig::default()
        });
        let result = shbench::run(&mut os, config)?;
        println!(
            "{label}: {:.1}% of memory identity-mapped at first failure \
             ({} allocs, {} frees)",
            result.identity_percent(),
            result.allocations,
            result.frees
        );
    }

    // Part 2: fork + copy-on-write breaks identity only where written.
    println!("\n== fork / copy-on-write ==");
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 256 << 20,
        },
        ..OsConfig::default()
    });
    let parent = os.spawn()?;
    let buf = os.mmap(parent, 1 << 20, Permission::ReadWrite)?;
    os.write_u64(parent, buf, 42)?;

    let child = os.fork(parent)?;
    println!("forked: both processes share the identity-mapped page read-only");
    assert_eq!(os.read_u64(child, buf)?, 42);

    // Child writes: gets a private, non-identity copy.
    os.write_u64(child, buf, 99)?;
    let (child_pa, _) = os.translate(child, buf).expect("mapped");
    println!("child wrote -> private copy at {child_pa} (VA {buf}): identity broken for that page");
    assert_ne!(child_pa.raw(), buf.raw());
    assert_eq!(os.read_u64(child, buf)?, 99);

    // Parent's view is untouched, and its page is identity mapped again
    // once it resolves its own CoW fault (sole owner -> reuse in place).
    os.write_u64(parent, buf, 43)?;
    let (parent_pa, _) = os.translate(parent, buf).expect("mapped");
    println!("parent re-wrote -> back to identity at {parent_pa}");
    assert_eq!(parent_pa.raw(), buf.raw());
    assert_eq!(os.read_u64(parent, buf)?, 43);
    assert_eq!(os.read_u64(child, buf)?, 99);
    println!(
        "cow faults resolved: {} (of which reused in place: {})",
        os.stats.cow_faults, os.stats.cow_reuses
    );
    println!("\nthis is why the paper recommends forking *before* allocating");
    println!("accelerator-shared structures (§5).");
    Ok(())
}
