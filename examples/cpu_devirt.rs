//! cDVM: Devirtualized Memory for CPU cores (paper §7). Evaluates one
//! pointer-chasing workload under 4K pages, transparent huge pages, and
//! cDVM, showing where the time goes.
//!
//! ```text
//! cargo run --release --example cpu_devirt
//! ```

use dvm_core::{evaluate_cpu, CpuModelConfig, CpuScheme, CpuWorkload};
use dvm_sim::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CpuModelConfig {
        accesses: 1_000_000,
        ..CpuModelConfig::default()
    };
    let workload = CpuWorkload::Mcf;
    println!(
        "mcf-like pointer chasing over {} MiB, {} accesses\n",
        workload.profile().footprint_bytes >> 20,
        config.accesses
    );

    let mut table = Table::new(&[
        "scheme",
        "VM overhead",
        "L1 DTLB miss",
        "L2 DTLB miss",
        "walker refs / 1K accesses",
    ]);
    for scheme in CpuScheme::ALL {
        let report = evaluate_cpu(workload, scheme, &config)?;
        table.row(&[
            scheme.name().into(),
            format!("{:.1}%", report.overhead_percent()),
            format!("{:.1}%", report.l1_miss_rate * 100.0),
            format!("{:.1}%", report.l2_miss_rate * 100.0),
            format!("{:.1}", report.walk_refs_per_kilo_access),
        ]);
    }
    println!("{table}");
    println!("4K pages walk to memory on almost every access; THP shortens");
    println!("walks but still thrashes beyond 1 GiB; cDVM's Permission-Entry");
    println!("walks are answered by the on-chip AVC with ~zero memory refs.");
    Ok(())
}
