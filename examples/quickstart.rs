//! Quickstart: boot the DVM OS, identity-map some memory, and watch
//! Devirtualized Access Validation work — including a protection fault.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dvm_core::{
    AccessKind, DramConfig, EnergyParams, MachineConfig, Os, OsConfig, Permission, SchemeId,
};
use dvm_mem::Dram;
use dvm_mmu::{Iommu, MemSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Boot an OS on a 1 GiB machine with the DVM page-table flavour.
    let mut os = Os::new(OsConfig {
        machine: MachineConfig { mem_bytes: 1 << 30 },
        ..OsConfig::default()
    });
    let pid = os.spawn()?;

    // 2. Allocate 8 MiB on the heap. Under DVM the OS eagerly reserves
    //    contiguous physical memory and maps it at VA == PA.
    let heap = os.mmap(pid, 8 << 20, Permission::ReadWrite)?;
    let (pa, perms) = os.translate(pid, heap).expect("mapped");
    println!("heap at {heap} -> {pa} ({perms})   <- identity: VA == PA");
    assert_eq!(pa.raw(), heap.raw());

    // 3. A read-only region for comparison.
    let ro = os.mmap(pid, 128 << 10, Permission::ReadOnly)?;

    // 4. Attach an accelerator-side IOMMU in DVM-PE+ mode (Permission
    //    Entries + Access Validation Cache + preload on reads).
    let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
    let mut dram = Dram::new(DramConfig::default());
    let pt = os.process(pid)?.page_table;
    let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut os.machine.mem, &mut dram);

    // 5. The accelerator dereferences the same pointer the host holds
    //    (pointer-is-a-pointer), with access validation instead of
    //    translation.
    let write_latency = sys.write_u64(heap, 0xC0FFEE)?;
    let (value, read_latency) = sys.read_u64(heap)?;
    println!(
        "accelerator wrote/read {value:#x}: write {write_latency} cycles, read {read_latency} cycles"
    );
    println!("(reads overlap validation with the data fetch - paper Figure 4)");

    // 6. Protection still holds: writing the read-only region faults.
    let fault = sys.write_u64(ro, 1).unwrap_err();
    println!("write to read-only region -> fault raised on host CPU: {fault}");
    assert_eq!(fault.access, AccessKind::Write);

    // 7. Validation statistics.
    println!(
        "identity validations: {}, faults: {}, AVC hit rate: {:.1}%",
        sys.iommu.stats.identity_validations.get(),
        sys.iommu.stats.faults.get(),
        sys.iommu.ptc_stats().map_or(0.0, |s| s.hit_rate() * 100.0),
    );
    println!("dynamic MM energy: {:.1} pJ", sys.iommu.energy.total_pj());
    Ok(())
}
