#!/usr/bin/env python3
"""Append a quick-scale wall-clock sample to results/BENCH_trend.json
and guard against regressions.

Usage: bench_trend.py LABEL FIG8_MS FIG9_MS [FIG11_MS]
       bench_trend.py lanes SERIAL_MS LANES2_MS LANES3_MS

The trend file is an append-only history of the figure sweeps that
dominate a quick reproduction. The *baseline* is the newest prior entry
that carries a fig8 sample (lanes rows do not); after appending, the
script exits non-zero if the new fig8 wall time exceeds the baseline by
more than 25% — a per-access performance regression in the simulation
core, which scripts/ci.sh treats as a failure. fig9 and fig11 are
recorded but not guarded: under the shared report cache they mostly
replay fig8's units, so their wall time largely measures I/O (for
fig11, plus the two SVA schemes). Entries recorded before fig11 existed
simply lack the key.

The `lanes` form records the fig2 quick sweep's wall time at --lanes
1/2/3 plus the derived speedups. It is a record, not a guard: on a
single-core CI box the pipeline cannot beat the fused loop, so the row
documents the trend without failing the build.
"""

import json
import sys
from pathlib import Path

GUARD_RATIO = 1.25

def load_doc() -> tuple[Path, dict]:
    path = Path(__file__).resolve().parent.parent / "results" / "BENCH_trend.json"
    doc = json.loads(path.read_text())
    assert doc["experiment"] == "bench-trend", path
    return path, doc

def lanes_row(serial_ms: int, lanes2_ms: int, lanes3_ms: int) -> int:
    path, doc = load_doc()
    entry = {
        "label": "lanes",
        "lanes1_wall_ms": serial_ms,
        "lanes2_wall_ms": lanes2_ms,
        "lanes3_wall_ms": lanes3_ms,
        "lanes2_speedup": round(serial_ms / lanes2_ms, 3) if lanes2_ms else None,
        "lanes3_speedup": round(serial_ms / lanes3_ms, 3) if lanes3_ms else None,
    }
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")

    # A 0 ms wall time (fast machine, coarse clock) keeps a null speedup
    # in the JSON row but must not print as "xNone".
    def show(speedup) -> str:
        return "n/a" if speedup is None else f"x{speedup}"

    print(
        f"bench-trend: lanes row — serial {serial_ms} ms, "
        f"2 lanes {lanes2_ms} ms ({show(entry['lanes2_speedup'])}), "
        f"3 lanes {lanes3_ms} ms ({show(entry['lanes3_speedup'])})"
    )
    return 0

def main() -> int:
    if len(sys.argv) == 5 and sys.argv[1] == "lanes":
        return lanes_row(int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]))
    if len(sys.argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        return 2
    label, fig8_ms, fig9_ms = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    fig11_ms = int(sys.argv[4]) if len(sys.argv) == 5 else None
    path, doc = load_doc()
    baseline = next(
        (e for e in reversed(doc["entries"]) if "fig8_wall_ms" in e), None
    )
    if baseline is None:
        print("bench-trend: no prior fig8 sample to guard against", file=sys.stderr)
        return 2
    entry = {"label": label, "fig8_wall_ms": fig8_ms, "fig9_wall_ms": fig9_ms}
    if fig11_ms is not None:
        entry["fig11_wall_ms"] = fig11_ms
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    limit = baseline["fig8_wall_ms"] * GUARD_RATIO
    fig11_note = "" if fig11_ms is None else f", fig11 {fig11_ms} ms"
    print(
        f"bench-trend: fig8 {fig8_ms} ms, fig9 {fig9_ms} ms{fig11_note} "
        f"(baseline '{baseline['label']}': fig8 {baseline['fig8_wall_ms']} ms, "
        f"guard {limit:.0f} ms)"
    )
    if fig8_ms > limit:
        print(
            f"bench-trend: FAIL — fig8 wall time regressed more than "
            f"{GUARD_RATIO - 1:.0%} over the baseline",
            file=sys.stderr,
        )
        return 1
    return 0

if __name__ == "__main__":
    sys.exit(main())
