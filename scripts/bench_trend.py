#!/usr/bin/env python3
"""Append a fig8/fig9 (and optionally fig11) quick-scale wall-clock
sample to results/BENCH_trend.json and guard against regressions.

Usage: bench_trend.py LABEL FIG8_MS FIG9_MS [FIG11_MS]

The trend file is an append-only history of the figure sweeps that
dominate a quick reproduction. The *baseline* is the last entry already
in the file (i.e. the newest committed or previously recorded sample);
after appending, the script exits non-zero if the new fig8 wall time
exceeds the baseline by more than 25% — a per-access performance
regression in the simulation core, which scripts/ci.sh treats as a
failure. fig9 and fig11 are recorded but not guarded: under the shared
report cache they mostly replay fig8's units, so their wall time largely
measures I/O (for fig11, plus the two SVA schemes). Entries recorded
before fig11 existed simply lack the key.
"""

import json
import sys
from pathlib import Path

GUARD_RATIO = 1.25

def main() -> int:
    if len(sys.argv) not in (4, 5):
        print(__doc__, file=sys.stderr)
        return 2
    label, fig8_ms, fig9_ms = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    fig11_ms = int(sys.argv[4]) if len(sys.argv) == 5 else None
    path = Path(__file__).resolve().parent.parent / "results" / "BENCH_trend.json"
    doc = json.loads(path.read_text())
    assert doc["experiment"] == "bench-trend", path
    baseline = doc["entries"][-1]
    entry = {"label": label, "fig8_wall_ms": fig8_ms, "fig9_wall_ms": fig9_ms}
    if fig11_ms is not None:
        entry["fig11_wall_ms"] = fig11_ms
    doc["entries"].append(entry)
    path.write_text(json.dumps(doc, indent=2) + "\n")
    limit = baseline["fig8_wall_ms"] * GUARD_RATIO
    fig11_note = "" if fig11_ms is None else f", fig11 {fig11_ms} ms"
    print(
        f"bench-trend: fig8 {fig8_ms} ms, fig9 {fig9_ms} ms{fig11_note} "
        f"(baseline '{baseline['label']}': fig8 {baseline['fig8_wall_ms']} ms, "
        f"guard {limit:.0f} ms)"
    )
    if fig8_ms > limit:
        print(
            f"bench-trend: FAIL — fig8 wall time regressed more than "
            f"{GUARD_RATIO - 1:.0%} over the baseline",
            file=sys.stderr,
        )
        return 1
    return 0

if __name__ == "__main__":
    sys.exit(main())
