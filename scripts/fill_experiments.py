#!/usr/bin/env python3
"""Inject recorded harness outputs into EXPERIMENTS.md placeholders."""
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
EXP = ROOT / "EXPERIMENTS.md"

SLOTS = {
    "<!-- FIG2 -->": ["results/fig2_paper.txt", "results/fig2_quick.txt", "results/fig2_partial_paper.txt"],
    "<!-- TABLE1 -->": ["results/table1_paper.txt", "results/table1_quick.txt"],
    "<!-- FIG8 -->": ["results/fig8_paper.txt", "results/fig8_quick.txt", "results/fig8_quick_graphs.txt", "results/fig8_partial_paper.txt"],
    "<!-- FIG9 -->": ["results/fig9_paper.txt", "results/fig9_quick.txt", "results/fig9_quick_graphs.txt"],
    "<!-- TABLE4 -->": ["results/table4_paper.txt", "results/table4_quick.txt"],
    "<!-- FIG10 -->": ["results/fig10_paper.txt"],
    "<!-- FIG11 -->": ["results/fig11_paper.txt", "results/fig11_quick.txt"],
    "<!-- VIRT -->": ["results/virt_paper.txt", "results/virt_quick.txt", "results/virt.txt"],
    "<!-- CHURN -->": ["results/churn_paper.txt", "results/churn_quick.txt"],
}


def slot_content(candidates: list[str]) -> str:
    for rel in candidates:
        p = ROOT / rel
        if p.exists() and p.stat().st_size > 0:
            body = p.read_text().rstrip()
            if body.count("\n") < 3:
                continue  # header only: the run was cut short
            return f"```text\n{body}\n```\n(from `{rel}`)"
    return "_run pending; see the command above to regenerate_"


def main() -> None:
    text = EXP.read_text()
    for marker, candidates in SLOTS.items():
        if marker in text:
            text = text.replace(marker, slot_content(candidates))
    EXP.write_text(text)
    print("EXPERIMENTS.md filled")


if __name__ == "__main__":
    main()
