#!/usr/bin/env bash
# Regenerate every table and figure of the paper into results/, then refresh
# EXPERIMENTS.md. Usage:
#
#   scripts/reproduce_all.sh [quick|paper|full] [--jobs N]
#
# quick: minutes. paper: ~1-2 hours on one core (Figure 8/9 dominate).
# full: unscaled Table 3 datasets; hours and ~16 GiB of host RAM.
#
# --jobs N fans each harness's grid across N worker threads (0 = all
# cores). Output is byte-identical to a serial run; only wall-clock
# changes. Each binary also writes results/<name>_<scale>.json, and the
# script records per-binary wall-clock in results/BENCH_sweep.json.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="quick"
JOBS=1
while [[ $# -gt 0 ]]; do
    case "$1" in
        quick|paper|full) SCALE="$1"; shift ;;
        --jobs) JOBS="$2"; shift 2 ;;
        *) echo "usage: $0 [quick|paper|full] [--jobs N]" >&2; exit 2 ;;
    esac
done

B=target/release
mkdir -p results

cargo build --release -p dvm-bench

suffix="$SCALE"
BENCH_ROWS=""
now_ms() { python3 -c 'import time; print(int(time.time()*1000))'; }
run() { # name, extra args...
    local name="$1"; shift
    echo ">>> $name --scale $SCALE --jobs $JOBS $*"
    local t0 t1
    t0=$(now_ms)
    "$B/$name" --scale "$SCALE" --jobs "$JOBS" \
        --json "results/${name}_${suffix}.json" "$@" \
        > "results/${name}_${suffix}.txt"
    t1=$(now_ms)
    BENCH_ROWS+="    {\"bin\": \"$name\", \"wall_ms\": $((t1 - t0))},"$'\n'
}

run table3
run table1
run table4
run fig10
run fig2
run fig8
run fig9
run table5
run virt

# Timing summary for this sweep (not diffed against serial output).
{
    echo "{"
    echo "  \"scale\": \"$SCALE\","
    echo "  \"jobs\": $JOBS,"
    echo "  \"bins\": ["
    printf '%s' "${BENCH_ROWS%,$'\n'}"
    echo ""
    echo "  ]"
    echo "}"
} > results/BENCH_sweep.json

python3 scripts/fill_experiments.py
echo "done: see results/ and EXPERIMENTS.md"
