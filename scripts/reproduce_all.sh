#!/usr/bin/env bash
# Regenerate every table and figure of the paper into results/, then refresh
# EXPERIMENTS.md. Usage:
#
#   scripts/reproduce_all.sh [smoke|quick|paper|full] [--jobs N] [--shards N]
#       [--farm HOST:PORT] [--cache-max-bytes N] [--report-cache-max-bytes N]
#
# quick: minutes. paper: ~1-2 hours on one core (Figure 8/9 dominate).
# full: unscaled Table 3 datasets; hours and ~16 GiB of host RAM.
# smoke: seconds; only checks the machinery.
#
# --jobs N fans each harness's grid across N worker threads (0 = all
# cores); --shards N fans it across N worker processes; --farm HOST:PORT
# submits every grid to a running farmd coordinator instead (with
# --shards N as the requested slice count). Output is byte-identical to
# a serial run any way; only wall-clock changes.
# Generated datasets are cached under results/.dataset-cache, so repeat
# runs skip regeneration. Figures 2, 8, 9 and 11 sweep overlapping unit
# grids, so they share a per-invocation report cache (results/.report-cache, cleared
# up front): the first binary to simulate a unit records its report, the
# rest replay it byte-identically. --cache-max-bytes / --report-cache-max-bytes
# (sizes take K/M/G/T suffixes) cap those directories with an LRU byte
# budget — evicted entries regenerate on the next miss, so budgets trade
# wall-clock for disk without changing any output byte. Each binary writes
# results/<name>_<scale>.json, and the script records per-binary
# wall-clock, dataset-cache hit/miss and cache-eviction counts in
# results/BENCH_sweep.json.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="quick"
JOBS=1
SHARDS=0
FARM=""
CACHE_MAX=""
REPORT_CACHE_MAX=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        smoke|quick|paper|full) SCALE="$1"; shift ;;
        --jobs) JOBS="$2"; shift 2 ;;
        --shards) SHARDS="$2"; shift 2 ;;
        --farm) FARM="$2"; shift 2 ;;
        --cache-max-bytes) CACHE_MAX="$2"; shift 2 ;;
        --report-cache-max-bytes) REPORT_CACHE_MAX="$2"; shift 2 ;;
        *) echo "usage: $0 [smoke|quick|paper|full] [--jobs N] [--shards N] [--farm HOST:PORT] [--cache-max-bytes N] [--report-cache-max-bytes N]" >&2; exit 2 ;;
    esac
done

B=target/release
CACHE_DIR=results/.dataset-cache
REPORT_CACHE=results/.report-cache
mkdir -p results
# Unit reports must not outlive one invocation (a simulator change would
# otherwise replay stale results), so start from an empty report cache.
rm -rf "$REPORT_CACHE"

cargo build --release -p dvm-bench

suffix="$SCALE"
BENCH_ROWS=""
now_ms() { python3 -c 'import time; print(int(time.time()*1000))'; }
# Sum a `key=` field across every stderr stats line with the given
# prefix (each shard worker prints its own dataset-cache/report-cache
# line).
cache_count() { # prefix, key, stderr-file
    awk -v prefix="^$1:" -v key="$2" '$0 ~ prefix {
        for (i = 1; i <= NF; i++)
            if (split($i, kv, "=") == 2 && kv[1] == key) total += kv[2]
    } END { print total + 0 }' "$3"
}
run() { # name, extra args...
    local name="$1"; shift
    local extra=()
    if [[ $SHARDS -gt 0 ]]; then
        extra+=(--shards "$SHARDS")
    fi
    if [[ -n $FARM ]]; then
        extra+=(--farm "$FARM")
    fi
    if [[ -n $CACHE_MAX ]]; then
        extra+=(--cache-max-bytes "$CACHE_MAX")
    fi
    echo ">>> $name --scale $SCALE --jobs $JOBS ${extra[*]} $*"
    local t0 t1 err
    err=$(mktemp)
    t0=$(now_ms)
    "$B/$name" --scale "$SCALE" --jobs "$JOBS" \
        --cache-dir "$CACHE_DIR" "${extra[@]}" \
        --json "results/${name}_${suffix}.json" "$@" \
        > "results/${name}_${suffix}.txt" \
        2> "$err" || { cat "$err" >&2; rm -f "$err"; exit 1; }
    t1=$(now_ms)
    cat "$err" >&2
    local hits misses evicted report_evicted
    hits=$(cache_count dataset-cache hits "$err")
    misses=$(cache_count dataset-cache misses "$err")
    evicted=$(cache_count dataset-cache evicted "$err")
    report_evicted=$(cache_count report-cache evicted "$err")
    rm -f "$err"
    BENCH_ROWS+="    {\"bin\": \"$name\", \"wall_ms\": $((t1 - t0)), \"cache_hits\": $hits, \"cache_misses\": $misses, \"cache_evictions\": $evicted, \"report_cache_evictions\": $report_evicted},"$'\n'
}

# The shared unit-report cache, with its optional byte budget.
RC_ARGS=(--report-cache "$REPORT_CACHE")
if [[ -n $REPORT_CACHE_MAX ]]; then
    RC_ARGS+=(--report-cache-max-bytes "$REPORT_CACHE_MAX")
fi

run table3
run table1
run table4
run fig10
# The sweep binaries also take --lanes 0 (auto): each unit splits into a
# functional and a timing lane when a spare core exists, byte-identically.
run fig2 "${RC_ARGS[@]}" --lanes 0
run fig8 "${RC_ARGS[@]}" --lanes 0
run fig9 "${RC_ARGS[@]}" --lanes 0
run fig11 "${RC_ARGS[@]}" --lanes 0
run table5
run virt
run churn

# Timing + cache summary for this sweep (not diffed against goldens).
{
    echo "{"
    echo "  \"schema_version\": 1,"
    echo "  \"experiment\": \"bench-sweep\","
    echo "  \"scale\": \"$SCALE\","
    echo "  \"jobs\": $JOBS,"
    echo "  \"shards\": $SHARDS,"
    echo "  \"bins\": ["
    printf '%s' "${BENCH_ROWS%,$'\n'}"
    echo ""
    echo "  ]"
    echo "}"
} > results/BENCH_sweep.json

python3 scripts/fill_experiments.py
echo "done: see results/ and EXPERIMENTS.md"
