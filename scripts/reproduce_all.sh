#!/usr/bin/env bash
# Regenerate every table and figure of the paper into results/, then refresh
# EXPERIMENTS.md. Usage:
#
#   scripts/reproduce_all.sh [quick|paper|full]
#
# quick: minutes. paper: ~1-2 hours on one core (Figure 8/9 dominate).
# full: unscaled Table 3 datasets; hours and ~16 GiB of host RAM.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-quick}"
B=target/release
mkdir -p results

cargo build --release -p dvm-bench

suffix="$SCALE"
run() { # name, extra args...
    local name="$1"; shift
    echo ">>> $name --scale $SCALE $*"
    "$B/$name" --scale "$SCALE" "$@" > "results/${name}_${suffix}.txt"
}

run table3
run table1
run table4
run fig10
run fig2
run fig8
run fig9
"$B/table5" > results/table5.txt
"$B/virt"   > results/virt.txt

python3 scripts/fill_experiments.py
echo "done: see results/ and EXPERIMENTS.md"
