#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, and the tier-1 test suite.
# Everything here runs with no network and no vendored crates — the
# default workspace has zero external dependencies by design (see
# DESIGN.md, "Sweep engine & hermetic build").
#
#   scripts/ci.sh
#
# The extended property/bench suite (proptest, criterion) lives in
# exttests/ and is NOT run here because it needs crates.io access:
#
#   cargo test --manifest-path exttests/Cargo.toml
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release (tier-1)"
cargo build --release

echo "== cargo test (tier-1)"
cargo test -q

echo "== cargo test --workspace"
cargo test --workspace -q

echo "ci: all green"
