#!/usr/bin/env bash
# Offline CI gate: formatting, lints, build, the tier-1 test suite, the
# multi-process shard-merge determinism check, and a golden-result diff.
# Everything here runs with no network and no vendored crates — the
# default workspace has zero external dependencies by design (see
# DESIGN.md, "Sweep engine & hermetic build").
#
#   scripts/ci.sh
#
# The extended property/bench suite (proptest, criterion) lives in
# exttests/ and is NOT run here because it needs crates.io access:
#
#   cargo test --manifest-path exttests/Cargo.toml
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release (tier-1)"
cargo build --release
# The root package does not depend on the bench/farm *binaries*, so
# build them explicitly — the gates below run them from target/release.
cargo build --release -p dvm-bench
cargo build --release -p dvm-farm

echo "== cargo test (tier-1)"
cargo test -q

echo "== cargo test --workspace"
cargo test --workspace -q

echo "== shard-merge determinism (fig2, quick scale, 2 shards)"
# A coordinator-merged 2-shard run must be byte-identical to the serial
# run — text table and JSON document alike. The shared dataset cache
# means the second run skips regeneration entirely.
SHARD_TMP=$(mktemp -d)
FARM_PIDS=""
trap 'kill $FARM_PIDS 2> /dev/null || true; rm -rf "$SHARD_TMP"' EXIT
target/release/fig2 --scale quick --datasets FR --jobs 1 \
    --cache-dir "$SHARD_TMP/cache" \
    --json "$SHARD_TMP/serial.json" > "$SHARD_TMP/serial.txt"
target/release/fig2 --scale quick --datasets FR --jobs 1 --shards 2 \
    --cache-dir "$SHARD_TMP/cache" \
    --json "$SHARD_TMP/sharded.json" > "$SHARD_TMP/sharded.txt"
cmp "$SHARD_TMP/serial.txt" "$SHARD_TMP/sharded.txt"
cmp "$SHARD_TMP/serial.json" "$SHARD_TMP/sharded.json"
echo "fig2 sharded output is byte-identical to serial"

echo "== farm determinism (fig2 through farmd + 2 workers on loopback)"
# The same sweep submitted to a live coordinator with two registered
# workers must also be byte-identical to the serial run above. farmd
# binds port 0; its actual address is scraped from the log line it
# prints once bound.
target/release/farmd --listen 127.0.0.1:0 2> "$SHARD_TMP/farmd.log" &
FARM_PIDS="$!"
FARM_ADDR=""
for _ in $(seq 1 100); do
    FARM_ADDR=$(sed -n 's/^farmd: listening on //p' "$SHARD_TMP/farmd.log")
    [[ -n $FARM_ADDR ]] && break
    sleep 0.1
done
[[ -n $FARM_ADDR ]] || { echo "farmd never printed its address" >&2; exit 1; }
target/release/farmworker --connect "$FARM_ADDR" --name ci-w1 \
    --bin-dir target/release --scratch "$SHARD_TMP" 2> /dev/null &
FARM_PIDS="$FARM_PIDS $!"
target/release/farmworker --connect "$FARM_ADDR" --name ci-w2 \
    --bin-dir target/release --scratch "$SHARD_TMP" 2> /dev/null &
FARM_PIDS="$FARM_PIDS $!"
target/release/fig2 --scale quick --datasets FR --jobs 1 --shards 2 \
    --farm "$FARM_ADDR" --cache-dir "$SHARD_TMP/cache" \
    --json "$SHARD_TMP/farm.json" > "$SHARD_TMP/farm.txt"
cmp "$SHARD_TMP/serial.txt" "$SHARD_TMP/farm.txt"
cmp "$SHARD_TMP/serial.json" "$SHARD_TMP/farm.json"
kill $FARM_PIDS 2> /dev/null || true
FARM_PIDS=""
echo "fig2 farm output is byte-identical to serial"

echo "== lane determinism (fig2, quick scale, --lanes 2 and --lanes 3)"
# Both pipelined shapes — two lanes (functional|timing) and three lanes
# (functional|translate|memory) — must be byte-identical to the fused
# serial run, text table and JSON document alike. Each run is timed and
# the three wall times become a lanes-speedup row in
# results/BENCH_trend.json (a record, not a guard: a single-core CI box
# cannot show a pipeline speedup).
now_ms() { python3 -c 'import time; print(int(time.time()*1000))'; }
t0=$(now_ms)
target/release/fig2 --scale quick --datasets FR --jobs 1 --lanes 1 \
    --cache-dir "$SHARD_TMP/cache" \
    --json "$SHARD_TMP/lane1.json" > "$SHARD_TMP/lane1.txt"
LANE1_MS=$(($(now_ms) - t0))
cmp "$SHARD_TMP/serial.txt" "$SHARD_TMP/lane1.txt"
t0=$(now_ms)
target/release/fig2 --scale quick --datasets FR --jobs 1 --lanes 2 \
    --cache-dir "$SHARD_TMP/cache" \
    --json "$SHARD_TMP/lane2.json" > "$SHARD_TMP/lane2.txt"
LANE2_MS=$(($(now_ms) - t0))
cmp "$SHARD_TMP/serial.txt" "$SHARD_TMP/lane2.txt"
cmp "$SHARD_TMP/serial.json" "$SHARD_TMP/lane2.json"
t0=$(now_ms)
target/release/fig2 --scale quick --datasets FR --jobs 1 --lanes 3 \
    --cache-dir "$SHARD_TMP/cache" \
    --json "$SHARD_TMP/lane3.json" > "$SHARD_TMP/lane3.txt"
LANE3_MS=$(($(now_ms) - t0))
cmp "$SHARD_TMP/serial.txt" "$SHARD_TMP/lane3.txt"
cmp "$SHARD_TMP/serial.json" "$SHARD_TMP/lane3.json"
python3 scripts/bench_trend.py lanes "$LANE1_MS" "$LANE2_MS" "$LANE3_MS"
echo "fig2 laned output (2 and 3 lanes) is byte-identical to serial"

echo "== cache byte budget (fig2, quick scale, budget below working set)"
# A budget one byte below the two-dataset working set forces an eviction
# mid-sweep; the evicted entry regenerates on the next miss, the capped
# dir must end at or under the budget, and every output byte must match
# the uncapped run.
target/release/fig2 --scale quick --datasets FR,NF --jobs 1 \
    --cache-dir "$SHARD_TMP/uncapped" \
    --json "$SHARD_TMP/uncapped.json" > "$SHARD_TMP/uncapped.txt"
working_set() { # cache-dir
    find "$1" -name '*.csr' -printf '%s\n' | awk '{ t += $1 } END { print t + 0 }'
}
BUDGET=$(( $(working_set "$SHARD_TMP/uncapped") - 1 ))
target/release/fig2 --scale quick --datasets FR,NF --jobs 1 \
    --cache-dir "$SHARD_TMP/capped" --cache-max-bytes "$BUDGET" \
    --json "$SHARD_TMP/capped.json" > "$SHARD_TMP/capped.txt"
cmp "$SHARD_TMP/uncapped.txt" "$SHARD_TMP/capped.txt"
cmp "$SHARD_TMP/uncapped.json" "$SHARD_TMP/capped.json"
CAPPED_BYTES=$(working_set "$SHARD_TMP/capped")
if [[ $CAPPED_BYTES -gt $BUDGET ]]; then
    echo "capped cache dir holds $CAPPED_BYTES bytes > budget $BUDGET" >&2
    exit 1
fi
target/release/fig2 --scale smoke --datasets FR --jobs 1 \
    --cache-dir "$SHARD_TMP/capped" --cache-max-bytes "$BUDGET" --cache-stats \
    > "$SHARD_TMP/stats.txt" 2> /dev/null
grep -q "cumulative evictions" "$SHARD_TMP/stats.txt"
echo "fig2 budget-capped output is byte-identical and the dir stayed under budget"

echo "== golden-result diff (virt, fig10, table4, quick scale)"
# Regenerate the cheap quick-scale documents and diff them against the
# committed goldens; the full set is checked by reproduce_all.sh +
# scripts/diff_results.sh.
target/release/virt --json "$SHARD_TMP/virt_quick.json" > /dev/null
target/release/fig10 --scale quick --json "$SHARD_TMP/fig10_quick.json" > /dev/null
target/release/table4 --scale quick --json "$SHARD_TMP/table4_quick.json" > /dev/null
scripts/diff_results.sh "$SHARD_TMP" virt fig10 table4

echo "== perf trend (fig8 + fig9, quick scale)"
# Time the two dominant sweeps with a fresh shared report cache (fig8
# simulates, fig9 replays — the reproduce_all.sh arrangement), append
# both wall times to results/BENCH_trend.json, and fail if fig8
# regressed more than 25% over the last recorded entry. Outputs are also
# diffed against the goldens — the perf machinery must not change bytes.
t0=$(now_ms)
target/release/fig8 --scale quick --jobs 1 --cache-dir results/.dataset-cache \
    --report-cache "$SHARD_TMP/report-cache" \
    --json "$SHARD_TMP/fig8_quick.json" > /dev/null
t1=$(now_ms)
FIG8_MS=$((t1 - t0))
t0=$(now_ms)
target/release/fig9 --scale quick --jobs 1 --cache-dir results/.dataset-cache \
    --report-cache "$SHARD_TMP/report-cache" \
    --json "$SHARD_TMP/fig9_quick.json" > /dev/null
t1=$(now_ms)
FIG9_MS=$((t1 - t0))
scripts/diff_results.sh "$SHARD_TMP" fig8 fig9

echo "== DVM-vs-SVA comparison (fig11, quick scale)"
# fig11 shares fig8's grid for its 4K/DVM-PE+/Ideal columns, so under the
# shared report cache only the two SVA schemes simulate fresh. The
# document is diffed against its golden like every other figure.
t0=$(now_ms)
target/release/fig11 --scale quick --jobs 1 --cache-dir results/.dataset-cache \
    --report-cache "$SHARD_TMP/report-cache" \
    --json "$SHARD_TMP/fig11_quick.json" > /dev/null
t1=$(now_ms)
FIG11_MS=$((t1 - t0))
scripts/diff_results.sh "$SHARD_TMP" fig11

echo "== shard-merge determinism (fig11, quick scale, 2 shards)"
# The new binary must honour the same contract as the old ones: a
# coordinator-merged run is byte-identical to a serial one (the warm
# report cache makes both replays, so this checks the merge plumbing).
target/release/fig11 --scale quick --datasets FR --jobs 1 \
    --cache-dir results/.dataset-cache \
    --report-cache "$SHARD_TMP/report-cache" \
    --json "$SHARD_TMP/fig11_serial.json" > "$SHARD_TMP/fig11_serial.txt"
target/release/fig11 --scale quick --datasets FR --jobs 1 --shards 2 \
    --cache-dir results/.dataset-cache \
    --report-cache "$SHARD_TMP/report-cache" \
    --json "$SHARD_TMP/fig11_sharded.json" > "$SHARD_TMP/fig11_sharded.txt"
cmp "$SHARD_TMP/fig11_serial.txt" "$SHARD_TMP/fig11_sharded.txt"
cmp "$SHARD_TMP/fig11_serial.json" "$SHARD_TMP/fig11_sharded.json"
target/release/fig11 --scale quick --datasets FR --jobs 2 \
    --cache-dir results/.dataset-cache \
    --report-cache "$SHARD_TMP/report-cache" \
    --json "$SHARD_TMP/fig11_jobs2.json" > "$SHARD_TMP/fig11_jobs2.txt"
cmp "$SHARD_TMP/fig11_serial.txt" "$SHARD_TMP/fig11_jobs2.txt"
cmp "$SHARD_TMP/fig11_serial.json" "$SHARD_TMP/fig11_jobs2.json"
echo "fig11 sharded and threaded outputs are byte-identical to serial"

echo "== churn time-series (quick scale: golden diff + determinism)"
# The churn trajectory is a pure function of its config: the quick-scale
# document must match its committed golden exactly, and a 2-shard or
# 2-thread run must be byte-identical to serial (each config is one unit,
# so sharding splits the three configs across workers).
target/release/churn --scale quick --jobs 1 \
    --json "$SHARD_TMP/churn_quick.json" > "$SHARD_TMP/churn_serial.txt"
scripts/diff_results.sh "$SHARD_TMP" churn
target/release/churn --scale quick --jobs 1 --shards 2 \
    --json "$SHARD_TMP/churn_sharded.json" > "$SHARD_TMP/churn_sharded.txt"
cmp "$SHARD_TMP/churn_serial.txt" "$SHARD_TMP/churn_sharded.txt"
cmp "$SHARD_TMP/churn_quick.json" "$SHARD_TMP/churn_sharded.json"
target/release/churn --scale quick --jobs 2 \
    --json "$SHARD_TMP/churn_jobs2.json" > "$SHARD_TMP/churn_jobs2.txt"
cmp "$SHARD_TMP/churn_serial.txt" "$SHARD_TMP/churn_jobs2.txt"
cmp "$SHARD_TMP/churn_quick.json" "$SHARD_TMP/churn_jobs2.json"
echo "churn sharded and threaded outputs are byte-identical to serial"

python3 scripts/bench_trend.py ci "$FIG8_MS" "$FIG9_MS" "$FIG11_MS"

echo "ci: all green"
