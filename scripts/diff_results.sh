#!/usr/bin/env bash
# Compare freshly generated quick-scale result documents against the
# committed goldens in results/golden/. Exits non-zero on any drift, so
# an unintended change to simulator behaviour fails loudly.
#
#   scripts/diff_results.sh [fresh_dir] [experiment...]
#
# fresh_dir defaults to results/ (where reproduce_all.sh writes); with no
# experiment list, every golden is checked. table5 (line counts drift
# with every source change) and BENCH_sweep (timings) deliberately have
# no goldens.
set -euo pipefail
cd "$(dirname "$0")/.."

FRESH_DIR="${1:-results}"
shift $(( $# > 0 ? 1 : 0 ))

GOLDEN_DIR=results/golden
BIN=target/release/resultdiff
if [[ ! -x "$BIN" ]]; then
    cargo build --release -q -p dvm-bench --bin resultdiff
fi

if [[ $# -gt 0 ]]; then
    goldens=()
    for exp in "$@"; do
        goldens+=("$GOLDEN_DIR/${exp}_quick.json")
    done
else
    goldens=("$GOLDEN_DIR"/*_quick.json)
fi

status=0
for golden in "${goldens[@]}"; do
    name=$(basename "$golden")
    fresh="$FRESH_DIR/$name"
    if [[ ! -f "$golden" ]]; then
        echo "diff_results: no golden $golden" >&2
        status=1
        continue
    fi
    if [[ ! -f "$fresh" ]]; then
        echo "diff_results: missing fresh result $fresh" >&2
        status=1
        continue
    fi
    if "$BIN" "$golden" "$fresh"; then
        :
    else
        status=1
    fi
done

if [[ $status -ne 0 ]]; then
    echo "diff_results: DRIFT DETECTED (see above)" >&2
else
    echo "diff_results: all results match the goldens"
fi
exit $status
