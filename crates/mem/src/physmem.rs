//! Sparse, byte-addressable simulated physical memory.
//!
//! Frames are materialized lazily on first write, so a simulated 32 GiB
//! machine costs host memory proportional to the bytes actually touched.
//! Reads from never-written frames observe zeros, matching an OS that
//! hands out zeroed pages.

use dvm_types::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
use std::sync::atomic::{AtomicU64, Ordering};

const FRAME_BYTES: usize = PAGE_SIZE as usize;

type Frame = Box<[u8; FRAME_BYTES]>;

/// Source of globally unique page-table generation numbers. A single
/// process-wide counter (rather than per-`PhysMem` counters) guarantees a
/// memo tagged with one memory's generation can never accidentally match
/// another instance's. The values feed equality checks only — never any
/// simulated output — so allocation order across threads is irrelevant.
static PT_GEN: AtomicU64 = AtomicU64::new(1);

fn next_pt_gen() -> u64 {
    PT_GEN.fetch_add(1, Ordering::Relaxed)
}

/// Byte-addressable physical memory backed by lazily allocated 4 KiB frames.
///
/// # Examples
///
/// ```
/// use dvm_mem::PhysMem;
/// use dvm_types::PhysAddr;
/// let mut mem = PhysMem::new(16);
/// assert_eq!(mem.read_u32(PhysAddr::new(0x40)), 0); // zero page
/// mem.write_u32(PhysAddr::new(0x40), 7);
/// assert_eq!(mem.read_u32(PhysAddr::new(0x40)), 7);
/// ```
#[derive(Debug)]
pub struct PhysMem {
    frames: Vec<Option<Frame>>,
    resident: u64,
    pt_gen: u64,
}

impl PhysMem {
    /// Create memory with `total_frames` 4 KiB frames, all zero.
    pub fn new(total_frames: u64) -> Self {
        Self {
            frames: (0..total_frames).map(|_| None).collect(),
            resident: 0,
            pt_gen: next_pt_gen(),
        }
    }

    /// Number of frames this memory can hold.
    pub fn total_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Number of frames actually materialized (host-memory footprint).
    pub fn resident_frames(&self) -> u64 {
        self.resident
    }

    /// Generation tag of the page tables stored in this memory. Any
    /// translation cached outside the page tables (see `TranslationMemo`
    /// in `dvm-mmu`) is valid only while this value is unchanged.
    #[inline]
    pub fn pt_gen(&self) -> u64 {
        self.pt_gen
    }

    /// Record that a page-table entry stored in this memory was mutated
    /// (or a table frame freed), invalidating every memoized translation.
    /// Called by `dvm-pagetable` on each structural update.
    #[inline]
    pub fn note_pt_mutation(&mut self) {
        self.pt_gen = next_pt_gen();
    }

    #[inline]
    fn frame_of(&self, pa: PhysAddr) -> (usize, usize) {
        let frame = (pa.raw() >> PAGE_SHIFT) as usize;
        let offset = (pa.raw() & (PAGE_SIZE - 1)) as usize;
        if frame >= self.frames.len() {
            self.out_of_range(pa);
        }
        (frame, offset)
    }

    #[cold]
    #[inline(never)]
    fn out_of_range(&self, pa: PhysAddr) -> ! {
        panic!("physical access beyond memory: {pa}");
    }

    #[inline]
    fn frame_mut(&mut self, index: usize) -> &mut [u8; FRAME_BYTES] {
        if self.frames[index].is_none() {
            self.frames[index] = Some(Box::new([0u8; FRAME_BYTES]));
            self.resident += 1;
        }
        self.frames[index].as_deref_mut().unwrap()
    }

    /// Read `buf.len()` bytes starting at `pa`, crossing frames as needed.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond physical memory.
    pub fn read_bytes(&self, pa: PhysAddr, buf: &mut [u8]) {
        let mut addr = pa;
        let mut done = 0usize;
        while done < buf.len() {
            let (frame, offset) = self.frame_of(addr);
            let n = (FRAME_BYTES - offset).min(buf.len() - done);
            match &self.frames[frame] {
                Some(data) => buf[done..done + n].copy_from_slice(&data[offset..offset + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            addr += n as u64;
        }
    }

    /// Write `buf` starting at `pa`, crossing frames as needed.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond physical memory.
    pub fn write_bytes(&mut self, pa: PhysAddr, buf: &[u8]) {
        let mut addr = pa;
        let mut done = 0usize;
        while done < buf.len() {
            let (frame, offset) = self.frame_of(addr);
            let n = (FRAME_BYTES - offset).min(buf.len() - done);
            self.frame_mut(frame)[offset..offset + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            addr += n as u64;
        }
    }

    /// Fill `len` bytes at `pa` with zero (releases nothing; keeps frames).
    pub fn zero_bytes(&mut self, pa: PhysAddr, len: u64) {
        let mut addr = pa;
        let mut left = len;
        while left > 0 {
            let (frame, offset) = self.frame_of(addr);
            let n = ((FRAME_BYTES - offset) as u64).min(left);
            if self.frames[frame].is_some() {
                self.frame_mut(frame)[offset..offset + n as usize].fill(0);
            }
            left -= n;
            addr += n;
        }
    }

    /// Copy one whole frame to another (copy-on-write resolution).
    pub fn copy_frame(&mut self, src_frame: u64, dst_frame: u64) {
        let src = self.frames[src_frame as usize].as_deref().copied();
        match src {
            Some(data) => {
                *self.frame_mut(dst_frame as usize) = data;
            }
            None => {
                // Source never materialized: destination reads as zero too.
                if self.frames[dst_frame as usize].is_some() {
                    self.frame_mut(dst_frame as usize).fill(0);
                }
            }
        }
    }

    /// Drop the backing storage of a frame (frees host memory; the frame
    /// reads as zero afterwards). Called when the allocator reclaims frames.
    pub fn discard_frame(&mut self, frame: u64) {
        if self.frames[frame as usize].take().is_some() {
            self.resident -= 1;
        }
    }

    /// A new memory of the same size holding copies of just the listed
    /// frames (all others read as zero). Used to hand a translation-lane
    /// thread its own snapshot of the page-table and bitmap frames.
    ///
    /// # Panics
    ///
    /// Panics if any listed frame is out of range.
    pub fn clone_frames(&self, frames: impl IntoIterator<Item = u64>) -> PhysMem {
        let mut snap = PhysMem::new(self.total_frames());
        for frame in frames {
            if frame >= self.total_frames() {
                self.out_of_range(PhysAddr::from_frame(frame));
            }
            if let Some(data) = self.frames[frame as usize].as_deref() {
                *snap.frame_mut(frame as usize) = *data;
            }
        }
        snap
    }
}

macro_rules! typed_access {
    ($read:ident, $write:ident, $ty:ty) => {
        impl PhysMem {
            /// Read a little-endian value; unwritten memory reads as zero.
            ///
            /// # Panics
            ///
            /// Panics if the access extends beyond physical memory.
            #[inline]
            pub fn $read(&self, pa: PhysAddr) -> $ty {
                const N: usize = core::mem::size_of::<$ty>();
                let mut buf = [0u8; N];
                // Fast path: within one frame. A single `get` doubles as
                // the bounds assert and the slot fetch — no re-derivation.
                let frame = (pa.raw() >> PAGE_SHIFT) as usize;
                let offset = (pa.raw() & (PAGE_SIZE - 1)) as usize;
                if offset + N <= FRAME_BYTES {
                    match self.frames.get(frame) {
                        Some(Some(data)) => buf.copy_from_slice(&data[offset..offset + N]),
                        Some(None) => {}
                        None => self.out_of_range(pa),
                    }
                } else {
                    self.read_bytes(pa, &mut buf);
                }
                <$ty>::from_le_bytes(buf)
            }

            /// Write a little-endian value.
            ///
            /// # Panics
            ///
            /// Panics if the access extends beyond physical memory.
            #[inline]
            pub fn $write(&mut self, pa: PhysAddr, value: $ty) {
                let buf = value.to_le_bytes();
                let (frame, offset) = self.frame_of(pa);
                if offset + buf.len() <= FRAME_BYTES {
                    self.frame_mut(frame)[offset..offset + buf.len()].copy_from_slice(&buf);
                } else {
                    self.write_bytes(pa, &buf);
                }
            }
        }
    };
}

typed_access!(read_u8, write_u8, u8);
typed_access!(read_u16, write_u16, u16);
typed_access!(read_u32, write_u32, u32);
typed_access!(read_u64, write_u64, u64);

impl PhysMem {
    /// Read an `f32` stored little-endian at `pa`.
    #[inline]
    pub fn read_f32(&self, pa: PhysAddr) -> f32 {
        f32::from_bits(self.read_u32(pa))
    }

    /// Write an `f32` little-endian at `pa`.
    #[inline]
    pub fn write_f32(&mut self, pa: PhysAddr, value: f32) {
        self.write_u32(pa, value.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_before_first_write() {
        let mem = PhysMem::new(4);
        assert_eq!(mem.read_u64(PhysAddr::new(0)), 0);
        assert_eq!(mem.resident_frames(), 0);
    }

    #[test]
    fn typed_roundtrips() {
        let mut mem = PhysMem::new(4);
        mem.write_u8(PhysAddr::new(1), 0xab);
        mem.write_u16(PhysAddr::new(2), 0xcdef);
        mem.write_u32(PhysAddr::new(8), 0x1234_5678);
        mem.write_u64(PhysAddr::new(16), u64::MAX - 1);
        mem.write_f32(PhysAddr::new(32), 1.5);
        assert_eq!(mem.read_u8(PhysAddr::new(1)), 0xab);
        assert_eq!(mem.read_u16(PhysAddr::new(2)), 0xcdef);
        assert_eq!(mem.read_u32(PhysAddr::new(8)), 0x1234_5678);
        assert_eq!(mem.read_u64(PhysAddr::new(16)), u64::MAX - 1);
        assert_eq!(mem.read_f32(PhysAddr::new(32)), 1.5);
    }

    #[test]
    fn cross_frame_access() {
        let mut mem = PhysMem::new(4);
        let pa = PhysAddr::new(PAGE_SIZE - 3);
        mem.write_u64(pa, 0x0102_0304_0506_0708);
        assert_eq!(mem.read_u64(pa), 0x0102_0304_0506_0708);
        assert_eq!(mem.resident_frames(), 2);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut mem = PhysMem::new(8);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        mem.write_bytes(PhysAddr::new(100), &data);
        let mut back = vec![0u8; data.len()];
        mem.read_bytes(PhysAddr::new(100), &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn copy_frame_duplicates_content() {
        let mut mem = PhysMem::new(4);
        mem.write_u64(PhysAddr::from_frame(1), 99);
        mem.copy_frame(1, 3);
        assert_eq!(mem.read_u64(PhysAddr::from_frame(3)), 99);
        // Copying an unmaterialized frame zeroes the destination.
        mem.copy_frame(2, 3);
        assert_eq!(mem.read_u64(PhysAddr::from_frame(3)), 0);
    }

    #[test]
    fn discard_frame_zeroes_and_frees() {
        let mut mem = PhysMem::new(2);
        mem.write_u64(PhysAddr::new(0), 5);
        assert_eq!(mem.resident_frames(), 1);
        mem.discard_frame(0);
        assert_eq!(mem.resident_frames(), 0);
        assert_eq!(mem.read_u64(PhysAddr::new(0)), 0);
    }

    #[test]
    fn zero_bytes_clears_range() {
        let mut mem = PhysMem::new(4);
        mem.write_bytes(PhysAddr::new(10), &[1u8; 64]);
        mem.zero_bytes(PhysAddr::new(12), 4);
        assert_eq!(mem.read_u16(PhysAddr::new(10)), 0x0101);
        assert_eq!(mem.read_u32(PhysAddr::new(12)), 0);
        assert_eq!(mem.read_u8(PhysAddr::new(16)), 1);
    }

    #[test]
    #[should_panic(expected = "beyond memory")]
    fn out_of_range_panics() {
        let mem = PhysMem::new(1);
        let _ = mem.read_u8(PhysAddr::new(PAGE_SIZE));
    }

    #[test]
    fn clone_frames_copies_only_listed() {
        let mut mem = PhysMem::new(4);
        mem.write_u64(PhysAddr::from_frame(1), 11);
        mem.write_u64(PhysAddr::from_frame(2), 22);
        let snap = mem.clone_frames([1, 3]);
        assert_eq!(snap.total_frames(), 4);
        assert_eq!(snap.read_u64(PhysAddr::from_frame(1)), 11);
        assert_eq!(snap.read_u64(PhysAddr::from_frame(2)), 0, "not listed");
        assert_eq!(snap.read_u64(PhysAddr::from_frame(3)), 0, "never written");
        // The snapshot is independent: writes do not propagate either way.
        mem.write_u64(PhysAddr::from_frame(1), 99);
        assert_eq!(snap.read_u64(PhysAddr::from_frame(1)), 11);
    }

    #[test]
    #[should_panic(expected = "beyond memory")]
    fn clone_frames_rejects_out_of_range() {
        let mem = PhysMem::new(2);
        let _ = mem.clone_frames([5]);
    }
}
