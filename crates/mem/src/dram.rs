//! DRAM timing and event model.
//!
//! The paper simulates 4 channels of DDR4 (51.2 GB/s aggregate, Table 2)
//! under gem5. Our model charges a fixed access latency per 64-byte
//! transaction and tracks per-channel access counts; the figures the paper
//! reports are normalized, so relative latency between structure lookups
//! (1 cycle) and DRAM (~`access_latency` cycles) is what matters.

use dvm_sim::Cycles;
use dvm_types::{AccessKind, PhysAddr};

/// DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels (address-interleaved at line granularity).
    pub channels: u32,
    /// End-to-end latency of one isolated access, in accelerator cycles
    /// (what a page-table walker or a squashed preload pays).
    pub access_latency: Cycles,
    /// Amortized per-access cost under pipelining: the accelerator's
    /// engines keep many data fetches in flight, so steady-state data
    /// accesses cost their bandwidth share, not the full latency.
    pub occupancy_cycles: Cycles,
    /// Transaction granularity in bytes.
    pub line_bytes: u64,
}

impl Default for DramConfig {
    /// 4 channels, 100-cycle access latency at the accelerator's 1 GHz
    /// clock (~100 ns end-to-end), 64 B lines — Table 2 scaled to our model.
    fn default() -> Self {
        Self {
            channels: 4,
            access_latency: 100,
            occupancy_cycles: 20,
            line_bytes: 64,
        }
    }
}

/// DRAM device model: latency oracle plus access accounting.
///
/// # Examples
///
/// ```
/// use dvm_mem::{Dram, DramConfig};
/// use dvm_types::{AccessKind, PhysAddr};
/// let mut dram = Dram::new(DramConfig::default());
/// let lat = dram.access(PhysAddr::new(0x80), AccessKind::Read);
/// assert_eq!(lat, 100);
/// assert_eq!(dram.reads(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    reads: u64,
    writes: u64,
    per_channel: Vec<u64>,
    /// Precomputed shift for `line_bytes` (asserted a power of two).
    line_shift: u32,
    /// `channels - 1` when the channel count is a power of two, so the
    /// per-access channel select is a mask instead of a modulo.
    channel_mask: Option<u64>,
}

impl Dram {
    /// Build a DRAM model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `line_bytes` is not a power of two.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            config,
            reads: 0,
            writes: 0,
            per_channel: vec![0; config.channels as usize],
            line_shift: config.line_bytes.trailing_zeros(),
            channel_mask: config
                .channels
                .is_power_of_two()
                .then(|| config.channels as u64 - 1),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Perform one latency-bound access (walker fetches, cold misses) and
    /// return its full latency in cycles.
    pub fn access(&mut self, pa: PhysAddr, kind: AccessKind) -> Cycles {
        self.count(pa, kind);
        self.config.access_latency
    }

    /// Perform one pipelined data access and return its amortized
    /// (bandwidth-share) cost in cycles.
    pub fn occupancy_access(&mut self, pa: PhysAddr, kind: AccessKind) -> Cycles {
        self.count(pa, kind);
        self.config.occupancy_cycles
    }

    fn count(&mut self, pa: PhysAddr, kind: AccessKind) {
        let line = pa.raw() >> self.line_shift;
        let channel = match self.channel_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.config.channels as u64) as usize,
        };
        self.per_channel[channel] += 1;
        match kind {
            AccessKind::Write => self.writes += 1,
            _ => self.reads += 1,
        }
    }

    /// Total read transactions.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total write transactions.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total transactions.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Per-channel transaction counts.
    pub fn channel_accesses(&self) -> &[u64] {
        &self.per_channel
    }

    /// Reset all counters (between measurement phases).
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.per_channel.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let mut d = Dram::new(DramConfig::default());
        d.access(PhysAddr::new(0), AccessKind::Read);
        d.access(PhysAddr::new(64), AccessKind::Write);
        d.access(PhysAddr::new(128), AccessKind::Execute);
        assert_eq!(d.reads(), 2); // execute counts as read traffic
        assert_eq!(d.writes(), 1);
        assert_eq!(d.accesses(), 3);
    }

    #[test]
    fn channel_interleaving() {
        let mut d = Dram::new(DramConfig {
            channels: 4,
            access_latency: 10,
            occupancy_cycles: 2,
            line_bytes: 64,
        });
        for i in 0..8 {
            d.access(PhysAddr::new(i * 64), AccessKind::Read);
        }
        assert_eq!(d.channel_accesses(), &[2, 2, 2, 2]);
    }

    #[test]
    fn reset_clears_counters() {
        let mut d = Dram::new(DramConfig::default());
        d.access(PhysAddr::new(0), AccessKind::Read);
        d.reset_stats();
        assert_eq!(d.accesses(), 0);
        assert_eq!(d.channel_accesses().iter().sum::<u64>(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        Dram::new(DramConfig {
            channels: 0,
            access_latency: 1,
            occupancy_cycles: 1,
            line_bytes: 64,
        });
    }
}
