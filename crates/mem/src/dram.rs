//! DRAM timing and event model.
//!
//! The paper simulates 4 channels of DDR4 (51.2 GB/s aggregate, Table 2)
//! under gem5. Our model charges a fixed access latency per 64-byte
//! transaction and tracks per-channel access counts; the figures the paper
//! reports are normalized, so relative latency between structure lookups
//! (1 cycle) and DRAM (~`access_latency` cycles) is what matters.

use dvm_sim::Cycles;
use dvm_types::{AccessKind, PhysAddr};

/// Latency class of one DRAM transaction: a full-latency fetch (walker
/// PTE/bitmap reads, squashed preloads — anything a pipeline stalls on)
/// or a pipelined data access charged its amortized bandwidth share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramClass {
    /// Isolated, latency-bound transaction ([`Dram::access`]).
    Fetch,
    /// Pipelined, bandwidth-bound transaction
    /// ([`Dram::occupancy_access`]).
    Pipelined,
}

/// One DRAM transaction, as recorded by a [`Dram::recording`] instance
/// and replayed into another instance's counters by [`Dram::replay`].
/// The lane pipeline ships these from the translate sub-lane (which owns
/// the IOMMU and needs only the latency *oracle*) to the memory sub-lane
/// (which owns the counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramEvent {
    /// Physical address of the transaction.
    pub pa: PhysAddr,
    /// Read/write/execute, as counted.
    pub kind: AccessKind,
    /// Which latency the transaction was charged.
    pub class: DramClass,
}

/// DRAM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels (address-interleaved at line granularity).
    pub channels: u32,
    /// End-to-end latency of one isolated access, in accelerator cycles
    /// (what a page-table walker or a squashed preload pays).
    pub access_latency: Cycles,
    /// Amortized per-access cost under pipelining: the accelerator's
    /// engines keep many data fetches in flight, so steady-state data
    /// accesses cost their bandwidth share, not the full latency.
    pub occupancy_cycles: Cycles,
    /// Transaction granularity in bytes.
    pub line_bytes: u64,
}

impl Default for DramConfig {
    /// 4 channels, 100-cycle access latency at the accelerator's 1 GHz
    /// clock (~100 ns end-to-end), 64 B lines — Table 2 scaled to our model.
    fn default() -> Self {
        Self {
            channels: 4,
            access_latency: 100,
            occupancy_cycles: 20,
            line_bytes: 64,
        }
    }
}

/// DRAM device model: latency oracle plus access accounting.
///
/// # Examples
///
/// ```
/// use dvm_mem::{Dram, DramConfig};
/// use dvm_types::{AccessKind, PhysAddr};
/// let mut dram = Dram::new(DramConfig::default());
/// let lat = dram.access(PhysAddr::new(0x80), AccessKind::Read);
/// assert_eq!(lat, 100);
/// assert_eq!(dram.reads(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    reads: u64,
    writes: u64,
    per_channel: Vec<u64>,
    /// Precomputed shift for `line_bytes` (asserted a power of two).
    line_shift: u32,
    /// `channels - 1` when the channel count is a power of two, so the
    /// per-access channel select is a mask instead of a modulo.
    channel_mask: Option<u64>,
    /// In recording mode ([`Dram::recording`]) every transaction is also
    /// appended here; the buffer's capacity is reused across
    /// [`Dram::drain_events`] calls, so steady-state recording allocates
    /// nothing. Always empty otherwise.
    events: Vec<DramEvent>,
    recording: bool,
}

impl Dram {
    /// Build a DRAM model from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0` or `line_bytes` is not a power of two.
    pub fn new(config: DramConfig) -> Self {
        assert!(config.channels > 0, "DRAM needs at least one channel");
        assert!(
            config.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Self {
            config,
            reads: 0,
            writes: 0,
            per_channel: vec![0; config.channels as usize],
            line_shift: config.line_bytes.trailing_zeros(),
            channel_mask: config
                .channels
                .is_power_of_two()
                .then(|| config.channels as u64 - 1),
            events: Vec::new(),
            recording: false,
        }
    }

    /// Build a *recording* DRAM model: it answers latency queries exactly
    /// like [`Dram::new`] would, but additionally appends every
    /// transaction to an event log drained with
    /// [`drain_events`](Self::drain_events). The translate sub-lane of
    /// the three-stage pipeline runs the IOMMU against one of these; its
    /// own counters are scratch — the authoritative counts live in the
    /// memory sub-lane's instance, fed by [`replay`](Self::replay).
    pub fn recording(config: DramConfig) -> Self {
        let mut dram = Self::new(config);
        dram.recording = true;
        dram
    }

    /// `true` if this instance records its transactions.
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Drain the recorded transactions, in issue order, keeping the log's
    /// capacity. Empty (and cheap) on a non-recording instance.
    pub fn drain_events(&mut self) -> std::vec::Drain<'_, DramEvent> {
        self.events.drain(..)
    }

    /// Apply one recorded transaction to this instance's counters and
    /// return the latency its class carries — the replay half of the
    /// event API. Counter state after replaying a recorded stream is
    /// byte-identical to having issued the accesses directly.
    pub fn replay(&mut self, ev: DramEvent) -> Cycles {
        match ev.class {
            DramClass::Fetch => self.access(ev.pa, ev.kind),
            DramClass::Pipelined => self.occupancy_access(ev.pa, ev.kind),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> DramConfig {
        self.config
    }

    /// Perform one latency-bound access (walker fetches, cold misses) and
    /// return its full latency in cycles.
    pub fn access(&mut self, pa: PhysAddr, kind: AccessKind) -> Cycles {
        self.count(pa, kind);
        if self.recording {
            self.events.push(DramEvent {
                pa,
                kind,
                class: DramClass::Fetch,
            });
        }
        self.config.access_latency
    }

    /// Perform one pipelined data access and return its amortized
    /// (bandwidth-share) cost in cycles.
    pub fn occupancy_access(&mut self, pa: PhysAddr, kind: AccessKind) -> Cycles {
        self.count(pa, kind);
        if self.recording {
            self.events.push(DramEvent {
                pa,
                kind,
                class: DramClass::Pipelined,
            });
        }
        self.config.occupancy_cycles
    }

    fn count(&mut self, pa: PhysAddr, kind: AccessKind) {
        let line = pa.raw() >> self.line_shift;
        let channel = match self.channel_mask {
            Some(mask) => (line & mask) as usize,
            None => (line % self.config.channels as u64) as usize,
        };
        self.per_channel[channel] += 1;
        match kind {
            AccessKind::Write => self.writes += 1,
            _ => self.reads += 1,
        }
    }

    /// Total read transactions.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total write transactions.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total transactions.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Per-channel transaction counts.
    pub fn channel_accesses(&self) -> &[u64] {
        &self.per_channel
    }

    /// Reset all counters (between measurement phases).
    pub fn reset_stats(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.per_channel.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let mut d = Dram::new(DramConfig::default());
        d.access(PhysAddr::new(0), AccessKind::Read);
        d.access(PhysAddr::new(64), AccessKind::Write);
        d.access(PhysAddr::new(128), AccessKind::Execute);
        assert_eq!(d.reads(), 2); // execute counts as read traffic
        assert_eq!(d.writes(), 1);
        assert_eq!(d.accesses(), 3);
    }

    #[test]
    fn channel_interleaving() {
        let mut d = Dram::new(DramConfig {
            channels: 4,
            access_latency: 10,
            occupancy_cycles: 2,
            line_bytes: 64,
        });
        for i in 0..8 {
            d.access(PhysAddr::new(i * 64), AccessKind::Read);
        }
        assert_eq!(d.channel_accesses(), &[2, 2, 2, 2]);
    }

    #[test]
    fn reset_clears_counters() {
        let mut d = Dram::new(DramConfig::default());
        d.access(PhysAddr::new(0), AccessKind::Read);
        d.reset_stats();
        assert_eq!(d.accesses(), 0);
        assert_eq!(d.channel_accesses().iter().sum::<u64>(), 0);
    }

    #[test]
    fn recorded_stream_replays_to_identical_counters() {
        let config = DramConfig::default();
        let mut recorder = Dram::recording(config);
        assert!(recorder.is_recording());
        // Mixed fetches and pipelined accesses, with matching latencies.
        assert_eq!(
            recorder.access(PhysAddr::new(0x40), AccessKind::Read),
            config.access_latency
        );
        assert_eq!(
            recorder.occupancy_access(PhysAddr::new(0x80), AccessKind::Write),
            config.occupancy_cycles
        );
        recorder.access(PhysAddr::new(0xC0), AccessKind::Execute);

        // A direct run on one instance...
        let mut direct = Dram::new(config);
        direct.access(PhysAddr::new(0x40), AccessKind::Read);
        direct.occupancy_access(PhysAddr::new(0x80), AccessKind::Write);
        direct.access(PhysAddr::new(0xC0), AccessKind::Execute);

        // ...must equal a replay of the recorded stream on another, and
        // the replayed latencies must match the classes.
        let events: Vec<DramEvent> = recorder.drain_events().collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].class, DramClass::Fetch);
        assert_eq!(events[1].class, DramClass::Pipelined);
        let mut replayed = Dram::new(config);
        let lats: Vec<Cycles> = events.iter().map(|&ev| replayed.replay(ev)).collect();
        assert_eq!(
            lats,
            vec![
                config.access_latency,
                config.occupancy_cycles,
                config.access_latency
            ]
        );
        assert_eq!(replayed.reads(), direct.reads());
        assert_eq!(replayed.writes(), direct.writes());
        assert_eq!(replayed.channel_accesses(), direct.channel_accesses());
        // Drained: the log is empty again and the recorder keeps going.
        assert_eq!(recorder.drain_events().count(), 0);
        recorder.access(PhysAddr::new(0), AccessKind::Read);
        assert_eq!(recorder.drain_events().count(), 1);
    }

    #[test]
    fn non_recording_instance_logs_nothing() {
        let mut d = Dram::new(DramConfig::default());
        assert!(!d.is_recording());
        d.access(PhysAddr::new(0), AccessKind::Read);
        d.occupancy_access(PhysAddr::new(64), AccessKind::Write);
        assert_eq!(d.drain_events().count(), 0);
        assert_eq!(d.accesses(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        Dram::new(DramConfig {
            channels: 0,
            access_latency: 1,
            occupancy_cycles: 1,
            line_bytes: 64,
        });
    }
}
