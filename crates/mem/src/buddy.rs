//! A binary buddy frame allocator with eager contiguous allocation.
//!
//! This is the reproduction's stand-in for the Linux buddy allocator plus
//! the eager-paging modifications of Karakostas et al. that the paper
//! builds on (§4.3.1): an allocation of `n` frames grabs the smallest
//! power-of-two block that fits, then immediately frees the tail so only
//! `n` frames stay allocated. Blocks are naturally aligned, which is what
//! lets the OS later map identity regions with 2 MB / 1 GB leaf entries.
//!
//! Determinism: free blocks are kept in ordered sets and allocation always
//! takes the lowest-addressed suitable block, so allocation sequences are
//! reproducible run-to-run.

use dvm_types::DvmError;
use std::collections::{BTreeMap, BTreeSet};

/// A contiguous range of physical frames returned by the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameRange {
    /// First frame number.
    pub start: u64,
    /// Number of frames.
    pub count: u64,
}

impl FrameRange {
    /// One-past-the-end frame number.
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.count
    }

    /// `true` if `frame` lies inside this range.
    #[inline]
    pub fn contains(&self, frame: u64) -> bool {
        (self.start..self.end()).contains(&frame)
    }
}

/// Point-in-time allocator statistics (for fragmentation studies, Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuddyStats {
    /// Total frames managed.
    pub total_frames: u64,
    /// Frames currently free.
    pub free_frames: u64,
    /// Frames currently allocated.
    pub allocated_frames: u64,
    /// Size (in frames) of the largest free block.
    pub largest_free_block: u64,
    /// Number of distinct free blocks (higher = more fragmented).
    pub free_block_count: u64,
}

/// Histogram of *coalesced free runs* (see [`BuddyAllocator::free_runs`]),
/// the fragmentation ground truth an identity-mapping OS cares about:
/// identity success depends on contiguous runs existing, not on how the
/// buddy free lists happen to slice them into power-of-two blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeSpanHistogram {
    /// `buckets[k]` counts runs of length `l` frames with
    /// `2^k <= l < 2^(k+1)`; the last bucket also absorbs anything larger.
    /// The vector length is fixed by the allocator's maximum order, so
    /// histograms from equally sized machines are directly comparable.
    pub buckets: Vec<u64>,
    /// Total number of runs (the sum over `buckets`).
    pub runs: u64,
    /// Length in frames of the largest run (0 when nothing is free).
    pub largest_run: u64,
}

/// Binary buddy allocator over 4 KiB frames.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    total_frames: u64,
    max_order: u32,
    /// `free_lists[k]` holds start frames of free blocks of `2^k` frames.
    free_lists: Vec<BTreeSet<u64>>,
    /// Allocated ranges (`start -> count`), for validation and splitting on
    /// partial frees (the eager-allocation tail trim).
    allocated: BTreeMap<u64, u64>,
    free_frames: u64,
}

impl BuddyAllocator {
    /// Create an allocator managing frames `[0, total_frames)`.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is zero.
    pub fn new(total_frames: u64) -> Self {
        assert!(total_frames > 0, "allocator must manage at least one frame");
        let max_order = 63 - total_frames.next_power_of_two().leading_zeros();
        let mut this = Self {
            total_frames,
            max_order,
            free_lists: vec![BTreeSet::new(); max_order as usize + 1],
            allocated: BTreeMap::new(),
            free_frames: 0,
        };
        // Carve the (possibly non-power-of-two) span into maximal aligned
        // blocks.
        this.insert_free_span(0, total_frames);
        this.free_frames = total_frames;
        this
    }

    /// Total frames managed.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Frames currently free.
    pub fn free_frames_count(&self) -> u64 {
        self.free_frames
    }

    /// Allocate `count` contiguous frames (eager contiguous allocation).
    ///
    /// Grabs the smallest power-of-two buddy block that fits and immediately
    /// returns the tail beyond `count` to the free lists, per the paper's
    /// eager-paging policy.
    ///
    /// # Errors
    ///
    /// Returns [`DvmError::OutOfMemory`] if no contiguous block of the
    /// required order is free, and [`DvmError::InvalidArgument`] if
    /// `count == 0`.
    pub fn alloc_frames(&mut self, count: u64) -> Result<FrameRange, DvmError> {
        if count == 0 {
            return Err(DvmError::InvalidArgument("cannot allocate zero frames"));
        }
        let order = order_for(count);
        let start = self.take_block(order).ok_or(DvmError::OutOfMemory {
            requested: count * dvm_types::PAGE_SIZE,
        })?;
        // Trim: return frames beyond `count` immediately.
        let block_frames = 1u64 << order;
        if block_frames > count {
            self.insert_free_span(start + count, block_frames - count);
            self.free_frames += block_frames - count;
        }
        self.free_frames -= block_frames;
        let range = FrameRange { start, count };
        self.allocated.insert(start, count);
        Ok(range)
    }

    /// Allocate a single frame (demand paging path).
    ///
    /// # Errors
    ///
    /// Returns [`DvmError::OutOfMemory`] when memory is exhausted.
    pub fn alloc_frame(&mut self) -> Result<u64, DvmError> {
        Ok(self.alloc_frames(1)?.start)
    }

    /// Allocate `count` contiguous frames with `align`-frame start
    /// alignment by *first-fit over coalesced free runs*, spanning buddy
    /// blocks if needed. Slower than [`Self::alloc_frames`] but succeeds
    /// whenever a suitable contiguous run exists at all — the fallback an
    /// identity-mapping OS uses when the power-of-two path fails (a 10 MB
    /// request should not require a free 16 MB buddy block).
    ///
    /// # Errors
    ///
    /// [`DvmError::OutOfMemory`] if no aligned contiguous run of `count`
    /// frames exists; [`DvmError::InvalidArgument`] if `count == 0` or
    /// `align` is not a power of two.
    pub fn alloc_frames_first_fit(
        &mut self,
        count: u64,
        align: u64,
    ) -> Result<FrameRange, DvmError> {
        if count == 0 {
            return Err(DvmError::InvalidArgument("cannot allocate zero frames"));
        }
        if align == 0 || !align.is_power_of_two() {
            return Err(DvmError::InvalidArgument(
                "alignment must be a power of two",
            ));
        }
        // First fit over the coalesced runs, lowest address first.
        let mut chosen: Option<u64> = None;
        for run in self.free_runs() {
            let aligned = run.start.next_multiple_of(align);
            if aligned + count <= run.end() {
                chosen = Some(aligned);
                break;
            }
        }
        let start = chosen.ok_or(DvmError::OutOfMemory {
            requested: count * dvm_types::PAGE_SIZE,
        })?;
        self.carve_free_range(start, count);
        self.free_frames -= count;
        self.allocated.insert(start, count);
        Ok(FrameRange { start, count })
    }

    /// Remove the (known-free) frame range `[start, start+count)` from the
    /// free lists, re-inserting the uncovered parts of any overlapped
    /// blocks.
    fn carve_free_range(&mut self, start: u64, count: u64) {
        let end = start + count;
        for order in 0..=self.max_order {
            let len = 1u64 << order;
            // Blocks of this order overlapping [start, end) begin in
            // [start - len + 1, end).
            let lo = start.saturating_sub(len - 1);
            let overlapping: Vec<u64> = self.free_lists[order as usize]
                .range(lo..end)
                .copied()
                .collect();
            for bstart in overlapping {
                let bend = bstart + len;
                if bend <= start {
                    continue;
                }
                self.free_lists[order as usize].remove(&bstart);
                if bstart < start {
                    self.insert_free_span(bstart, start - bstart);
                }
                if bend > end {
                    self.insert_free_span(end, bend - end);
                }
            }
        }
    }

    /// Try to allocate one *specific* frame (the swap-in path wants a
    /// page's original identity frame back). Returns `false` if the frame
    /// is currently allocated or out of range.
    pub fn alloc_specific_frame(&mut self, frame: u64) -> bool {
        if frame >= self.total_frames {
            return false;
        }
        // Find the free block containing `frame`.
        for order in 0..=self.max_order {
            let start = frame & !((1u64 << order) - 1);
            if start + (1u64 << order) > self.total_frames
                || !self.free_lists[order as usize].remove(&start)
            {
                continue;
            }
            // Split down, freeing the halves that do not contain `frame`.
            let mut cur_order = order;
            let mut cur_start = start;
            while cur_order > 0 {
                cur_order -= 1;
                let half = 1u64 << cur_order;
                if frame < cur_start + half {
                    self.put_block(cur_start + half, cur_order);
                } else {
                    self.put_block(cur_start, cur_order);
                    cur_start += half;
                }
            }
            debug_assert_eq!(cur_start, frame);
            self.free_frames -= 1;
            self.allocated.insert(frame, 1);
            return true;
        }
        false
    }

    /// Free a previously allocated range (whole allocations only).
    ///
    /// # Panics
    ///
    /// Panics if the range was not returned by [`Self::alloc_frames`] (or
    /// remaining after [`Self::free_subrange`]); catching double frees and
    /// wild frees loudly is deliberate — they are simulator bugs.
    pub fn free_frames(&mut self, range: FrameRange) {
        match self.allocated.get(&range.start) {
            Some(&count) if count == range.count => {
                self.allocated.remove(&range.start);
            }
            other => {
                panic!("free of untracked range {range:?} (allocator has {other:?} at that start)")
            }
        }
        self.release_span(range.start, range.count);
    }

    /// Free a sub-range of an existing allocation, splitting the tracked
    /// allocation bookkeeping. Used by the OS when unmapping part of a
    /// region and by copy-on-write teardown.
    ///
    /// # Panics
    ///
    /// Panics if the sub-range is not fully inside one tracked allocation.
    pub fn free_subrange(&mut self, range: FrameRange) {
        let (&astart, &acount) = self
            .allocated
            .range(..=range.start)
            .next_back()
            .unwrap_or_else(|| panic!("free_subrange of untracked range {range:?}"));
        assert!(
            range.start >= astart && range.end() <= astart + acount,
            "free_subrange {range:?} escapes allocation [{astart}, {})",
            astart + acount
        );
        self.allocated.remove(&astart);
        if range.start > astart {
            self.allocated.insert(astart, range.start - astart);
        }
        if range.end() < astart + acount {
            self.allocated
                .insert(range.end(), astart + acount - range.end());
        }
        self.release_span(range.start, range.count);
    }

    /// `true` if every frame of `range` is currently allocated.
    pub fn is_allocated(&self, range: FrameRange) -> bool {
        let mut cursor = range.start;
        while cursor < range.end() {
            match self.allocated.range(..=cursor).next_back() {
                Some((&astart, &acount)) if cursor < astart + acount => {
                    cursor = astart + acount;
                }
                _ => return false,
            }
        }
        true
    }

    /// Snapshot of fragmentation statistics.
    pub fn stats(&self) -> BuddyStats {
        let mut largest = 0u64;
        let mut blocks = 0u64;
        for (order, list) in self.free_lists.iter().enumerate() {
            if !list.is_empty() {
                largest = largest.max(1u64 << order);
                blocks += list.len() as u64;
            }
        }
        BuddyStats {
            total_frames: self.total_frames,
            free_frames: self.free_frames,
            allocated_frames: self.total_frames - self.free_frames,
            largest_free_block: largest,
            free_block_count: blocks,
        }
    }

    /// Address-ordered maximal runs of free frames, coalescing adjacent
    /// free blocks across buddy-order boundaries. Runs are what contiguous
    /// (identity-mapping) allocation can actually use: the eager-paging
    /// tail trim and `free_subrange` both leave adjacent blocks that buddy
    /// merging cannot always fuse, so the free *lists* over-state
    /// fragmentation that this view sees through.
    pub fn free_runs(&self) -> Vec<FrameRange> {
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        for (order, list) in self.free_lists.iter().enumerate() {
            for &start in list {
                blocks.push((start, 1u64 << order));
            }
        }
        blocks.sort_unstable();
        let mut runs: Vec<FrameRange> = Vec::new();
        for (start, len) in blocks {
            match runs.last_mut() {
                Some(last) if last.end() == start => last.count += len,
                _ => runs.push(FrameRange { start, count: len }),
            }
        }
        runs
    }

    /// Histogram of coalesced free-run lengths by power-of-two bucket
    /// (the churn time-series' fragmentation metric).
    pub fn free_span_histogram(&self) -> FreeSpanHistogram {
        let mut buckets = vec![0u64; self.max_order as usize + 1];
        let mut runs = 0u64;
        let mut largest = 0u64;
        for run in self.free_runs() {
            let bucket = (63 - run.count.leading_zeros()).min(self.max_order) as usize;
            buckets[bucket] += 1;
            runs += 1;
            largest = largest.max(run.count);
        }
        FreeSpanHistogram {
            buckets,
            runs,
            largest_run: largest,
        }
    }

    /// Take one block of exactly `order`, splitting larger blocks if needed.
    fn take_block(&mut self, order: u32) -> Option<u64> {
        if order > self.max_order {
            return None;
        }
        // Find the smallest order >= requested with a free block.
        let mut have = order;
        while have <= self.max_order && self.free_lists[have as usize].is_empty() {
            have += 1;
        }
        if have > self.max_order {
            return None;
        }
        let start = *self.free_lists[have as usize].iter().next()?;
        self.free_lists[have as usize].remove(&start);
        // Split down to the requested order, freeing the upper halves.
        while have > order {
            have -= 1;
            let buddy = start + (1u64 << have);
            self.free_lists[have as usize].insert(buddy);
        }
        Some(start)
    }

    /// Free one naturally aligned block of `order`, merging with buddies.
    fn put_block(&mut self, mut start: u64, mut order: u32) {
        debug_assert!(start.is_multiple_of(1u64 << order), "unaligned block free");
        loop {
            if order >= self.max_order {
                break;
            }
            let buddy = start ^ (1u64 << order);
            // The buddy may extend past the end of memory on non-power-of-two
            // machines; then it can never be free.
            if buddy + (1u64 << order) > self.total_frames
                || !self.free_lists[order as usize].remove(&buddy)
            {
                break;
            }
            start = start.min(buddy);
            order += 1;
        }
        self.free_lists[order as usize].insert(start);
    }

    /// Insert an arbitrary span as maximal aligned free blocks (no merge
    /// needed at construction; merge handled by `put_block` later).
    fn insert_free_span(&mut self, mut start: u64, mut count: u64) {
        while count > 0 {
            let align_order = if start == 0 {
                self.max_order
            } else {
                start.trailing_zeros().min(self.max_order)
            };
            let size_order = 63 - count.leading_zeros();
            let order = align_order.min(size_order).min(self.max_order);
            self.free_lists[order as usize].insert(start);
            start += 1u64 << order;
            count -= 1u64 << order;
        }
    }

    /// Release a span back to the free lists with buddy merging, block by
    /// aligned block.
    fn release_span(&mut self, mut start: u64, mut count: u64) {
        self.free_frames += count;
        while count > 0 {
            let align_order = if start == 0 {
                self.max_order
            } else {
                start.trailing_zeros().min(self.max_order)
            };
            let size_order = 63 - count.leading_zeros();
            let order = align_order.min(size_order);
            self.put_block(start, order);
            start += 1u64 << order;
            count -= 1u64 << order;
        }
    }
}

/// Smallest order whose block holds `count` frames (`ceil(log2(count))`).
fn order_for(count: u64) -> u32 {
    debug_assert!(count > 0);
    64 - (count - 1).leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_sim::DetRng;

    #[test]
    fn order_for_counts() {
        assert_eq!(order_for(1), 0);
        assert_eq!(order_for(2), 1);
        assert_eq!(order_for(3), 2);
        assert_eq!(order_for(4), 2);
        assert_eq!(order_for(5), 3);
        assert_eq!(order_for(512), 9);
        assert_eq!(order_for(513), 10);
    }

    #[test]
    fn alloc_free_restores_everything() {
        let mut b = BuddyAllocator::new(1024);
        let r1 = b.alloc_frames(10).unwrap();
        let r2 = b.alloc_frames(100).unwrap();
        assert_eq!(b.free_frames_count(), 1024 - 110);
        b.free_frames(r1);
        b.free_frames(r2);
        let stats = b.stats();
        assert_eq!(stats.free_frames, 1024);
        assert_eq!(stats.largest_free_block, 1024);
        assert_eq!(stats.free_block_count, 1);
    }

    #[test]
    fn blocks_are_naturally_aligned() {
        let mut b = BuddyAllocator::new(4096);
        for want in [1u64, 2, 4, 16, 64, 512] {
            let r = b.alloc_frames(want).unwrap();
            assert_eq!(r.start % want.next_power_of_two(), 0, "count {want}");
        }
    }

    #[test]
    fn trim_returns_tail_immediately() {
        let mut b = BuddyAllocator::new(64);
        // 5 frames round to an 8-block; tail of 3 must be free again.
        let r = b.alloc_frames(5).unwrap();
        assert_eq!(b.free_frames_count(), 64 - 5);
        // The 3 trimmed frames are free again: a 1-frame alloc lands right
        // after the allocation (lowest-address-first policy), a 2-frame
        // alloc takes the aligned pair behind it.
        let r1 = b.alloc_frames(1).unwrap();
        assert_eq!(r1.start, r.end());
        let r2 = b.alloc_frames(2).unwrap();
        assert_eq!(r2.start, r.end() + 1);
    }

    #[test]
    fn exhaustion_is_an_error() {
        let mut b = BuddyAllocator::new(16);
        let _r = b.alloc_frames(16).unwrap();
        assert!(matches!(
            b.alloc_frames(1),
            Err(DvmError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn fragmentation_blocks_large_allocs() {
        let mut b = BuddyAllocator::new(16);
        let ranges: Vec<_> = (0..16).map(|_| b.alloc_frames(1).unwrap()).collect();
        // Free every other frame: 8 free frames but max block = 1.
        for r in ranges.iter().step_by(2) {
            b.free_frames(*r);
        }
        assert_eq!(b.free_frames_count(), 8);
        assert!(b.alloc_frames(2).is_err());
        assert_eq!(b.stats().largest_free_block, 1);
    }

    #[test]
    fn merging_recreates_large_blocks() {
        let mut b = BuddyAllocator::new(16);
        let ranges: Vec<_> = (0..16).map(|_| b.alloc_frames(1).unwrap()).collect();
        for r in ranges {
            b.free_frames(r);
        }
        assert_eq!(b.stats().largest_free_block, 16);
    }

    #[test]
    fn non_power_of_two_total() {
        let mut b = BuddyAllocator::new(100);
        assert_eq!(b.free_frames_count(), 100);
        let mut got = 0;
        while let Ok(r) = b.alloc_frames(1) {
            assert!(r.start < 100);
            got += 1;
        }
        assert_eq!(got, 100);
    }

    #[test]
    fn free_subrange_splits_bookkeeping() {
        let mut b = BuddyAllocator::new(64);
        let r = b.alloc_frames(16).unwrap();
        b.free_subrange(FrameRange {
            start: r.start + 4,
            count: 4,
        });
        assert_eq!(b.free_frames_count(), 64 - 12);
        assert!(b.is_allocated(FrameRange {
            start: r.start,
            count: 4
        }));
        assert!(!b.is_allocated(FrameRange {
            start: r.start + 4,
            count: 4
        }));
        assert!(b.is_allocated(FrameRange {
            start: r.start + 8,
            count: 8
        }));
        // Remaining pieces can be freed as wholes.
        b.free_frames(FrameRange {
            start: r.start,
            count: 4,
        });
        b.free_frames(FrameRange {
            start: r.start + 8,
            count: 8,
        });
        assert_eq!(b.free_frames_count(), 64);
    }

    #[test]
    #[should_panic(expected = "untracked range")]
    fn double_free_panics() {
        let mut b = BuddyAllocator::new(16);
        let r = b.alloc_frames(2).unwrap();
        b.free_frames(r);
        b.free_frames(r);
    }

    #[test]
    fn first_fit_spans_buddy_blocks() {
        let mut b = BuddyAllocator::new(64);
        // Fragment: allocate everything as singles, free a 10-frame run
        // crossing several buddy boundaries (frames 3..13).
        let all: Vec<_> = (0..64).map(|_| b.alloc_frames(1).unwrap()).collect();
        for r in &all[3..13] {
            b.free_frames(*r);
        }
        // No order-3 (8-frame) aligned block exists, so pow2 fails...
        assert!(b.alloc_frames(8).is_err());
        // ...but first-fit finds the run.
        let r = b.alloc_frames_first_fit(8, 1).unwrap();
        assert_eq!(r.start, 3);
        assert_eq!(b.free_frames_count(), 2);
        b.free_frames(r);
        assert_eq!(b.free_frames_count(), 10);
    }

    #[test]
    fn first_fit_respects_alignment() {
        let mut b = BuddyAllocator::new(128);
        let head = b.alloc_frames(3).unwrap(); // frames 0..3 busy
        let r = b.alloc_frames_first_fit(8, 8).unwrap();
        assert_eq!(r.start % 8, 0);
        assert!(r.start >= head.end());
        b.free_frames(r);
        b.free_frames(head);
        assert_eq!(b.stats().largest_free_block, 128);
    }

    #[test]
    fn first_fit_accounting_is_exact() {
        let mut b = BuddyAllocator::new(256);
        let r1 = b.alloc_frames_first_fit(100, 1).unwrap();
        assert_eq!(b.free_frames_count(), 156);
        let r2 = b.alloc_frames_first_fit(156, 1).unwrap();
        assert_eq!(b.free_frames_count(), 0);
        assert!(b.alloc_frames_first_fit(1, 1).is_err());
        b.free_frames(r1);
        b.free_frames(r2);
        assert_eq!(b.stats().largest_free_block, 256);
        assert_eq!(b.stats().free_block_count, 1);
    }

    #[test]
    fn alloc_specific_frame_claims_and_respects_busy() {
        let mut b = BuddyAllocator::new(64);
        assert!(b.alloc_specific_frame(37), "free frame claimable");
        assert_eq!(b.free_frames_count(), 63);
        assert!(!b.alloc_specific_frame(37), "already allocated");
        // Neighbours are still allocatable, and 37 is skipped.
        let mut got = Vec::new();
        for _ in 0..63 {
            got.push(b.alloc_frames(1).unwrap().start);
        }
        assert!(!got.contains(&37));
        assert!(b.alloc_frames(1).is_err());
        // Free 37 and everything merges back.
        b.free_frames(FrameRange {
            start: 37,
            count: 1,
        });
        for f in got {
            b.free_frames(FrameRange { start: f, count: 1 });
        }
        assert_eq!(b.stats().largest_free_block, 64);
    }

    #[test]
    fn alloc_specific_frame_out_of_range() {
        let mut b = BuddyAllocator::new(16);
        assert!(!b.alloc_specific_frame(16));
        assert!(!b.alloc_specific_frame(u64::MAX));
    }

    #[test]
    fn deterministic_lowest_first() {
        let mut a = BuddyAllocator::new(256);
        let mut b = BuddyAllocator::new(256);
        for n in [3u64, 9, 1, 30, 2] {
            assert_eq!(a.alloc_frames(n).unwrap(), b.alloc_frames(n).unwrap());
        }
    }

    #[test]
    fn free_runs_coalesce_across_block_boundaries() {
        let mut b = BuddyAllocator::new(64);
        assert_eq!(
            b.free_runs(),
            vec![FrameRange {
                start: 0,
                count: 64
            }]
        );
        // Allocate everything as singles, then free a run crossing buddy
        // boundaries plus one isolated frame.
        let all: Vec<_> = (0..64).map(|_| b.alloc_frames(1).unwrap()).collect();
        for r in &all[3..13] {
            b.free_frames(*r);
        }
        b.free_frames(all[20]);
        let runs = b.free_runs();
        assert_eq!(
            runs,
            vec![
                FrameRange {
                    start: 3,
                    count: 10
                },
                FrameRange {
                    start: 20,
                    count: 1
                },
            ]
        );
        let hist = b.free_span_histogram();
        assert_eq!(hist.runs, 2);
        assert_eq!(hist.largest_run, 10);
        // A 10-frame run lands in bucket 3 (8..16), the single in bucket 0.
        assert_eq!(hist.buckets[3], 1);
        assert_eq!(hist.buckets[0], 1);
        assert_eq!(hist.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn histogram_bucket_count_is_machine_determined() {
        let a = BuddyAllocator::new(1024);
        let b = BuddyAllocator::new(1024);
        assert_eq!(a.free_span_histogram(), b.free_span_histogram());
        assert_eq!(a.free_span_histogram().buckets.len(), 11);
    }

    /// Every structural invariant the allocator promises, checked against
    /// the caller's view of live allocations:
    /// free-list blocks in range / aligned / non-overlapping, free-frame
    /// conservation, and disjointness of free space from live allocations.
    fn check_invariants(b: &BuddyAllocator, live: &[FrameRange]) {
        let mut blocks: Vec<(u64, u64)> = Vec::new();
        for (order, list) in b.free_lists.iter().enumerate() {
            for &start in list {
                assert!(
                    start.is_multiple_of(1u64 << order),
                    "free block {start} misaligned for order {order}"
                );
                blocks.push((start, 1u64 << order));
            }
        }
        blocks.sort_unstable();
        let mut free_total = 0u64;
        let mut prev_end = 0u64;
        for &(start, len) in &blocks {
            assert!(
                start >= prev_end,
                "overlapping free blocks at {start} (previous ends at {prev_end})"
            );
            prev_end = start + len;
            assert!(prev_end <= b.total_frames(), "free block escapes memory");
            free_total += len;
        }
        assert_eq!(free_total, b.free_frames_count(), "free-frame conservation");
        let live_total: u64 = live.iter().map(|r| r.count).sum();
        assert_eq!(
            free_total + live_total,
            b.total_frames(),
            "live + free must cover the machine"
        );
        for r in live {
            assert!(b.is_allocated(*r), "live range {r:?} not tracked");
            for &(start, len) in &blocks {
                assert!(
                    start + len <= r.start || start >= r.end(),
                    "free block [{start}, {}) overlaps live {r:?}",
                    start + len
                );
            }
        }
    }

    /// Satellite regression: 10k mixed alloc / first-fit / whole-free /
    /// subrange-free operations from a fixed seed, with the invariants of
    /// `check_invariants` holding throughout. Buddy-merge *completeness*
    /// is deliberately not asserted (the eager tail trim and subrange
    /// frees leave adjacent same-order blocks unmerged by design); the
    /// final state instead must coalesce into one full-machine *run*.
    #[test]
    fn randomized_churn_preserves_invariants() {
        let mut rng = DetRng::new(0xB0DD1);
        let total = 4096u64;
        let mut b = BuddyAllocator::new(total);
        let mut live: Vec<FrameRange> = Vec::new();
        for op in 0..10_000u32 {
            match rng.below(5) {
                0 | 1 => {
                    let count = rng.range(1, 64);
                    if let Ok(r) = b.alloc_frames(count) {
                        live.push(r);
                    }
                }
                2 => {
                    let count = rng.range(1, 96);
                    let align = 1u64 << rng.below(4);
                    if let Ok(r) = b.alloc_frames_first_fit(count, align) {
                        live.push(r);
                    }
                }
                3 => {
                    if !live.is_empty() {
                        let i = rng.below(live.len() as u64) as usize;
                        let r = live.swap_remove(i);
                        b.free_frames(r);
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let i = rng.below(live.len() as u64) as usize;
                        let r = live.swap_remove(i);
                        let off = rng.below(r.count);
                        let len = rng.range(1, r.count - off + 1);
                        b.free_subrange(FrameRange {
                            start: r.start + off,
                            count: len,
                        });
                        if off > 0 {
                            live.push(FrameRange {
                                start: r.start,
                                count: off,
                            });
                        }
                        if off + len < r.count {
                            live.push(FrameRange {
                                start: r.start + off + len,
                                count: r.count - off - len,
                            });
                        }
                    }
                }
            }
            if op % 256 == 0 {
                check_invariants(&b, &live);
            }
        }
        check_invariants(&b, &live);
        for r in live.drain(..) {
            b.free_frames(r);
        }
        check_invariants(&b, &live);
        assert_eq!(b.free_frames_count(), total);
        assert_eq!(
            b.free_runs(),
            vec![FrameRange {
                start: 0,
                count: total
            }]
        );
        // The coalesced view makes the whole machine allocatable again
        // even if buddy merging left seams.
        let all = b.alloc_frames_first_fit(total, 1).unwrap();
        assert_eq!(b.free_frames_count(), 0);
        b.free_frames(all);
    }
}
