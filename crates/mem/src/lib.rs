//! Physical-memory substrate: a Linux-style buddy allocator with the eager
//! contiguous allocation DVM needs, a sparse byte-addressable physical
//! memory, and a DRAM timing/energy event model.
//!
//! The paper's identity mapping (§4.3.1) relies on *eager contiguous
//! allocation*: physical frames are reserved at allocation time as one
//! contiguous power-of-two block, and frames beyond the requested size are
//! returned to the allocator immediately. [`BuddyAllocator::alloc_frames`]
//! implements exactly that policy.
//!
//! # Examples
//!
//! ```
//! use dvm_mem::{BuddyAllocator, PhysMem};
//! use dvm_types::PhysAddr;
//!
//! // A 1 MiB machine: 256 frames.
//! let mut buddy = BuddyAllocator::new(256);
//! let range = buddy.alloc_frames(3).unwrap();
//! assert_eq!(range.count, 3);
//! buddy.free_frames(range);
//! assert_eq!(buddy.free_frames_count(), 256);
//!
//! let mut mem = PhysMem::new(256);
//! mem.write_u64(PhysAddr::new(0x100), 0xdead_beef);
//! assert_eq!(mem.read_u64(PhysAddr::new(0x100)), 0xdead_beef);
//! ```

pub mod buddy;
pub mod dram;
pub mod physmem;

pub use buddy::{BuddyAllocator, BuddyStats, FrameRange, FreeSpanHistogram};
pub use dram::{Dram, DramClass, DramConfig, DramEvent};
pub use physmem::PhysMem;

use dvm_types::PAGE_SIZE;

/// Configuration for a simulated machine's memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Total physical memory in bytes (must be a multiple of 4 KiB).
    pub mem_bytes: u64,
}

impl Default for MachineConfig {
    /// 32 GiB, matching Table 2 of the paper.
    fn default() -> Self {
        Self {
            mem_bytes: 32 << 30,
        }
    }
}

/// A simulated machine's physical memory: allocator plus backing store.
///
/// Owns the two pieces every higher layer needs together; the fields are
/// public because the OS, page-table and MMU crates borrow them in
/// different combinations (split borrows).
#[derive(Debug)]
pub struct Machine {
    /// Frame allocator.
    pub allocator: BuddyAllocator,
    /// Byte-addressable backing store.
    pub mem: PhysMem,
}

impl Machine {
    /// Build a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `mem_bytes` is zero or not page-aligned.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.mem_bytes > 0, "machine must have memory");
        assert!(
            config.mem_bytes.is_multiple_of(PAGE_SIZE),
            "memory size must be page aligned"
        );
        let frames = config.mem_bytes / PAGE_SIZE;
        Self {
            allocator: BuddyAllocator::new(frames),
            mem: PhysMem::new(frames),
        }
    }

    /// Total physical frames.
    pub fn total_frames(&self) -> u64 {
        self.mem.total_frames()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_construction() {
        let m = Machine::new(MachineConfig { mem_bytes: 1 << 20 });
        assert_eq!(m.total_frames(), 256);
        assert_eq!(m.allocator.free_frames_count(), 256);
    }

    #[test]
    fn default_config_is_32_gib() {
        assert_eq!(MachineConfig::default().mem_bytes, 32 << 30);
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn rejects_unaligned_size() {
        Machine::new(MachineConfig { mem_bytes: 4097 });
    }
}
