//! The CPU-side MMU model for cDVM (paper §7): a two-level TLB hierarchy
//! matching the Xeon E5-2430 the paper measures (64-entry L1 DTLB,
//! 512-entry L2 DTLB), backed by a page-walk cache — or, under cDVM, the
//! Access Validation Cache walking Permission-Entry tables.

use dvm_energy::{EnergyAccount, EnergyParams, MmEvent};
use dvm_mem::PhysMem;
use dvm_mmu::{Associativity, PtCache, PtCacheConfig, PtcLookup, Tlb, TlbConfig, TlbEntry};
use dvm_pagetable::PageTable;
use dvm_sim::{Counter, Cycles, RatioStat};
use dvm_types::{PageSize, VirtAddr};

/// CPU memory-management scheme (paper Figure 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuScheme {
    /// Conventional VM with 4 KiB pages.
    Base4K,
    /// Transparent huge pages (2 MiB).
    Thp,
    /// cDVM: identity-mapped segments, PE page tables, AVC-backed walks.
    Cdvm,
}

impl CpuScheme {
    /// All schemes in the figure's order.
    pub const ALL: [CpuScheme; 3] = [CpuScheme::Base4K, CpuScheme::Thp, CpuScheme::Cdvm];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CpuScheme::Base4K => "4K",
            CpuScheme::Thp => "THP",
            CpuScheme::Cdvm => "cDVM",
        }
    }

    /// TLB entry granularity for the scheme (cDVM caches per-4K
    /// validations in the existing TLBs).
    pub fn tlb_page(&self) -> PageSize {
        match self {
            CpuScheme::Thp => PageSize::Size2M,
            _ => PageSize::Size4K,
        }
    }
}

impl core::fmt::Display for CpuScheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// CPU MMU timing parameters (Xeon-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuMmuConfig {
    /// L1 DTLB entries (4-way).
    pub l1_entries: u32,
    /// L2 DTLB entries (8-way).
    pub l2_entries: u32,
    /// Cycles per PWC/AVC probe during a walk.
    pub ptc_latency: Cycles,
    /// Cycles for a page-table-entry fetch that misses the PWC/AVC. On a
    /// real CPU these mostly hit the data-cache hierarchy, so this is a
    /// cache-mix latency, not raw DRAM.
    pub walker_mem_cycles: Cycles,
    /// cDVM store optimization (paper §7.1): under the write-allocate
    /// policy, the cacheline fetch a store needs anyway is speculatively
    /// issued to the predicted PA==VA in parallel with validation, hiding
    /// up to this many cycles of a store's walk stall. `0` disables it
    /// (the default, matching the paper's evaluated configuration — its
    /// Figure 10 methodology notes "we do not implement preloads").
    pub store_fetch_overlap_cycles: Cycles,
}

impl Default for CpuMmuConfig {
    fn default() -> Self {
        Self {
            l1_entries: 64,
            l2_entries: 512,
            ptc_latency: 2,
            walker_mem_cycles: 50,
            store_fetch_overlap_cycles: 0,
        }
    }
}

/// Per-run MMU statistics.
#[derive(Debug, Clone)]
pub struct CpuMmuStats {
    /// L1 DTLB hit/miss.
    pub l1: RatioStat,
    /// L2 DTLB hit/miss (probed only on L1 misses).
    pub l2: RatioStat,
    /// Walks performed.
    pub walks: Counter,
    /// Walker memory references.
    pub walk_mem_refs: Counter,
}

/// The CPU's translation machinery for one scheme.
#[derive(Debug)]
pub struct CpuMmu {
    scheme: CpuScheme,
    l1: Tlb,
    l2: Tlb,
    ptc: PtCache,
    /// `(ptc_latency, walker_mem_cycles, store_fetch_overlap_cycles)`.
    config_latencies: (Cycles, Cycles, Cycles),
    /// Energy account (kept for symmetry with the accelerator; Figure 10
    /// is time-only).
    pub energy: EnergyAccount,
    /// Statistics.
    pub stats: CpuMmuStats,
}

impl CpuMmu {
    /// Build the MMU for a scheme.
    pub fn new(scheme: CpuScheme, config: CpuMmuConfig) -> Self {
        let page = scheme.tlb_page();
        let ptc = match scheme {
            CpuScheme::Cdvm => PtCacheConfig::paper_avc(),
            _ => PtCacheConfig::paper_pwc(),
        };
        Self {
            scheme,
            l1: Tlb::new(TlbConfig {
                entries: config.l1_entries,
                assoc: Associativity::SetAssociative { ways: 4 },
                page_size: page,
            }),
            l2: Tlb::new(TlbConfig {
                entries: config.l2_entries,
                assoc: Associativity::SetAssociative { ways: 8 },
                page_size: page,
            }),
            ptc: PtCache::new(ptc),
            energy: EnergyAccount::new(EnergyParams::default()),
            stats: CpuMmuStats {
                l1: RatioStat::new("l1_dtlb"),
                l2: RatioStat::new("l2_dtlb"),
                walks: Counter::new("walks"),
                walk_mem_refs: Counter::new("walk_mem_refs"),
            },
            config_latencies: (
                config.ptc_latency,
                config.walker_mem_cycles,
                config.store_fetch_overlap_cycles,
            ),
        }
    }

    /// The scheme being modelled.
    pub fn scheme(&self) -> CpuScheme {
        self.scheme
    }

    /// Page-walk cycles charged to one access. TLB lookups themselves are
    /// pipelined and present in every scheme (including the paper's ideal
    /// baseline, which subtracts only *walk* cycles — §7.3), so hits at
    /// either level cost zero here and a walk is charged exactly its
    /// PWC/AVC-probe and PTE-fetch time.
    ///
    /// # Panics
    ///
    /// Panics if the address is unmapped — CPU workload generators only
    /// touch their own segments.
    pub fn translate(&mut self, va: VirtAddr, pt: &PageTable, mem: &PhysMem) -> Cycles {
        self.translate_access(va, dvm_types::AccessKind::Read, pt, mem)
    }

    /// [`Self::translate`] with the access kind: under cDVM with the §7.1
    /// store optimization enabled, a store's walk stall is overlapped with
    /// the write-allocate cacheline fetch (speculative, to PA==VA) and
    /// only the excess is charged.
    ///
    /// # Panics
    ///
    /// Panics if the address is unmapped — CPU workload generators only
    /// touch their own segments.
    pub fn translate_access(
        &mut self,
        va: VirtAddr,
        kind: dvm_types::AccessKind,
        pt: &PageTable,
        mem: &PhysMem,
    ) -> Cycles {
        let (ptc_latency, walker_mem, store_overlap) = self.config_latencies;
        if self.l1.lookup(va).is_some() {
            self.stats.l1.hit();
            return 0;
        }
        self.stats.l1.miss();
        if let Some(entry) = self.l2.lookup(va) {
            self.stats.l2.hit();
            self.l1.insert(entry);
            return 0;
        }
        self.stats.l2.miss();
        // Walk.
        self.stats.walks.inc();
        let walk = pt.walk(mem, va);
        let mut cost = 0;
        for step in walk.steps() {
            match self.ptc.access(step.pte_pa, step.level) {
                PtcLookup::Hit => {
                    cost += ptc_latency;
                    self.energy.record(MmEvent::PtcLookup);
                }
                PtcLookup::Miss => {
                    cost += ptc_latency + walker_mem;
                    self.energy.record(MmEvent::PtcLookup);
                    self.energy.record(MmEvent::WalkerDram);
                    self.stats.walk_mem_refs.inc();
                }
                PtcLookup::Bypass => {
                    cost += walker_mem;
                    self.energy.record(MmEvent::WalkerDram);
                    self.stats.walk_mem_refs.inc();
                }
            }
        }
        let page = self.scheme.tlb_page();
        let resolved = walk
            .resolve(va)
            .unwrap_or_else(|| panic!("CPU workload touched unmapped {va}"));
        let entry = TlbEntry {
            vpn: va.vpn(page),
            pfn: resolved.0.raw() >> page.shift(),
            perms: resolved.1,
        };
        self.l2.insert(entry);
        self.l1.insert(entry);
        if kind == dvm_types::AccessKind::Write
            && self.scheme == CpuScheme::Cdvm
            && resolved.0.raw() == va.raw()
        {
            // §7.1: the store's line fetch (to the correctly predicted
            // PA==VA) ran concurrently with the walk.
            cost = cost.saturating_sub(store_overlap);
        }
        cost
    }
}

// A small struct-field addendum kept out of the constructor body above for
// readability.
impl CpuMmu {
    /// Reset statistics between measurement phases.
    pub fn reset_stats(&mut self) {
        self.stats.l1.reset();
        self.stats.l2.reset();
        self.stats.walks.reset();
        self.stats.walk_mem_refs.reset();
        self.energy.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_mem::BuddyAllocator;
    use dvm_types::Permission;

    fn harness(scheme: CpuScheme) -> (PhysMem, PageTable, CpuMmu) {
        let mut mem = PhysMem::new(1 << 17);
        let mut alloc = BuddyAllocator::new(1 << 17);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        let base = VirtAddr::new(64 << 20);
        match scheme {
            CpuScheme::Cdvm => pt
                .map_identity_pe(&mut mem, &mut alloc, base, 32 << 20, Permission::ReadWrite)
                .unwrap(),
            CpuScheme::Thp => pt
                .map_identity_leaves(
                    &mut mem,
                    &mut alloc,
                    base,
                    32 << 20,
                    Permission::ReadWrite,
                    PageSize::Size2M,
                )
                .unwrap(),
            CpuScheme::Base4K => pt
                .map_identity_leaves(
                    &mut mem,
                    &mut alloc,
                    base,
                    32 << 20,
                    Permission::ReadWrite,
                    PageSize::Size4K,
                )
                .unwrap(),
        }
        (mem, pt, CpuMmu::new(scheme, CpuMmuConfig::default()))
    }

    #[test]
    fn hits_are_free_and_misses_cost() {
        let (mem, pt, mut mmu) = harness(CpuScheme::Base4K);
        let va = VirtAddr::new(64 << 20);
        let first = mmu.translate(va, &pt, &mem);
        let second = mmu.translate(va, &pt, &mem);
        assert!(first > 0, "cold access walks");
        assert_eq!(second, 0, "L1 hit is pipelined away");
        assert_eq!(mmu.stats.l1.hits(), 1);
    }

    #[test]
    fn l2_catches_l1_evictions() {
        let (mem, pt, mut mmu) = harness(CpuScheme::Base4K);
        // Touch 128 distinct pages: beyond the 64-entry L1, within L2.
        for i in 0..128u64 {
            mmu.translate(VirtAddr::new((64 << 20) + i * 4096), &pt, &mem);
        }
        mmu.reset_stats();
        for i in 0..128u64 {
            mmu.translate(VirtAddr::new((64 << 20) + i * 4096), &pt, &mem);
        }
        assert_eq!(mmu.stats.walks.get(), 0, "all within L2 reach");
        assert!(mmu.stats.l2.hits() > 0);
    }

    #[test]
    fn thp_has_larger_reach() {
        let (mem4, pt4, mut mmu4) = harness(CpuScheme::Base4K);
        let (mem2, pt2, mut mmu2) = harness(CpuScheme::Thp);
        // Stride through 16 MiB at 4 KiB steps.
        for i in 0..4096u64 {
            let va = VirtAddr::new((64 << 20) + i * 4096);
            mmu4.translate(va, &pt4, &mem4);
            mmu2.translate(va, &pt2, &mem2);
        }
        assert!(mmu2.stats.walks.get() < mmu4.stats.walks.get() / 10);
    }

    #[test]
    fn cdvm_walks_avoid_memory() {
        let (mem, pt, mut mmu) = harness(CpuScheme::Cdvm);
        // Touch far more pages than the TLBs hold: every access walks, but
        // PE walks should be serviced by the AVC with almost no DRAM.
        for i in 0..4096u64 {
            mmu.translate(VirtAddr::new((64 << 20) + i * 8192), &pt, &mem);
        }
        assert!(mmu.stats.walks.get() > 3000);
        assert!(
            mmu.stats.walk_mem_refs.get() < 16,
            "walker DRAM refs: {}",
            mmu.stats.walk_mem_refs.get()
        );
    }

    #[test]
    fn base4k_walks_hit_memory() {
        let (mem, pt, mut mmu) = harness(CpuScheme::Base4K);
        for i in 0..4096u64 {
            mmu.translate(VirtAddr::new((64 << 20) + i * 8192), &pt, &mem);
        }
        // Every 4K walk fetches at least the L1 PTE from memory.
        assert!(mmu.stats.walk_mem_refs.get() >= mmu.stats.walks.get());
    }
}

#[cfg(test)]
mod store_overlap_tests {
    use super::*;
    use dvm_mem::BuddyAllocator;
    use dvm_types::{AccessKind, Permission};

    fn cdvm_rig(overlap: Cycles) -> (PhysMem, PageTable, CpuMmu) {
        let mut mem = PhysMem::new(1 << 17);
        let mut alloc = BuddyAllocator::new(1 << 17);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        pt.map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(64 << 20),
            32 << 20,
            Permission::ReadWrite,
        )
        .unwrap();
        let mmu = CpuMmu::new(
            CpuScheme::Cdvm,
            CpuMmuConfig {
                store_fetch_overlap_cycles: overlap,
                ..CpuMmuConfig::default()
            },
        );
        (mem, pt, mmu)
    }

    #[test]
    fn store_overlap_hides_write_walk_stall() {
        let va = VirtAddr::new(64 << 20);
        let (mem, pt, mut base) = cdvm_rig(0);
        let (mem2, pt2, mut opt) = cdvm_rig(1_000);
        let cold_read = base.translate_access(va, AccessKind::Write, &pt, &mem);
        let cold_write_opt = opt.translate_access(va, AccessKind::Write, &pt2, &mem2);
        assert!(cold_read > 0, "cold walk has a cost");
        assert_eq!(cold_write_opt, 0, "store fetch hides the whole walk");
    }

    #[test]
    fn reads_are_unaffected_by_store_overlap() {
        let va = VirtAddr::new((64 << 20) + 0x2000);
        let (mem, pt, mut base) = cdvm_rig(0);
        let (mem2, pt2, mut opt) = cdvm_rig(1_000);
        assert_eq!(
            base.translate_access(va, AccessKind::Read, &pt, &mem),
            opt.translate_access(va, AccessKind::Read, &pt2, &mem2),
        );
    }
}
