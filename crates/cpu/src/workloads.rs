//! Synthetic CPU workload generators standing in for the paper's Figure 10
//! applications (mcf from SPEC CPU2006, BT/CG from NPB, canneal from
//! PARSEC, and XSBench).
//!
//! We cannot run the real binaries inside the simulator, and the paper's
//! own numbers come from hardware counters plus an analytical model — the
//! part that matters for reproduction is the *memory access pattern* each
//! application presents to the TLB hierarchy. Each generator is a
//! two-component mixture of a streaming (sequential) component and a
//! random component over a configurable hot region, with the mixture and
//! footprints chosen from the applications' published characterizations:
//!
//! | workload | footprint | pattern |
//! |---|---|---|
//! | mcf | ~1.7 GiB | pointer chasing over the whole arc network |
//! | BT | ~0.3 GiB | block-tridiagonal sweeps: overwhelmingly streaming |
//! | CG | ~0.9 GiB | sparse mat-vec: streaming matrix + random vector |
//! | canneal | ~0.9 GiB | random element swaps over the whole netlist |
//! | xsbench | ~5.6 GiB | random nuclide-grid lookups |
//!
//! Footprints are scaled by the caller (the model uses 1/4 scale by
//! default) — what matters is footprint relative to TLB reach, and all of
//! these dwarf even the 1 GiB reach of a 512-entry 2 MiB TLB except BT.

use dvm_sim::DetRng;
use dvm_types::VirtAddr;

/// One of the paper's CPU workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuWorkload {
    /// SPEC CPU2006 429.mcf.
    Mcf,
    /// NPB BT (block tridiagonal).
    Bt,
    /// NPB CG (conjugate gradient).
    Cg,
    /// PARSEC canneal.
    Canneal,
    /// XSBench.
    Xsbench,
}

/// Access-pattern profile of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuWorkloadProfile {
    /// Published data footprint in bytes (before scaling).
    pub footprint_bytes: u64,
    /// Fraction of accesses that are random (vs streaming).
    pub random_fraction: f64,
    /// Fraction of the footprint the random component targets (1.0 =
    /// whole footprint; smaller = a hot region, e.g. CG's dense vector).
    pub hot_fraction: f64,
    /// Average non-translation cycles per memory access (compute +
    /// cache-hierarchy mix), calibrated to the published 4K overheads.
    pub base_cycles_per_access: f64,
}

impl CpuWorkload {
    /// All workloads, in the paper's Figure 10 order.
    pub const ALL: [CpuWorkload; 5] = [
        CpuWorkload::Mcf,
        CpuWorkload::Bt,
        CpuWorkload::Cg,
        CpuWorkload::Canneal,
        CpuWorkload::Xsbench,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CpuWorkload::Mcf => "mcf",
            CpuWorkload::Bt => "bt",
            CpuWorkload::Cg => "cg",
            CpuWorkload::Canneal => "canneal",
            CpuWorkload::Xsbench => "xsbench",
        }
    }

    /// The workload's pattern profile (see module docs).
    pub fn profile(&self) -> CpuWorkloadProfile {
        match self {
            CpuWorkload::Mcf => CpuWorkloadProfile {
                footprint_bytes: 1_700 << 20,
                random_fraction: 0.95,
                hot_fraction: 1.0,
                base_cycles_per_access: 112.0,
            },
            CpuWorkload::Bt => CpuWorkloadProfile {
                footprint_bytes: 300 << 20,
                random_fraction: 0.03,
                hot_fraction: 1.0,
                base_cycles_per_access: 30.0,
            },
            CpuWorkload::Cg => CpuWorkloadProfile {
                footprint_bytes: 900 << 20,
                random_fraction: 0.20,
                hot_fraction: 0.05,
                base_cycles_per_access: 57.0,
            },
            CpuWorkload::Canneal => CpuWorkloadProfile {
                footprint_bytes: 1_400 << 20,
                random_fraction: 0.30,
                hot_fraction: 1.0,
                base_cycles_per_access: 101.0,
            },
            CpuWorkload::Xsbench => CpuWorkloadProfile {
                footprint_bytes: 5_600 << 20,
                random_fraction: 0.30,
                hot_fraction: 1.0,
                base_cycles_per_access: 107.0,
            },
        }
    }
}

impl core::fmt::Display for CpuWorkload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Streaming/random mixture generator over a mapped heap segment.
#[derive(Debug)]
pub struct AccessStream {
    base: VirtAddr,
    footprint: u64,
    hot_bytes: u64,
    random_fraction: f64,
    cursor: u64,
    rng: DetRng,
}

impl AccessStream {
    /// Create a stream over `[base, base+footprint)` with the workload's
    /// profile.
    ///
    /// # Panics
    ///
    /// Panics if the footprint is zero.
    pub fn new(profile: &CpuWorkloadProfile, base: VirtAddr, footprint: u64, seed: u64) -> Self {
        assert!(footprint > 0, "empty footprint");
        Self {
            base,
            footprint,
            hot_bytes: ((footprint as f64 * profile.hot_fraction) as u64).max(64),
            random_fraction: profile.random_fraction,
            cursor: 0,
            rng: DetRng::new(seed),
        }
    }

    /// Next virtual address (64-byte granularity, like a cache-line-level
    /// trace from BadgerTrap).
    pub fn next_va(&mut self) -> VirtAddr {
        if self.rng.chance(self.random_fraction) {
            let off = self.rng.below(self.hot_bytes / 64) * 64;
            self.base + off
        } else {
            let va = self.base + self.cursor;
            self.cursor = (self.cursor + 64) % self.footprint;
            va
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_sane() {
        for w in CpuWorkload::ALL {
            let p = w.profile();
            assert!(p.footprint_bytes > 100 << 20, "{w}");
            assert!((0.0..=1.0).contains(&p.random_fraction), "{w}");
            assert!((0.0..=1.0).contains(&p.hot_fraction), "{w}");
            assert!(p.base_cycles_per_access > 0.0, "{w}");
        }
    }

    #[test]
    fn mcf_is_more_random_than_bt() {
        assert!(CpuWorkload::Mcf.profile().random_fraction > 0.9);
        assert!(CpuWorkload::Bt.profile().random_fraction < 0.1);
    }

    #[test]
    fn stream_stays_in_bounds() {
        let p = CpuWorkload::Cg.profile();
        let base = VirtAddr::new(1 << 30);
        let footprint = 1 << 20;
        let mut s = AccessStream::new(&p, base, footprint, 3);
        for _ in 0..10_000 {
            let va = s.next_va();
            assert!(va >= base && va < base + footprint);
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let p = CpuWorkload::Mcf.profile();
        let base = VirtAddr::new(1 << 30);
        let mut a = AccessStream::new(&p, base, 1 << 20, 7);
        let mut b = AccessStream::new(&p, base, 1 << 20, 7);
        for _ in 0..1000 {
            assert_eq!(a.next_va(), b.next_va());
        }
    }

    #[test]
    fn hot_region_confines_random_component() {
        let p = CpuWorkloadProfile {
            footprint_bytes: 0,
            random_fraction: 1.0,
            hot_fraction: 0.01,
            base_cycles_per_access: 1.0,
        };
        let base = VirtAddr::new(1 << 30);
        let footprint = 100 << 20;
        let mut s = AccessStream::new(&p, base, footprint, 5);
        let hot_limit = base + footprint / 100 + 64;
        for _ in 0..10_000 {
            assert!(s.next_va() < hot_limit);
        }
    }
}
