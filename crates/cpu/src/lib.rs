//! cDVM: Devirtualized Memory for CPU cores (paper §7, Figure 10).
//!
//! Models a Xeon-like two-level TLB hierarchy, synthetic stand-ins for the
//! paper's CPU workloads (mcf, BT, CG, canneal, XSBench), and the
//! analytical overhead model comparing conventional 4 KiB paging,
//! transparent huge pages, and cDVM with Permission-Entry page tables and
//! an Access Validation Cache.
//!
//! # Examples
//!
//! ```
//! use dvm_cpu::{evaluate, CpuModelConfig, CpuScheme, CpuWorkload};
//!
//! # fn main() -> Result<(), dvm_types::DvmError> {
//! let config = CpuModelConfig {
//!     accesses: 50_000,
//!     footprint_div: 32,
//!     machine_bytes: 1 << 30,
//!     ..CpuModelConfig::default()
//! };
//! let report = evaluate(CpuWorkload::Mcf, CpuScheme::Cdvm, &config)?;
//! println!("mcf under cDVM: {:.1}% VM overhead", report.overhead_percent());
//! # Ok(())
//! # }
//! ```

pub mod mmu;
pub mod model;
pub mod workloads;

pub use mmu::{CpuMmu, CpuMmuConfig, CpuMmuStats, CpuScheme};
pub use model::{evaluate, evaluate_all, CpuModelConfig, CpuRunReport};
pub use workloads::{AccessStream, CpuWorkload, CpuWorkloadProfile};
