//! The cDVM analytical model (paper §7.3, Figure 10).
//!
//! The paper measures L2 TLB misses, page-walk cycles and total cycles on
//! hardware, instruments TLB misses with BadgerTrap to estimate AVC hit
//! rates, and applies "a simple analytical model to conservatively
//! estimate the VM overheads under cDVM, like past work". We reproduce the
//! same structure end to end in simulation:
//!
//! 1. run the workload's access stream through the scheme's MMU model
//!    (two-level TLB + PWC/AVC + page tables built by the scheme's OS
//!    flavour), accumulating translation cycles;
//! 2. charge each access its workload-calibrated base cost
//!    (compute + data-cache mix);
//! 3. report `overhead = translation_cycles / base_cycles` — the ideal
//!    baseline being the same run with translation removed, exactly as the
//!    paper's "runtime normalized to the ideal case".

use crate::mmu::{CpuMmu, CpuMmuConfig, CpuScheme};
use crate::workloads::{AccessStream, CpuWorkload};
use dvm_mem::MachineConfig;
use dvm_os::{MapFlavor, Os, OsConfig, VmaKind};
use dvm_types::{DvmError, PageSize, Permission};

/// Parameters of a Figure 10 evaluation run.
#[derive(Debug, Clone, Copy)]
pub struct CpuModelConfig {
    /// Footprint divisor (power of two): published footprints are scaled
    /// down by this. The default of 1 (full scale) costs almost nothing —
    /// the access streams are trace-only, so no data frames materialize.
    pub footprint_div: u64,
    /// Accesses simulated per run.
    pub accesses: u64,
    /// Simulated machine size in bytes.
    pub machine_bytes: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CpuModelConfig {
    fn default() -> Self {
        Self {
            // Full published footprints: the THP-vs-cDVM gap on mcf comes
            // precisely from 1.7 GiB exceeding the 1 GiB 2M-TLB reach.
            footprint_div: 1,
            accesses: 2_000_000,
            machine_bytes: 12 << 30,
            seed: 0xC0DE,
        }
    }
}

/// Result of one workload x scheme evaluation.
#[derive(Debug, Clone)]
pub struct CpuRunReport {
    /// Workload evaluated.
    pub workload: CpuWorkload,
    /// Scheme evaluated.
    pub scheme: CpuScheme,
    /// Base (translation-free) cycles.
    pub base_cycles: f64,
    /// Cycles spent translating.
    pub translation_cycles: f64,
    /// L1 DTLB miss rate.
    pub l1_miss_rate: f64,
    /// L2 DTLB miss rate (of L1 misses).
    pub l2_miss_rate: f64,
    /// Walker memory references per 1000 accesses.
    pub walk_refs_per_kilo_access: f64,
}

impl CpuRunReport {
    /// VM overhead relative to the ideal (translation-free) run, as a
    /// percentage — the paper's Figure 10 metric.
    pub fn overhead_percent(&self) -> f64 {
        100.0 * self.translation_cycles / self.base_cycles
    }
}

/// Evaluate one workload under one scheme.
///
/// # Errors
///
/// Propagates OS allocation failures.
pub fn evaluate(
    workload: CpuWorkload,
    scheme: CpuScheme,
    config: &CpuModelConfig,
) -> Result<CpuRunReport, DvmError> {
    let flavor = match scheme {
        CpuScheme::Base4K => MapFlavor::Paged(PageSize::Size4K),
        CpuScheme::Thp => MapFlavor::Paged(PageSize::Size2M),
        CpuScheme::Cdvm => MapFlavor::DvmPe,
    };
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: config.machine_bytes,
        },
        flavor,
        ..OsConfig::default()
    });
    let pid = os.spawn()?;
    let profile = workload.profile();
    let footprint = (profile.footprint_bytes / config.footprint_div).max(1 << 20);
    // cDVM identity-maps all segments (§7.2); the conventional schemes map
    // the same layout with uniform leaves. Code/stack exist for realism
    // but the data stream dominates, as in the paper's measurements.
    let heap = os.mmap_kind(pid, footprint, Permission::ReadWrite, VmaKind::Heap)?;
    let _code = os.mmap_kind(pid, 8 << 20, Permission::ReadExec, VmaKind::Code)?;
    let _stack = os.mmap_kind(pid, 8 << 20, Permission::ReadWrite, VmaKind::Stack)?;

    let mut mmu = CpuMmu::new(scheme, CpuMmuConfig::default());
    let pt = os.process(pid)?.page_table;
    let mut stream = AccessStream::new(&profile, heap, footprint, config.seed);

    let mut translation_cycles = 0u64;
    for _ in 0..config.accesses {
        let va = stream.next_va();
        translation_cycles += mmu.translate(va, &pt, &os.machine.mem);
    }

    let base_cycles = profile.base_cycles_per_access * config.accesses as f64;
    Ok(CpuRunReport {
        workload,
        scheme,
        base_cycles,
        translation_cycles: translation_cycles as f64,
        l1_miss_rate: mmu.stats.l1.miss_rate(),
        l2_miss_rate: mmu.stats.l2.miss_rate(),
        walk_refs_per_kilo_access: 1000.0 * mmu.stats.walk_mem_refs.get() as f64
            / config.accesses as f64,
    })
}

/// Evaluate every workload under every scheme (the full Figure 10).
///
/// # Errors
///
/// Propagates the first failing run.
pub fn evaluate_all(config: &CpuModelConfig) -> Result<Vec<CpuRunReport>, DvmError> {
    let mut out = Vec::new();
    for workload in CpuWorkload::ALL {
        for scheme in CpuScheme::ALL {
            out.push(evaluate(workload, scheme, config)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CpuModelConfig {
        CpuModelConfig {
            footprint_div: 16,
            accesses: 200_000,
            machine_bytes: 2 << 30,
            ..CpuModelConfig::default()
        }
    }

    #[test]
    fn cdvm_beats_thp_beats_4k_on_mcf() {
        // Full-scale footprint: mcf's 1.7 GiB exceeding the 1 GiB 2M-TLB
        // reach is exactly what separates THP from cDVM here.
        let cfg = CpuModelConfig {
            accesses: 300_000,
            ..CpuModelConfig::default()
        };
        let base = evaluate(CpuWorkload::Mcf, CpuScheme::Base4K, &cfg).unwrap();
        let thp = evaluate(CpuWorkload::Mcf, CpuScheme::Thp, &cfg).unwrap();
        let cdvm = evaluate(CpuWorkload::Mcf, CpuScheme::Cdvm, &cfg).unwrap();
        assert!(
            base.overhead_percent() > thp.overhead_percent(),
            "4K {:.1}% vs THP {:.1}%",
            base.overhead_percent(),
            thp.overhead_percent()
        );
        assert!(
            thp.overhead_percent() > cdvm.overhead_percent(),
            "THP {:.1}% vs cDVM {:.1}%",
            thp.overhead_percent(),
            cdvm.overhead_percent()
        );
    }

    #[test]
    fn mcf_is_the_worst_4k_workload() {
        let cfg = quick();
        let mcf = evaluate(CpuWorkload::Mcf, CpuScheme::Base4K, &cfg)
            .unwrap()
            .overhead_percent();
        for w in [CpuWorkload::Bt, CpuWorkload::Cg] {
            let o = evaluate(w, CpuScheme::Base4K, &cfg)
                .unwrap()
                .overhead_percent();
            assert!(mcf > o, "mcf {mcf:.1}% vs {w} {o:.1}%");
        }
    }

    #[test]
    fn bt_streaming_has_low_overhead() {
        let cfg = quick();
        let bt = evaluate(CpuWorkload::Bt, CpuScheme::Base4K, &cfg).unwrap();
        assert!(
            bt.overhead_percent() < 30.0,
            "bt overhead {:.1}%",
            bt.overhead_percent()
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let cfg = quick();
        let a = evaluate(CpuWorkload::Canneal, CpuScheme::Cdvm, &cfg).unwrap();
        let b = evaluate(CpuWorkload::Canneal, CpuScheme::Cdvm, &cfg).unwrap();
        assert_eq!(a.translation_cycles, b.translation_cycles);
        assert_eq!(a.l1_miss_rate, b.l1_miss_rate);
    }
}
