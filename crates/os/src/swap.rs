//! Swapping for identity-mapped memory — the reclamation path the paper
//! sketches but leaves unimplemented (§4.3.2): "to reclaim memory, the OS
//! could convert permission entries to standard PTEs and swap out memory
//! (not implemented)".
//!
//! [`Os::swap_out`] demotes the covering Permission Entry to regular PTEs
//! (the conversion the paper describes), moves page contents to a backing
//! store, marks the pages not-present and frees their frames.
//! [`Os::swap_in`] faults pages back in: to their *original* frame when it
//! is still free — re-establishing VA==PA — or to any free frame
//! otherwise, in which case the page continues life demand-paged (exactly
//! the graceful degradation DVM promises).

use crate::os::Os;
use crate::process::{Backing, Pid};
use dvm_types::{align_down, DvmError, PhysAddr, VirtAddr, PAGE_SIZE};
use std::collections::HashMap;

/// Backing store for swapped-out pages: `(pid, page-aligned VA) -> data`.
#[derive(Debug, Default)]
pub struct SwapStore {
    slots: HashMap<(Pid, u64), Box<[u8]>>,
}

impl SwapStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pages currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` if no pages are swapped out.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// `true` if the page at `va` of `pid` is swapped out.
    pub fn contains(&self, pid: Pid, va: VirtAddr) -> bool {
        self.slots
            .contains_key(&(pid, align_down(va.raw(), PAGE_SIZE)))
    }
}

impl Os {
    /// Swap out one page of an identity- or demand-mapped VMA: page-table
    /// entry cleared (demoting PEs as needed), contents preserved in
    /// `store`, frame returned to the allocator.
    ///
    /// # Errors
    ///
    /// [`DvmError::InvalidArgument`] if the page is not mapped in a VMA of
    /// `pid` or is already swapped out; [`DvmError::NoSuchProcess`] for an
    /// unknown pid; [`DvmError::OutOfMemory`] if PE demotion cannot get a
    /// table frame.
    pub fn swap_out(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        store: &mut SwapStore,
    ) -> Result<(), DvmError> {
        let page_va = VirtAddr::new(align_down(va.raw(), PAGE_SIZE));
        if store.contains(pid, page_va) {
            return Err(DvmError::InvalidArgument("page already swapped out"));
        }
        let proc = self.process(pid)?;
        let vma = proc
            .vma_at(page_va)
            .ok_or(DvmError::InvalidArgument("swap_out of unmapped page"))?;
        let page_idx = (page_va - vma.start) / PAGE_SIZE;
        let frame = vma.frame_of_page(page_idx);

        // Preserve contents.
        let mut data = vec![0u8; PAGE_SIZE as usize].into_boxed_slice();
        self.machine
            .mem
            .read_bytes(PhysAddr::from_frame(frame), &mut data);
        store.slots.insert((pid, page_va.raw()), data);

        // Convert the PE (or leaf) to a not-present entry. (Direct field
        // access keeps `self.machine` borrowable alongside the process.)
        let proc = self
            .processes
            .get_mut(&pid)
            .expect("existence checked above");
        proc.page_table.unmap_region(
            &mut self.machine.mem,
            &mut self.machine.allocator,
            page_va,
            PAGE_SIZE,
        )?;
        if let Some(vma) = proc.vma_at_mut(page_va) {
            vma.cow_pages.remove(&page_idx);
            vma.swapped.insert(page_idx);
        }
        if let Some(bitmap) = &self.bitmap {
            bitmap.set_bytes(
                &mut self.machine.mem,
                page_va,
                PAGE_SIZE,
                dvm_types::Permission::None,
            );
        }
        // Free the frame for reuse.
        self.release_frame_for_swap(frame);
        self.stats.swapped_out += 1;
        Ok(())
    }

    /// Swap a page back in, preferring its original (identity) frame.
    /// Returns `true` if the page is identity mapped again, `false` if it
    /// came back demand-paged at a different frame.
    ///
    /// # Errors
    ///
    /// [`DvmError::InvalidArgument`] if the page is not swapped out;
    /// [`DvmError::OutOfMemory`] if no frame is available at all.
    pub fn swap_in(
        &mut self,
        pid: Pid,
        va: VirtAddr,
        store: &mut SwapStore,
    ) -> Result<bool, DvmError> {
        let page_va = VirtAddr::new(align_down(va.raw(), PAGE_SIZE));
        let data = store
            .slots
            .remove(&(pid, page_va.raw()))
            .ok_or(DvmError::InvalidArgument("page is not swapped out"))?;
        let proc = self.process(pid)?;
        let vma = proc
            .vma_at(page_va)
            .ok_or(DvmError::InvalidArgument("VMA vanished while swapped"))?;
        let vma_perms = vma.perms;
        let page_idx = (page_va - vma.start) / PAGE_SIZE;
        let identity_frame = match &vma.backing {
            Backing::Identity(range) => Some(range.start + page_idx),
            Backing::Paged(_) => None,
        };

        // Try to reclaim the identity frame; otherwise take any frame.
        let (frame, identity) = match identity_frame {
            Some(f) if self.try_claim_specific_frame(f) => (f, true),
            _ => (self.machine.allocator.alloc_frame()?, false),
        };
        self.machine
            .mem
            .write_bytes(PhysAddr::from_frame(frame), &data);

        let proc = self
            .processes
            .get_mut(&pid)
            .expect("existence checked above");
        proc.page_table.remap_page(
            &mut self.machine.mem,
            &mut self.machine.allocator,
            page_va,
            PhysAddr::from_frame(frame),
            vma_perms,
        )?;
        if let Some(vma) = proc.vma_at_mut(page_va) {
            vma.swapped.remove(&page_idx);
        }
        if identity {
            if let Some(bitmap) = &self.bitmap {
                bitmap.set_bytes(&mut self.machine.mem, page_va, PAGE_SIZE, vma_perms);
            }
        } else {
            // The page now lives at a non-identity frame: record it as a
            // private override so teardown frees the right frame.
            if let Some(vma) = proc.vma_at_mut(page_va) {
                vma.cow_pages.insert(page_idx, frame);
            }
        }
        self.stats.swapped_in += 1;
        if identity {
            self.stats.swap_reidentified += 1;
        }
        Ok(identity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::OsConfig;
    use dvm_mem::MachineConfig;
    use dvm_types::Permission;

    fn small_os() -> Os {
        Os::new(OsConfig {
            machine: MachineConfig {
                mem_bytes: 64 << 20,
            },
            ..OsConfig::default()
        })
    }

    #[test]
    fn swap_roundtrip_restores_identity_and_data() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let buf = os.mmap(pid, 256 << 10, Permission::ReadWrite).unwrap();
        os.write_u64(pid, buf, 0xABCD).unwrap();

        let mut store = SwapStore::new();
        let free_before = os.machine.allocator.free_frames_count();
        os.swap_out(pid, buf, &mut store).unwrap();
        // The data frame was freed, but demoting the covering PE to 4 KiB
        // leaves consumed one table frame: net zero.
        assert_eq!(os.machine.allocator.free_frames_count(), free_before);
        assert!(os.translate(pid, buf).is_none(), "page is gone");
        assert!(store.contains(pid, buf));

        // Nothing stole the frame: swap-in re-identifies.
        let identity = os.swap_in(pid, buf, &mut store).unwrap();
        assert!(identity, "original frame was free: VA==PA restored");
        assert_eq!(os.translate(pid, buf).unwrap().0.raw(), buf.raw());
        assert_eq!(os.read_u64(pid, buf).unwrap(), 0xABCD);
        assert!(store.is_empty());
    }

    #[test]
    fn stolen_frame_degrades_to_demand_paging() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let buf = os.mmap(pid, 128 << 10, Permission::ReadWrite).unwrap();
        os.write_u64(pid, buf, 7).unwrap();

        let mut store = SwapStore::new();
        os.swap_out(pid, buf, &mut store).unwrap();
        // Memory pressure: something else grabs exactly the freed frame.
        let stolen = buf.raw() / dvm_types::PAGE_SIZE;
        assert!(os.machine.allocator.alloc_specific_frame(stolen));

        let identity = os.swap_in(pid, buf, &mut store).unwrap();
        assert!(!identity, "original frame taken: page returns demand-paged");
        let (pa, _) = os.translate(pid, buf).unwrap();
        assert_ne!(pa.raw(), buf.raw());
        assert_eq!(os.read_u64(pid, buf).unwrap(), 7, "contents preserved");
        // Neighbouring pages of the VMA are still identity mapped.
        let (pa2, _) = os.translate(pid, buf + dvm_types::PAGE_SIZE).unwrap();
        assert_eq!(pa2.raw(), buf.raw() + dvm_types::PAGE_SIZE);
    }

    #[test]
    fn swap_out_unmapped_or_double_fails() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let mut store = SwapStore::new();
        assert!(os
            .swap_out(pid, VirtAddr::new(0x4000_0000), &mut store)
            .is_err());
        let buf = os.mmap(pid, 4 << 10, Permission::ReadWrite).unwrap();
        os.swap_out(pid, buf, &mut store).unwrap();
        assert!(os.swap_out(pid, buf, &mut store).is_err());
        assert!(os.swap_in(pid, buf + 0x1000, &mut store).is_err());
    }

    #[test]
    fn neighbours_survive_a_single_page_swap() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let buf = os.mmap(pid, 128 << 10, Permission::ReadWrite).unwrap();
        for i in 0..32u64 {
            os.write_u64(pid, buf + i * PAGE_SIZE, i).unwrap();
        }
        let mut store = SwapStore::new();
        let victim = buf + 5 * PAGE_SIZE;
        os.swap_out(pid, victim, &mut store).unwrap();
        for i in 0..32u64 {
            if i == 5 {
                assert!(os.translate(pid, buf + i * PAGE_SIZE).is_none());
            } else {
                assert_eq!(
                    os.read_u64(pid, buf + i * PAGE_SIZE).unwrap(),
                    i,
                    "page {i}"
                );
            }
        }
        os.swap_in(pid, victim, &mut store).unwrap();
        assert_eq!(os.read_u64(pid, victim).unwrap(), 5);
    }
}
