//! The OS memory-management model for Devirtualized Memory.
//!
//! This crate is the reproduction's stand-in for the paper's modified
//! Linux 4.10 kernel plus glibc malloc changes (§4.3): eager contiguous
//! allocation, identity mapping with a flexible address space, demand
//! paging fallback, fork with copy-on-write, an mmap-backed user
//! allocator, and the shbench fragmentation stress used in Table 4.
//!
//! # Examples
//!
//! ```
//! use dvm_mem::MachineConfig;
//! use dvm_os::{Os, OsConfig};
//! use dvm_types::{Permission, VirtAddr};
//!
//! # fn main() -> Result<(), dvm_types::DvmError> {
//! let mut os = Os::new(OsConfig {
//!     machine: MachineConfig { mem_bytes: 256 << 20 },
//!     ..OsConfig::default()
//! });
//! let pid = os.spawn()?;
//! let va = os.mmap(pid, 1 << 20, Permission::ReadWrite)?;
//! // Identity mapping: the virtual address equals the physical address.
//! let (pa, _) = os.translate(pid, va).expect("mapped");
//! assert_eq!(pa.raw(), va.raw());
//! os.write_u64(pid, va, 7)?;
//! assert_eq!(os.read_u64(pid, va)?, 7);
//! # Ok(())
//! # }
//! ```

pub mod churn;
pub mod malloc;
pub mod os;
pub mod process;
pub mod shbench;
pub mod swap;

pub use churn::{ChurnConfig, ChurnEpoch, ChurnResult};
pub use malloc::{Malloc, MMAP_THRESHOLD, POOL_BYTES};
pub use os::{MapFlavor, Os, OsConfig, OsStats};
pub use process::{Backing, Pid, Process, Vma, VmaKind};
pub use shbench::{ShbenchConfig, ShbenchResult};
pub use swap::SwapStore;
