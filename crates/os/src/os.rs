//! The OS memory-management model: eager contiguous identity mapping with
//! demand-paging fallback (paper Figure 7), fork with copy-on-write, and
//! functional CPU-side access to process memory.

use crate::process::{backing_granule, Backing, Pid, Process, Vma, VmaKind};
use dvm_mem::{FrameRange, Machine, MachineConfig};
use dvm_pagetable::{PageTable, PermBitmap};
use dvm_sim::DetRng;
use dvm_types::{
    align_up, AccessKind, DvmError, Fault, FaultKind, PageSize, Permission, PhysAddr, VirtAddr,
    PAGE_SIZE,
};
use std::collections::HashMap;

/// How the OS builds page tables for mapped regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapFlavor {
    /// DVM: Permission Entries at the highest possible level.
    DvmPe,
    /// Conventional: regular leaf PTEs of a uniform page size; identity
    /// allocations are padded/aligned to that size so every leaf can use it
    /// (the hugetlbfs-style invariant the conventional TLB models rely on).
    Paged(PageSize),
}

impl MapFlavor {
    fn leaf(self) -> Option<PageSize> {
        match self {
            MapFlavor::DvmPe => None,
            MapFlavor::Paged(ps) => Some(ps),
        }
    }

    /// Granule identity allocations of `len` bytes are padded to. Under
    /// DVM this is the PE slot span at the level that can cover the whole
    /// region: 128 KiB (L2 slots) normally, 64 MiB (L3 slots) for GiB-scale
    /// regions — padding to it means every heap region is coverable
    /// entirely by Permission Entries at the highest level, keeping the
    /// page table (and thus the AVC working set) tiny. The sub-slot
    /// alternative would degrade whole entries to 4 KiB leaf tables.
    /// Huge-page flavours pad to the page size (the hugetlbfs invariant).
    pub fn identity_granule(self, len: u64) -> u64 {
        match self {
            MapFlavor::DvmPe if len >= (1 << 30) => dvm_pagetable::slot_span(3),
            MapFlavor::DvmPe => dvm_pagetable::slot_span(2),
            MapFlavor::Paged(ps) => ps.bytes(),
        }
    }
}

/// OS construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct OsConfig {
    /// Machine memory.
    pub machine: MachineConfig,
    /// Page-table flavour.
    pub flavor: MapFlavor,
    /// Maintain the DVM-BM permission bitmap alongside page tables.
    pub maintain_bitmap: bool,
    /// Attempt identity mapping on `mmap` (disable for the demand-paging
    /// ablation).
    pub identity_enabled: bool,
    /// Seed for ASLR placement decisions.
    pub aslr_seed: u64,
}

impl Default for OsConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::default(),
            flavor: MapFlavor::DvmPe,
            maintain_bitmap: false,
            identity_enabled: true,
            aslr_seed: 0x5eed,
        }
    }
}

/// OS-level event counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OsStats {
    /// Successful identity mappings.
    pub identity_maps: u64,
    /// Bytes *requested* (page-aligned `mmap` length) that ended up
    /// identity mapped. Success-*rate* metrics (the churn time-series)
    /// must use this: comparing padded numerators against unpadded
    /// requests over-counts identity coverage by up to the padding
    /// granule per mapping.
    pub identity_bytes_requested: u64,
    /// Bytes actually reserved for identity mappings after padding to the
    /// flavour granule ([`MapFlavor::identity_granule`]). This is the
    /// physical-memory footprint; Table 4's percentage uses the padded
    /// VMA lengths (via [`Process::identity_bytes`]) for both numerator
    /// and denominator, so it stays consistent.
    pub identity_bytes_padded: u64,
    /// `mmap`s that fell back to demand paging.
    pub identity_fallbacks: u64,
    /// Bytes mapped by the fallback path (padded to the backing granule).
    pub demand_bytes: u64,
    /// Copy-on-write faults resolved.
    pub cow_faults: u64,
    /// CoW faults resolved by reusing a now-exclusive frame.
    pub cow_reuses: u64,
    /// Pages swapped out (extension; see `swap`).
    pub swapped_out: u64,
    /// Pages swapped back in.
    pub swapped_in: u64,
    /// Swap-ins that re-established identity mapping.
    pub swap_reidentified: u64,
}

/// The simulated operating system.
///
/// Owns the machine (allocator + physical memory), all processes and the
/// optional DVM-BM bitmap. See the crate docs for an end-to-end example.
#[derive(Debug)]
pub struct Os {
    /// The machine this OS manages. Public because the MMU models borrow
    /// `machine.mem` while the OS is otherwise immutable.
    pub machine: Machine,
    flavor: MapFlavor,
    identity_enabled: bool,
    /// DVM-BM permission bitmap (present when configured).
    pub bitmap: Option<PermBitmap>,
    pub(crate) processes: HashMap<Pid, Process>,
    next_pid: Pid,
    rng: DetRng,
    /// Reference counts for frames shared between processes; a frame not
    /// present here has exactly one owner.
    frame_refs: HashMap<u64, u32>,
    /// Event counters.
    pub stats: OsStats,
}

impl Os {
    /// Boot an OS on a fresh machine.
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid or (when
    /// `maintain_bitmap` is set) the bitmap allocation fails.
    pub fn new(config: OsConfig) -> Self {
        let mut machine = Machine::new(config.machine);
        let bitmap = config.maintain_bitmap.then(|| {
            PermBitmap::new(
                &mut machine.mem,
                &mut machine.allocator,
                config.machine.mem_bytes,
            )
            .expect("bitmap allocation at boot")
        });
        Self {
            machine,
            flavor: config.flavor,
            identity_enabled: config.identity_enabled,
            bitmap,
            processes: HashMap::new(),
            next_pid: 1,
            rng: DetRng::new(config.aslr_seed),
            frame_refs: HashMap::new(),
            stats: OsStats::default(),
        }
    }

    /// The configured page-table flavour.
    pub fn flavor(&self) -> MapFlavor {
        self.flavor
    }

    /// Create a new, empty process.
    ///
    /// # Errors
    ///
    /// [`DvmError::OutOfMemory`] if the root page table cannot be allocated.
    pub fn spawn(&mut self) -> Result<Pid, DvmError> {
        let pid = self.next_pid;
        self.next_pid += 1;
        let pt = PageTable::new(&mut self.machine.mem, &mut self.machine.allocator)?;
        // ASLR for the demand-paged area: 28 bits of entropy, page shifted,
        // parked above any possible physical address (§4.3.2).
        let demand_base = (1u64 << 46) + (self.rng.below(1 << 28) << 12);
        self.processes
            .insert(pid, Process::new(pid, pt, demand_base));
        Ok(pid)
    }

    /// Borrow a process.
    ///
    /// # Errors
    ///
    /// [`DvmError::NoSuchProcess`] if `pid` does not exist.
    pub fn process(&self, pid: Pid) -> Result<&Process, DvmError> {
        self.processes.get(&pid).ok_or(DvmError::NoSuchProcess(pid))
    }

    fn process_mut(&mut self, pid: Pid) -> Result<&mut Process, DvmError> {
        self.processes
            .get_mut(&pid)
            .ok_or(DvmError::NoSuchProcess(pid))
    }

    /// `mmap`: allocate and map `len` bytes with identity mapping when
    /// possible, demand paging otherwise (paper Figure 7). Returns the
    /// region's virtual address; whether it is identity mapped can be
    /// queried via [`Process::vma_at`].
    ///
    /// # Errors
    ///
    /// [`DvmError::OutOfMemory`] if even scattered 4 KiB allocation fails;
    /// [`DvmError::InvalidArgument`] for a zero-length request;
    /// [`DvmError::NoSuchProcess`] for an unknown pid.
    pub fn mmap(&mut self, pid: Pid, len: u64, perms: Permission) -> Result<VirtAddr, DvmError> {
        self.mmap_kind(pid, len, perms, VmaKind::Heap)
    }

    /// [`Os::mmap`] with an explicit segment kind (code/data/stack mapping
    /// for cDVM experiments).
    ///
    /// # Errors
    ///
    /// As for [`Os::mmap`].
    pub fn mmap_kind(
        &mut self,
        pid: Pid,
        len: u64,
        perms: Permission,
        kind: VmaKind,
    ) -> Result<VirtAddr, DvmError> {
        if len == 0 {
            return Err(DvmError::InvalidArgument("mmap of zero bytes"));
        }
        self.process(pid)?; // existence check
        let len = align_up(len, PAGE_SIZE);

        if self.identity_enabled {
            if let Some(va) = self.try_identity_map(pid, len, perms, kind)? {
                return Ok(va);
            }
            self.stats.identity_fallbacks += 1;
        }
        self.demand_map(pid, len, perms, kind)
    }

    /// The identity-mapping attempt: contiguous PM allocation, then
    /// `VA := PA` if that virtual range is free.
    fn try_identity_map(
        &mut self,
        pid: Pid,
        len: u64,
        perms: Permission,
        kind: VmaKind,
    ) -> Result<Option<VirtAddr>, DvmError> {
        let granule = self.flavor.identity_granule(len);
        let padded = align_up(len, granule);
        let frames = padded / PAGE_SIZE;
        // Fast path: one naturally aligned power-of-two buddy block.
        // Fallback: first-fit over coalesced free runs, which succeeds
        // whenever an aligned contiguous run exists at all.
        let range = match self.machine.allocator.alloc_frames(frames) {
            Ok(range) => range,
            Err(DvmError::OutOfMemory { .. }) => {
                match self
                    .machine
                    .allocator
                    .alloc_frames_first_fit(frames, granule / PAGE_SIZE)
                {
                    Ok(range) => range,
                    Err(DvmError::OutOfMemory { .. }) => return Ok(None),
                    Err(e) => return Err(e),
                }
            }
            Err(e) => return Err(e),
        };
        let va = PhysAddr::from_frame(range.start).to_identity_va();
        let proc = self.processes.get_mut(&pid).expect("checked");
        if !proc.range_is_free(va, padded) {
            self.machine.allocator.free_frames(range);
            return Ok(None);
        }
        let map_result = match self.flavor {
            MapFlavor::DvmPe => proc.page_table.map_identity_pe(
                &mut self.machine.mem,
                &mut self.machine.allocator,
                va,
                padded,
                perms,
            ),
            MapFlavor::Paged(ps) => proc.page_table.map_identity_leaves(
                &mut self.machine.mem,
                &mut self.machine.allocator,
                va,
                padded,
                perms,
                ps,
            ),
        };
        if let Err(e) = map_result {
            self.machine.allocator.free_frames(range);
            return match e {
                DvmError::OutOfMemory { .. } => Ok(None),
                other => Err(other),
            };
        }
        if let Some(bitmap) = &self.bitmap {
            bitmap.set_bytes(&mut self.machine.mem, va, padded, perms);
        }
        proc.vmas.insert(
            va.raw(),
            Vma {
                start: va,
                len: padded,
                perms,
                kind,
                backing: Backing::Identity(range),
                cow: false,
                cow_pages: HashMap::new(),
                swapped: std::collections::HashSet::new(),
            },
        );
        self.stats.identity_maps += 1;
        self.stats.identity_bytes_requested += len;
        self.stats.identity_bytes_padded += padded;
        Ok(Some(va))
    }

    /// Demand-paging fallback: high-area VA, scattered granule-sized
    /// physical chunks, non-identity leaf mappings.
    fn demand_map(
        &mut self,
        pid: Pid,
        len: u64,
        perms: Permission,
        kind: VmaKind,
    ) -> Result<VirtAddr, DvmError> {
        let granule = backing_granule(self.flavor.leaf());
        let padded = align_up(len, granule);
        let proc = self.processes.get_mut(&pid).expect("checked");
        proc.demand_cursor = align_up(proc.demand_cursor, granule);
        let va = proc.take_demand_range(padded);
        let chunk_frames = granule / PAGE_SIZE;
        let mut frames: Vec<u64> = Vec::with_capacity((padded / PAGE_SIZE) as usize);
        let mut chunks: Vec<FrameRange> = Vec::new();
        for _ in 0..(padded / granule) {
            match self.machine.allocator.alloc_frames(chunk_frames) {
                Ok(range) => {
                    frames.extend(range.start..range.end());
                    chunks.push(range);
                }
                Err(e) => {
                    for c in chunks {
                        self.machine.allocator.free_frames(c);
                    }
                    return Err(e);
                }
            }
        }
        let leaf = self.flavor.leaf().unwrap_or(PageSize::Size4K);
        for (i, chunk) in chunks.iter().enumerate() {
            proc.page_table.map_page(
                &mut self.machine.mem,
                &mut self.machine.allocator,
                va + i as u64 * granule,
                PhysAddr::from_frame(chunk.start),
                leaf,
                perms,
            )?;
        }
        proc.vmas.insert(
            va.raw(),
            Vma {
                start: va,
                len: padded,
                perms,
                kind,
                backing: Backing::Paged(frames),
                cow: false,
                cow_pages: HashMap::new(),
                swapped: std::collections::HashSet::new(),
            },
        );
        self.stats.demand_bytes += padded;
        Ok(va)
    }

    /// Unmap and free a whole region previously returned by [`Os::mmap`].
    ///
    /// # Errors
    ///
    /// [`DvmError::InvalidArgument`] if `va` is not the start of a VMA.
    pub fn munmap(&mut self, pid: Pid, va: VirtAddr) -> Result<(), DvmError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(DvmError::NoSuchProcess(pid))?;
        let vma = proc
            .vmas
            .remove(&va.raw())
            .ok_or(DvmError::InvalidArgument("munmap of unknown region"))?;
        proc.page_table.unmap_region(
            &mut self.machine.mem,
            &mut self.machine.allocator,
            vma.start,
            vma.len,
        )?;
        if let Some(bitmap) = &self.bitmap {
            bitmap.set_bytes(&mut self.machine.mem, vma.start, vma.len, Permission::None);
        }
        self.release_vma_frames(&vma);
        Ok(())
    }

    /// Change the logical permissions of a whole VMA.
    ///
    /// # Errors
    ///
    /// [`DvmError::InvalidArgument`] if `va` is not the start of a VMA.
    pub fn mprotect(&mut self, pid: Pid, va: VirtAddr, perms: Permission) -> Result<(), DvmError> {
        let proc = self
            .processes
            .get_mut(&pid)
            .ok_or(DvmError::NoSuchProcess(pid))?;
        let (start, len) = {
            let vma = proc
                .vmas
                .get_mut(&va.raw())
                .ok_or(DvmError::InvalidArgument("mprotect of unknown region"))?;
            vma.perms = perms;
            (vma.start, vma.len)
        };
        proc.page_table.protect_region(
            &mut self.machine.mem,
            &mut self.machine.allocator,
            start,
            len,
            perms,
        )?;
        if let Some(bitmap) = &self.bitmap {
            // Only identity pages are recorded in the bitmap; CoW overrides
            // were already cleared to 00 when they stopped being identity.
            let is_identity = self
                .processes
                .get(&pid)
                .and_then(|p| p.vma_at(start))
                .is_some_and(Vma::is_identity);
            if is_identity {
                bitmap.set_bytes(&mut self.machine.mem, start, len, perms);
            }
        }
        Ok(())
    }

    /// Fork: duplicate `parent`'s address space copy-on-write (paper §5).
    /// Writable regions are hardware-protected read-only in both processes;
    /// the first write to a shared page copies it, which also breaks that
    /// page's identity mapping — hence the paper's advice to fork *before*
    /// allocating accelerator-shared structures.
    ///
    /// # Errors
    ///
    /// [`DvmError::NoSuchProcess`] / [`DvmError::OutOfMemory`].
    pub fn fork(&mut self, parent: Pid) -> Result<Pid, DvmError> {
        self.process(parent)?;
        let child = self.spawn()?;
        let parent_vmas: Vec<Vma> = self.process(parent)?.vmas().cloned().collect();
        let parent_cursor = self.process(parent)?.demand_cursor;

        for vma in parent_vmas {
            let writable = vma.perms.allows(AccessKind::Write);
            let hw_perms = if writable {
                Permission::ReadOnly
            } else {
                vma.perms
            };

            // Share every currently backing frame.
            for page in 0..vma.pages() {
                let frame = vma.frame_of_page(page);
                *self.frame_refs.entry(frame).or_insert(1) += 1;
            }

            // Protect the parent's mappings read-only.
            if writable {
                let parent_proc = self.processes.get_mut(&parent).expect("checked");
                parent_proc.page_table.protect_region(
                    &mut self.machine.mem,
                    &mut self.machine.allocator,
                    vma.start,
                    vma.len,
                    hw_perms,
                )?;
                if let Some(bitmap) = &self.bitmap {
                    if vma.is_identity() {
                        bitmap.set_bytes(&mut self.machine.mem, vma.start, vma.len, hw_perms);
                    }
                }
                let parent_proc = self.processes.get_mut(&parent).expect("checked");
                if let Some(v) = parent_proc.vma_at_mut(vma.start) {
                    v.cow = true;
                }
            }

            // Build the child's mappings: same translations, CoW-protected.
            let child_proc = self.processes.get_mut(&child).expect("fresh child");
            match &vma.backing {
                Backing::Identity(_) => {
                    match self.flavor {
                        MapFlavor::DvmPe => child_proc.page_table.map_identity_pe(
                            &mut self.machine.mem,
                            &mut self.machine.allocator,
                            vma.start,
                            vma.len,
                            hw_perms,
                        )?,
                        MapFlavor::Paged(ps) => child_proc.page_table.map_identity_leaves(
                            &mut self.machine.mem,
                            &mut self.machine.allocator,
                            vma.start,
                            vma.len,
                            hw_perms,
                            ps,
                        )?,
                    }
                    // Re-point pages that the parent had already privatized
                    // — in page order: the remap sequence allocates table
                    // frames, and HashMap iteration order would make the
                    // allocator layout differ run to run.
                    let mut privatized: Vec<(u64, u64)> =
                        vma.cow_pages.iter().map(|(&p, &f)| (p, f)).collect();
                    privatized.sort_unstable();
                    for (page, frame) in privatized {
                        child_proc.page_table.remap_page(
                            &mut self.machine.mem,
                            &mut self.machine.allocator,
                            vma.start + page * PAGE_SIZE,
                            PhysAddr::from_frame(frame),
                            hw_perms,
                        )?;
                    }
                }
                Backing::Paged(_) => {
                    for page in 0..vma.pages() {
                        child_proc.page_table.map_page(
                            &mut self.machine.mem,
                            &mut self.machine.allocator,
                            vma.start + page * PAGE_SIZE,
                            PhysAddr::from_frame(vma.frame_of_page(page)),
                            PageSize::Size4K,
                            hw_perms,
                        )?;
                    }
                }
            }
            let mut child_vma = vma.clone();
            child_vma.cow = writable;
            child_proc.vmas.insert(child_vma.start.raw(), child_vma);
        }
        let child_proc = self.processes.get_mut(&child).expect("fresh child");
        child_proc.demand_cursor = child_proc.demand_cursor.max(parent_cursor);
        Ok(child)
    }

    /// `vfork`: create a child that *shares* the parent's address space
    /// (no copying, no CoW) — the paper's recommended way to create
    /// processes after accelerator-shared structures exist, since it
    /// cannot break identity mappings (§5). The child must not outlive
    /// the parent's address space; exiting a vfork child releases nothing.
    ///
    /// # Errors
    ///
    /// [`DvmError::NoSuchProcess`] if `parent` does not exist.
    pub fn vfork(&mut self, parent: Pid) -> Result<Pid, DvmError> {
        let (parent_pt, parent_vmas, parent_cursor) = {
            let p = self.process(parent)?;
            (p.page_table, p.vmas.clone(), p.demand_cursor)
        };
        let pid = self.next_pid;
        self.next_pid += 1;
        let mut child = Process::new(pid, parent_pt, parent_cursor);
        child.vmas = parent_vmas;
        child.borrowed_address_space = true;
        self.processes.insert(pid, child);
        Ok(pid)
    }

    /// Attempt to resolve a fault raised by the IOMMU or a CPU access on
    /// behalf of `pid`. Returns `true` if the fault was a CoW write that
    /// has been resolved and the access should be retried.
    ///
    /// # Errors
    ///
    /// [`DvmError::OutOfMemory`] if a copy frame cannot be allocated.
    pub fn resolve_fault(&mut self, pid: Pid, fault: Fault) -> Result<bool, DvmError> {
        if fault.kind != FaultKind::Protection || fault.access != AccessKind::Write {
            return Ok(false);
        }
        let proc = self.process_mut(pid)?;
        let Some(vma) = proc.vma_at(fault.va) else {
            return Ok(false);
        };
        if !vma.cow || !vma.perms.allows(AccessKind::Write) {
            return Ok(false);
        }
        let vma_start = vma.start;
        let vma_perms = vma.perms;
        let page_idx = (fault.va - vma_start) / PAGE_SIZE;
        let old_frame = vma.frame_of_page(page_idx);
        let page_va = vma_start + page_idx * PAGE_SIZE;

        let shared = self.frame_refs.contains_key(&old_frame);
        if !shared {
            // Sole owner again: restore write permission in place (keeps
            // the identity mapping intact).
            let proc = self.processes.get_mut(&pid).expect("checked");
            proc.page_table.protect_region(
                &mut self.machine.mem,
                &mut self.machine.allocator,
                page_va,
                PAGE_SIZE,
                vma_perms,
            )?;
            if let Some(bitmap) = &self.bitmap {
                // The system-wide bitmap cannot tell which process is
                // asking, and a sibling may have privatized this VA; keep
                // it 00 so DVM-BM falls back to the (per-process) page
                // table, which is always correct.
                bitmap.set_bytes(&mut self.machine.mem, page_va, PAGE_SIZE, Permission::None);
            }
            self.stats.cow_faults += 1;
            self.stats.cow_reuses += 1;
            return Ok(true);
        }

        // Copy the page; the copy cannot be identity mapped (§5).
        let new_frame = self.machine.allocator.alloc_frame()?;
        self.machine.mem.copy_frame(old_frame, new_frame);
        let proc = self.processes.get_mut(&pid).expect("checked");
        proc.page_table.remap_page(
            &mut self.machine.mem,
            &mut self.machine.allocator,
            page_va,
            PhysAddr::from_frame(new_frame),
            vma_perms,
        )?;
        if let Some(vma) = proc.vma_at_mut(fault.va) {
            vma.cow_pages.insert(page_idx, new_frame);
        }
        if let Some(bitmap) = &self.bitmap {
            // The page is no longer identity mapped: 00 forces fallback.
            bitmap.set_bytes(&mut self.machine.mem, page_va, PAGE_SIZE, Permission::None);
        }
        self.release_frame_ref(old_frame);
        self.stats.cow_faults += 1;
        Ok(true)
    }

    /// Terminate a process, releasing its memory and page table.
    ///
    /// # Errors
    ///
    /// [`DvmError::NoSuchProcess`] if `pid` does not exist.
    pub fn exit(&mut self, pid: Pid) -> Result<(), DvmError> {
        let proc = self
            .processes
            .remove(&pid)
            .ok_or(DvmError::NoSuchProcess(pid))?;
        if proc.borrowed_address_space {
            // A vfork child borrows its parent's address space; nothing
            // to release.
            return Ok(());
        }
        for vma in proc.vmas.values() {
            if let Some(bitmap) = &self.bitmap {
                if vma.is_identity() {
                    bitmap.set_bytes(&mut self.machine.mem, vma.start, vma.len, Permission::None);
                }
            }
            self.release_vma_frames(vma);
        }
        proc.page_table
            .free_all(&mut self.machine.mem, &mut self.machine.allocator);
        Ok(())
    }

    /// Release a VMA's data frames, honouring CoW sharing.
    fn release_vma_frames(&mut self, vma: &Vma) {
        // Fast path: nothing in the whole system is shared or swapped.
        if self.frame_refs.is_empty() && vma.cow_pages.is_empty() && vma.swapped.is_empty() {
            match &vma.backing {
                Backing::Identity(range) => {
                    for f in range.start..range.end() {
                        self.machine.mem.discard_frame(f);
                    }
                    self.machine.allocator.free_frames(*range);
                }
                Backing::Paged(frames) => {
                    for &f in frames {
                        self.machine.mem.discard_frame(f);
                        self.machine
                            .allocator
                            .free_subrange(FrameRange { start: f, count: 1 });
                    }
                }
            }
            return;
        }
        // After a CoW copy the process already dropped its reference to
        // the hidden original (in `resolve_fault`), so releasing exactly
        // the currently-backing frame of every page is complete. Pages
        // that are swapped out have no frame to release.
        for page in 0..vma.pages() {
            if vma.swapped.contains(&page) {
                continue;
            }
            self.release_frame_ref(vma.frame_of_page(page));
        }
    }

    /// Internal: release one frame during swap-out (honours CoW sharing).
    pub(crate) fn release_frame_for_swap(&mut self, frame: u64) {
        self.release_frame_ref(frame);
    }

    /// Internal: try to allocate a *specific* frame (swap-in wants the
    /// identity frame back). Returns `false` if it is in use.
    pub(crate) fn try_claim_specific_frame(&mut self, frame: u64) -> bool {
        self.machine.allocator.alloc_specific_frame(frame)
    }

    /// Drop one reference to `frame`; frees it when the last owner lets go.
    fn release_frame_ref(&mut self, frame: u64) {
        match self.frame_refs.get_mut(&frame) {
            None => {
                self.machine.mem.discard_frame(frame);
                self.machine.allocator.free_subrange(FrameRange {
                    start: frame,
                    count: 1,
                });
            }
            Some(n) if *n > 2 => *n -= 1,
            Some(_) => {
                self.frame_refs.remove(&frame);
            }
        }
    }

    /// Translate a VA in `pid`'s address space (functional, no timing).
    pub fn translate(&self, pid: Pid, va: VirtAddr) -> Option<(PhysAddr, Permission)> {
        self.processes
            .get(&pid)?
            .page_table
            .translate(&self.machine.mem, va)
    }

    /// CPU-side functional write with CoW resolution, page by page.
    ///
    /// # Errors
    ///
    /// [`DvmError::Fault`] if any page is unmapped or not writable.
    pub fn write_bytes(&mut self, pid: Pid, va: VirtAddr, data: &[u8]) -> Result<(), DvmError> {
        let mut offset = 0usize;
        while offset < data.len() {
            let cur = va + offset as u64;
            let in_page = (PAGE_SIZE - cur.page_offset(PageSize::Size4K)) as usize;
            let n = in_page.min(data.len() - offset);
            let pa = self.resolve_for_write(pid, cur)?;
            self.machine.mem.write_bytes(pa, &data[offset..offset + n]);
            offset += n;
        }
        Ok(())
    }

    /// CPU-side functional read, page by page.
    ///
    /// # Errors
    ///
    /// [`DvmError::Fault`] if any page is unmapped.
    pub fn read_bytes(&self, pid: Pid, va: VirtAddr, buf: &mut [u8]) -> Result<(), DvmError> {
        let mut offset = 0usize;
        while offset < buf.len() {
            let cur = va + offset as u64;
            let in_page = (PAGE_SIZE - cur.page_offset(PageSize::Size4K)) as usize;
            let n = in_page.min(buf.len() - offset);
            let (pa, perms) = self.translate(pid, cur).ok_or(DvmError::Fault(Fault {
                va: cur,
                access: AccessKind::Read,
                kind: FaultKind::NotMapped,
            }))?;
            if !perms.allows(AccessKind::Read) {
                return Err(DvmError::Fault(Fault {
                    va: cur,
                    access: AccessKind::Read,
                    kind: FaultKind::Protection,
                }));
            }
            self.machine
                .mem
                .read_bytes(pa, &mut buf[offset..offset + n]);
            offset += n;
        }
        Ok(())
    }

    /// Functional 8-byte write (CoW-aware).
    ///
    /// # Errors
    ///
    /// As for [`Os::write_bytes`].
    pub fn write_u64(&mut self, pid: Pid, va: VirtAddr, value: u64) -> Result<(), DvmError> {
        self.write_bytes(pid, va, &value.to_le_bytes())
    }

    /// Functional 8-byte read.
    ///
    /// # Errors
    ///
    /// As for [`Os::read_bytes`].
    pub fn read_u64(&self, pid: Pid, va: VirtAddr) -> Result<u64, DvmError> {
        let mut buf = [0u8; 8];
        self.read_bytes(pid, va, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn resolve_for_write(&mut self, pid: Pid, va: VirtAddr) -> Result<PhysAddr, DvmError> {
        for _ in 0..2 {
            match self.translate(pid, va) {
                Some((pa, perms)) if perms.allows(AccessKind::Write) => return Ok(pa),
                Some((_, _)) => {
                    let fault = Fault {
                        va,
                        access: AccessKind::Write,
                        kind: FaultKind::Protection,
                    };
                    if !self.resolve_fault(pid, fault)? {
                        return Err(fault.into());
                    }
                }
                None => {
                    return Err(DvmError::Fault(Fault {
                        va,
                        access: AccessKind::Write,
                        kind: FaultKind::NotMapped,
                    }))
                }
            }
        }
        Err(DvmError::Fault(Fault {
            va,
            access: AccessKind::Write,
            kind: FaultKind::Protection,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os_with(flavor: MapFlavor) -> Os {
        Os::new(OsConfig {
            machine: MachineConfig {
                mem_bytes: 256 << 20,
            },
            flavor,
            ..OsConfig::default()
        })
    }

    /// Pins the requested/padded accounting split: a success-rate metric
    /// must divide like with like, so the two quantities are tracked
    /// separately instead of the old padded-only `identity_bytes`.
    #[test]
    fn identity_bytes_requested_vs_padded() {
        let mut os = os_with(MapFlavor::DvmPe);
        let pid = os.spawn().unwrap();
        os.mmap(pid, 5000, Permission::ReadWrite).unwrap();
        // The request rounds up to whole pages (2); the physical
        // reservation pads to the 128 KiB PE slot span.
        assert_eq!(os.stats.identity_maps, 1);
        assert_eq!(os.stats.identity_bytes_requested, 2 * PAGE_SIZE);
        assert_eq!(os.stats.identity_bytes_padded, dvm_pagetable::slot_span(2));
        assert!(os.stats.identity_bytes_padded > os.stats.identity_bytes_requested);

        let mut os = os_with(MapFlavor::Paged(PageSize::Size2M));
        let pid = os.spawn().unwrap();
        os.mmap(pid, PAGE_SIZE, Permission::ReadWrite).unwrap();
        assert_eq!(os.stats.identity_bytes_requested, PAGE_SIZE);
        assert_eq!(os.stats.identity_bytes_padded, 2 << 20);
        // The padded footprint is also what the VMA view reports (the
        // Table 4 numerator).
        assert_eq!(os.process(pid).unwrap().identity_bytes(), 2 << 20);
    }
}
