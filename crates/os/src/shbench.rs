//! shbench-style fragmentation stress (paper §6.3.3, Table 4).
//!
//! The paper configures MicroQuill's shbench to "continuously allocate
//! memory of variable sizes until identity mapping fails to hold for an
//! allocation (VA != PA)", in three experiments:
//!
//! 1. small chunks of 100..10,000 bytes,
//! 2. large chunks of 100,000..10,000,000 bytes,
//! 3. four concurrent instances allocating large chunks,
//!
//! and reports the percentage of total system memory successfully
//! allocated (still identity mapped) when the first failure occurs.
//!
//! The paper's protocol allocates *continuously* (no frees) until identity
//! mapping fails, so the paper experiments use `free_fraction: 0.0` —
//! failure then reflects eager allocation's rounding residue plus
//! page-table overhead. Like the original shbench, sizes cycle through a
//! fixed list (eight log-spaced classes within the experiment's range)
//! rather than a continuum — discrete classes are also what lets the buddy
//! allocator pack blocks tightly. A churn variant
//! ([`ShbenchConfig::with_churn`]) additionally frees a fraction of live
//! allocations as it goes, which is the harsher mixed-lifetime
//! fragmentation case.

use crate::malloc::Malloc;
use crate::os::Os;
use crate::process::Pid;
use dvm_sim::DetRng;
use dvm_types::DvmError;

/// Parameters of one shbench run.
#[derive(Debug, Clone, Copy)]
pub struct ShbenchConfig {
    /// Minimum allocation size in bytes (inclusive).
    pub min_bytes: u64,
    /// Maximum allocation size in bytes (exclusive).
    pub max_bytes: u64,
    /// Number of concurrent instances (processes).
    pub instances: u32,
    /// Probability that a step frees a random live allocation instead of
    /// allocating (shbench's churn).
    pub free_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ShbenchConfig {
    /// Paper experiment 1: small chunks, one instance, allocate-only.
    pub fn experiment1() -> Self {
        Self {
            min_bytes: 100,
            max_bytes: 10_000,
            instances: 1,
            free_fraction: 0.0,
            seed: 1,
        }
    }

    /// Paper experiment 2: large chunks, one instance, allocate-only.
    pub fn experiment2() -> Self {
        Self {
            min_bytes: 100_000,
            max_bytes: 10_000_000,
            instances: 1,
            free_fraction: 0.0,
            seed: 2,
        }
    }

    /// Paper experiment 3: four concurrent large-chunk instances.
    pub fn experiment3() -> Self {
        Self {
            instances: 4,
            ..Self::experiment2()
        }
    }

    /// Harsher-than-paper variant: free `fraction` of live allocations as
    /// the run proceeds (mixed object lifetimes fragment the buddy
    /// allocator far more than allocate-only does).
    pub fn with_churn(self, fraction: f64) -> Self {
        Self {
            free_fraction: fraction,
            ..self
        }
    }
}

/// Result of one shbench run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShbenchResult {
    /// Bytes mapped identity when the first identity failure occurred.
    pub identity_bytes_at_failure: u64,
    /// Total machine memory.
    pub total_bytes: u64,
    /// Allocations performed before the failure.
    pub allocations: u64,
    /// Frees performed before the failure.
    pub frees: u64,
}

impl ShbenchResult {
    /// The paper's Table 4 metric: percentage of system memory allocated
    /// with identity mapping intact when identity mapping first failed.
    pub fn identity_percent(&self) -> f64 {
        100.0 * self.identity_bytes_at_failure as f64 / self.total_bytes as f64
    }
}

/// Run shbench against an existing OS until identity mapping first fails
/// (an `mmap` falls back to demand paging) or memory is exhausted.
///
/// # Errors
///
/// Propagates unexpected OS errors (anything other than clean memory
/// exhaustion).
pub fn run(os: &mut Os, config: ShbenchConfig) -> Result<ShbenchResult, DvmError> {
    let mut rng = DetRng::new(config.seed);
    let mut instances: Vec<(Pid, Malloc, Vec<dvm_types::VirtAddr>)> = Vec::new();
    for _ in 0..config.instances {
        let pid = os.spawn()?;
        instances.push((pid, Malloc::new(pid), Vec::new()));
    }
    let total_bytes = os.machine.total_frames() * dvm_types::PAGE_SIZE;
    let mut allocations = 0u64;
    let mut frees = 0u64;

    'outer: loop {
        for (pid, malloc, live) in &mut instances {
            let do_free = rng.chance(config.free_fraction) && !live.is_empty();
            if do_free {
                let victim = live.swap_remove(rng.below(live.len() as u64) as usize);
                malloc.free(os, victim)?;
                frees += 1;
                continue;
            }
            // shbench-style size classes: eight log-spaced sizes in range.
            let k = rng.below(8) as f64;
            let ratio = config.max_bytes as f64 / config.min_bytes as f64;
            let size = (config.min_bytes as f64 * ratio.powf(k / 7.0)) as u64;
            let fallbacks_before = os.stats.identity_fallbacks;
            match malloc.alloc(os, size) {
                Ok(va) => {
                    allocations += 1;
                    live.push(va);
                    if os.stats.identity_fallbacks > fallbacks_before {
                        // Figure-7 fallback fired: identity mapping failed.
                        break 'outer;
                    }
                }
                Err(DvmError::OutOfMemory { .. }) => break 'outer,
                Err(e) => return Err(e),
            }
            let _ = pid;
        }
    }

    let identity_bytes: u64 = instances
        .iter()
        .map(|(pid, _, _)| os.process(*pid).map(|p| p.identity_bytes()).unwrap_or(0))
        .sum();
    Ok(ShbenchResult {
        identity_bytes_at_failure: identity_bytes,
        total_bytes,
        allocations,
        frees,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::OsConfig;
    use dvm_mem::MachineConfig;

    fn run_on(mem_bytes: u64, config: ShbenchConfig) -> ShbenchResult {
        let mut os = Os::new(OsConfig {
            machine: MachineConfig { mem_bytes },
            ..OsConfig::default()
        });
        run(&mut os, config).unwrap()
    }

    #[test]
    fn small_machine_still_reaches_high_identity_fraction() {
        // 1 GiB machine to keep the test fast; the paper's claim is that
        // ~95%+ of memory identity-maps even under churn.
        let result = run_on(1 << 30, ShbenchConfig::experiment2());
        // At 1 GiB a single 10 MB request is ~1% of memory, so identity
        // mapping fails earlier than on the paper's 16-64 GiB machines
        // (where the table4 harness reproduces the 95%+ figures).
        assert!(
            result.identity_percent() > 60.0,
            "identity percent {:.1}",
            result.identity_percent()
        );
        assert!(result.allocations > 0);
    }

    #[test]
    fn small_chunk_experiment_uses_pools() {
        let result = run_on(256 << 20, ShbenchConfig::experiment1());
        // Pools are 4 MiB; failure should only happen near exhaustion.
        assert!(
            result.identity_percent() > 80.0,
            "identity percent {:.1}",
            result.identity_percent()
        );
    }

    #[test]
    fn multi_instance_runs() {
        let result = run_on(1 << 30, ShbenchConfig::experiment3());
        assert!(result.identity_percent() > 50.0);
        assert_eq!(result.frees, 0, "paper protocol is allocate-only");
    }

    #[test]
    fn churn_fragments_more_than_allocate_only() {
        let plain = run_on(1 << 30, ShbenchConfig::experiment2());
        let churn = run_on(1 << 30, ShbenchConfig::experiment2().with_churn(0.3));
        assert!(churn.frees > 0);
        assert!(
            churn.identity_percent() <= plain.identity_percent(),
            "churn {:.1}% vs plain {:.1}%",
            churn.identity_percent(),
            plain.identity_percent()
        );
    }

    #[test]
    fn determinism() {
        let a = run_on(256 << 20, ShbenchConfig::experiment2());
        let b = run_on(256 << 20, ShbenchConfig::experiment2());
        assert_eq!(a, b);
    }
}
