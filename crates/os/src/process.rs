//! Processes, virtual memory areas, and the flexible address-space layout.
//!
//! DVM requires a *flexible address space* (§4.3.2): identity-mapped
//! regions land wherever their physical allocation happens to be, so VMAs
//! cannot assume the traditional code/heap/stack ordering. Demand-paged
//! fallback regions are placed high (above any possible physical address)
//! with ASLR-style randomization, so they can never collide with identity
//! mappings.

use dvm_mem::FrameRange;
use dvm_pagetable::PageTable;
use dvm_types::{PageSize, Permission, VirtAddr, PAGE_SIZE};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Process identifier.
pub type Pid = u32;

/// What kind of segment a VMA is (for reporting; placement is flexible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmaKind {
    /// Code (text) segment.
    Code,
    /// Initialized/uninitialized globals.
    Data,
    /// Heap / memory-mapped allocation.
    Heap,
    /// Thread stack.
    Stack,
}

/// How a VMA's pages are backed by physical memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Backing {
    /// Eagerly allocated contiguous frames with `VA == PA`.
    Identity(FrameRange),
    /// Per-page frames (demand-paging fallback or CoW copies); entry `i`
    /// backs page `i` of the VMA.
    Paged(Vec<u64>),
}

/// One virtual memory area.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// First virtual address.
    pub start: VirtAddr,
    /// Length in bytes (multiple of 4 KiB).
    pub len: u64,
    /// Logical permissions the owner holds (hardware permissions may be
    /// temporarily narrower during CoW).
    pub perms: Permission,
    /// Segment kind.
    pub kind: VmaKind,
    /// Physical backing.
    pub backing: Backing,
    /// `true` while pages may be shared copy-on-write with another process.
    pub cow: bool,
    /// Private copies that replaced shared pages after a CoW fault:
    /// `page index within the VMA -> private frame`.
    pub cow_pages: HashMap<u64, u64>,
    /// Pages currently swapped out (their frames are freed; contents live
    /// in a [`crate::SwapStore`]).
    pub swapped: HashSet<u64>,
}

impl Vma {
    /// One-past-the-end address.
    pub fn end(&self) -> VirtAddr {
        self.start + self.len
    }

    /// `true` if `va` lies inside this VMA.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.start && va < self.end()
    }

    /// Number of 4 KiB pages.
    pub fn pages(&self) -> u64 {
        self.len / PAGE_SIZE
    }

    /// `true` if backed by an identity mapping (ignoring CoW overrides).
    pub fn is_identity(&self) -> bool {
        matches!(self.backing, Backing::Identity(_))
    }

    /// The frame currently backing page `page_idx` of this VMA.
    ///
    /// # Panics
    ///
    /// Panics if `page_idx` is out of range.
    pub fn frame_of_page(&self, page_idx: u64) -> u64 {
        assert!(page_idx < self.pages(), "page index beyond VMA");
        if let Some(&frame) = self.cow_pages.get(&page_idx) {
            return frame;
        }
        match &self.backing {
            Backing::Identity(range) => range.start + page_idx,
            Backing::Paged(frames) => frames[page_idx as usize],
        }
    }

    /// Frames of the original (pre-CoW) backing, for sharing bookkeeping.
    pub fn backing_frames(&self) -> Vec<u64> {
        match &self.backing {
            Backing::Identity(range) => (range.start..range.end()).collect(),
            Backing::Paged(frames) => frames.clone(),
        }
    }
}

/// A simulated process: an address space plus its page table.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// The process's page table (also used by the IOMMU on its behalf).
    pub page_table: PageTable,
    /// VMAs keyed by start address.
    pub(crate) vmas: BTreeMap<u64, Vma>,
    /// Bump cursor for demand-paged placements (above all physical
    /// addresses; randomized at process creation).
    pub(crate) demand_cursor: u64,
    /// `true` for vfork children: the address space belongs to the
    /// parent and is not released on exit.
    pub(crate) borrowed_address_space: bool,
}

impl Process {
    pub(crate) fn new(pid: Pid, page_table: PageTable, demand_base: u64) -> Self {
        Self {
            pid,
            page_table,
            vmas: BTreeMap::new(),
            demand_cursor: demand_base,
            borrowed_address_space: false,
        }
    }

    /// The VMA containing `va`, if any.
    pub fn vma_at(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=va.raw())
            .next_back()
            .map(|(_, vma)| vma)
            .filter(|vma| vma.contains(va))
    }

    pub(crate) fn vma_at_mut(&mut self, va: VirtAddr) -> Option<&mut Vma> {
        self.vmas
            .range_mut(..=va.raw())
            .next_back()
            .map(|(_, vma)| vma)
            .filter(|vma| vma.contains(va))
    }

    /// Iterate over VMAs in address order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.vmas.values().map(|v| v.len).sum()
    }

    /// Total identity-mapped bytes (paper's Table 4 numerator counts these).
    pub fn identity_bytes(&self) -> u64 {
        self.vmas
            .values()
            .filter(|v| v.is_identity())
            .map(|v| v.len)
            .sum()
    }

    /// `true` if `[va, va+len)` overlaps no existing VMA.
    pub fn range_is_free(&self, va: VirtAddr, len: u64) -> bool {
        let lo = va.raw();
        let hi = lo.saturating_add(len);
        // Check the VMA starting at or before `lo` and any starting inside.
        if let Some((_, vma)) = self.vmas.range(..=lo).next_back() {
            if vma.end().raw() > lo {
                return false;
            }
        }
        self.vmas.range(lo..hi).next().is_none()
    }

    /// Reserve a demand-paged VA range of `len` bytes from the high area.
    pub(crate) fn take_demand_range(&mut self, len: u64) -> VirtAddr {
        // Leave an unmapped guard page between regions.
        let va = VirtAddr::new(self.demand_cursor);
        self.demand_cursor += len + PAGE_SIZE;
        debug_assert!(self.range_is_free(va, len));
        va
    }
}

/// Alignment granule the OS uses when eagerly allocating identity-mapped
/// backing for a given page-table flavour: huge-page flavours round
/// allocations up so every leaf can use the large size.
pub fn backing_granule(leaf: Option<PageSize>) -> u64 {
    leaf.map_or(PAGE_SIZE, PageSize::bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_vma(start: u64, len: u64) -> Vma {
        Vma {
            start: VirtAddr::new(start),
            len,
            perms: Permission::ReadWrite,
            kind: VmaKind::Heap,
            backing: Backing::Identity(FrameRange {
                start: start / PAGE_SIZE,
                count: len / PAGE_SIZE,
            }),
            cow: false,
            cow_pages: HashMap::new(),
            swapped: HashSet::new(),
        }
    }

    fn proc_with(vmas: &[(u64, u64)]) -> Process {
        let mut mem = dvm_mem::PhysMem::new(64);
        let mut alloc = dvm_mem::BuddyAllocator::new(64);
        let pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        let mut p = Process {
            pid: 1,
            page_table: pt,
            vmas: BTreeMap::new(),
            demand_cursor: 1 << 46,
            borrowed_address_space: false,
        };
        for &(s, l) in vmas {
            p.vmas.insert(s, dummy_vma(s, l));
        }
        p
    }

    #[test]
    fn vma_contains_and_frames() {
        let vma = dummy_vma(0x10000, 0x4000);
        assert!(vma.contains(VirtAddr::new(0x10000)));
        assert!(vma.contains(VirtAddr::new(0x13fff)));
        assert!(!vma.contains(VirtAddr::new(0x14000)));
        assert_eq!(vma.pages(), 4);
        assert_eq!(vma.frame_of_page(0), 0x10);
        assert_eq!(vma.frame_of_page(3), 0x13);
    }

    #[test]
    fn cow_pages_override_backing() {
        let mut vma = dummy_vma(0x10000, 0x4000);
        vma.cow_pages.insert(2, 999);
        assert_eq!(vma.frame_of_page(2), 999);
        assert_eq!(vma.frame_of_page(1), 0x11);
    }

    #[test]
    fn range_is_free_detects_overlap() {
        let p = proc_with(&[(0x10000, 0x4000), (0x20000, 0x1000)]);
        assert!(p.range_is_free(VirtAddr::new(0x14000), 0x1000));
        assert!(!p.range_is_free(VirtAddr::new(0x13000), 0x1000));
        assert!(!p.range_is_free(VirtAddr::new(0xf000), 0x2000));
        assert!(!p.range_is_free(VirtAddr::new(0x0), 0x100000));
        assert!(p.range_is_free(VirtAddr::new(0x21000), 0x1000));
    }

    #[test]
    fn vma_lookup() {
        let p = proc_with(&[(0x10000, 0x4000)]);
        assert!(p.vma_at(VirtAddr::new(0x10000)).is_some());
        assert!(p.vma_at(VirtAddr::new(0x13fff)).is_some());
        assert!(p.vma_at(VirtAddr::new(0x14000)).is_none());
        assert!(p.vma_at(VirtAddr::new(0x0)).is_none());
    }

    #[test]
    fn demand_ranges_do_not_collide() {
        let mut p = proc_with(&[]);
        let a = p.take_demand_range(0x10000);
        let b = p.take_demand_range(0x10000);
        assert!(b.raw() >= a.raw() + 0x10000 + PAGE_SIZE);
    }

    #[test]
    fn granules() {
        assert_eq!(backing_granule(None), PAGE_SIZE);
        assert_eq!(backing_granule(Some(PageSize::Size2M)), 2 << 20);
        assert_eq!(backing_granule(Some(PageSize::Size1G)), 1 << 30);
    }
}
