//! A user-level allocator over `mmap`, modelling the paper's glibc change
//! (§4.3.2): *all* allocations come from memory-mapped segments (never
//! `brk`, which would need a growable — hence non-identity-mappable —
//! region). Small requests are served from pools; when a pool fills,
//! another is mapped. Large requests get their own mapping.

use crate::os::Os;
use crate::process::Pid;
use dvm_types::{align_up, DvmError, Permission, VirtAddr};
use std::collections::HashMap;

/// Requests at or above this go straight to `mmap` (glibc's
/// `MMAP_THRESHOLD`).
pub const MMAP_THRESHOLD: u64 = 128 * 1024;

/// Size of each small-allocation pool.
pub const POOL_BYTES: u64 = 4 << 20;

/// Allocation size classes: powers of two from 16 B to the threshold.
fn size_class(size: u64) -> u64 {
    size.max(16).next_power_of_two()
}

#[derive(Debug)]
struct Pool {
    base: VirtAddr,
    bump: u64,
}

/// Per-process user-level allocator.
///
/// # Examples
///
/// ```
/// use dvm_mem::MachineConfig;
/// use dvm_os::{Malloc, Os, OsConfig};
///
/// # fn main() -> Result<(), dvm_types::DvmError> {
/// let mut os = Os::new(OsConfig {
///     machine: MachineConfig { mem_bytes: 256 << 20 },
///     ..OsConfig::default()
/// });
/// let pid = os.spawn()?;
/// let mut malloc = Malloc::new(pid);
/// let small = malloc.alloc(&mut os, 100)?;
/// let big = malloc.alloc(&mut os, 1 << 20)?;
/// malloc.free(&mut os, small)?;
/// malloc.free(&mut os, big)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Malloc {
    pid: Pid,
    pools: Vec<Pool>,
    /// Free lists per size class (class -> addresses).
    free_lists: HashMap<u64, Vec<VirtAddr>>,
    /// Live small allocations: address -> class.
    small_live: HashMap<u64, u64>,
    /// Live large allocations: address -> mapped length.
    large_live: HashMap<u64, u64>,
}

impl Malloc {
    /// Create an allocator for `pid`.
    pub fn new(pid: Pid) -> Self {
        Self {
            pid,
            pools: Vec::new(),
            free_lists: HashMap::new(),
            small_live: HashMap::new(),
            large_live: HashMap::new(),
        }
    }

    /// Allocate `size` bytes.
    ///
    /// # Errors
    ///
    /// [`DvmError::OutOfMemory`] when backing memory is exhausted;
    /// [`DvmError::InvalidArgument`] for `size == 0`.
    pub fn alloc(&mut self, os: &mut Os, size: u64) -> Result<VirtAddr, DvmError> {
        if size == 0 {
            return Err(DvmError::InvalidArgument("malloc(0)"));
        }
        if size >= MMAP_THRESHOLD {
            let len = align_up(size, dvm_types::PAGE_SIZE);
            let va = os.mmap(self.pid, len, Permission::ReadWrite)?;
            // The VMA may be padded (huge-page flavours); track what the OS
            // actually mapped so `free` releases it exactly.
            let mapped = os
                .process(self.pid)?
                .vma_at(va)
                .map(|v| v.len)
                .unwrap_or(len);
            self.large_live.insert(va.raw(), mapped);
            return Ok(va);
        }
        let class = size_class(size);
        if let Some(va) = self.free_lists.get_mut(&class).and_then(Vec::pop) {
            self.small_live.insert(va.raw(), class);
            return Ok(va);
        }
        // Bump from the newest pool with room.
        if let Some(pool) = self.pools.last_mut() {
            if pool.bump + class <= POOL_BYTES {
                let va = pool.base + pool.bump;
                pool.bump += class;
                self.small_live.insert(va.raw(), class);
                return Ok(va);
            }
        }
        // Map another pool and retry.
        let base = os.mmap(self.pid, POOL_BYTES, Permission::ReadWrite)?;
        self.pools.push(Pool { base, bump: 0 });
        self.alloc(os, size)
    }

    /// Free an allocation returned by [`Self::alloc`].
    ///
    /// # Errors
    ///
    /// [`DvmError::InvalidArgument`] if `va` is not a live allocation.
    pub fn free(&mut self, os: &mut Os, va: VirtAddr) -> Result<(), DvmError> {
        if let Some(class) = self.small_live.remove(&va.raw()) {
            self.free_lists.entry(class).or_default().push(va);
            return Ok(());
        }
        if self.large_live.remove(&va.raw()).is_some() {
            return os.munmap(self.pid, va);
        }
        Err(DvmError::InvalidArgument("free of unknown pointer"))
    }

    /// Bytes currently live from the caller's perspective (size classes
    /// for small, mapped length for large).
    pub fn live_bytes(&self) -> u64 {
        self.small_live.values().sum::<u64>() + self.large_live.values().sum::<u64>()
    }

    /// Number of live allocations.
    pub fn live_count(&self) -> usize {
        self.small_live.len() + self.large_live.len()
    }

    /// Addresses of live allocations (small and large), for random-free
    /// workloads.
    pub fn live_addrs(&self) -> Vec<VirtAddr> {
        let mut addrs: Vec<VirtAddr> = self
            .small_live
            .keys()
            .chain(self.large_live.keys())
            .map(|&a| VirtAddr::new(a))
            .collect();
        // HashMap iteration order is nondeterministic; callers (shbench)
        // need reproducible victim selection.
        addrs.sort_unstable();
        addrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::os::OsConfig;
    use dvm_mem::MachineConfig;

    fn small_os() -> Os {
        Os::new(OsConfig {
            machine: MachineConfig {
                mem_bytes: 256 << 20,
            },
            ..OsConfig::default()
        })
    }

    #[test]
    fn size_classes() {
        assert_eq!(size_class(1), 16);
        assert_eq!(size_class(16), 16);
        assert_eq!(size_class(17), 32);
        assert_eq!(size_class(100), 128);
        assert_eq!(size_class(65536), 65536);
    }

    #[test]
    fn small_allocations_share_a_pool() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let maps_before = os.stats.identity_maps;
        let mut m = Malloc::new(pid);
        let a = m.alloc(&mut os, 100).unwrap();
        let b = m.alloc(&mut os, 100).unwrap();
        assert_ne!(a, b);
        // Only one pool mapping happened.
        assert_eq!(os.stats.identity_maps, maps_before + 1);
        assert_eq!(m.live_count(), 2);
    }

    #[test]
    fn freed_small_blocks_are_recycled() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let mut m = Malloc::new(pid);
        let a = m.alloc(&mut os, 1000).unwrap();
        m.free(&mut os, a).unwrap();
        let b = m.alloc(&mut os, 1000).unwrap();
        assert_eq!(a, b, "same class reuses the freed block");
    }

    #[test]
    fn large_allocations_are_standalone_mappings() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let mut m = Malloc::new(pid);
        let a = m.alloc(&mut os, MMAP_THRESHOLD).unwrap();
        assert!(os.process(pid).unwrap().vma_at(a).is_some());
        let free_before = os.machine.allocator.free_frames_count();
        m.free(&mut os, a).unwrap();
        assert!(os.machine.allocator.free_frames_count() > free_before);
        assert!(os.process(pid).unwrap().vma_at(a).is_none());
    }

    #[test]
    fn double_free_is_an_error() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let mut m = Malloc::new(pid);
        let a = m.alloc(&mut os, 64).unwrap();
        m.free(&mut os, a).unwrap();
        assert!(m.free(&mut os, a).is_err());
    }

    #[test]
    fn pool_overflow_maps_another_pool() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let mut m = Malloc::new(pid);
        // Fill beyond one 4 MiB pool with 64 KiB blocks.
        let n = (POOL_BYTES / 65536) + 4;
        for _ in 0..n {
            m.alloc(&mut os, 65536).unwrap();
        }
        assert!(m.pools.len() >= 2);
    }

    #[test]
    fn live_bytes_tracks_classes() {
        let mut os = small_os();
        let pid = os.spawn().unwrap();
        let mut m = Malloc::new(pid);
        m.alloc(&mut os, 100).unwrap(); // class 128
        assert_eq!(m.live_bytes(), 128);
    }
}
