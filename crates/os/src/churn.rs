//! Long-horizon multi-tenant churn scenarios.
//!
//! The paper evaluates identity mapping on fresh address spaces; a
//! production memory system lives in the opposite regime — thousands of
//! processes forking, exec'ing and exiting over hours while the buddy
//! allocator fragments. This module drives exactly that: a deterministic
//! [`DetRng`] schedule of spawns, CoW forks (with the child breaking a
//! fraction of shared pages), execs (address-space teardown + rebuild)
//! and exits, recording a per-epoch time-series of
//!
//! * identity-mapping success rate ([`ChurnEpoch::identity_rate`]),
//! * buddy-allocator fragmentation (coalesced free-run counts and the
//!   [`dvm_mem::FreeSpanHistogram`]-derived sub-granule run count),
//! * the DVM fallback-to-paging rate, and
//! * CoW break volume (pages privatized by copies).
//!
//! Every draw comes from one seeded generator and every collection the
//! driver iterates is ordered, so a run is a pure function of its
//! [`ChurnConfig`] — the property the `churn` bench binary's byte-identity
//! contract (serial == `--jobs N` == `--shards N`) rests on.

use crate::os::{MapFlavor, Os, OsConfig};
use crate::process::Pid;
use dvm_mem::MachineConfig;
use dvm_sim::DetRng;
use dvm_types::{DvmError, Permission, VirtAddr, PAGE_SIZE};

/// Parameters of one churn scenario. All rates are per epoch.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// Machine memory in bytes.
    pub mem_bytes: u64,
    /// Page-table flavour under test.
    pub flavor: MapFlavor,
    /// Attempt identity mapping (disable for the demand-paging ablation).
    pub identity_enabled: bool,
    /// Number of epochs to simulate.
    pub epochs: u32,
    /// New processes arriving each epoch.
    pub arrivals_per_epoch: u32,
    /// Fraction of arrivals that are CoW forks of a live process rather
    /// than fresh spawns.
    pub cow_fork_fraction: f64,
    /// Mean process lifetime in epochs (lifetimes are drawn uniformly
    /// from `[1, 2*mean)`, so the mean is exact and the tail is bounded).
    pub mean_lifetime_epochs: u32,
    /// Heap regions mapped by a fresh process.
    pub regions_per_proc: u32,
    /// Smallest region size in bytes (log-uniform size classes).
    pub min_region_bytes: u64,
    /// Largest region size class in bytes.
    pub max_region_bytes: u64,
    /// Chance a live process maps one extra region this epoch.
    pub extra_alloc_chance: f64,
    /// Chance a live process unmaps one of its regions this epoch.
    pub free_region_chance: f64,
    /// Chance a live process execs this epoch: its address space is torn
    /// down and rebuilt from scratch (fresh pid, same remaining lifetime).
    pub exec_chance: f64,
    /// Fraction of each shared region's pages a fork child writes
    /// immediately, breaking their CoW sharing.
    pub fork_write_fraction: f64,
    /// Schedule seed (also feeds the OS's ASLR placement).
    pub seed: u64,
}

impl Default for ChurnConfig {
    /// A quick-scale scenario: a 512 MiB machine under enough multi-tenant
    /// pressure that identity success visibly decays within ~50 epochs.
    fn default() -> Self {
        Self {
            mem_bytes: 512 << 20,
            flavor: MapFlavor::DvmPe,
            identity_enabled: true,
            epochs: 48,
            arrivals_per_epoch: 8,
            cow_fork_fraction: 0.35,
            mean_lifetime_epochs: 6,
            regions_per_proc: 3,
            min_region_bytes: 128 << 10,
            max_region_bytes: 8 << 20,
            extra_alloc_chance: 0.30,
            free_region_chance: 0.15,
            exec_chance: 0.05,
            fork_write_fraction: 0.20,
            seed: 42,
        }
    }
}

/// One epoch of the time-series. Counters are *deltas* over the epoch;
/// allocator fields are end-of-epoch snapshots. Everything is integral so
/// the values cross shard fragments bit-exactly; the rate accessors
/// derive floats from them on the formatting side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEpoch {
    /// Epoch index (0-based).
    pub epoch: u32,
    /// Processes alive at the end of the epoch.
    pub live_procs: u64,
    /// Successful identity mappings this epoch.
    pub identity_maps: u64,
    /// `mmap`s that fell back to demand paging this epoch.
    pub identity_fallbacks: u64,
    /// Requested bytes that ended up identity mapped this epoch.
    pub identity_bytes_requested: u64,
    /// Padded bytes reserved for identity mappings this epoch.
    pub identity_bytes_padded: u64,
    /// Bytes mapped by the demand-paging fallback this epoch.
    pub demand_bytes: u64,
    /// CoW faults resolved by *copying* this epoch (breaks; reuse
    /// resolutions are excluded — they keep the identity mapping).
    pub cow_breaks: u64,
    /// Operations skipped because memory was exhausted.
    pub oom_events: u64,
    /// Free frames at epoch end.
    pub free_frames: u64,
    /// Coalesced free runs at epoch end (higher = more fragmented).
    pub free_runs: u64,
    /// Largest coalesced free run in frames at epoch end.
    pub largest_run: u64,
    /// Free runs smaller than the flavour's base identity granule — space
    /// that exists but can never serve an identity mapping.
    pub sub_granule_runs: u64,
}

impl ChurnEpoch {
    /// `mmap` calls observed this epoch.
    pub fn mmaps(&self) -> u64 {
        self.identity_maps + self.identity_fallbacks
    }

    /// Identity-mapping success rate this epoch, `None` if no `mmap` ran.
    pub fn identity_rate(&self) -> Option<f64> {
        let total = self.mmaps();
        (total > 0).then(|| self.identity_maps as f64 / total as f64)
    }

    /// Fallback-to-paging rate this epoch, `None` if no `mmap` ran.
    pub fn fallback_rate(&self) -> Option<f64> {
        let total = self.mmaps();
        (total > 0).then(|| self.identity_fallbacks as f64 / total as f64)
    }
}

/// The full time-series plus end-of-run bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnResult {
    /// One entry per epoch, in order.
    pub epochs: Vec<ChurnEpoch>,
    /// Frames still allocated after every process was drained — 0 unless
    /// an out-of-memory fork abandoned a partially built child.
    pub leaked_frames: u64,
}

impl ChurnResult {
    /// Pooled identity success rate over `epochs[range]` (total maps over
    /// total mmaps — not a mean of per-epoch rates, so empty epochs do
    /// not distort it). `None` if the slice saw no `mmap`.
    pub fn pooled_identity_rate(&self, range: std::ops::Range<usize>) -> Option<f64> {
        let slice = &self.epochs[range];
        let maps: u64 = slice.iter().map(|e| e.identity_maps).sum();
        let total: u64 = slice.iter().map(|e| e.mmaps()).sum();
        (total > 0).then(|| maps as f64 / total as f64)
    }
}

/// A live process as the scheduler sees it.
struct Tenant {
    pid: Pid,
    death_epoch: u32,
    /// Heap regions this tenant may free (start addresses).
    regions: Vec<VirtAddr>,
}

/// Run a churn scenario on a fresh OS.
///
/// # Errors
///
/// Propagates any OS error other than [`DvmError::OutOfMemory`], which
/// the driver absorbs into [`ChurnEpoch::oom_events`] (a saturated
/// machine is a scenario outcome, not a harness failure).
pub fn run(config: &ChurnConfig) -> Result<ChurnResult, DvmError> {
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: config.mem_bytes,
        },
        flavor: config.flavor,
        maintain_bitmap: false,
        identity_enabled: config.identity_enabled,
        aslr_seed: config.seed,
    });
    run_on(&mut os, config)
}

/// [`run`] against a caller-provided OS (which must be freshly booted for
/// the leak accounting to mean anything). Drains every remaining process
/// before returning, so the allocator ends at its boot state unless
/// frames genuinely leaked.
///
/// # Errors
///
/// As for [`run`].
pub fn run_on(os: &mut Os, config: &ChurnConfig) -> Result<ChurnResult, DvmError> {
    assert!(config.min_region_bytes >= PAGE_SIZE, "regions are pages");
    assert!(
        config.max_region_bytes >= config.min_region_bytes,
        "size classes must be non-empty"
    );
    let mut rng = DetRng::new(config.seed ^ 0xC4A6_55C4_EDC1_E5D5);
    let mut tenants: Vec<Tenant> = Vec::new();
    let mut epochs: Vec<ChurnEpoch> = Vec::with_capacity(config.epochs as usize);
    let mut prev = os.stats;
    let granule = config.flavor.identity_granule(PAGE_SIZE);

    for epoch in 0..config.epochs {
        let mut oom = 0u64;

        // 1. Scheduled exits (in arrival order).
        let mut i = 0;
        while i < tenants.len() {
            if tenants[i].death_epoch <= epoch {
                let t = tenants.remove(i);
                os.exit(t.pid)?;
            } else {
                i += 1;
            }
        }

        // 2. Arrivals: fresh spawns or CoW forks of a live tenant.
        for _ in 0..config.arrivals_per_epoch {
            let death_epoch = epoch + lifetime(&mut rng, config.mean_lifetime_epochs);
            let forks = !tenants.is_empty() && rng.chance(config.cow_fork_fraction);
            if forks {
                let parent = &tenants[rng.below(tenants.len() as u64) as usize];
                let (ppid, regions) = (parent.pid, parent.regions.clone());
                match os.fork(ppid) {
                    Ok(child) => {
                        oom += break_cow_pages(os, child, &regions, config.fork_write_fraction)?;
                        tenants.push(Tenant {
                            pid: child,
                            death_epoch,
                            regions,
                        });
                    }
                    Err(DvmError::OutOfMemory { .. }) => oom += 1,
                    Err(e) => return Err(e),
                }
            } else {
                let (tenant, o) = spawn_tenant(os, config, &mut rng, death_epoch)?;
                oom += o;
                if let Some(t) = tenant {
                    tenants.push(t);
                }
            }
        }

        // 3. Intra-lifetime churn: execs, extra maps, and region frees.
        for t in &mut tenants {
            if rng.chance(config.exec_chance) {
                // exec: tear the address space down and rebuild it.
                os.exit(t.pid)?;
                let (fresh, o) = spawn_tenant(os, config, &mut rng, t.death_epoch)?;
                oom += o;
                match fresh {
                    Some(fresh) => {
                        t.pid = fresh.pid;
                        t.regions = fresh.regions;
                    }
                    None => {
                        // The image failed to load; the tenant dies now
                        // (its old address space is already torn down).
                        t.death_epoch = epoch;
                        continue;
                    }
                }
            }
            if rng.chance(config.extra_alloc_chance) {
                let len = sample_region_bytes(&mut rng, config);
                match os.mmap(t.pid, len, Permission::ReadWrite) {
                    Ok(va) => t.regions.push(va),
                    Err(DvmError::OutOfMemory { .. }) => oom += 1,
                    Err(e) => return Err(e),
                }
            }
            if !t.regions.is_empty() && rng.chance(config.free_region_chance) {
                let va = t
                    .regions
                    .swap_remove(rng.below(t.regions.len() as u64) as usize);
                os.munmap(t.pid, va)?;
            }
        }
        // Drop tenants whose exec failed (their pid is already gone).
        tenants.retain(|t| t.death_epoch > epoch);

        // 4. Snapshot the epoch.
        let s = os.stats;
        let hist = os.machine.allocator.free_span_histogram();
        let sub_bucket = (granule / PAGE_SIZE).ilog2() as usize;
        let sub_granule_runs: u64 = hist.buckets[..sub_bucket.min(hist.buckets.len())]
            .iter()
            .sum();
        epochs.push(ChurnEpoch {
            epoch,
            live_procs: tenants.len() as u64,
            identity_maps: s.identity_maps - prev.identity_maps,
            identity_fallbacks: s.identity_fallbacks - prev.identity_fallbacks,
            identity_bytes_requested: s.identity_bytes_requested - prev.identity_bytes_requested,
            identity_bytes_padded: s.identity_bytes_padded - prev.identity_bytes_padded,
            demand_bytes: s.demand_bytes - prev.demand_bytes,
            cow_breaks: (s.cow_faults - s.cow_reuses) - (prev.cow_faults - prev.cow_reuses),
            oom_events: oom,
            free_frames: os.machine.allocator.free_frames_count(),
            free_runs: hist.runs,
            largest_run: hist.largest_run,
            sub_granule_runs,
        });
        prev = s;
    }

    // Drain everything — including any partially built fork children the
    // scheduler lost track of — in pid order.
    let mut pids: Vec<Pid> = os.processes.keys().copied().collect();
    pids.sort_unstable();
    for pid in pids {
        os.exit(pid)?;
    }
    let total = os.machine.allocator.total_frames();
    let leaked_frames = total - os.machine.allocator.free_frames_count();
    Ok(ChurnResult {
        epochs,
        leaked_frames,
    })
}

/// Lifetime draw: uniform over `[1, 2*mean)`, exact mean, bounded tail.
fn lifetime(rng: &mut DetRng, mean: u32) -> u32 {
    let hi = (2 * mean.max(1)) as u64;
    rng.range(1, hi) as u32
}

/// Log-uniform size class between the configured bounds, plus sub-class
/// jitter so padding waste varies (exact powers of two would make every
/// identity allocation granule-perfect and hide fragmentation).
fn sample_region_bytes(rng: &mut DetRng, config: &ChurnConfig) -> u64 {
    let classes = (config.max_region_bytes / config.min_region_bytes)
        .max(1)
        .ilog2() as u64;
    let base = config.min_region_bytes << rng.below(classes + 1);
    let len = base + rng.below(base);
    len.min(config.max_region_bytes)
}

/// Boot a fresh tenant with its initial heap regions. Returns the tenant
/// (`None` when even the spawn itself failed) plus the number of
/// operations memory pressure forced it to skip.
fn spawn_tenant(
    os: &mut Os,
    config: &ChurnConfig,
    rng: &mut DetRng,
    death_epoch: u32,
) -> Result<(Option<Tenant>, u64), DvmError> {
    let pid = match os.spawn() {
        Ok(pid) => pid,
        Err(DvmError::OutOfMemory { .. }) => return Ok((None, 1)),
        Err(e) => return Err(e),
    };
    let mut regions = Vec::with_capacity(config.regions_per_proc as usize);
    let mut oom = 0u64;
    for _ in 0..config.regions_per_proc {
        let len = sample_region_bytes(rng, config);
        match os.mmap(pid, len, Permission::ReadWrite) {
            Ok(va) => regions.push(va),
            Err(DvmError::OutOfMemory { .. }) => oom += 1,
            Err(e) => return Err(e),
        }
    }
    Ok((
        Some(Tenant {
            pid,
            death_epoch,
            regions,
        }),
        oom,
    ))
}

/// A fork child touches a spread of pages in each inherited region,
/// breaking their CoW sharing (stride sampling: deterministic and evenly
/// spread). Returns the number of writes skipped for lack of memory.
fn break_cow_pages(
    os: &mut Os,
    child: Pid,
    regions: &[VirtAddr],
    fraction: f64,
) -> Result<u64, DvmError> {
    let mut oom = 0u64;
    for &va in regions {
        let Some(pages) = os.process(child)?.vma_at(va).map(|v| v.pages()) else {
            continue; // region was freed by the parent before this fork
        };
        let writes = ((pages as f64 * fraction).ceil() as u64).min(pages);
        for k in 0..writes {
            let page = k * pages / writes;
            match os.write_u64(child, va + page * PAGE_SIZE, u64::from(child)) {
                Ok(()) => {}
                Err(DvmError::OutOfMemory { .. }) => {
                    oom += 1;
                    return Ok(oom);
                }
                Err(e) => return Err(e),
            }
        }
    }
    Ok(oom)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> ChurnConfig {
        ChurnConfig {
            mem_bytes: 128 << 20,
            epochs: 10,
            arrivals_per_epoch: 4,
            mean_lifetime_epochs: 3,
            regions_per_proc: 2,
            min_region_bytes: 64 << 10,
            max_region_bytes: 1 << 20,
            ..ChurnConfig::default()
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let config = smoke_config();
        let a = run(&config).unwrap();
        let b = run(&config).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.epochs.len(), 10);
    }

    #[test]
    fn seed_changes_the_trajectory() {
        let a = run(&smoke_config()).unwrap();
        let b = run(&ChurnConfig {
            seed: 43,
            ..smoke_config()
        })
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn every_epoch_sees_activity_and_nothing_leaks() {
        let result = run(&smoke_config()).unwrap();
        assert_eq!(result.leaked_frames, 0);
        for e in &result.epochs {
            assert!(e.mmaps() > 0, "epoch {} had no mmap", e.epoch);
            assert!(e.identity_rate().is_some());
        }
        // Forks happen, so CoW pages break somewhere in the run.
        assert!(result.epochs.iter().any(|e| e.cow_breaks > 0));
    }

    #[test]
    fn disabled_identity_is_all_fallback_free() {
        // The ablation never attempts identity mapping, so the counters
        // stay zero and every byte goes through the demand path.
        let result = run(&ChurnConfig {
            identity_enabled: false,
            ..smoke_config()
        })
        .unwrap();
        for e in &result.epochs {
            assert_eq!(e.identity_maps, 0);
            assert_eq!(e.identity_fallbacks, 0);
            assert!(e.demand_bytes > 0);
        }
    }

    #[test]
    fn fragmentation_decays_identity_success_under_pressure() {
        // The quick-scale default scenario is tuned to show the headline
        // effect: the pooled identity success rate of the last quarter is
        // visibly below the first quarter's.
        let config = ChurnConfig::default();
        let result = run(&config).unwrap();
        let n = result.epochs.len();
        let early = result.pooled_identity_rate(0..n / 4).unwrap();
        let late = result.pooled_identity_rate(3 * n / 4..n).unwrap();
        assert!(
            late < early - 0.05,
            "no decay: early {early:.3} late {late:.3}"
        );
        // Fragmentation is the mechanism: the largest contiguous free run
        // collapses over the horizon (the epoch-end snapshot of free-frame
        // *count* alone would not show this — memory exists, in shards).
        let first = &result.epochs[0];
        let late_best = result.epochs[3 * n / 4..]
            .iter()
            .map(|e| e.largest_run)
            .max()
            .unwrap();
        assert!(
            late_best < first.largest_run / 8,
            "no collapse: first {} late best {late_best}",
            first.largest_run
        );
    }
}
