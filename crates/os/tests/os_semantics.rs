//! OS-level semantics: identity mapping with fallback, fork/CoW, memory
//! reclamation, and the DVM-BM bitmap's coherence with the page tables.

use dvm_mem::MachineConfig;
use dvm_os::{MapFlavor, Os, OsConfig, VmaKind};
use dvm_types::{DvmError, PageSize, Permission, VirtAddr, PAGE_SIZE};

fn small_os() -> Os {
    Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 256 << 20,
        },
        ..OsConfig::default()
    })
}

#[test]
fn mmap_is_identity_until_memory_pressure() {
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 64 << 20,
        },
        ..OsConfig::default()
    });
    let pid = os.spawn().unwrap();
    let mut identity = 0;
    let mut fallback = 0;
    // Allocate 8 MiB chunks until even fallback fails.
    loop {
        match os.mmap(pid, 8 << 20, Permission::ReadWrite) {
            Ok(va) => {
                if os.process(pid).unwrap().vma_at(va).unwrap().is_identity() {
                    identity += 1;
                } else {
                    fallback += 1;
                }
            }
            Err(DvmError::OutOfMemory { .. }) => break,
            Err(e) => panic!("unexpected: {e}"),
        }
    }
    assert!(
        identity >= 6,
        "most of 64 MiB should identity-map: {identity}"
    );
    // The Figure 7 fallback path engaged before hard failure (the final
    // attempt may fall back and then fail outright, so the stat can
    // exceed the successful-fallback count).
    assert!(os.stats.identity_fallbacks as usize >= fallback);
}

#[test]
fn demand_paged_fallback_is_usable_and_non_identity() {
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 256 << 20,
        },
        identity_enabled: false, // ablation: force the fallback path
        ..OsConfig::default()
    });
    let pid = os.spawn().unwrap();
    let va = os.mmap(pid, 1 << 20, Permission::ReadWrite).unwrap();
    let (pa, _) = os.translate(pid, va).unwrap();
    assert_ne!(pa.raw(), va.raw(), "fallback must not be identity");
    os.write_u64(pid, va, 77).unwrap();
    assert_eq!(os.read_u64(pid, va).unwrap(), 77);
    assert_eq!(os.stats.identity_maps, 0);
}

#[test]
fn fork_shares_then_copies_on_write() {
    let mut os = small_os();
    let parent = os.spawn().unwrap();
    let buf = os.mmap(parent, 256 << 10, Permission::ReadWrite).unwrap();
    os.write_u64(parent, buf, 1).unwrap();
    os.write_u64(parent, buf + 8 * 4096, 2).unwrap();

    let child = os.fork(parent).unwrap();
    // Shared state visible in both.
    assert_eq!(os.read_u64(child, buf).unwrap(), 1);
    assert_eq!(os.read_u64(child, buf + 8 * 4096).unwrap(), 2);
    // Same physical frame before any write.
    assert_eq!(
        os.translate(parent, buf).unwrap().0,
        os.translate(child, buf).unwrap().0
    );

    // Child write -> private copy; parent unchanged.
    os.write_u64(child, buf, 100).unwrap();
    assert_eq!(os.read_u64(child, buf).unwrap(), 100);
    assert_eq!(os.read_u64(parent, buf).unwrap(), 1);
    assert_ne!(
        os.translate(parent, buf).unwrap().0,
        os.translate(child, buf).unwrap().0
    );
    // Untouched pages still shared.
    assert_eq!(
        os.translate(parent, buf + 8 * 4096).unwrap().0,
        os.translate(child, buf + 8 * 4096).unwrap().0
    );
    assert!(os.stats.cow_faults >= 1);
}

#[test]
fn parent_write_after_child_copy_reuses_in_place() {
    let mut os = small_os();
    let parent = os.spawn().unwrap();
    let buf = os.mmap(parent, 128 << 10, Permission::ReadWrite).unwrap();
    os.write_u64(parent, buf, 5).unwrap();
    let child = os.fork(parent).unwrap();
    os.write_u64(child, buf, 6).unwrap(); // child copies
    os.write_u64(parent, buf, 7).unwrap(); // parent now sole owner: reuse
    assert_eq!(os.read_u64(parent, buf).unwrap(), 7);
    assert_eq!(os.read_u64(child, buf).unwrap(), 6);
    // Parent's page is identity mapped again (reuse keeps VA==PA).
    assert_eq!(os.translate(parent, buf).unwrap().0.raw(), buf.raw());
    assert!(os.stats.cow_reuses >= 1);
}

#[test]
fn exit_reclaims_all_memory_even_after_fork() {
    let mut os = small_os();
    let free_at_boot = os.machine.allocator.free_frames_count();
    let parent = os.spawn().unwrap();
    let buf = os.mmap(parent, 1 << 20, Permission::ReadWrite).unwrap();
    os.write_u64(parent, buf, 9).unwrap();
    let child = os.fork(parent).unwrap();
    os.write_u64(child, buf, 10).unwrap(); // one CoW copy
    os.exit(child).unwrap();
    // Parent still works after child exit.
    assert_eq!(os.read_u64(parent, buf).unwrap(), 9);
    os.write_u64(parent, buf + 4096, 11).unwrap();
    os.exit(parent).unwrap();
    assert_eq!(
        os.machine.allocator.free_frames_count(),
        free_at_boot,
        "all frames (data, tables, CoW copies) reclaimed"
    );
    assert_eq!(os.machine.mem.resident_frames(), 0);
}

#[test]
fn munmap_allows_reallocation_of_the_same_pa() {
    let mut os = small_os();
    let pid = os.spawn().unwrap();
    let a = os.mmap(pid, 4 << 20, Permission::ReadWrite).unwrap();
    os.munmap(pid, a).unwrap();
    let b = os.mmap(pid, 4 << 20, Permission::ReadWrite).unwrap();
    assert_eq!(a, b, "lowest-address-first reuses the freed block");
    os.write_u64(pid, b, 3).unwrap();
    assert_eq!(os.read_u64(pid, b).unwrap(), 3);
}

#[test]
fn mprotect_changes_permissions_without_breaking_identity() {
    let mut os = small_os();
    let pid = os.spawn().unwrap();
    let buf = os.mmap(pid, 256 << 10, Permission::ReadWrite).unwrap();
    os.write_u64(pid, buf, 1).unwrap();
    os.mprotect(pid, buf, Permission::ReadOnly).unwrap();
    let (pa, perms) = os.translate(pid, buf).unwrap();
    assert_eq!(pa.raw(), buf.raw());
    assert_eq!(perms, Permission::ReadOnly);
    assert!(os.write_u64(pid, buf, 2).is_err());
    assert_eq!(os.read_u64(pid, buf).unwrap(), 1);
}

#[test]
fn bitmap_tracks_mappings_when_enabled() {
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 256 << 20,
        },
        maintain_bitmap: true,
        ..OsConfig::default()
    });
    let pid = os.spawn().unwrap();
    let buf = os.mmap(pid, 128 << 10, Permission::ReadWrite).unwrap();
    let bitmap = os.bitmap.expect("bitmap maintained");
    let vpn = buf.raw() / PAGE_SIZE;
    assert_eq!(bitmap.perms_of(&os.machine.mem, vpn), Permission::ReadWrite);
    os.munmap(pid, buf).unwrap();
    assert_eq!(bitmap.perms_of(&os.machine.mem, vpn), Permission::None);
}

#[test]
fn bitmap_goes_conservative_on_cow() {
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: 256 << 20,
        },
        maintain_bitmap: true,
        ..OsConfig::default()
    });
    let parent = os.spawn().unwrap();
    let buf = os.mmap(parent, 128 << 10, Permission::ReadWrite).unwrap();
    let vpn = buf.raw() / PAGE_SIZE;
    let child = os.fork(parent).unwrap();
    // Fork marks shared identity pages read-only in the bitmap.
    let bitmap = os.bitmap.expect("bitmap");
    assert_eq!(bitmap.perms_of(&os.machine.mem, vpn), Permission::ReadOnly);
    // After a CoW write the VA means different frames in the two
    // processes, so the system-wide bitmap must stay 00 forever.
    os.write_u64(child, buf, 1).unwrap();
    assert_eq!(bitmap.perms_of(&os.machine.mem, vpn), Permission::None);
}

#[test]
fn huge_page_flavours_pad_and_align() {
    for (flavor, granule) in [
        (MapFlavor::Paged(PageSize::Size2M), 2 << 20),
        (MapFlavor::Paged(PageSize::Size1G), 1 << 30),
    ] {
        let mut os = Os::new(OsConfig {
            machine: MachineConfig { mem_bytes: 4 << 30 },
            flavor,
            ..OsConfig::default()
        });
        let pid = os.spawn().unwrap();
        let va = os.mmap(pid, 3 << 20, Permission::ReadWrite).unwrap();
        assert_eq!(va.raw() % granule, 0, "{flavor:?} alignment");
        let vma_len = os.process(pid).unwrap().vma_at(va).unwrap().len;
        assert_eq!(vma_len % granule, 0, "{flavor:?} padding");
    }
}

#[test]
fn segment_kinds_are_recorded() {
    let mut os = small_os();
    let pid = os.spawn().unwrap();
    let code = os
        .mmap_kind(pid, 1 << 20, Permission::ReadExec, VmaKind::Code)
        .unwrap();
    let stack = os
        .mmap_kind(pid, 1 << 20, Permission::ReadWrite, VmaKind::Stack)
        .unwrap();
    let proc = os.process(pid).unwrap();
    assert_eq!(proc.vma_at(code).unwrap().kind, VmaKind::Code);
    assert_eq!(proc.vma_at(stack).unwrap().kind, VmaKind::Stack);
    // Executing code is allowed, writing it is not.
    assert_eq!(os.translate(pid, code).unwrap().1, Permission::ReadExec);
}

#[test]
fn aslr_varies_demand_area_between_seeds() {
    let mut bases = std::collections::HashSet::new();
    for seed in 0..8 {
        let mut os = Os::new(OsConfig {
            machine: MachineConfig {
                mem_bytes: 64 << 20,
            },
            identity_enabled: false,
            aslr_seed: seed,
            ..OsConfig::default()
        });
        let pid = os.spawn().unwrap();
        let va = os.mmap(pid, 1 << 20, Permission::ReadWrite).unwrap();
        bases.insert(va);
    }
    assert!(bases.len() >= 7, "ASLR should vary placements: {bases:?}");
    for va in bases {
        assert!(va >= VirtAddr::new(1 << 46), "demand area is high");
    }
}

#[test]
fn vfork_shares_the_address_space_without_copying() {
    let mut os = small_os();
    let parent = os.spawn().unwrap();
    let buf = os.mmap(parent, 128 << 10, Permission::ReadWrite).unwrap();
    os.write_u64(parent, buf, 1).unwrap();

    let child = os.vfork(parent).unwrap();
    // Same translation, full write permission (no CoW protection).
    assert_eq!(
        os.translate(parent, buf).unwrap(),
        os.translate(child, buf).unwrap()
    );
    // A child write is immediately visible to the parent.
    os.write_u64(child, buf, 2).unwrap();
    assert_eq!(os.read_u64(parent, buf).unwrap(), 2);
    // Identity mapping survives (the paper's point in recommending vfork).
    assert_eq!(os.translate(parent, buf).unwrap().0.raw(), buf.raw());
    assert_eq!(os.stats.cow_faults, 0);

    // Child exit releases nothing; the parent's memory still works.
    let free_before = os.machine.allocator.free_frames_count();
    os.exit(child).unwrap();
    assert_eq!(os.machine.allocator.free_frames_count(), free_before);
    assert_eq!(os.read_u64(parent, buf).unwrap(), 2);
}

#[test]
fn fork_exit_storm_reclaims_every_cow_frame() {
    // Multi-generation fork storm with writes from every generation and
    // exits in both orders (parent-first and child-first): after the last
    // process exits, the allocator must be back at its boot state — no
    // CoW frame may leak through the refcount bookkeeping.
    let mut os = small_os();
    let free_at_boot = os.machine.allocator.free_frames_count();
    let mut rng = dvm_sim::DetRng::new(0x57012);

    for round in 0..8u64 {
        let root = os.spawn().unwrap();
        let buf = os.mmap(root, 2 << 20, Permission::ReadWrite).unwrap();
        let pages = (2 << 20) / PAGE_SIZE;
        os.write_u64(root, buf, round).unwrap();

        // Three generations: root -> children -> grandchildren.
        let mut family = vec![root];
        for _ in 0..3 {
            let parent = family[rng.below(family.len() as u64) as usize];
            let child = os.fork(parent).unwrap();
            // The child privatizes a scattered set of pages.
            for k in 0..8 {
                let page = (k * 5 + round) % pages;
                os.write_u64(child, buf + page * PAGE_SIZE, child.into())
                    .unwrap();
            }
            family.push(child);
        }
        // Parent writes break CoW from the other side too.
        os.write_u64(root, buf + PAGE_SIZE, round).unwrap();

        // Exit in a round-dependent order so both parent-before-child and
        // child-before-parent paths are exercised.
        if round % 2 == 0 {
            family.reverse();
        }
        for pid in family {
            os.exit(pid).unwrap();
        }
        assert_eq!(
            os.machine.allocator.free_frames_count(),
            free_at_boot,
            "round {round}: CoW frames leaked after full-family exit"
        );
    }
    assert_eq!(os.machine.mem.resident_frames(), 0);
    assert!(os.stats.cow_faults > 0, "storm never exercised CoW");
}

#[test]
fn churn_scenario_drains_without_leaks() {
    // The long-horizon churn driver is itself a fork/exec/exit storm;
    // its end-of-run drain must return the allocator to boot state.
    let result = dvm_os::churn::run(&dvm_os::ChurnConfig {
        mem_bytes: 128 << 20,
        epochs: 12,
        arrivals_per_epoch: 5,
        cow_fork_fraction: 0.5,
        mean_lifetime_epochs: 3,
        regions_per_proc: 2,
        min_region_bytes: 64 << 10,
        max_region_bytes: 2 << 20,
        ..dvm_os::ChurnConfig::default()
    })
    .unwrap();
    assert_eq!(result.leaked_frames, 0, "drain left frames allocated");
    assert!(
        result.epochs.iter().map(|e| e.cow_breaks).sum::<u64>() > 0,
        "scenario never broke a CoW page"
    );
}
