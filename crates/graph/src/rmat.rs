//! Graph500-style R-MAT graph generation (Chakrabarti et al., SIAM'04),
//! the generator the paper uses for its synthetic inputs (§6.2), plus the
//! bipartite conversion of Satish et al. used for the synthetic
//! collaborative-filtering graphs.

use crate::csr::{Edge, Graph};
use dvm_sim::DetRng;

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
}

impl Default for RmatParams {
    /// The graph500 reference parameters (a=0.57, b=0.19, c=0.19, d=0.05).
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generate an R-MAT graph with `2^scale` vertices and
/// `edgefactor * 2^scale` directed edges (graph500 conventions).
///
/// Weights are uniform in `[1, 64)` so the same graphs drive both
/// unweighted (BFS/PageRank) and weighted (SSSP) workloads. Duplicate
/// edges and self-loops are kept, as in graph500.
///
/// # Examples
///
/// ```
/// use dvm_graph::{rmat, RmatParams};
/// let g = rmat(10, 16, RmatParams::default(), 42);
/// assert_eq!(g.num_vertices(), 1024);
/// assert_eq!(g.num_edges(), 16 * 1024);
/// ```
///
/// # Panics
///
/// Panics if `scale` is 0 or greater than 31.
pub fn rmat(scale: u32, edgefactor: u32, params: RmatParams, seed: u64) -> Graph {
    assert!((1..=31).contains(&scale), "scale out of range");
    let n = 1u32 << scale;
    let num_edges = n as u64 * edgefactor as u64;
    let mut rng = DetRng::new(seed);
    let mut edges = Vec::with_capacity(num_edges as usize);
    for _ in 0..num_edges {
        let (src, dst) = rmat_edge(scale, params, &mut rng);
        let weight = 1.0 + (rng.unit() * 63.0) as f32;
        edges.push(Edge { src, dst, weight });
    }
    Graph::from_edges(n, edges)
}

fn rmat_edge(scale: u32, params: RmatParams, rng: &mut DetRng) -> (u32, u32) {
    let mut src = 0u32;
    let mut dst = 0u32;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let r: f64 = rng.unit();
        if r < params.a {
            // top-left: neither bit set
        } else if r < params.a + params.b {
            dst |= 1;
        } else if r < params.a + params.b + params.c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    (src, dst)
}

/// Convert a general graph into a bipartite users->items rating graph
/// following the methodology of Satish et al. (§6.2): edge endpoints are
/// folded into a user set of `users` vertices and an item set of `items`
/// vertices appended after the users; weights become ratings in `[1, 5]`.
///
/// # Examples
///
/// ```
/// use dvm_graph::{rmat, to_bipartite, RmatParams};
/// let g = rmat(8, 8, RmatParams::default(), 1);
/// let b = to_bipartite(&g, 200, 50);
/// assert_eq!(b.num_vertices(), 250);
/// // Every edge goes from a user to an item.
/// for e in b.edges() {
///     assert!(e.src < 200);
///     assert!((200..250).contains(&e.dst));
/// }
/// ```
///
/// # Panics
///
/// Panics if `users == 0` or `items == 0`.
pub fn to_bipartite(graph: &Graph, users: u32, items: u32) -> Graph {
    assert!(users > 0 && items > 0, "bipartite sets must be non-empty");
    let edges = graph
        .edges()
        .iter()
        .map(|e| Edge {
            src: e.src % users,
            dst: users + e.dst % items,
            weight: 1.0 + (e.weight % 5.0).floor(),
        })
        .collect();
    Graph::from_edges(users + items, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let a = rmat(8, 8, RmatParams::default(), 7);
        let b = rmat(8, 8, RmatParams::default(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat(8, 8, RmatParams::default(), 1);
        let b = rmat(8, 8, RmatParams::default(), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn skewed_degree_distribution() {
        // RMAT graphs are hub-heavy: the max out-degree should far exceed
        // the mean (16).
        let g = rmat(12, 16, RmatParams::default(), 3);
        let max_deg = (0..g.num_vertices())
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        assert!(max_deg > 100, "max degree {max_deg} not hub-like");
    }

    #[test]
    fn uniform_params_are_not_skewed() {
        let uniform = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat(12, 16, uniform, 3);
        let max_deg = (0..g.num_vertices())
            .map(|v| g.out_degree(v))
            .max()
            .unwrap();
        assert!(max_deg < 60, "uniform max degree {max_deg} too skewed");
    }

    #[test]
    fn weights_in_range() {
        let g = rmat(6, 4, RmatParams::default(), 5);
        for e in g.edges() {
            assert!((1.0..64.0).contains(&e.weight));
        }
    }

    #[test]
    fn bipartite_ratings_in_range() {
        let g = rmat(8, 8, RmatParams::default(), 9);
        let b = to_bipartite(&g, 100, 20);
        for e in b.edges() {
            assert!((1.0..=5.0).contains(&e.weight));
        }
    }
}
