//! On-disk CSR dataset cache.
//!
//! `paper`/`full` sweeps regenerate multi-GiB R-MAT stand-ins on every
//! run, so sweep start-up used to be minutes of generator time before the
//! first experiment cycle ran. The cache stores each generated graph in a
//! versioned binary file keyed by `(dataset, divisor, seed)` so any later
//! run — including every worker process of a sharded sweep — loads the
//! CSR arrays back in seconds.
//!
//! The format is deliberately boring: a fixed little-endian header
//! carrying the key and an FNV-1a checksum, followed by the raw edge
//! list. A loaded graph is rebuilt through [`Graph::from_edges`], the
//! same constructor the generators use, so a cache hit is structurally
//! identical (`==`) to regeneration. Every validation failure — short
//! file, bad magic, version or key mismatch, checksum mismatch, edge out
//! of range — falls back to regeneration and rewrites the entry, so a
//! corrupt or stale cache can slow a run down but never change its
//! output.
//!
//! Writes go through a temp file plus atomic rename, which makes
//! concurrent writers filling the same cache directory safe: the temp
//! name is unique per process *and* per call ([`unique_tmp_path`]), so
//! neither shard workers nor `--jobs N` threads ever share a tmp file,
//! the last renamer wins with a complete file, and readers never
//! observe a partial entry. A failed store removes its tmp file.
//!
//! [`DatasetCache::with_budget`] additionally bounds the directory to a
//! byte budget: every hit and store is recorded in a [`CacheBudget`]
//! index, and after each store the least-recently-used entries are
//! evicted until the directory fits. An evicted entry simply misses and
//! regenerates on its next use, so a budgeted run's output is
//! byte-identical to an unbounded one.

use crate::budget::{unique_tmp_path, CacheBudget};
use crate::csr::{Edge, Graph};
use crate::datasets::Dataset;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bump whenever the on-disk layout (header or payload) changes; older
/// entries are then treated as misses and rewritten.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// `b"DVMGCSR\0"` — identifies a cache entry regardless of version.
const MAGIC: [u8; 8] = *b"DVMGCSR\0";

/// Header: magic + version + seed + divisor + num_vertices + num_edges +
/// payload checksum.
const HEADER_BYTES: usize = 8 + 4 + 8 + 4 + 4 + 8 + 8;

/// Bytes per serialized edge: src u32, dst u32, weight f32 bits.
const EDGE_BYTES: usize = 12;

/// A directory of cached dataset graphs plus hit/miss accounting.
///
/// # Examples
///
/// ```no_run
/// use dvm_graph::{Dataset, DatasetCache};
/// let cache = DatasetCache::new("results/.dataset-cache").unwrap();
/// let first = cache.get_or_generate(Dataset::Flickr, 1024); // miss: generates + stores
/// let again = cache.get_or_generate(Dataset::Flickr, 1024); // hit: loads from disk
/// assert_eq!(first, again);
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug)]
pub struct DatasetCache {
    dir: PathBuf,
    budget: CacheBudget,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl DatasetCache {
    /// Open (creating if needed) an unbounded cache directory.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::with_budget(dir, None)
    }

    /// Open a cache directory bounded to `max_bytes` of entries
    /// (`None` = unbounded). Accesses are recorded either way, so the
    /// LRU history is warm when a budget is first applied.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn with_budget(dir: impl Into<PathBuf>, max_bytes: Option<u64>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            budget: CacheBudget::new(dir.clone(), ".csr", max_bytes),
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// The eviction layer (always present; inert without a budget).
    pub fn budget(&self) -> &CacheBudget {
        &self.budget
    }

    /// Entries this process evicted to stay under the byte budget.
    pub fn evictions(&self) -> u64 {
        self.budget.evictions()
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Graphs served from disk.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Graphs that had to be generated (absent or invalid entries).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries that existed but failed validation (subset of misses).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The entry path for a key. One file per `(dataset, divisor)`; the
    /// seed and version ride in the header (and the name, so stale
    /// versions are simply different files).
    pub fn entry_path(&self, dataset: Dataset, divisor: u32) -> PathBuf {
        self.dir.join(format!(
            "{}_div{}_v{}.csr",
            dataset.short_name(),
            divisor,
            CACHE_FORMAT_VERSION
        ))
    }

    /// Load the graph for `(dataset, divisor)` from disk, or generate and
    /// store it. Never fails: every cache problem degrades to
    /// regeneration, and a failed store only warns on stderr.
    pub fn get_or_generate(&self, dataset: Dataset, divisor: u32) -> Graph {
        let path = self.entry_path(dataset, divisor);
        match std::fs::read(&path) {
            Ok(bytes) => match decode(&bytes, dataset.seed(), divisor) {
                Some(graph) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                        self.budget.record_access(name, bytes.len() as u64);
                    }
                    return graph;
                }
                None => {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                }
            },
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(_) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let graph = dataset.generate(divisor);
        if let Err(e) = self.store(&path, dataset.seed(), divisor, &graph) {
            eprintln!(
                "dataset-cache: failed to store {} ({e}); continuing uncached",
                path.display()
            );
        }
        graph
    }

    /// Serialize `graph` to `path` via a temp file + atomic rename,
    /// then record the entry and evict over-budget LRU entries.
    fn store(&self, path: &Path, seed: u64, divisor: u32, graph: &Graph) -> io::Result<()> {
        let payload = encode_payload(graph);
        let mut bytes = Vec::with_capacity(HEADER_BYTES + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&seed.to_le_bytes());
        bytes.extend_from_slice(&divisor.to_le_bytes());
        bytes.extend_from_slice(&graph.num_vertices().to_le_bytes());
        bytes.extend_from_slice(&graph.num_edges().to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        // Temp name unique per process *and* per call, so concurrent
        // writers (shard processes or --jobs threads racing on the same
        // entry) never interleave writes; rename is atomic on POSIX.
        let tmp = unique_tmp_path(path);
        let written = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, path));
        if written.is_err() {
            // Never leak a tmp file: a partial write or failed rename
            // leaves it behind otherwise.
            let _ = std::fs::remove_file(&tmp);
            return written;
        }
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            self.budget.record_access(name, bytes.len() as u64);
        }
        self.budget.enforce();
        Ok(())
    }
}

/// The edge array as raw little-endian bytes, in CSR order.
fn encode_payload(graph: &Graph) -> Vec<u8> {
    let mut payload = Vec::with_capacity(graph.edges().len() * EDGE_BYTES);
    for e in graph.edges() {
        payload.extend_from_slice(&e.src.to_le_bytes());
        payload.extend_from_slice(&e.dst.to_le_bytes());
        payload.extend_from_slice(&e.weight.to_bits().to_le_bytes());
    }
    payload
}

/// Validate and decode a cache entry; `None` means "treat as a miss".
fn decode(bytes: &[u8], want_seed: u64, want_divisor: u32) -> Option<Graph> {
    if bytes.len() < HEADER_BYTES || bytes[..8] != MAGIC {
        return None;
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
    if u32_at(8) != CACHE_FORMAT_VERSION || u64_at(12) != want_seed || u32_at(20) != want_divisor {
        return None;
    }
    let num_vertices = u32_at(24);
    let num_edges = u64_at(28);
    let checksum = u64_at(36);
    let payload = &bytes[HEADER_BYTES..];
    if payload.len() as u64 != num_edges.checked_mul(EDGE_BYTES as u64)?
        || fnv1a(payload) != checksum
    {
        return None;
    }
    let mut edges = Vec::with_capacity(num_edges as usize);
    for chunk in payload.chunks_exact(EDGE_BYTES) {
        let src = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
        let dst = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        if src >= num_vertices || dst >= num_vertices {
            return None;
        }
        edges.push(Edge {
            src,
            dst,
            weight: f32::from_bits(u32::from_le_bytes(chunk[8..12].try_into().unwrap())),
        });
    }
    Some(Graph::from_edges(num_vertices, edges))
}

/// 64-bit FNV-1a over `bytes` — cheap, dependency-free corruption check.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dvm-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn decode_rejects_truncation_and_bit_flips() {
        let dir = scratch_dir("flip");
        let cache = DatasetCache::new(&dir).unwrap();
        let graph = cache.get_or_generate(Dataset::Flickr, 1024);
        let path = cache.entry_path(Dataset::Flickr, 1024);
        let bytes = std::fs::read(&path).unwrap();
        assert!(decode(&bytes, Dataset::Flickr.seed(), 1024).is_some());
        // Truncated payload.
        assert!(decode(&bytes[..bytes.len() - 1], Dataset::Flickr.seed(), 1024).is_none());
        // A single flipped payload bit fails the checksum.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(decode(&corrupt, Dataset::Flickr.seed(), 1024).is_none());
        // Wrong key.
        assert!(decode(&bytes, Dataset::Flickr.seed() ^ 1, 1024).is_none());
        assert!(decode(&bytes, Dataset::Flickr.seed(), 512).is_none());
        drop(graph);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_then_decode_round_trips() {
        let dir = scratch_dir("roundtrip");
        let cache = DatasetCache::new(&dir).unwrap();
        let generated = Dataset::Netflix.generate(1024);
        let loaded = cache.get_or_generate(Dataset::Netflix, 1024);
        assert_eq!(generated, loaded);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.get_or_generate(Dataset::Netflix, 1024), generated);
        assert_eq!(cache.hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
