//! Graph substrate for the Graphicionado-style accelerator: CSR graphs,
//! the graph500 R-MAT generator, the Satish-et-al bipartite conversion,
//! and a registry of the paper's Table 3 datasets with synthetic
//! stand-ins.
//!
//! # Examples
//!
//! ```
//! use dvm_graph::{Dataset, rmat, RmatParams};
//!
//! // A scaled-down Flickr stand-in (1/64 of the published size).
//! let g = Dataset::Flickr.generate(64);
//! assert!(g.num_edges() > 100_000);
//!
//! // Or a raw graph500 R-MAT graph.
//! let g = rmat(12, 16, RmatParams::default(), 42);
//! assert_eq!(g.num_vertices(), 4096);
//! ```

pub mod budget;
pub mod cache;
pub mod csr;
pub mod datasets;
pub mod rmat;

pub use budget::{unique_tmp_path, BudgetEntry, CacheBudget, BUDGET_LOG};
pub use cache::{DatasetCache, CACHE_FORMAT_VERSION};
pub use csr::{Edge, Graph};
pub use datasets::{Dataset, DatasetSpec};
pub use rmat::{rmat, to_bipartite, RmatParams};
