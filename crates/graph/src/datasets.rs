//! The paper's input graphs (Table 3) and their synthetic stand-ins.
//!
//! We do not ship the Flickr/Wikipedia/LiveJournal/Netflix datasets (they
//! are external artifacts); instead each dataset is regenerated as an
//! R-MAT graph matched to its published vertex/edge counts — the paper
//! itself uses R-MAT for S24, Bip1 and Bip2, and R-MAT's skewed degree
//! distribution is the standard proxy for such social/web graphs. A
//! `scale_div` parameter shrinks every dataset by a power of two so the
//! full evaluation pipeline runs at laptop scale; the TLB-relevant
//! property (working set far exceeding TLB reach) holds at the default
//! divisor, and harnesses accept `--scale full` for the real sizes.

use crate::csr::Graph;
use crate::rmat::{rmat, to_bipartite, RmatParams};

/// Published properties of one input graph (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Vertices in the paper's dataset (users + items for bipartite).
    pub vertices: u64,
    /// Directed edges (ratings for bipartite).
    pub edges: u64,
    /// Users/items split for bipartite datasets.
    pub bipartite: Option<(u64, u64)>,
    /// Heap size the paper reports, in MiB.
    pub heap_mib: u64,
}

/// One of the paper's evaluation inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Flickr (FR).
    Flickr,
    /// Wikipedia (Wiki).
    Wikipedia,
    /// LiveJournal (LJ).
    LiveJournal,
    /// RMAT Scale 24 (S24).
    Rmat24,
    /// Netflix (NF).
    Netflix,
    /// Synthetic Bipartite 1 (Bip1).
    Bip1,
    /// Synthetic Bipartite 2 (Bip2).
    Bip2,
}

impl Dataset {
    /// Inputs used by BFS/PageRank/SSSP (Figure 8's first three groups).
    pub const GRAPH_SET: [Dataset; 4] = [
        Dataset::Flickr,
        Dataset::Wikipedia,
        Dataset::LiveJournal,
        Dataset::Rmat24,
    ];

    /// Inputs used by Collaborative Filtering.
    pub const CF_SET: [Dataset; 3] = [Dataset::Netflix, Dataset::Bip1, Dataset::Bip2];

    /// All inputs.
    pub const ALL: [Dataset; 7] = [
        Dataset::Flickr,
        Dataset::Wikipedia,
        Dataset::LiveJournal,
        Dataset::Rmat24,
        Dataset::Netflix,
        Dataset::Bip1,
        Dataset::Bip2,
    ];

    /// The paper's abbreviation.
    pub fn short_name(&self) -> &'static str {
        match self {
            Dataset::Flickr => "FR",
            Dataset::Wikipedia => "Wiki",
            Dataset::LiveJournal => "LJ",
            Dataset::Rmat24 => "S24",
            Dataset::Netflix => "NF",
            Dataset::Bip1 => "Bip1",
            Dataset::Bip2 => "Bip2",
        }
    }

    /// Published properties (paper Table 3).
    pub fn spec(&self) -> DatasetSpec {
        match self {
            Dataset::Flickr => DatasetSpec {
                vertices: 820_000,
                edges: 9_840_000,
                bipartite: None,
                heap_mib: 288,
            },
            Dataset::Wikipedia => DatasetSpec {
                vertices: 3_560_000,
                edges: 84_750_000,
                bipartite: None,
                heap_mib: 1290,
            },
            Dataset::LiveJournal => DatasetSpec {
                vertices: 4_840_000,
                edges: 68_990_000,
                bipartite: None,
                heap_mib: 2202,
            },
            Dataset::Rmat24 => DatasetSpec {
                vertices: 1 << 24,
                edges: 16 << 24,
                bipartite: None,
                heap_mib: 6953,
            },
            Dataset::Netflix => DatasetSpec {
                vertices: 480_000 + 18_000,
                edges: 99_070_000,
                bipartite: Some((480_000, 18_000)),
                heap_mib: 2447,
            },
            Dataset::Bip1 => DatasetSpec {
                vertices: 969_000 + 100_000,
                edges: 53_820_000,
                bipartite: Some((969_000, 100_000)),
                heap_mib: 1362,
            },
            Dataset::Bip2 => DatasetSpec {
                vertices: 2_900_000 + 100_000,
                edges: 232_700_000,
                bipartite: Some((2_900_000, 100_000)),
                heap_mib: 5796,
            },
        }
    }

    /// `true` for the rating (users -> items) graphs.
    pub fn is_bipartite(&self) -> bool {
        self.spec().bipartite.is_some()
    }

    /// The R-MAT seed [`Dataset::generate`] uses — part of the on-disk
    /// cache key, so stale entries are detected if seeding ever changes.
    pub fn seed(&self) -> u64 {
        0xD5A7 ^ (*self as u64)
    }

    /// Generate the synthetic stand-in, shrunk by `scale_div` (a power of
    /// two; 1 = full published size). Deterministic per dataset.
    ///
    /// # Panics
    ///
    /// Panics if `scale_div` is zero or not a power of two.
    pub fn generate(&self, scale_div: u32) -> Graph {
        assert!(
            scale_div > 0 && scale_div.is_power_of_two(),
            "scale_div must be a power of two"
        );
        let spec = self.spec();
        let seed = self.seed();
        match spec.bipartite {
            None => {
                let target_v = (spec.vertices / scale_div as u64).max(1024);
                let scale = 63 - target_v.next_power_of_two().leading_zeros();
                let edgefactor = ((spec.edges / spec.vertices) as u32).max(1);
                rmat(scale, edgefactor, RmatParams::default(), seed)
            }
            Some((users, items)) => {
                let users = (users / scale_div as u64).max(1024) as u32;
                let items = (items / scale_div as u64).max(256) as u32;
                let edges = spec.edges / scale_div as u64;
                // Generate an R-MAT base with enough edges, then fold.
                let base_scale = (31 - users.next_power_of_two().leading_zeros()).max(10);
                let edgefactor = (edges >> base_scale).max(1) as u32;
                let base = rmat(base_scale, edgefactor, RmatParams::default(), seed);
                to_bipartite(&base, users, items)
            }
        }
    }
}

impl core::fmt::Display for Dataset {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table3() {
        assert_eq!(Dataset::Flickr.spec().edges, 9_840_000);
        assert_eq!(Dataset::Rmat24.spec().vertices, 1 << 24);
        assert_eq!(Dataset::Netflix.spec().bipartite, Some((480_000, 18_000)));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Flickr.generate(64);
        let b = Dataset::Flickr.generate(64);
        assert_eq!(a, b);
    }

    #[test]
    fn scaled_sizes_track_spec() {
        let g = Dataset::Flickr.generate(16);
        let spec = Dataset::Flickr.spec();
        // Vertex count is the next power of two below vertices/16.
        assert!(g.num_vertices() as u64 >= spec.vertices / 64);
        assert!(g.num_vertices() as u64 <= spec.vertices / 8);
        // Edge factor preserved within rounding.
        let ef = g.num_edges() / g.num_vertices() as u64;
        assert_eq!(ef, spec.edges / spec.vertices);
    }

    #[test]
    fn bipartite_datasets_generate_bipartite() {
        let g = Dataset::Netflix.generate(64);
        let (users, _items) = Dataset::Netflix.spec().bipartite.unwrap();
        let scaled_users = (users / 64) as u32;
        for e in g.edges().iter().take(1000) {
            assert!(e.src < scaled_users);
            assert!(e.dst >= scaled_users);
        }
    }

    #[test]
    fn netflix_keeps_small_item_side() {
        // NF's temporal locality (paper §6.3.1) comes from the tiny movie
        // side; the stand-in must preserve users >> items.
        let spec = Dataset::Netflix.spec();
        let (users, items) = spec.bipartite.unwrap();
        assert!(users / items > 20);
    }

    #[test]
    fn all_datasets_generate_at_tiny_scale() {
        for ds in Dataset::ALL {
            let g = ds.generate(1024);
            assert!(g.num_vertices() >= 1024, "{ds}");
            assert!(g.num_edges() > 0, "{ds}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_divisor() {
        Dataset::Flickr.generate(3);
    }
}
