//! Byte-budgeted LRU eviction for the on-disk caches.
//!
//! Both on-disk caches — the dataset cache in this crate and the report
//! cache in `dvm-bench` — grow without bound by default, and a `full`
//! scale sweep writes multi-GiB entries. A [`CacheBudget`] bounds a
//! cache directory to `max_bytes` of *entry* files: after every store
//! the owning cache calls [`CacheBudget::enforce`], which unlinks the
//! least-recently-used complete entries until the directory fits.
//!
//! Recency is tracked in a small append-only index (`budget.log` inside
//! the cache directory). Every hit or store appends one `A` (access)
//! line; evictions append `E` lines so the eviction total survives
//! across processes; when the log grows past a threshold it is
//! compacted (tmp file + atomic rename) down to a `C` carry-over line
//! plus one `A` line per present entry.
//!
//! Concurrency model — the budget must be safe under the same
//! multi-process regime as the caches themselves (`--shards N` workers
//! sharing one directory):
//!
//! * Appends are single `write` calls on an `O_APPEND` handle, so
//!   concurrent writers never interleave within a line.
//! * Eviction only ever unlinks *complete* entries (files matching the
//!   cache's entry suffix), never in-flight `*.tmp*` files. A reader
//!   holding an evicted file open keeps its data (POSIX unlink); a
//!   reader that opens after the unlink sees a miss and regenerates —
//!   the caches' existing fallback path, so output bytes never change.
//! * A compaction racing an append can drop that one access record;
//!   the entry then merely looks colder than it is. LRU order is
//!   advisory — losing it costs a regeneration, never correctness.
//!
//! Orphaned temp files (left by a crashed or killed writer) are swept
//! by [`CacheBudget::sweep_orphans`]: any `*.tmp*` file whose mtime
//! predates this process's start by more than a grace period is
//! removed. The grace period keeps a live writer's in-flight tmp —
//! whose mtime advances as it is written — out of reach.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// The recency index's file name inside the cache directory. Does not
/// end in any cache's entry suffix, so scans never mistake it for an
/// entry.
pub const BUDGET_LOG: &str = "budget.log";

/// Compact the log once it exceeds this many bytes.
const LOG_COMPACT_BYTES: u64 = 64 * 1024;

/// A `*.tmp*` file is an orphan only if its mtime predates the budget's
/// creation by at least this many seconds — a live writer in another
/// process keeps its tmp's mtime fresh while `fs::write` runs.
const ORPHAN_GRACE_SECS: u64 = 60;

/// Seconds since the Unix epoch, saturating at 0 on pre-epoch clocks.
fn unix_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// A collision-free temp path next to `path`: unique per process (pid)
/// *and* per call (atomic counter), so two threads of one `--jobs N`
/// process storing the same entry never interleave writes on one tmp
/// file and rename a torn result into place.
pub fn unique_tmp_path(path: &Path) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let token = NEXT.fetch_add(1, Ordering::Relaxed);
    path.with_extension(format!("tmp{}-{token}", std::process::id()))
}

/// One complete entry as the budget sees it, for `--cache-stats` dumps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetEntry {
    /// Entry file name inside the cache directory.
    pub name: String,
    /// Size on disk.
    pub bytes: u64,
    /// Seconds since the file was last written.
    pub age_secs: u64,
    /// Seconds since the last recorded access (hit or store), if the
    /// index has one.
    pub last_use_secs: Option<u64>,
}

/// Recency state replayed from the on-disk index.
struct LogState {
    /// name -> (line rank of the latest access, its timestamp). Higher
    /// rank = more recently used.
    recency: HashMap<String, (u64, u64)>,
    /// Evictions recorded by every process that ever shared this
    /// directory (`E` lines plus compaction `C` carry-overs).
    evictions: u64,
}

/// LRU byte budget over one cache directory. See the module docs for
/// the concurrency contract.
#[derive(Debug)]
pub struct CacheBudget {
    dir: PathBuf,
    entry_suffix: &'static str,
    max_bytes: Option<u64>,
    epoch_secs: u64,
    evictions: AtomicU64,
    /// Serializes this process's log writes and eviction scans; cross-
    /// process safety comes from `O_APPEND` and atomic renames instead.
    lock: Mutex<()>,
}

impl CacheBudget {
    /// A budget over `dir`, treating files ending in `entry_suffix`
    /// (e.g. `".csr"`) as entries. `max_bytes: None` disables eviction
    /// but still records accesses, so a later budgeted run inherits
    /// real recency history.
    pub fn new(
        dir: impl Into<PathBuf>,
        entry_suffix: &'static str,
        max_bytes: Option<u64>,
    ) -> Self {
        Self {
            dir: dir.into(),
            entry_suffix,
            max_bytes,
            epoch_secs: unix_secs(),
            evictions: AtomicU64::new(0),
            lock: Mutex::new(()),
        }
    }

    /// The byte budget, if one is set.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// Entries this process evicted.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries evicted by every process that ever shared this
    /// directory, replayed from the index.
    pub fn evictions_total(&self) -> u64 {
        self.read_log().evictions
    }

    fn log_path(&self) -> PathBuf {
        self.dir.join(BUDGET_LOG)
    }

    /// Append one line to the index. Errors are swallowed: the index is
    /// advisory, and a cache must never fail a run over bookkeeping.
    fn append_line(&self, line: &str) {
        let result = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.log_path())
            .and_then(|mut file| file.write_all(line.as_bytes()));
        let _ = result;
    }

    /// Record a hit or store of `name` (`bytes` on disk) and compact
    /// the index if it has grown past the threshold.
    pub fn record_access(&self, name: &str, bytes: u64) {
        let _guard = self.lock.lock().expect("budget lock poisoned");
        self.append_line(&format!("A {} {bytes} {name}\n", unix_secs()));
        let too_big = std::fs::metadata(self.log_path())
            .map(|m| m.len() > LOG_COMPACT_BYTES)
            .unwrap_or(false);
        if too_big {
            self.compact();
        }
    }

    /// Replay the index. Unparseable lines (torn tail after a crash,
    /// future extensions) are skipped.
    fn read_log(&self) -> LogState {
        let mut state = LogState {
            recency: HashMap::new(),
            evictions: 0,
        };
        let Ok(text) = std::fs::read_to_string(self.log_path()) else {
            return state;
        };
        for (rank, line) in text.lines().enumerate() {
            let mut fields = line.split_ascii_whitespace();
            match fields.next() {
                Some("A") => {
                    let ts = fields.next().and_then(|f| f.parse::<u64>().ok());
                    let _bytes = fields.next();
                    let name = fields.next();
                    if let (Some(ts), Some(name)) = (ts, name) {
                        state.recency.insert(name.to_string(), (rank as u64, ts));
                    }
                }
                Some("E") => state.evictions += 1,
                Some("C") => {
                    if let Some(n) = fields.next().and_then(|f| f.parse::<u64>().ok()) {
                        state.evictions += n;
                    }
                }
                _ => {}
            }
        }
        state
    }

    /// Rewrite the index as one `C` carry-over line plus one `A` line
    /// per present entry, in recency order (tmp file + atomic rename).
    /// Caller holds the lock.
    fn compact(&self) {
        let state = self.read_log();
        let mut lines = vec![format!("C {}\n", state.evictions)];
        let mut present: Vec<(u64, u64, String)> = self
            .scan_entries()
            .into_iter()
            .filter_map(|(name, bytes, _)| {
                state
                    .recency
                    .get(&name)
                    .map(|&(rank, ts)| (rank, ts, format!("A {ts} {bytes} {name}\n")))
            })
            .collect();
        present.sort();
        lines.extend(present.into_iter().map(|(_, _, line)| line));
        let log = self.log_path();
        let tmp = unique_tmp_path(&log);
        let result =
            std::fs::write(&tmp, lines.concat()).and_then(|()| std::fs::rename(&tmp, &log));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// `(name, bytes, mtime_secs)` of every complete entry on disk.
    fn scan_entries(&self) -> Vec<(String, u64, u64)> {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut entries = Vec::new();
        for entry in dir.filter_map(Result::ok) {
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.ends_with(self.entry_suffix) {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            if !meta.is_file() {
                continue;
            }
            let mtime = meta
                .modified()
                .ok()
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .map_or(0, |d| d.as_secs());
            entries.push((name, meta.len(), mtime));
        }
        entries
    }

    /// Every complete entry with its size, age and last recorded use,
    /// most recently used first — the `--cache-stats` view.
    pub fn entries(&self) -> Vec<BudgetEntry> {
        let state = self.read_log();
        let now = unix_secs();
        let mut scanned = self.scan_entries();
        // Most recent first: by log rank descending, unknowns last,
        // name as the deterministic tie-break.
        scanned.sort_by(|a, b| {
            let rank = |name: &str| state.recency.get(name).map(|&(rank, _)| rank);
            (rank(&b.0), &a.0).cmp(&(rank(&a.0), &b.0))
        });
        scanned
            .into_iter()
            .map(|(name, bytes, mtime)| BudgetEntry {
                last_use_secs: state
                    .recency
                    .get(&name)
                    .map(|&(_, ts)| now.saturating_sub(ts)),
                age_secs: now.saturating_sub(mtime),
                name,
                bytes,
            })
            .collect()
    }

    /// Total bytes of complete entries currently on disk.
    pub fn used_bytes(&self) -> u64 {
        self.scan_entries().iter().map(|&(_, bytes, _)| bytes).sum()
    }

    /// Evict least-recently-used entries until the directory fits the
    /// budget (no-op without one). Also sweeps orphaned temp files.
    /// Returns the number of entries evicted by this call.
    pub fn enforce(&self) -> u64 {
        let Some(max) = self.max_bytes else { return 0 };
        let _guard = self.lock.lock().expect("budget lock poisoned");
        self.sweep_orphans_locked();
        let mut entries = self.scan_entries();
        let mut total: u64 = entries.iter().map(|&(_, bytes, _)| bytes).sum();
        if total <= max {
            return 0;
        }
        let state = self.read_log();
        // Oldest first: entries the index has never seen rank before
        // everything it has, ordered by mtime then name.
        entries.sort_by(|a, b| {
            let rank = |name: &str| state.recency.get(name).map(|&(rank, _)| rank);
            (rank(&a.0), a.2, &a.0).cmp(&(rank(&b.0), b.2, &b.0))
        });
        let mut evicted = 0;
        for (name, bytes, _) in entries {
            if total <= max {
                break;
            }
            if std::fs::remove_file(self.dir.join(&name)).is_ok() {
                evicted += 1;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.append_line(&format!("E {} {name}\n", unix_secs()));
            }
            // A failed unlink means another process evicted it first;
            // either way those bytes are gone.
            total = total.saturating_sub(bytes);
        }
        evicted
    }

    /// Remove `*.tmp*` files abandoned by earlier runs (crashed or
    /// killed writers). Returns how many were removed.
    pub fn sweep_orphans(&self) -> usize {
        let _guard = self.lock.lock().expect("budget lock poisoned");
        self.sweep_orphans_locked()
    }

    fn sweep_orphans_locked(&self) -> usize {
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in dir.filter_map(Result::ok) {
            let path = entry.path();
            let is_tmp = path
                .extension()
                .and_then(|e| e.to_str())
                .is_some_and(|e| e.starts_with("tmp"));
            if !is_tmp {
                continue;
            }
            let stale = entry
                .metadata()
                .ok()
                .and_then(|m| m.modified().ok())
                .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                .is_some_and(|mtime| mtime.as_secs() + ORPHAN_GRACE_SECS < self.epoch_secs);
            if stale && std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::FileTimes;
    use std::time::Duration;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dvm-budget-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn put(dir: &Path, name: &str, bytes: usize) {
        std::fs::write(dir.join(name), vec![0u8; bytes]).unwrap();
    }

    fn names(budget: &CacheBudget) -> Vec<String> {
        let mut names: Vec<String> = budget.entries().into_iter().map(|e| e.name).collect();
        names.sort();
        names
    }

    #[test]
    fn unique_tmp_paths_never_collide() {
        let path = Path::new("/cache/FR_div4_v1.csr");
        let a = unique_tmp_path(path);
        let b = unique_tmp_path(path);
        assert_ne!(a, b);
        for tmp in [&a, &b] {
            let ext = tmp.extension().unwrap().to_str().unwrap();
            assert!(ext.starts_with("tmp"), "tmp extension, got {ext}");
        }
    }

    #[test]
    fn eviction_is_lru_and_respects_the_budget() {
        let dir = scratch("lru");
        let budget = CacheBudget::new(&dir, ".csr", Some(250));
        for name in ["a.csr", "b.csr", "c.csr"] {
            put(&dir, name, 100);
            budget.record_access(name, 100);
        }
        // Re-touch the oldest so "b" becomes the LRU victim.
        budget.record_access("a.csr", 100);
        assert_eq!(budget.enforce(), 1);
        assert_eq!(names(&budget), ["a.csr", "c.csr"]);
        assert!(budget.used_bytes() <= 250);
        assert_eq!(budget.evictions(), 1);
        assert_eq!(budget.evictions_total(), 1);
        // Already under budget: nothing more to do.
        assert_eq!(budget.enforce(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unindexed_entries_evict_first_by_mtime() {
        let dir = scratch("unindexed");
        let budget = CacheBudget::new(&dir, ".csr", Some(150));
        put(&dir, "old.csr", 100);
        let old = std::fs::File::options()
            .write(true)
            .open(dir.join("old.csr"))
            .unwrap();
        old.set_times(FileTimes::new().set_modified(SystemTime::now() - Duration::from_secs(3600)))
            .unwrap();
        put(&dir, "used.csr", 100);
        budget.record_access("used.csr", 100);
        assert_eq!(budget.enforce(), 1);
        assert_eq!(names(&budget), ["used.csr"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enforce_ignores_foreign_files_and_no_budget_means_no_eviction() {
        let dir = scratch("foreign");
        put(&dir, "x.csr", 500);
        put(&dir, "keep.json", 500);
        let unbounded = CacheBudget::new(&dir, ".csr", None);
        unbounded.record_access("x.csr", 500);
        assert_eq!(unbounded.enforce(), 0);
        let capped = CacheBudget::new(&dir, ".csr", Some(100));
        assert_eq!(capped.enforce(), 1);
        // Only the matching entry was eligible; the other file and the
        // index survive even though the directory is over budget.
        assert!(dir.join("keep.json").exists());
        assert!(dir.join(BUDGET_LOG).exists());
        assert!(!dir.join("x.csr").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_entries_report_size_age_and_last_use() {
        let dir = scratch("stats");
        let budget = CacheBudget::new(&dir, ".csr", None);
        put(&dir, "seen.csr", 40);
        put(&dir, "unseen.csr", 60);
        budget.record_access("seen.csr", 40);
        let entries = budget.entries();
        assert_eq!(entries.len(), 2);
        // Most recently used first; the never-accessed entry trails.
        assert_eq!(entries[0].name, "seen.csr");
        assert_eq!(entries[0].bytes, 40);
        assert!(entries[0].last_use_secs.is_some());
        assert_eq!(entries[1].name, "unseen.csr");
        assert_eq!(entries[1].last_use_secs, None);
        assert_eq!(budget.used_bytes(), 100);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_sweep_removes_stale_tmp_but_keeps_live_ones() {
        let dir = scratch("orphans");
        let budget = CacheBudget::new(&dir, ".csr", None);
        put(&dir, "entry.csr", 10);
        put(&dir, "entry.tmp123-0", 10);
        put(&dir, "fresh.tmp456-1", 10);
        let stale = std::fs::File::options()
            .write(true)
            .open(dir.join("entry.tmp123-0"))
            .unwrap();
        stale
            .set_times(FileTimes::new().set_modified(SystemTime::now() - Duration::from_secs(7200)))
            .unwrap();
        assert_eq!(budget.sweep_orphans(), 1);
        assert!(!dir.join("entry.tmp123-0").exists());
        // A tmp younger than the grace period is an in-flight write.
        assert!(dir.join("fresh.tmp456-1").exists());
        assert!(dir.join("entry.csr").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_bounds_the_log_and_keeps_state() {
        let dir = scratch("compact");
        let budget = CacheBudget::new(&dir, ".csr", Some(50));
        put(&dir, "hot.csr", 10);
        put(&dir, "cold.csr", 60);
        budget.record_access("cold.csr", 60);
        budget.record_access("hot.csr", 10);
        assert_eq!(budget.enforce(), 1, "cold entry evicted over budget");
        // Hammer the index well past the compaction threshold.
        let line_guess = 40u64;
        for _ in 0..(LOG_COMPACT_BYTES / line_guess + 64) {
            budget.record_access("hot.csr", 10);
        }
        let log_len = std::fs::metadata(dir.join(BUDGET_LOG)).unwrap().len();
        assert!(
            log_len <= LOG_COMPACT_BYTES + 2 * line_guess,
            "log stayed bounded, got {log_len}"
        );
        // The carried-over eviction count and recency survive.
        assert_eq!(budget.evictions_total(), 1);
        let entries = budget.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "hot.csr");
        assert!(entries[0].last_use_secs.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_log_lines_are_skipped() {
        let dir = scratch("torn");
        std::fs::write(
            dir.join(BUDGET_LOG),
            "A 100 10 a.csr\nE 100\ngarbage line\nC notanumber\nA 200 20 b.cs",
        )
        .unwrap();
        let budget = CacheBudget::new(&dir, ".csr", None);
        put(&dir, "a.csr", 10);
        assert_eq!(budget.evictions_total(), 1);
        let entries = budget.entries();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].last_use_secs.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
