//! Compressed sparse row (CSR) graph representation, matching the layout
//! Graphicionado streams: an edge array of `(srcid, dstid, weight)`
//! 3-tuples sorted by source, plus an offset array indexing each vertex's
//! out-edges (§6.1).

/// One directed edge as stored in the accelerator's edge list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex id.
    pub src: u32,
    /// Destination vertex id.
    pub dst: u32,
    /// Edge weight (1.0 for unweighted workloads; a rating for CF).
    pub weight: f32,
}

/// A directed graph in CSR form.
///
/// # Examples
///
/// ```
/// use dvm_graph::{Edge, Graph};
/// let g = Graph::from_edges(3, vec![
///     Edge { src: 0, dst: 1, weight: 1.0 },
///     Edge { src: 0, dst: 2, weight: 2.0 },
///     Edge { src: 2, dst: 0, weight: 3.0 },
/// ]);
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.out_edges(0).len(), 2);
/// assert_eq!(g.out_edges(1).len(), 0);
/// assert_eq!(g.out_edges(2)[0].dst, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    num_vertices: u32,
    /// `offsets[v]..offsets[v+1]` indexes `edges` for vertex `v`.
    offsets: Vec<u64>,
    edges: Vec<Edge>,
}

impl Graph {
    /// Build a CSR graph from an edge list (any order; sorted internally).
    ///
    /// # Panics
    ///
    /// Panics if an edge references a vertex `>= num_vertices`.
    pub fn from_edges(num_vertices: u32, mut edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(
                e.src < num_vertices && e.dst < num_vertices,
                "edge ({}, {}) beyond {num_vertices} vertices",
                e.src,
                e.dst
            );
        }
        edges.sort_by_key(|e| (e.src, e.dst));
        let mut offsets = vec![0u64; num_vertices as usize + 1];
        for e in &edges {
            offsets[e.src as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        Self {
            num_vertices,
            offsets,
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Out-edges of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices`.
    pub fn out_edges(&self, v: u32) -> &[Edge] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Out-degree of vertex `v`.
    pub fn out_degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// The full edge array in CSR order (what the accelerator streams).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The offset array (`num_vertices + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Reverse all edges (used to build pull-based vertex programs).
    pub fn transpose(&self) -> Graph {
        let edges = self
            .edges
            .iter()
            .map(|e| Edge {
                src: e.dst,
                dst: e.src,
                weight: e.weight,
            })
            .collect();
        Graph::from_edges(self.num_vertices, edges)
    }

    /// Approximate bytes the accelerator-resident data occupies: edge list
    /// (12 B/edge), offsets (8 B/vertex) and one 4-byte property plus one
    /// 4-byte temporary per vertex. Used for dataset heap-size reporting.
    pub fn footprint_bytes(&self) -> u64 {
        self.num_edges() * 12 + (self.num_vertices as u64 + 1) * 8 + self.num_vertices as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        Graph::from_edges(
            4,
            vec![
                Edge {
                    src: 0,
                    dst: 1,
                    weight: 1.0,
                },
                Edge {
                    src: 0,
                    dst: 2,
                    weight: 1.0,
                },
                Edge {
                    src: 1,
                    dst: 3,
                    weight: 1.0,
                },
                Edge {
                    src: 2,
                    dst: 3,
                    weight: 1.0,
                },
            ],
        )
    }

    #[test]
    fn csr_offsets_are_prefix_sums() {
        let g = diamond();
        assert_eq!(g.offsets(), &[0, 2, 3, 4, 4]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn edges_sorted_by_source() {
        let g = Graph::from_edges(
            3,
            vec![
                Edge {
                    src: 2,
                    dst: 0,
                    weight: 1.0,
                },
                Edge {
                    src: 0,
                    dst: 1,
                    weight: 1.0,
                },
            ],
        );
        assert_eq!(g.edges()[0].src, 0);
        assert_eq!(g.edges()[1].src, 2);
    }

    #[test]
    fn transpose_reverses() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.num_edges(), g.num_edges());
        assert_eq!(t.out_degree(3), 2);
        assert_eq!(t.out_degree(0), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(5, vec![]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.out_edges(4).len(), 0);
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn rejects_out_of_range_edges() {
        Graph::from_edges(
            2,
            vec![Edge {
                src: 0,
                dst: 5,
                weight: 1.0,
            }],
        );
    }

    #[test]
    fn footprint_scales_with_size() {
        let g = diamond();
        assert_eq!(g.footprint_bytes(), 4 * 12 + 5 * 8 + 4 * 8);
    }
}
