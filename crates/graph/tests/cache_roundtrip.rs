//! The dataset cache's contract: a hit is indistinguishable from
//! regeneration, and any damaged or stale entry silently falls back to
//! the generator (and is repaired on disk).

use dvm_graph::{Dataset, DatasetCache};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dvm-cache-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn hit_equals_regeneration_across_cache_instances() {
    let dir = scratch_dir("hit");
    let expected = Dataset::Flickr.generate(1024);

    // First instance populates the entry.
    let cache = DatasetCache::new(&dir).unwrap();
    assert_eq!(cache.get_or_generate(Dataset::Flickr, 1024), expected);
    assert_eq!((cache.hits(), cache.misses()), (0, 1));

    // A fresh instance (fresh process, in real use) loads it from disk.
    let reopened = DatasetCache::new(&dir).unwrap();
    assert_eq!(reopened.get_or_generate(Dataset::Flickr, 1024), expected);
    assert_eq!((reopened.hits(), reopened.misses()), (1, 0));
    assert_eq!(reopened.rejected(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn distinct_divisors_are_distinct_entries() {
    let dir = scratch_dir("divisors");
    let cache = DatasetCache::new(&dir).unwrap();
    let big = cache.get_or_generate(Dataset::Bip1, 512);
    let small = cache.get_or_generate(Dataset::Bip1, 1024);
    assert_ne!(big, small);
    assert_eq!(cache.misses(), 2);
    // Both entries now hit independently.
    assert_eq!(cache.get_or_generate(Dataset::Bip1, 512), big);
    assert_eq!(cache.get_or_generate(Dataset::Bip1, 1024), small);
    assert_eq!(cache.hits(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entry_falls_back_and_is_repaired() {
    let dir = scratch_dir("corrupt");
    let expected = Dataset::Rmat24.generate(1024);

    let cache = DatasetCache::new(&dir).unwrap();
    cache.get_or_generate(Dataset::Rmat24, 1024);
    let path = cache.entry_path(Dataset::Rmat24, 1024);

    // Flip one payload byte: the checksum must reject the entry.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let reopened = DatasetCache::new(&dir).unwrap();
    assert_eq!(reopened.get_or_generate(Dataset::Rmat24, 1024), expected);
    assert_eq!(reopened.rejected(), 1);
    assert_eq!(reopened.misses(), 1);

    // The bad entry was rewritten; the next lookup is a clean hit.
    assert_eq!(reopened.get_or_generate(Dataset::Rmat24, 1024), expected);
    assert_eq!(reopened.hits(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_file_falls_back_cleanly() {
    let dir = scratch_dir("garbage");
    let cache = DatasetCache::new(&dir).unwrap();
    let path = cache.entry_path(Dataset::Wikipedia, 1024);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, b"not a cache entry").unwrap();
    let expected = Dataset::Wikipedia.generate(1024);
    assert_eq!(cache.get_or_generate(Dataset::Wikipedia, 1024), expected);
    assert_eq!(cache.rejected(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
