//! The dataset cache's contract: a hit is indistinguishable from
//! regeneration, and any damaged or stale entry silently falls back to
//! the generator (and is repaired on disk).

use dvm_graph::{Dataset, DatasetCache};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dvm-cache-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn hit_equals_regeneration_across_cache_instances() {
    let dir = scratch_dir("hit");
    let expected = Dataset::Flickr.generate(1024);

    // First instance populates the entry.
    let cache = DatasetCache::new(&dir).unwrap();
    assert_eq!(cache.get_or_generate(Dataset::Flickr, 1024), expected);
    assert_eq!((cache.hits(), cache.misses()), (0, 1));

    // A fresh instance (fresh process, in real use) loads it from disk.
    let reopened = DatasetCache::new(&dir).unwrap();
    assert_eq!(reopened.get_or_generate(Dataset::Flickr, 1024), expected);
    assert_eq!((reopened.hits(), reopened.misses()), (1, 0));
    assert_eq!(reopened.rejected(), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn distinct_divisors_are_distinct_entries() {
    let dir = scratch_dir("divisors");
    let cache = DatasetCache::new(&dir).unwrap();
    let big = cache.get_or_generate(Dataset::Bip1, 512);
    let small = cache.get_or_generate(Dataset::Bip1, 1024);
    assert_ne!(big, small);
    assert_eq!(cache.misses(), 2);
    // Both entries now hit independently.
    assert_eq!(cache.get_or_generate(Dataset::Bip1, 512), big);
    assert_eq!(cache.get_or_generate(Dataset::Bip1, 1024), small);
    assert_eq!(cache.hits(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_entry_falls_back_and_is_repaired() {
    let dir = scratch_dir("corrupt");
    let expected = Dataset::Rmat24.generate(1024);

    let cache = DatasetCache::new(&dir).unwrap();
    cache.get_or_generate(Dataset::Rmat24, 1024);
    let path = cache.entry_path(Dataset::Rmat24, 1024);

    // Flip one payload byte: the checksum must reject the entry.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let reopened = DatasetCache::new(&dir).unwrap();
    assert_eq!(reopened.get_or_generate(Dataset::Rmat24, 1024), expected);
    assert_eq!(reopened.rejected(), 1);
    assert_eq!(reopened.misses(), 1);

    // The bad entry was rewritten; the next lookup is a clean hit.
    assert_eq!(reopened.get_or_generate(Dataset::Rmat24, 1024), expected);
    assert_eq!(reopened.hits(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_writers_on_one_entry_never_publish_a_torn_file() {
    // Regression test for the tmp-name race: tmp files used to be
    // unique per *process* only, so two threads storing the same entry
    // interleaved writes on one tmp path and could rename a torn file
    // into place. Hammer a single entry from many threads, forcing
    // repeated concurrent stores by deleting it between lookups; every
    // served graph must be the generated one and no load may ever be
    // rejected (a rejection means a torn entry reached the rename).
    let dir = scratch_dir("hammer");
    let cache = DatasetCache::new(&dir).unwrap();
    let expected = Dataset::Flickr.generate(2048);
    let path = cache.entry_path(Dataset::Flickr, 2048);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| {
                for _ in 0..6 {
                    let _ = std::fs::remove_file(&path);
                    assert_eq!(cache.get_or_generate(Dataset::Flickr, 2048), expected);
                }
            });
        }
    });
    assert_eq!(cache.rejected(), 0, "a torn entry was renamed into place");
    // The winning rename left a complete, loadable entry behind.
    let reopened = DatasetCache::new(&dir).unwrap();
    assert_eq!(reopened.get_or_generate(Dataset::Flickr, 2048), expected);
    assert_eq!((reopened.hits(), reopened.rejected()), (1, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_store_cleans_up_its_tmp_file() {
    // A store whose rename fails (here: the entry path is a directory)
    // must remove its tmp file instead of leaking it.
    let dir = scratch_dir("tmpleak");
    let cache = DatasetCache::new(&dir).unwrap();
    let path = cache.entry_path(Dataset::Flickr, 2048);
    std::fs::create_dir_all(&path).unwrap();
    let expected = Dataset::Flickr.generate(2048);
    assert_eq!(cache.get_or_generate(Dataset::Flickr, 2048), expected);
    let leftovers: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp"))
        .collect();
    assert_eq!(leftovers, Vec::<String>::new(), "tmp files leaked");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_evicts_lru_entries_and_misses_stay_clean() {
    let dir = scratch_dir("budget");
    // Populate three entries, then reopen with a budget sized from the
    // real files so exactly one of them no longer fits.
    let sizer = DatasetCache::new(&dir).unwrap();
    for dataset in [Dataset::Flickr, Dataset::Netflix, Dataset::Rmat24] {
        sizer.get_or_generate(dataset, 2048);
    }
    let entry_bytes = |d: Dataset| std::fs::metadata(sizer.entry_path(d, 2048)).unwrap().len();
    let budget = entry_bytes(Dataset::Flickr) + entry_bytes(Dataset::Rmat24);

    let cache = DatasetCache::with_budget(&dir, Some(budget)).unwrap();
    assert_eq!(cache.budget().max_bytes(), Some(budget));
    // Touch FR so NF (stored before S24, never touched since) is the
    // least-recently-used entry and the sole victim.
    let fr = cache.get_or_generate(Dataset::Flickr, 2048);
    assert_eq!(cache.budget().enforce(), 1);
    assert_eq!(cache.evictions(), 1);
    assert!(!sizer.entry_path(Dataset::Netflix, 2048).exists());
    assert!(sizer.entry_path(Dataset::Flickr, 2048).exists());
    assert!(sizer.entry_path(Dataset::Rmat24, 2048).exists());
    assert!(
        cache.budget().used_bytes() <= budget,
        "directory exceeds the budget"
    );
    // The evicted entry degrades to a clean regenerate-on-miss, and the
    // re-store keeps the directory under budget.
    let nf = cache.get_or_generate(Dataset::Netflix, 2048);
    assert_eq!(nf, Dataset::Netflix.generate(2048));
    assert_eq!(fr, Dataset::Flickr.generate(2048));
    assert!(cache.budget().used_bytes() <= budget);
    assert_eq!(cache.rejected(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_file_falls_back_cleanly() {
    let dir = scratch_dir("garbage");
    let cache = DatasetCache::new(&dir).unwrap();
    let path = cache.entry_path(Dataset::Wikipedia, 1024);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, b"not a cache entry").unwrap();
    let expected = Dataset::Wikipedia.generate(1024);
    assert_eq!(cache.get_or_generate(Dataset::Wikipedia, 1024), expected);
    assert_eq!(cache.rejected(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}
