//! A power-of-two-bucketed histogram for latency distributions.

use core::fmt;

/// Histogram with log2 buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` (bucket 0 also takes 0).
///
/// # Examples
///
/// ```
/// use dvm_sim::Histogram;
/// let mut h = Histogram::new("latency");
/// for v in [1u64, 2, 3, 100, 130] {
///     h.sample(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.bucket_count(6), 1); // 64..128 holds 100
/// assert!(h.mean() > 40.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    name: &'static str,
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Create an empty histogram with a display name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn sample(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples in bucket `i` (`[2^i, 2^(i+1))`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Approximate percentile (bucket upper bound containing it).
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count as f64 * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        self.max
    }

    /// Reset to empty.
    pub fn reset(&mut self) {
        *self = Self::new(self.name);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: n={} mean={:.1} p50<{} p99<{} max={}",
            self.name,
            self.count,
            self.mean(),
            self.percentile(0.5),
            self.percentile(0.99),
            self.max
        )?;
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let bar = "#".repeat((n * 40 / peak).max(1) as usize);
            writeln!(
                f,
                "  [{:>10}, {:>10}) {:>10} {}",
                1u64 << i,
                1u64 << (i + 1),
                n,
                bar
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_log2() {
        let mut h = Histogram::new("t");
        h.sample(0);
        h.sample(1);
        h.sample(2);
        h.sample(3);
        h.sample(4);
        assert_eq!(h.bucket_count(0), 2); // 0 and 1
        assert_eq!(h.bucket_count(1), 2); // 2 and 3
        assert_eq!(h.bucket_count(2), 1); // 4
    }

    #[test]
    fn stats_track_samples() {
        let mut h = Histogram::new("t");
        for v in 1..=100u64 {
            h.sample(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_are_monotone() {
        let mut h = Histogram::new("t");
        for v in [1u64, 10, 100, 1000, 10_000] {
            h.sample(v);
        }
        assert!(h.percentile(0.1) <= h.percentile(0.5));
        assert!(h.percentile(0.5) <= h.percentile(0.99));
        assert_eq!(Histogram::new("e").percentile(0.5), 0);
    }

    #[test]
    fn display_and_reset() {
        let mut h = Histogram::new("t");
        h.sample(5);
        assert!(h.to_string().contains("n=1"));
        h.reset();
        assert_eq!(h.count(), 0);
    }
}
