//! Lightweight named statistics used throughout the hardware models.

use core::fmt;

/// A monotonically increasing named event counter.
///
/// # Examples
///
/// ```
/// use dvm_sim::Counter;
/// let mut c = Counter::new("tlb_misses");
/// c.inc();
/// c.add(2);
/// assert_eq!(c.get(), 3);
/// assert_eq!(c.name(), "tlb_misses");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Create a zeroed counter with a display name.
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: 0 }
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reset to zero (e.g. between measurement phases).
    pub fn reset(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.name, self.value)
    }
}

/// A hit/miss style ratio statistic.
///
/// # Examples
///
/// ```
/// use dvm_sim::RatioStat;
/// let mut r = RatioStat::new("tlb");
/// r.hit();
/// r.miss();
/// r.miss();
/// assert_eq!(r.total(), 3);
/// assert!((r.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RatioStat {
    name: &'static str,
    hits: u64,
    misses: u64,
}

impl RatioStat {
    /// Create a zeroed ratio with a display name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            hits: 0,
            misses: 0,
        }
    }

    /// Record a hit.
    #[inline]
    pub fn hit(&mut self) {
        self.hits += 1;
    }

    /// Record a miss.
    #[inline]
    pub fn miss(&mut self) {
        self.misses += 1;
    }

    /// Number of hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Misses as a fraction of total; 0.0 when empty.
    pub fn miss_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.misses as f64 / self.total() as f64
        }
    }

    /// Hits as a fraction of total; 0.0 when empty.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Reset both sides to zero.
    pub fn reset(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

impl fmt::Display for RatioStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}/{} miss ({:.2}%)",
            self.name,
            self.misses,
            self.total(),
            self.miss_rate() * 100.0
        )
    }
}

/// Running mean of an f64-valued sample stream.
///
/// # Examples
///
/// ```
/// use dvm_sim::MeanStat;
/// let mut m = MeanStat::new("latency");
/// m.sample(10.0);
/// m.sample(20.0);
/// assert_eq!(m.mean(), 15.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MeanStat {
    name: &'static str,
    sum: f64,
    count: u64,
}

impl MeanStat {
    /// Create an empty mean with a display name.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            sum: 0.0,
            count: 0,
        }
    }

    /// Record a sample.
    #[inline]
    pub fn sample(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Mean of all samples; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

impl fmt::Display for MeanStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: mean {:.3} over {}",
            self.name,
            self.mean(),
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new("c");
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(c.to_string(), "c=0");
    }

    #[test]
    fn ratio_empty_is_zero() {
        let r = RatioStat::new("r");
        assert_eq!(r.miss_rate(), 0.0);
        assert_eq!(r.hit_rate(), 0.0);
    }

    #[test]
    fn ratio_rates_sum_to_one() {
        let mut r = RatioStat::new("r");
        for i in 0..10 {
            if i % 3 == 0 {
                r.miss()
            } else {
                r.hit()
            }
        }
        assert!((r.miss_rate() + r.hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(r.hits() + r.misses(), r.total());
    }

    #[test]
    fn mean_stat() {
        let mut m = MeanStat::new("m");
        assert_eq!(m.mean(), 0.0);
        m.sample(2.0);
        m.sample(4.0);
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum(), 6.0);
        assert!(m.to_string().contains("mean 3.000"));
    }
}
