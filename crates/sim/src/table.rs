//! A minimal fixed-width table renderer for harness output.
//!
//! The benchmark binaries print each of the paper's tables and figures as a
//! plain-text table; this keeps the harnesses dependency-free and the output
//! diffable in `EXPERIMENTS.md`.

use core::fmt;

/// An in-memory table with a header row and left-aligned columns.
///
/// # Examples
///
/// ```
/// use dvm_sim::Table;
/// let mut t = Table::new(&["graph", "tlb miss"]);
/// t.row(&["FR".into(), "18.2%".into()]);
/// t.row(&["Wiki".into(), "24.9%".into()]);
/// let s = t.render();
/// assert!(s.lines().count() >= 4); // header, rule, two rows
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different arity than the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                if i + 1 < ncols {
                    line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "bee"]);
        t.row(&["xxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a   "));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn empty_table() {
        let t = Table::new(&["only", "header"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(&["h"]);
        t.row(&["v".into()]);
        assert_eq!(t.to_string(), t.render());
    }
}
