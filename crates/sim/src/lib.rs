//! Deterministic simulation plumbing: cycle accounting, statistics
//! counters, a seeded RNG, and a plain-text table printer used by the
//! benchmark harnesses to regenerate the paper's tables and figures.
//!
//! Everything in the simulator is single-threaded and seeded, so two runs of
//! the same experiment produce bit-identical results — a property the
//! integration tests assert.
//!
//! # Examples
//!
//! ```
//! use dvm_sim::{Counter, DetRng, Table};
//!
//! let mut hits = Counter::new("hits");
//! hits.add(3);
//! assert_eq!(hits.get(), 3);
//!
//! let mut rng = DetRng::new(42);
//! let a = rng.next_u64();
//! assert_eq!(DetRng::new(42).next_u64(), a); // deterministic
//!
//! let mut t = Table::new(&["workload", "miss rate"]);
//! t.row(&["bfs".into(), format!("{:.1}%", 21.0)]);
//! assert!(t.render().contains("bfs"));
//! ```

pub mod hist;
pub mod rng;
pub mod stats;
pub mod table;

pub use hist::Histogram;
pub use rng::DetRng;
pub use stats::{Counter, MeanStat, RatioStat};
pub use table::Table;

/// Simulated clock cycles.
///
/// A plain `u64` alias rather than a newtype: cycles are summed, scaled and
/// divided pervasively in the timing model, and the arithmetic noise of a
/// newtype buys no safety here (there is only one clock domain per model).
pub type Cycles = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_is_u64() {
        let c: Cycles = 5;
        assert_eq!(c + 1, 6);
    }
}
