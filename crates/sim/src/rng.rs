//! Seeded, deterministic random number generation.
//!
//! All stochastic pieces of the reproduction (RMAT edge generation, ASLR,
//! synthetic CPU workloads, shbench size mixes) draw from [`DetRng`] so that
//! every experiment is exactly reproducible from its seed.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic RNG with convenience samplers for simulator needs.
///
/// Wraps [`SmallRng`] (xoshiro256++) seeded from a `u64`; the wrapper exists
/// so downstream crates do not each depend on `rand` and so the seeding
/// policy lives in one place.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fork a child generator whose stream is independent of, but fully
    /// determined by, this one. Used to give each simulated engine or
    /// workload its own stream without shared mutable state.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// Sample from a discrete power-law-ish distribution over `[0, n)`:
    /// repeatedly halve the candidate range with probability `skew`,
    /// producing the hub-heavy reference patterns used by the synthetic
    /// CPU workloads. `skew == 0.0` degenerates to uniform.
    pub fn skewed_below(&mut self, n: u64, skew: f64) -> u64 {
        assert!(n > 0);
        let mut hi = n;
        while hi > 1 && self.chance(skew) {
            hi = (hi + 1) / 2;
        }
        self.below(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn range_bounds() {
        let mut rng = DetRng::new(4);
        for _ in 0..1000 {
            let v = rng.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn unit_in_zero_one() {
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        assert_eq!(a.fork().next_u64(), b.fork().next_u64());
    }

    #[test]
    fn skewed_below_biases_low() {
        let mut rng = DetRng::new(11);
        let n = 1_000u64;
        let draws = 20_000;
        let low = (0..draws)
            .filter(|_| rng.skewed_below(n, 0.7) < n / 10)
            .count();
        // Uniform would put ~10% below n/10; skew should push it far higher.
        assert!(low > draws / 4, "low draws: {low}");
    }

    #[test]
    fn skewed_zero_is_roughly_uniform() {
        let mut rng = DetRng::new(12);
        let n = 100u64;
        let draws = 20_000;
        let low = (0..draws)
            .filter(|_| rng.skewed_below(n, 0.0) < n / 2)
            .count();
        let frac = low as f64 / draws as f64;
        assert!((0.45..0.55).contains(&frac), "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(1).below(0);
    }
}
