//! Seeded, deterministic random number generation.
//!
//! All stochastic pieces of the reproduction (RMAT edge generation, ASLR,
//! synthetic CPU workloads, shbench size mixes) draw from [`DetRng`] so that
//! every experiment is exactly reproducible from its seed.
//!
//! The generator is an in-tree xoshiro256++ (Blackman & Vigna) seeded
//! through SplitMix64 — the same construction the `rand` crate's
//! `SmallRng` uses on 64-bit targets. Carrying the ~60 lines here instead
//! of depending on crates.io keeps the whole library workspace building
//! with zero external crates (the build-system analogue of the paper's
//! devirtualization: remove the indirection layer when you can hold the
//! resource directly), and pins the bit-stream so seeds stay stable across
//! toolchain and dependency upgrades.

/// SplitMix64 step (Steele, Lea & Flood): used only to expand the user
/// seed into the 256-bit xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG with convenience samplers for simulator needs.
///
/// Implements xoshiro256++ directly; the wrapper exists so downstream
/// crates share one generator and one seeding policy, and so the sampled
/// streams are a fixed, documented part of the reproduction.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro's all-zero state is a fixed point; SplitMix64 cannot
        // produce four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            return Self { s: [1, 0, 0, 0] };
        }
        Self { s }
    }

    /// Next raw 64-bit value (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` (Lemire's multiply-shift with
    /// rejection, so the draw is exactly uniform).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut m = u128::from(self.next_u64()) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = u128::from(self.next_u64()) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)` (53 high bits of one draw).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fork a child generator whose stream is independent of, but fully
    /// determined by, this one. Used to give each simulated engine or
    /// workload its own stream without shared mutable state.
    pub fn fork(&mut self) -> Self {
        Self::new(self.next_u64())
    }

    /// Sample from a discrete power-law-ish distribution over `[0, n)`:
    /// repeatedly halve the candidate range with probability `skew`,
    /// producing the hub-heavy reference patterns used by the synthetic
    /// CPU workloads. `skew == 0.0` degenerates to uniform.
    pub fn skewed_below(&mut self, n: u64, skew: f64) -> u64 {
        assert!(n > 0);
        let mut hi = n;
        while hi > 1 && self.chance(skew) {
            hi = hi.div_ceil(2);
        }
        self.below(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of SplitMix64 from state 0, per the reference
        // implementation — anchors the seeding path for all seeds.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn below_covers_small_range_uniformly() {
        let mut rng = DetRng::new(17);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.below(8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "bucket {i}: {c}");
        }
    }

    #[test]
    fn range_bounds() {
        let mut rng = DetRng::new(4);
        for _ in 0..1000 {
            let v = rng.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn unit_in_zero_one() {
        let mut rng = DetRng::new(5);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        assert_eq!(a.fork().next_u64(), b.fork().next_u64());
    }

    #[test]
    fn skewed_below_biases_low() {
        let mut rng = DetRng::new(11);
        let n = 1_000u64;
        let draws = 20_000;
        let low = (0..draws)
            .filter(|_| rng.skewed_below(n, 0.7) < n / 10)
            .count();
        // Uniform would put ~10% below n/10; skew should push it far higher.
        assert!(low > draws / 4, "low draws: {low}");
    }

    #[test]
    fn skewed_zero_is_roughly_uniform() {
        let mut rng = DetRng::new(12);
        let n = 100u64;
        let draws = 20_000;
        let low = (0..draws)
            .filter(|_| rng.skewed_below(n, 0.0) < n / 2)
            .count();
        let frac = low as f64 / draws as f64;
        assert!((0.45..0.55).contains(&frac), "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        DetRng::new(1).below(0);
    }
}
