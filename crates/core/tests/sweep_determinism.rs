//! The sweep engine's contract: results are identical — bit for bit —
//! regardless of how many worker threads execute the grid. The bench
//! binaries rely on this to keep `--jobs N` output byte-identical to a
//! serial run.

use dvm_core::{run_sweep, SchemeId, SweepSpec, Workload};
use dvm_graph::Dataset;

fn small_spec() -> SweepSpec {
    // Two datasets at a heavy divisor keep this fast while still
    // exercising graph sharing across schemes and multiple cells.
    SweepSpec::for_pairs(
        vec![
            (Workload::Bfs { root: 0 }, Dataset::Flickr),
            (Workload::PageRank { iterations: 1 }, Dataset::Flickr),
            (Workload::Bfs { root: 0 }, Dataset::Rmat24),
        ],
        &[SchemeId::CONV_4K, SchemeId::DVM_BM, SchemeId::IDEAL],
        |_| 1024,
    )
}

#[test]
fn parallel_sweep_matches_serial_bit_for_bit() {
    let serial = run_sweep(&small_spec(), 1).expect("serial sweep");
    let parallel = run_sweep(&small_spec(), 4).expect("parallel sweep");
    assert_eq!(serial.len(), parallel.len());
    // GraphRunReport has no Eq impl (it carries floats), so compare the
    // full Debug rendering — any field diverging shows up here.
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(format!("{s:?}"), format!("{p:?}"));
    }
}

#[test]
fn repeated_serial_sweeps_are_stable() {
    let a = run_sweep(&small_spec(), 1).expect("first run");
    let b = run_sweep(&small_spec(), 1).expect("second run");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
