//! The sweep engine's contract: results are identical — bit for bit —
//! regardless of how many worker threads execute the grid or how many
//! lanes each unit splits into. The bench binaries rely on this to keep
//! `--jobs N` / `--lanes N` output byte-identical to a serial run.

use dvm_core::{SchemeId, SweepRunner, SweepSpec, Workload};
use dvm_graph::Dataset;

fn small_spec() -> SweepSpec {
    // Two datasets at a heavy divisor keep this fast while still
    // exercising graph sharing across schemes and multiple cells.
    SweepSpec::for_pairs(
        vec![
            (Workload::Bfs { root: 0 }, Dataset::Flickr),
            (Workload::PageRank { iterations: 1 }, Dataset::Flickr),
            (Workload::Bfs { root: 0 }, Dataset::Rmat24),
        ],
        &[SchemeId::CONV_4K, SchemeId::DVM_BM, SchemeId::IDEAL],
        |_| 1024,
    )
}

#[test]
fn parallel_sweep_matches_serial_bit_for_bit() {
    let spec = small_spec();
    let serial = SweepRunner::new(&spec).run().expect("serial sweep");
    let parallel = SweepRunner::new(&spec)
        .jobs(4)
        .run()
        .expect("parallel sweep");
    assert_eq!(serial.len(), parallel.len());
    // GraphRunReport has no Eq impl (it carries floats), so compare the
    // full Debug rendering — any field diverging shows up here.
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(format!("{s:?}"), format!("{p:?}"));
    }
}

#[test]
fn repeated_serial_sweeps_are_stable() {
    let spec = small_spec();
    let a = SweepRunner::new(&spec).run().expect("first run");
    let b = SweepRunner::new(&spec).run().expect("second run");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn laned_sweep_matches_serial_bit_for_bit() {
    let spec = small_spec();
    let serial = SweepRunner::new(&spec).run().expect("serial sweep");
    // Lanes and jobs compose; N workers × N lanes still byte-identical,
    // on both the two-lane and three-lane pipelines.
    for lanes in [2, 3] {
        let laned = SweepRunner::new(&spec)
            .jobs(2)
            .lanes(lanes)
            .run()
            .expect("laned sweep");
        for (s, p) in serial.iter().zip(&laned) {
            assert_eq!(format!("{s:?}"), format!("{p:?}"), "lanes={lanes}");
        }
    }
}
