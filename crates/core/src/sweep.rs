//! The sweep engine: one shared execution path for every figure/table
//! harness, replacing the hand-rolled serial loops the binaries used to
//! carry individually.
//!
//! A [`SweepSpec`] describes a grid of (workload × dataset × scheme)
//! cells; [`SweepRunner`] executes the grid on a scoped-thread worker
//! pool and returns results **in spec order**, so a parallel run's output
//! is byte-identical to a serial one. Each dataset's graph is generated
//! once per (dataset, divisor) key, shared between cells via [`Arc`], and
//! dropped as soon as its last cell completes — a `--jobs 1` sweep
//! therefore holds at most as many graphs in memory as the old serial
//! loops did.
//!
//! Every cell is shared-nothing (its own `Os`, IOMMU, DRAM and
//! accelerator instances), which is what makes the grid embarrassingly
//! parallel; the only cross-cell state is the read-only input graph.
//! Inside one unit, [`SweepRunner::lanes`] can additionally split
//! execution into a functional/timing pipeline (or, at three lanes,
//! functional/translate/memory) — orthogonal to `jobs`, and equally
//! invisible in the results.
//!
//! Both optional stores ([`SweepRunner::cache`] for datasets,
//! [`SweepRunner::report_store`] for finished cell reports) are
//! best-effort: a miss — including one manufactured by LRU byte-budget
//! eviction while the sweep is running — falls back to regeneration, so
//! caching can change only wall-clock time, never results.

use crate::experiment::{run_graph_experiment, ExperimentConfig, GraphRunReport};
use dvm_accel::Workload;
use dvm_graph::{Dataset, DatasetCache};
use dvm_mmu::SchemeId;
use dvm_types::DvmError;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One cell group of a sweep: a (workload, dataset) pair evaluated under
/// a list of MMU schemes.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Workload to run.
    pub workload: Workload,
    /// Input dataset; its graph is generated once and shared.
    pub dataset: Dataset,
    /// Power-of-two shrink factor passed to [`Dataset::generate`].
    pub divisor: u32,
    /// Schemes to evaluate, in output order.
    pub schemes: Vec<SchemeId>,
}

/// A grid of cells, executed in order.
#[derive(Debug, Clone, Default)]
pub struct SweepSpec {
    /// Cells in output order.
    pub cells: Vec<SweepCell>,
}

impl SweepSpec {
    /// Build a spec from (workload, dataset) pairs sharing one scheme set
    /// and one divisor policy — the shape of Figures 2, 8 and 9.
    pub fn for_pairs(
        pairs: impl IntoIterator<Item = (Workload, Dataset)>,
        schemes: &[SchemeId],
        divisor: impl Fn(Dataset) -> u32,
    ) -> Self {
        Self {
            cells: pairs
                .into_iter()
                .map(|(workload, dataset)| SweepCell {
                    workload,
                    dataset,
                    divisor: divisor(dataset),
                    schemes: schemes.to_vec(),
                })
                .collect(),
        }
    }

    /// The sub-spec a shard worker runs: cells `index, index + count,
    /// index + 2*count, ...` (round-robin, so the heavy datasets — which
    /// cluster in spec order — spread across shards). The global indices
    /// of the selected cells are `shard_indices(index, count)`.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn shard(&self, index: usize, count: usize) -> SweepSpec {
        SweepSpec {
            cells: self
                .shard_indices(index, count)
                .map(|i| self.cells[i].clone())
                .collect(),
        }
    }

    /// Global cell indices belonging to shard `index` of `count`, in the
    /// order [`SweepSpec::shard`] emits them.
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn shard_indices(&self, index: usize, count: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(index < count, "shard {index} out of {count}");
        (index..self.cells.len()).step_by(count)
    }

    /// Total simulation units in the grid: one per (cell, scheme). This
    /// is the `total` a sweep's progress counts toward, and what sharding
    /// coordinators aggregate worker progress against.
    pub fn unit_count(&self) -> usize {
        self.cells.iter().map(|cell| cell.schemes.len()).sum()
    }
}

/// A (configuration × epoch) grid for *time-series* experiments — the
/// churn scenarios' shape, where each simulation unit is one scheme
/// configuration producing a whole trajectory rather than one scalar.
///
/// The distinction matters for sharding: units (what `run_grid`
/// distributes across shards and jobs) are the **configs**, while output
/// rows are the configs × epochs cross product. `EpochGrid` pins the row
/// order and labels so every parallelism level formats the identical
/// document: config-major, epoch-minor, with zero-padded epoch tags
/// (`DVM-PE/e07`) that sort lexicographically in epoch order.
#[derive(Debug, Clone)]
pub struct EpochGrid {
    /// Configuration labels, in unit (and output-column-group) order.
    pub configs: Vec<String>,
    /// Epochs each configuration is simulated for.
    pub epochs: u32,
}

impl EpochGrid {
    /// Build a grid from configuration labels and an epoch horizon.
    pub fn new(configs: impl IntoIterator<Item = impl Into<String>>, epochs: u32) -> Self {
        Self {
            configs: configs.into_iter().map(Into::into).collect(),
            epochs,
        }
    }

    /// Simulation units — one per configuration (each yields a series).
    pub fn unit_count(&self) -> usize {
        self.configs.len()
    }

    /// Output rows: configs × epochs.
    pub fn row_count(&self) -> usize {
        self.configs.len() * self.epochs as usize
    }

    /// Digits needed so epoch tags sort lexicographically in epoch order.
    fn epoch_digits(&self) -> usize {
        self.epochs.saturating_sub(1).max(1).ilog10() as usize + 1
    }

    /// The stable row label for `(config, epoch)`, e.g. `DVM-PE/e07`.
    ///
    /// # Panics
    ///
    /// Panics if `config` or `epoch` is out of the grid's bounds.
    pub fn row_label(&self, config: usize, epoch: u32) -> String {
        assert!(epoch < self.epochs, "epoch {epoch} out of {}", self.epochs);
        format!(
            "{}/e{epoch:0width$}",
            self.configs[config],
            width = self.epoch_digits()
        )
    }

    /// All `(config index, epoch)` pairs in output order — config-major,
    /// epoch-minor, matching one row group per simulation unit.
    pub fn rows(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        (0..self.configs.len()).flat_map(move |c| (0..self.epochs).map(move |e| (c, e)))
    }
}

/// Progress snapshot handed to [`SweepRunner::progress`] after each
/// (cell, scheme) unit completes.
#[derive(Debug, Clone, Copy)]
pub struct SweepProgress<'a> {
    /// Units finished so far (across all worker threads).
    pub done: usize,
    /// Total units in the sweep.
    pub total: usize,
    /// Workload of the unit that just finished.
    pub workload: &'a str,
    /// Dataset of the unit that just finished.
    pub dataset: &'a str,
    /// Scheme of the unit that just finished.
    pub scheme: &'a str,
}

/// Identity of one sweep unit — everything that determines its
/// [`GraphRunReport`]. [`ReportStore`] implementations key on this.
#[derive(Debug, Clone, Copy)]
pub struct UnitKey<'a> {
    /// Workload, with all its parameters.
    pub workload: &'a Workload,
    /// Input dataset.
    pub dataset: Dataset,
    /// Shrink divisor the dataset was generated with.
    pub divisor: u32,
    /// MMU scheme under test.
    pub mmu: SchemeId,
}

/// A memo of completed sweep units. The sweep engine consults it before
/// running a unit and records every unit it does run; a `load` hit must
/// return a report whose *serialized form* is identical to what a fresh
/// run would produce — the same contract the shard-fragment round trip
/// already guarantees. Implementations live above `dvm-core` (the bench
/// crate persists reports as JSON); simulation code stays storage-free.
pub trait ReportStore: Sync {
    /// A previously recorded report for `key`, if one exists.
    fn load(&self, key: &UnitKey<'_>) -> Option<GraphRunReport>;
    /// Record a freshly computed report for `key`.
    fn store(&self, key: &UnitKey<'_>, report: &GraphRunReport);
}

/// Legacy knobs for the deprecated [`run_sweep_opts`]; new code chains
/// the same options on [`SweepRunner`].
#[deprecated(note = "use `SweepRunner` and chain the options you need")]
#[derive(Default)]
pub struct SweepOptions<'a> {
    /// Worker threads (`0` = all cores, `1` = serial).
    pub jobs: usize,
    /// Load/store generated graphs through an on-disk cache.
    pub cache: Option<&'a DatasetCache>,
    /// Invoked after every completed unit, from worker threads. Must not
    /// touch stdout: the byte-identical output contract lives there.
    pub progress: Option<&'a (dyn Fn(SweepProgress<'_>) + Sync)>,
    /// Reuse per-unit reports across runs (and across figure binaries
    /// that sweep the same grid) instead of re-simulating them.
    pub reports: Option<&'a dyn ReportStore>,
}

#[allow(deprecated)]
impl<'a> SweepOptions<'a> {
    /// Options equivalent to the `run_sweep(spec, jobs)` shorthand.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs,
            ..Self::default()
        }
    }
}

#[allow(deprecated)]
impl std::fmt::Debug for SweepOptions<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepOptions")
            .field("jobs", &self.jobs)
            .field("cache", &self.cache.map(|c| c.dir().to_path_buf()))
            .field("progress", &self.progress.is_some())
            .field("reports", &self.reports.is_some())
            .finish()
    }
}

/// Results of one cell: the pair plus one report per scheme, in the
/// cell's scheme order.
#[derive(Debug, Clone)]
pub struct CellReports {
    /// Workload that ran.
    pub workload: Workload,
    /// Dataset it ran over.
    pub dataset: Dataset,
    /// One report per scheme, in the cell's scheme order.
    pub reports: Vec<GraphRunReport>,
}

impl CellReports {
    /// The report for a specific scheme, replacing the positional
    /// `reports[6]`-style indexing the old binaries relied on.
    pub fn report_for(&self, mmu: SchemeId) -> Option<&GraphRunReport> {
        self.reports.iter().find(|r| r.mmu == mmu)
    }
}

/// Resolve a `--jobs` request: `0` means "all available cores".
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    }
}

/// Apply `f` to every item on a pool of `jobs` scoped worker threads and
/// return the results **in item order** — the deterministic-ordering
/// primitive under [`run_sweep`], exported because several harnesses
/// (Figure 10's CPU grid, Table 4's shbench grid, the nested-translation
/// study) have shared-nothing grids that are not graph sweeps.
///
/// `jobs == 1` (after [`effective_jobs`] resolution) degenerates to a
/// plain in-order loop on the calling thread.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn parallel_map_ordered<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len().max(1));
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// A graph generated once and handed to every cell that needs it; the
/// slot is emptied when the last unit referencing it completes so peak
/// memory tracks the number of *in-flight* datasets, not the whole grid.
struct SharedGraph {
    dataset: Dataset,
    divisor: u32,
    slot: Mutex<Option<Arc<dvm_graph::Graph>>>,
    remaining: AtomicUsize,
}

impl SharedGraph {
    fn get(&self, cache: Option<&DatasetCache>) -> Arc<dvm_graph::Graph> {
        let mut slot = self.slot.lock().expect("graph slot poisoned");
        slot.get_or_insert_with(|| {
            Arc::new(match cache {
                Some(cache) => cache.get_or_generate(self.dataset, self.divisor),
                None => self.dataset.generate(self.divisor),
            })
        })
        .clone()
    }

    fn release(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            *self.slot.lock().expect("graph slot poisoned") = None;
        }
    }
}

/// The sweep executor, as a builder: construct with
/// [`SweepRunner::new`], chain the knobs the harness needs, and call
/// [`run`](SweepRunner::run). This is the single entry point behind every
/// figure/table binary — it replaced the `run_sweep` / `run_sweep_opts` /
/// [`SweepOptions`] trio, which survive only as deprecated wrappers.
///
/// ```
/// use dvm_core::{SchemeId, SweepRunner, SweepSpec, Workload};
/// use dvm_graph::Dataset;
///
/// # fn main() -> Result<(), dvm_types::DvmError> {
/// let spec = SweepSpec::for_pairs(
///     [(Workload::Bfs { root: 0 }, Dataset::Flickr)],
///     &[SchemeId::IDEAL],
///     |_| 1024,
/// );
/// let results = SweepRunner::new(&spec).jobs(2).lanes(1).run()?;
/// assert_eq!(results.len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct SweepRunner<'a> {
    spec: &'a SweepSpec,
    jobs: usize,
    lanes: u32,
    cache: Option<&'a DatasetCache>,
    progress: Option<&'a (dyn Fn(SweepProgress<'_>) + Sync)>,
    reports: Option<&'a dyn ReportStore>,
}

impl std::fmt::Debug for SweepRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("cells", &self.spec.cells.len())
            .field("jobs", &self.jobs)
            .field("lanes", &self.lanes)
            .field("cache", &self.cache.map(|c| c.dir().to_path_buf()))
            .field("progress", &self.progress.is_some())
            .field("reports", &self.reports.is_some())
            .finish()
    }
}

impl<'a> SweepRunner<'a> {
    /// A serial, single-lane, cache-less runner for `spec`; chain the
    /// builder methods to turn features on.
    pub fn new(spec: &'a SweepSpec) -> Self {
        Self {
            spec,
            jobs: 1,
            lanes: 1,
            cache: None,
            progress: None,
            reports: None,
        }
    }

    /// Worker threads (`0` = all cores, `1` = serial). Parallelism never
    /// changes output: results always come back in spec order.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Intra-unit lanes (`0` = auto, `1` = fused serial, `2` = the
    /// functional/timing pipeline, `3` = functional/translate/memory;
    /// higher values clamp). Lanes compose with [`jobs`](Self::jobs):
    /// each worker thread splits its unit into lanes, and auto mode
    /// divides the host's cores among the resolved workers first (see
    /// [`dvm_accel::effective_lanes_with_jobs`]) so the product never
    /// oversubscribes the machine. Reports are byte-identical whatever
    /// the lane count, so lane choice is — deliberately — absent from
    /// [`UnitKey`].
    pub fn lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes;
        self
    }

    /// Load/store generated graphs through an on-disk cache.
    pub fn cache(mut self, cache: &'a DatasetCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Invoke `callback` after every completed unit, from worker threads.
    /// Must not touch stdout: the byte-identical output contract lives
    /// there. A unit split into lanes still reports exactly one tick.
    pub fn progress(mut self, callback: &'a (dyn Fn(SweepProgress<'_>) + Sync)) -> Self {
        self.progress = Some(callback);
        self
    }

    /// Reuse per-unit reports across runs (and across figure binaries
    /// that sweep the same grid) instead of re-simulating them.
    pub fn report_store(mut self, store: &'a dyn ReportStore) -> Self {
        self.reports = Some(store);
        self
    }

    /// Execute the sweep.
    ///
    /// Results come back in spec order — cell by cell, scheme by scheme —
    /// regardless of `jobs` and `lanes`, so downstream formatting is
    /// reproducible across parallelism levels. No option perturbs
    /// results: a cached, parallel, pipelined, progress-reporting run
    /// returns exactly what a bare serial run does.
    ///
    /// # Errors
    ///
    /// Returns the first failing unit's error, in spec order. Remaining
    /// units still run to completion before the error is returned.
    pub fn run(&self) -> Result<Vec<CellReports>, DvmError> {
        let spec = self.spec;
        // One shared graph per distinct (dataset, divisor) key.
        let mut shared: Vec<SharedGraph> = Vec::new();
        let mut key_of_cell: Vec<usize> = Vec::with_capacity(spec.cells.len());
        for cell in &spec.cells {
            let key = shared
                .iter()
                .position(|s| s.dataset == cell.dataset && s.divisor == cell.divisor)
                .unwrap_or_else(|| {
                    shared.push(SharedGraph {
                        dataset: cell.dataset,
                        divisor: cell.divisor,
                        slot: Mutex::new(None),
                        remaining: AtomicUsize::new(0),
                    });
                    shared.len() - 1
                });
            shared[key]
                .remaining
                .fetch_add(cell.schemes.len(), Ordering::Relaxed);
            key_of_cell.push(key);
        }

        // Flatten to shared-nothing units: one (cell, scheme) experiment
        // each.
        struct Unit {
            cell: usize,
            workload: Workload,
            dataset: Dataset,
            divisor: u32,
            mmu: SchemeId,
            key: usize,
        }
        let units: Vec<Unit> = spec
            .cells
            .iter()
            .enumerate()
            .flat_map(|(cell, c)| {
                let key = key_of_cell[cell];
                c.schemes.iter().map(move |&mmu| Unit {
                    cell,
                    workload: c.workload,
                    dataset: c.dataset,
                    divisor: c.divisor,
                    mmu,
                    key,
                })
            })
            .collect();

        let total = units.len();
        let done = AtomicUsize::new(0);
        // Resolve lanes against the worker count that will actually run:
        // auto lane mode divides the host's cores among the workers so
        // `jobs × lanes` never oversubscribes the machine. Explicit lane
        // counts pass through (clamped).
        let workers = effective_jobs(self.jobs).min(units.len().max(1));
        let lanes = dvm_accel::effective_lanes_with_jobs(self.lanes, workers as u32);
        let outcomes = parallel_map_ordered(&units, self.jobs, |unit| {
            // The cache key deliberately excludes `lanes` (and `jobs`):
            // neither affects the report, so a report computed at any
            // parallelism level serves every other one.
            let unit_key = UnitKey {
                workload: &unit.workload,
                dataset: unit.dataset,
                divisor: unit.divisor,
                mmu: unit.mmu,
            };
            let report = match self.reports.and_then(|store| store.load(&unit_key)) {
                Some(cached) => Ok(cached),
                None => {
                    let graph = shared[unit.key].get(self.cache);
                    let report = run_graph_experiment(
                        &unit.workload,
                        &graph,
                        &ExperimentConfig::for_mmu(unit.mmu).with_lanes(lanes),
                    );
                    if let (Some(store), Ok(report)) = (self.reports, &report) {
                        store.store(&unit_key, report);
                    }
                    report
                }
            };
            shared[unit.key].release();
            if let Some(progress) = self.progress {
                progress(SweepProgress {
                    done: done.fetch_add(1, Ordering::AcqRel) + 1,
                    total,
                    workload: unit.workload.name(),
                    dataset: unit.dataset.short_name(),
                    scheme: unit.mmu.name(),
                });
            }
            report
        });

        // Reassemble in spec order; surface the first error in that order.
        let mut results: Vec<CellReports> = spec
            .cells
            .iter()
            .map(|c| CellReports {
                workload: c.workload,
                dataset: c.dataset,
                reports: Vec::with_capacity(c.schemes.len()),
            })
            .collect();
        for (unit, outcome) in units.iter().zip(outcomes) {
            results[unit.cell].reports.push(outcome?);
        }
        Ok(results)
    }
}

/// Execute a sweep on `jobs` worker threads (`0` = all cores).
///
/// # Errors
///
/// Returns the first failing unit's error, in spec order.
#[deprecated(note = "use `SweepRunner::new(spec).jobs(jobs).run()`")]
pub fn run_sweep(spec: &SweepSpec, jobs: usize) -> Result<Vec<CellReports>, DvmError> {
    SweepRunner::new(spec).jobs(jobs).run()
}

/// [`run_sweep`] with the full legacy option set.
///
/// # Errors
///
/// Returns the first failing unit's error, in spec order.
#[deprecated(note = "use `SweepRunner` and chain the options you need")]
#[allow(deprecated)]
pub fn run_sweep_opts(
    spec: &SweepSpec,
    options: &SweepOptions<'_>,
) -> Result<Vec<CellReports>, DvmError> {
    let mut runner = SweepRunner::new(spec).jobs(options.jobs);
    if let Some(cache) = options.cache {
        runner = runner.cache(cache);
    }
    if let Some(progress) = options.progress {
        runner = runner.progress(progress);
    }
    if let Some(reports) = options.reports {
        runner = runner.report_store(reports);
    }
    runner.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_grid_orders_and_labels_rows() {
        let grid = EpochGrid::new(["DVM-PE", "Paged-4K"], 12);
        assert_eq!(grid.unit_count(), 2);
        assert_eq!(grid.row_count(), 24);
        assert_eq!(grid.row_label(0, 0), "DVM-PE/e00");
        assert_eq!(grid.row_label(1, 11), "Paged-4K/e11");
        let rows: Vec<(usize, u32)> = grid.rows().collect();
        assert_eq!(rows.len(), 24);
        assert_eq!(rows[0], (0, 0));
        assert_eq!(rows[11], (0, 11));
        assert_eq!(rows[12], (1, 0));
        // Labels sort lexicographically in row order within a config.
        let labels: Vec<String> = rows.iter().map(|&(c, e)| grid.row_label(c, e)).collect();
        let mut sorted = labels[..12].to_vec();
        sorted.sort();
        assert_eq!(sorted, labels[..12]);
        // Three digits once the horizon passes 100 epochs.
        let long = EpochGrid::new(["x"], 120);
        assert_eq!(long.row_label(0, 7), "x/e007");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn epoch_grid_rejects_out_of_range_epoch() {
        EpochGrid::new(["x"], 4).row_label(0, 4);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map_ordered(&items, 8, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_serial() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map_ordered(&empty, 4, |&x| x).is_empty());
        let items = [1u64, 2, 3];
        assert_eq!(parallel_map_ordered(&items, 1, |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn effective_jobs_resolves_zero() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    #[test]
    fn spec_builder_expands_pairs() {
        let spec = SweepSpec::for_pairs(
            [
                (Workload::Bfs { root: 0 }, Dataset::Flickr),
                (Workload::Bfs { root: 0 }, Dataset::Netflix),
            ],
            &[SchemeId::IDEAL],
            |_| 1024,
        );
        assert_eq!(spec.cells.len(), 2);
        assert_eq!(spec.cells[1].dataset, Dataset::Netflix);
        assert_eq!(spec.cells[0].schemes, vec![SchemeId::IDEAL]);
    }

    #[test]
    fn shard_partitions_round_robin() {
        let spec = SweepSpec::for_pairs(
            [
                (Workload::Bfs { root: 0 }, Dataset::Flickr),
                (Workload::Bfs { root: 0 }, Dataset::Netflix),
                (Workload::Bfs { root: 0 }, Dataset::Bip1),
                (Workload::Bfs { root: 0 }, Dataset::Bip2),
                (Workload::Bfs { root: 0 }, Dataset::Wikipedia),
            ],
            &[SchemeId::IDEAL],
            |_| 1024,
        );
        let shard0 = spec.shard(0, 2);
        let shard1 = spec.shard(1, 2);
        assert_eq!(
            shard0.cells.iter().map(|c| c.dataset).collect::<Vec<_>>(),
            vec![Dataset::Flickr, Dataset::Bip1, Dataset::Wikipedia]
        );
        assert_eq!(
            shard1.cells.iter().map(|c| c.dataset).collect::<Vec<_>>(),
            vec![Dataset::Netflix, Dataset::Bip2]
        );
        assert_eq!(spec.shard_indices(1, 2).collect::<Vec<_>>(), vec![1, 3]);
        // Every cell lands in exactly one shard.
        let mut seen: Vec<usize> = (0..3)
            .flat_map(|i| spec.shard_indices(i, 3).collect::<Vec<_>>())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..spec.cells.len()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn shard_index_must_be_below_count() {
        SweepSpec::default().shard(2, 2);
    }

    #[test]
    fn options_do_not_perturb_results_and_progress_counts_units() {
        use std::sync::Mutex;
        let spec = SweepSpec::for_pairs(
            [
                (Workload::Bfs { root: 0 }, Dataset::Flickr),
                (Workload::PageRank { iterations: 1 }, Dataset::Flickr),
            ],
            &[SchemeId::IDEAL, SchemeId::DVM_PE],
            |_| 1024,
        );
        let plain = SweepRunner::new(&spec).run().unwrap();

        let dir = std::env::temp_dir().join(format!("dvm-sweep-opts-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = DatasetCache::new(&dir).unwrap();
        let events: Mutex<Vec<(usize, usize, String)>> = Mutex::new(Vec::new());
        let record = |p: SweepProgress<'_>| {
            events.lock().unwrap().push((
                p.done,
                p.total,
                format!("{}/{} {}", p.workload, p.dataset, p.scheme),
            ));
        };
        let opted = SweepRunner::new(&spec)
            .jobs(2)
            .cache(&cache)
            .progress(&record)
            .run()
            .unwrap();
        assert_eq!(format!("{plain:?}"), format!("{opted:?}"));

        let events = events.into_inner().unwrap();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|(_, total, _)| *total == 4));
        let mut dones: Vec<usize> = events.iter().map(|(done, _, _)| *done).collect();
        dones.sort_unstable();
        assert_eq!(dones, vec![1, 2, 3, 4]);
        assert!(events.iter().any(|(_, _, label)| label == "BFS/FR Ideal"));
        // One distinct (dataset, divisor) key: generated once, missed once.
        assert_eq!(cache.misses(), 1);

        // A second cached run hits instead of generating, same results.
        let rerun = SweepRunner::new(&spec).cache(&cache).run().unwrap();
        assert_eq!(format!("{plain:?}"), format!("{rerun:?}"));
        assert_eq!(cache.hits(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lanes_do_not_perturb_results() {
        let spec = SweepSpec::for_pairs(
            [
                (Workload::Bfs { root: 0 }, Dataset::Flickr),
                (Workload::PageRank { iterations: 1 }, Dataset::Flickr),
            ],
            &[SchemeId::CONV_4K, SchemeId::DVM_PE_PLUS, SchemeId::IDEAL],
            |_| 1024,
        );
        let serial = SweepRunner::new(&spec).lanes(1).run().unwrap();
        let piped = SweepRunner::new(&spec).lanes(4).run().unwrap();
        assert_eq!(format!("{serial:?}"), format!("{piped:?}"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_still_run() {
        let spec = SweepSpec::for_pairs(
            [(Workload::Bfs { root: 0 }, Dataset::Flickr)],
            &[SchemeId::IDEAL],
            |_| 1024,
        );
        let via_runner = SweepRunner::new(&spec).run().unwrap();
        let via_free = run_sweep(&spec, 1).unwrap();
        let via_opts = run_sweep_opts(&spec, &SweepOptions::with_jobs(1)).unwrap();
        assert_eq!(format!("{via_runner:?}"), format!("{via_free:?}"));
        assert_eq!(format!("{via_runner:?}"), format!("{via_opts:?}"));
    }

    #[test]
    fn report_for_finds_scheme() {
        let spec = SweepSpec::for_pairs(
            [(Workload::Bfs { root: 0 }, Dataset::Flickr)],
            &[SchemeId::DVM_PE_PLUS, SchemeId::IDEAL],
            |_| 1024,
        );
        let results = SweepRunner::new(&spec).run().unwrap();
        assert_eq!(results.len(), 1);
        let cell = &results[0];
        assert_eq!(
            cell.report_for(SchemeId::IDEAL).unwrap().mmu,
            SchemeId::IDEAL
        );
        assert!(cell.report_for(SchemeId::DVM_BM).is_none());
    }
}
