//! The experiment runner: wires OS + IOMMU + DRAM + accelerator for one
//! (workload, graph, MMU-scheme) triple and reports the metrics the
//! paper's figures are built from.

use dvm_accel::{layout, run_pipelined_via, run_via, AccelConfig, LaneParts, RunResult, Workload};
use dvm_energy::EnergyParams;
use dvm_graph::Graph;
use dvm_mem::{Dram, DramConfig, MachineConfig, PhysMem};
use dvm_mmu::{dispatch, Iommu, MemSystem, SchemeDispatch, SchemeId};
use dvm_os::{MapFlavor, Os, OsConfig};
use dvm_pagetable::{PageTable, PermBitmap};
use dvm_sim::Cycles;
use dvm_types::DvmError;

/// Configuration of one accelerator experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentConfig {
    /// Memory-management scheme under test.
    pub mmu: SchemeId,
    /// Machine memory; `None` sizes it automatically from the graph
    /// footprint (with headroom for the 1 GiB-page flavour's padding).
    pub machine_bytes: Option<u64>,
    /// Accelerator parameters.
    pub accel: AccelConfig,
    /// DRAM parameters.
    pub dram: DramConfig,
    /// Energy parameters.
    pub energy: EnergyParams,
    /// Intra-unit lanes: `1` runs the fused serial path, `2` the
    /// functional/timing pipeline, `3` (or more — clamped) additionally
    /// splits timing into translate and memory lanes, `0` picks
    /// automatically (see [`dvm_accel::effective_lanes`]). Lane choice
    /// never changes results — reports are byte-identical by
    /// construction.
    pub lanes: u32,
}

impl ExperimentConfig {
    /// Paper-default configuration for a scheme.
    pub fn for_mmu(mmu: SchemeId) -> Self {
        Self {
            mmu,
            machine_bytes: None,
            accel: AccelConfig::default(),
            dram: DramConfig::default(),
            energy: EnergyParams::default(),
            lanes: 1,
        }
    }

    /// Same configuration with a different lane count.
    pub fn with_lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes;
        self
    }
}

/// The OS page-table flavour each MMU scheme requires.
pub fn flavor_for(mmu: SchemeId) -> MapFlavor {
    match mmu.required_leaf_size() {
        Some(page_size) => MapFlavor::Paged(page_size),
        // DVM variants and Ideal share the DVM OS (identity + PEs).
        None => MapFlavor::DvmPe,
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct GraphRunReport {
    /// Scheme that ran.
    pub mmu: SchemeId,
    /// Workload name.
    pub workload: &'static str,
    /// Accelerator execution time.
    pub cycles: Cycles,
    /// Raw accelerator result.
    pub run: RunResult,
    /// IOMMU accesses validated.
    pub accesses: u64,
    /// Translation TLB (hits, misses), when the scheme has one.
    pub tlb: Option<(u64, u64)>,
    /// PWC/AVC (hits, misses), when present.
    pub ptc: Option<(u64, u64)>,
    /// Bitmap cache (hits, misses), DVM-BM only.
    pub bitmap_cache: Option<(u64, u64)>,
    /// Walker memory references.
    pub walk_mem_refs: u64,
    /// Identity-validated accesses.
    pub identity_validations: u64,
    /// Fallback translations under DVM.
    pub fallback_translations: u64,
    /// Squashed preloads (DVM-PE+).
    pub preload_squashes: u64,
    /// Dynamic memory-management energy in picojoules.
    pub mm_energy_pj: f64,
    /// Total DRAM transactions (data + walker + squashes).
    pub dram_accesses: u64,
    /// Heap bytes of the graph arrays.
    pub heap_bytes: u64,
}

impl GraphRunReport {
    /// TLB miss rate, if the scheme has a TLB (Figure 2's metric).
    pub fn tlb_miss_rate(&self) -> Option<f64> {
        self.tlb.map(|(h, m)| {
            if h + m == 0 {
                0.0
            } else {
                m as f64 / (h + m) as f64
            }
        })
    }
}

/// Pick a machine size that fits the graph under every flavour; the
/// scheme's hint covers flavour-specific padding (e.g. 1 GiB pages).
fn auto_machine_bytes(graph_heap: u64, mmu: SchemeId) -> u64 {
    let padded = mmu.scheme().machine_bytes_hint(graph_heap);
    // Round up to a whole GiB for tidy bitmap sizing.
    padded.next_multiple_of(1 << 30)
}

/// One ready-to-run simulation unit; `run` picks the fused or pipelined
/// path from the resolved lane count so the scheme-dispatch match above
/// it stays a single 10-arm table.
struct Unit<'a> {
    workload: &'a Workload,
    g: &'a layout::GraphInMemory,
    lanes: u32,
    iommu: &'a mut Iommu,
    pt: &'a PageTable,
    bitmap: Option<&'a PermBitmap>,
    mem: &'a mut PhysMem,
    dram: &'a mut Dram,
    accel: &'a AccelConfig,
}

impl Unit<'_> {
    fn run<D: SchemeDispatch>(&mut self) -> Result<RunResult, dvm_types::Fault> {
        if self.lanes >= 2 {
            run_pipelined_via::<D>(
                self.workload,
                self.g,
                LaneParts {
                    iommu: self.iommu,
                    pt: self.pt,
                    bitmap: self.bitmap,
                    mem: self.mem,
                    dram: self.dram,
                },
                self.accel,
                self.lanes,
            )
        } else {
            let mut sys = MemSystem::new(self.iommu, self.pt, self.bitmap, self.mem, self.dram);
            run_via::<D>(self.workload, self.g, &mut sys, self.accel)
        }
    }
}

/// Run one workload over one graph under one scheme.
///
/// # Errors
///
/// Propagates OS allocation failures and IOMMU faults (as
/// [`DvmError::Fault`]).
pub fn run_graph_experiment(
    workload: &Workload,
    graph: &Graph,
    config: &ExperimentConfig,
) -> Result<GraphRunReport, DvmError> {
    let machine_bytes = config
        .machine_bytes
        .unwrap_or_else(|| auto_machine_bytes(graph.footprint_bytes(), config.mmu));
    let mut os = Os::new(OsConfig {
        machine: MachineConfig {
            mem_bytes: machine_bytes,
        },
        flavor: flavor_for(config.mmu),
        maintain_bitmap: config.mmu.needs_bitmap(),
        ..OsConfig::default()
    });
    let pid = os.spawn()?;
    let g = layout::load_graph(&mut os, pid, graph, workload.prop_stride())?;

    let mut iommu = Iommu::new(config.mmu, config.energy);
    let mut dram = Dram::new(config.dram);
    let pt = os.process(pid)?.page_table;
    let bitmap = os.bitmap;
    let lanes = dvm_accel::effective_lanes(config.lanes);
    let mut unit = Unit {
        workload,
        g: &g,
        lanes,
        iommu: &mut iommu,
        pt: &pt,
        bitmap: bitmap.as_ref(),
        mem: &mut os.machine.mem,
        dram: &mut dram,
        accel: &config.accel,
    };
    // Builtin schemes run monomorphized (the registry's virtual call would
    // otherwise keep the whole per-access path out of the inliner's reach);
    // runtime-registered schemes take the dynamic path. Either way the
    // executed scheme code is identical — `dispatch::Dyn` is the oracle the
    // static tokens are tested against in `dvm-accel`.
    let result = match config.mmu {
        SchemeId::CONV_4K => unit.run::<dispatch::Conv4K>(),
        SchemeId::CONV_2M => unit.run::<dispatch::Conv2M>(),
        SchemeId::CONV_1G => unit.run::<dispatch::Conv1G>(),
        SchemeId::DVM_BM => unit.run::<dispatch::DvmBm>(),
        SchemeId::DVM_PE => unit.run::<dispatch::DvmPe>(),
        SchemeId::DVM_PE_PLUS => unit.run::<dispatch::DvmPePlus>(),
        SchemeId::IDEAL => unit.run::<dispatch::Ideal>(),
        SchemeId::SVA_PF => unit.run::<dispatch::SvaPf>(),
        SchemeId::SVA_IOMMU => unit.run::<dispatch::SvaIommu>(),
        _ => unit.run::<dispatch::Dyn>(),
    }
    .map_err(DvmError::from)?;

    let stats = &iommu.stats;
    Ok(GraphRunReport {
        mmu: config.mmu,
        workload: workload.name(),
        cycles: result.cycles,
        accesses: stats.accesses.get(),
        tlb: iommu.tlb_stats().map(|s| (s.hits(), s.misses())),
        ptc: iommu.ptc_stats().map(|s| (s.hits(), s.misses())),
        bitmap_cache: iommu.bitmap_cache_stats().map(|s| (s.hits(), s.misses())),
        walk_mem_refs: stats.walk_mem_refs.get(),
        identity_validations: stats.identity_validations.get(),
        fallback_translations: stats.fallback_translations.get(),
        preload_squashes: stats.preload_squashes.get(),
        mm_energy_pj: iommu.energy.total_pj(),
        dram_accesses: dram.accesses(),
        heap_bytes: g.heap_bytes(),
        run: result,
    })
}

/// Run a workload over a graph under every scheme in the paper's set,
/// in order; the last entry is the Ideal baseline.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn run_paper_configs(
    workload: &Workload,
    graph: &Graph,
) -> Result<Vec<GraphRunReport>, DvmError> {
    SchemeId::PAPER_SET
        .iter()
        .map(|&mmu| run_graph_experiment(workload, graph, &ExperimentConfig::for_mmu(mmu)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_graph::{rmat, RmatParams};

    #[test]
    fn reports_carry_scheme_specific_stats() {
        let graph = rmat(10, 4, RmatParams::default(), 3);
        let workload = Workload::Bfs { root: 0 };
        let conv = run_graph_experiment(
            &workload,
            &graph,
            &ExperimentConfig::for_mmu(SchemeId::CONV_4K),
        )
        .unwrap();
        assert!(conv.tlb.is_some());
        assert!(conv.bitmap_cache.is_none());
        assert!(conv.mm_energy_pj > 0.0);

        let pe = run_graph_experiment(
            &workload,
            &graph,
            &ExperimentConfig::for_mmu(SchemeId::DVM_PE_PLUS),
        )
        .unwrap();
        assert!(pe.tlb.is_none());
        assert!(pe.identity_validations > 0);

        let ideal = run_graph_experiment(
            &workload,
            &graph,
            &ExperimentConfig::for_mmu(SchemeId::IDEAL),
        )
        .unwrap();
        assert_eq!(ideal.mm_energy_pj, 0.0);
        assert!(ideal.cycles <= pe.cycles);
    }

    #[test]
    fn paper_set_runs_in_order() {
        let graph = rmat(9, 4, RmatParams::default(), 4);
        let reports = run_paper_configs(&Workload::PageRank { iterations: 1 }, &graph).unwrap();
        assert_eq!(reports.len(), 7);
        assert_eq!(reports[6].mmu, SchemeId::IDEAL);
        // All configs did identical functional work.
        for r in &reports {
            assert_eq!(r.run.edges_processed, reports[0].run.edges_processed);
        }
    }

    #[test]
    fn auto_sizing_covers_1g_padding() {
        let bytes = auto_machine_bytes(300 << 20, SchemeId::CONV_1G);
        assert!(bytes >= 7 << 30);
    }
}
