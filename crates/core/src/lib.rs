//! Devirtualized Memory (DVM): the paper's contribution as a library.
//!
//! This crate is the front door of the reproduction of *Devirtualizing
//! Memory in Heterogeneous Systems* (Haria, Hill, Swift — ASPLOS 2018).
//! It wires the substrates together:
//!
//! * [`dvm_os`] — identity mapping (VA==PA) with eager contiguous
//!   allocation and demand-paging fallback (paper §4.3),
//! * [`dvm_pagetable`] — Permission Entries, the compact page-table format
//!   (§4.1.1),
//! * [`dvm_mmu`] — Devirtualized Access Validation in the IOMMU: the
//!   Access Validation Cache, the bitmap variant, and preload-on-read
//!   (§4.1.2, §4.2),
//! * [`dvm_accel`] — the Graphicionado-style accelerator and the four
//!   graph workloads (§6),
//! * [`dvm_cpu`] — cDVM for CPU cores (§7),
//!
//! and exposes the experiment API the benchmark harnesses use to
//! regenerate every table and figure of the paper.
//!
//! # Examples
//!
//! ```
//! use dvm_core::{run_graph_experiment, ExperimentConfig, SchemeId, Workload};
//! use dvm_graph::{rmat, RmatParams};
//!
//! # fn main() -> Result<(), dvm_types::DvmError> {
//! let graph = rmat(10, 4, RmatParams::default(), 1);
//! let workload = Workload::Bfs { root: 0 };
//! let dvm = run_graph_experiment(
//!     &workload,
//!     &graph,
//!     &ExperimentConfig::for_mmu(SchemeId::DVM_PE_PLUS),
//! )?;
//! let ideal = run_graph_experiment(
//!     &workload,
//!     &graph,
//!     &ExperimentConfig::for_mmu(SchemeId::IDEAL),
//! )?;
//! let overhead = dvm.cycles as f64 / ideal.cycles as f64;
//! assert!(overhead >= 1.0);
//! # Ok(())
//! # }
//! ```

pub mod experiment;
pub mod sweep;
pub mod table1;

pub use experiment::{
    flavor_for, run_graph_experiment, run_paper_configs, ExperimentConfig, GraphRunReport,
};
pub use sweep::{
    effective_jobs, parallel_map_ordered, CellReports, EpochGrid, ReportStore, SweepCell,
    SweepProgress, SweepRunner, SweepSpec, UnitKey,
};
#[allow(deprecated)]
pub use sweep::{run_sweep, run_sweep_opts, SweepOptions};
pub use table1::{page_table_study, PageTableStudy};

// Re-export the pieces downstream users need most, so `dvm-core` works as
// a single-dependency facade.
pub use dvm_accel::{AccelConfig, RunResult, Workload};
pub use dvm_cpu::{evaluate as evaluate_cpu, CpuModelConfig, CpuRunReport, CpuScheme, CpuWorkload};
pub use dvm_energy::{EnergyAccount, EnergyParams, MmEvent};
pub use dvm_graph::{Dataset, DatasetCache};
pub use dvm_mem::{DramConfig, MachineConfig};
pub use dvm_mmu::{register_scheme, SchemeId, SchemeStructures, TranslationScheme};
pub use dvm_os::{
    ChurnConfig, ChurnEpoch, ChurnResult, MapFlavor, Os, OsConfig, ShbenchConfig, ShbenchResult,
};
pub use dvm_types::{AccessKind, DvmError, Fault, PageSize, Permission, PhysAddr, VirtAddr};
