//! The page-table size study (paper Table 1): for a given workload heap,
//! compare conventional 4 KiB page tables against Permission-Entry
//! tables.

use dvm_accel::{layout, Workload};
use dvm_graph::Graph;
use dvm_mem::MachineConfig;
use dvm_os::{MapFlavor, Os, OsConfig};
use dvm_pagetable::SizeReport;
use dvm_types::{DvmError, PageSize};

/// One row of Table 1.
#[derive(Debug, Clone, Copy)]
pub struct PageTableStudy {
    /// Conventional 4 KiB page-table size report.
    pub conventional: SizeReport,
    /// Permission-Entry page-table size report.
    pub with_pes: SizeReport,
    /// Heap bytes mapped.
    pub heap_bytes: u64,
}

impl PageTableStudy {
    /// Conventional table size in KiB ("Page Tables (in KB)").
    pub fn conventional_kb(&self) -> u64 {
        self.conventional.total_kb()
    }

    /// Fraction of conventional table bytes in L1 PTE pages
    /// ("% occupied by L1PTEs").
    pub fn l1_fraction(&self) -> f64 {
        self.conventional.l1_fraction()
    }

    /// PE table size in KiB ("Page Tables with PEs (in KB)").
    pub fn pe_kb(&self) -> u64 {
        self.with_pes.total_kb()
    }
}

/// Build the workload's heap twice — once with 4 KiB leaf tables, once
/// with Permission Entries — and measure both page tables.
///
/// # Errors
///
/// Propagates OS allocation failures.
pub fn page_table_study(graph: &Graph, workload: &Workload) -> Result<PageTableStudy, DvmError> {
    let mut reports = Vec::with_capacity(2);
    let mut heap_bytes = 0;
    for flavor in [MapFlavor::Paged(PageSize::Size4K), MapFlavor::DvmPe] {
        let mem_bytes = (graph.footprint_bytes() * 2)
            .next_multiple_of(1 << 30)
            .max(1 << 30);
        let mut os = Os::new(OsConfig {
            machine: MachineConfig { mem_bytes },
            flavor,
            ..OsConfig::default()
        });
        let pid = os.spawn()?;
        let g = layout::load_graph(&mut os, pid, graph, workload.prop_stride())?;
        heap_bytes = g.heap_bytes();
        let report = os.process(pid)?.page_table.size_report(&os.machine.mem);
        reports.push(report);
    }
    Ok(PageTableStudy {
        conventional: reports[0],
        with_pes: reports[1],
        heap_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_graph::{rmat, RmatParams};

    #[test]
    fn pes_shrink_tables_dramatically() {
        // A ~45 MiB heap: big enough that L1 tables dominate (the paper's
        // full-size rows are produced by the table1 harness binary).
        let graph = rmat(18, 12, RmatParams::default(), 2);
        let study = page_table_study(&graph, &Workload::PageRank { iterations: 1 }).unwrap();
        // Paper Table 1: L1 PTEs dominate conventional table bytes, and
        // PEs shrink the table by an order of magnitude.
        assert!(
            study.l1_fraction() > 0.8,
            "L1 fraction {:.3}",
            study.l1_fraction()
        );
        assert!(
            study.pe_kb() * 5 < study.conventional_kb(),
            "PE {} KB vs conventional {} KB",
            study.pe_kb(),
            study.conventional_kb()
        );
        // PE tables have essentially no L1 pages.
        assert_eq!(study.with_pes.table_frames[0], 0);
        assert!(study.with_pes.total_pes() > 0);
    }
}
