//! The farm wire protocol: length-prefixed frames over std TCP.
//!
//! Every message is one **frame**: an ASCII decimal payload length, a
//! newline, then exactly that many payload bytes. The payload's first
//! line is the **header** (a verb plus space-separated arguments); the
//! bytes after the header's newline are the opaque **body** (a shard
//! fragment, a relayed stderr line, an error message). Length prefixing
//! is what makes fragment transfer tear-proof: a frame either arrives
//! whole or the connection errors — there is no way to observe half a
//! fragment.
//!
//! The first frame on every connection is the versioned handshake: the
//! connecting peer sends `HELLO dvmfarm/<version> <role> <name>` and the
//! coordinator answers `OLEH dvmfarm/<version> farmd` — or `ERR` with a
//! reason, including a version mismatch. Version 1 requires an exact
//! match; there is no downgrade negotiation.
//!
//! See DESIGN.md §7 "Sweep farm" for the full verb table and failure
//! modes.

use std::io::{self, Read, Write};

/// Protocol magic, the first token of every handshake version string.
pub const MAGIC: &str = "dvmfarm";

/// Protocol version spoken by this build. Peers must match exactly.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on one frame's payload, defending both sides against a
/// garbage length prefix. Fragments are a few MiB at worst.
pub const MAX_FRAME: usize = 64 << 20;

/// Cap on relayed stderr lines (progress, cache stats): longer lines are
/// truncated at a char boundary before they are framed or printed, so a
/// runaway worker cannot balloon coordinator or client memory.
pub const MAX_LINE: usize = 4096;

/// One parsed frame: the header line and the opaque body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Verb plus space-separated arguments (never contains `\n`).
    pub header: String,
    /// Opaque payload after the header line; empty for most verbs.
    pub body: Vec<u8>,
}

impl Frame {
    /// The header's first token (empty string for an empty header).
    pub fn verb(&self) -> &str {
        self.header.split_whitespace().next().unwrap_or("")
    }

    /// The header tokens after the verb.
    pub fn args(&self) -> Vec<&str> {
        self.header.split_whitespace().skip(1).collect()
    }

    /// The body as text (lossy — relayed lines are expected UTF-8).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Write one frame. The whole frame is assembled into a single buffer
/// and written with one `write_all`, so concurrent writers serialized by
/// a mutex can never interleave partial frames.
///
/// # Errors
///
/// I/O errors from the underlying stream; `InvalidInput` if the frame
/// would exceed [`MAX_FRAME`] or the header contains a newline.
pub fn write_frame(w: &mut impl Write, header: &str, body: &[u8]) -> io::Result<()> {
    if header.contains('\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame header contains a newline",
        ));
    }
    let payload_len = header.len() + 1 + body.len();
    if payload_len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {payload_len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = Vec::with_capacity(payload_len + 12);
    buf.extend_from_slice(payload_len.to_string().as_bytes());
    buf.push(b'\n');
    buf.extend_from_slice(header.as_bytes());
    buf.push(b'\n');
    buf.extend_from_slice(body);
    w.write_all(&buf)?;
    w.flush()
}

/// Read one frame, blocking until it arrives whole.
///
/// # Errors
///
/// `UnexpectedEof` on a cleanly closed connection, `InvalidData` on a
/// malformed or oversized length prefix, otherwise the stream's error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
    let mut first = [0u8; 1];
    r.read_exact(&mut first)?;
    read_frame_resume(first[0], r)
}

/// [`read_frame`] for callers that already pulled the first byte off the
/// stream (the worker's idle loop reads byte one under a timeout, then
/// finishes the frame blocking so a timeout can never split a frame).
///
/// # Errors
///
/// Same conditions as [`read_frame`].
pub fn read_frame_resume(first: u8, r: &mut impl Read) -> io::Result<Frame> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut len: usize = 0;
    let mut digits = 0usize;
    let mut byte = first;
    loop {
        match byte {
            b'\n' if digits > 0 => break,
            b'0'..=b'9' if digits < 9 => {
                len = len * 10 + usize::from(byte - b'0');
                digits += 1;
            }
            _ => return Err(bad("malformed frame length prefix")),
        }
        let mut next = [0u8; 1];
        r.read_exact(&mut next)?;
        byte = next[0];
    }
    if len == 0 || len > MAX_FRAME {
        return Err(bad("frame length out of range"));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let split = payload
        .iter()
        .position(|&b| b == b'\n')
        .unwrap_or(payload.len());
    let header = String::from_utf8(payload[..split].to_vec())
        .map_err(|_| bad("frame header is not UTF-8"))?;
    let body = if split < payload.len() {
        payload.split_off(split + 1)
    } else {
        Vec::new()
    };
    Ok(Frame { header, body })
}

/// The `magic/version` token both handshake lines carry.
pub fn version_token() -> String {
    format!("{MAGIC}/{PROTOCOL_VERSION}")
}

/// A parsed `HELLO` handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The peer's role: `worker` or `client`.
    pub role: String,
    /// The peer's self-chosen display name (a [`is_token`] token).
    pub name: String,
}

/// Parse and validate a `HELLO` frame's header.
///
/// # Errors
///
/// A user-facing reason string, suitable as an `ERR` body: wrong magic,
/// version mismatch, malformed shape, or a bad role/name token.
pub fn parse_hello(header: &str) -> Result<Hello, String> {
    let parts: Vec<&str> = header.split_whitespace().collect();
    let [verb, version, role, name] = parts.as_slice() else {
        return Err("malformed handshake (want: HELLO dvmfarm/<ver> <role> <name>)".to_string());
    };
    if *verb != "HELLO" {
        return Err(format!("expected HELLO, got '{verb}'"));
    }
    let (magic, ver) = version.split_once('/').unwrap_or((version, ""));
    if magic != MAGIC {
        return Err(format!("not a {MAGIC} peer (got '{version}')"));
    }
    if ver.parse::<u32>() != Ok(PROTOCOL_VERSION) {
        return Err(format!(
            "protocol version mismatch: peer speaks {MAGIC}/{ver}, this side speaks {}",
            version_token()
        ));
    }
    if *role != "worker" && *role != "client" {
        return Err(format!("unknown role '{role}' (worker|client)"));
    }
    if !is_token(name) {
        return Err(format!("bad peer name '{name}'"));
    }
    Ok(Hello {
        role: (*role).to_string(),
        name: (*name).to_string(),
    })
}

/// `true` for names safe to embed in headers and file names: 1–64 chars
/// of `[A-Za-z0-9._-]`.
pub fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

/// If `line` is a sweep `progress:` line, its unit label — the text in
/// the final parentheses, or everything after the prefix when there are
/// none. This is what the coordinator aggregates into the one global
/// done/total counter (the per-worker counts are dropped).
pub fn progress_label(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("progress: ")?;
    Some(
        rest.rfind('(')
            .map_or(rest, |open| rest[open + 1..].trim_end_matches(')')),
    )
}

/// Truncate a relayed line to [`MAX_LINE`] bytes at a char boundary.
pub fn truncate_line(line: &str) -> &str {
    if line.len() <= MAX_LINE {
        return line;
    }
    let mut end = MAX_LINE;
    while !line.is_char_boundary(end) {
        end -= 1;
    }
    &line[..end]
}

/// Print one line to stderr tear-proof: the line is length-checked
/// (truncated at [`MAX_LINE`]), assembled with its newline into a single
/// buffer, and written with one `write_all` under the stderr lock — so
/// relay threads and processes can never interleave partial lines the
/// way per-fragment `eprintln!` formatting could.
pub fn emit_stderr_line(line: &str) {
    let line = truncate_line(line);
    let mut buf = Vec::with_capacity(line.len() + 1);
    buf.extend_from_slice(line.as_bytes());
    buf.push(b'\n');
    let stderr = io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(&buf);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "DONE 3 1", b"fragment bytes").unwrap();
        write_frame(&mut wire, "READY", b"").unwrap();
        let mut r = wire.as_slice();
        let first = read_frame(&mut r).unwrap();
        assert_eq!(first.verb(), "DONE");
        assert_eq!(first.args(), vec!["3", "1"]);
        assert_eq!(first.body, b"fragment bytes");
        let second = read_frame(&mut r).unwrap();
        assert_eq!(second.verb(), "READY");
        assert!(second.body.is_empty());
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn bodies_may_hold_newlines_and_binary() {
        let body = b"line one\nline two\n\x00\xff";
        let mut wire = Vec::new();
        write_frame(&mut wire, "FRAG 0 2", body).unwrap();
        let frame = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(frame.header, "FRAG 0 2");
        assert_eq!(frame.body, body);
    }

    #[test]
    fn malformed_lengths_are_rejected() {
        for wire in [
            &b"x5\nHELLO"[..],
            b"\nHELLO",
            b"9999999999\nHELLO",
            b"0\n",
            b"123456789012\nH",
        ] {
            let err = read_frame(&mut &wire[..]).unwrap_err();
            assert!(
                matches!(
                    err.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "{wire:?} -> {err}"
            );
        }
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, "BAD\nHEADER", b"").is_err());
    }

    #[test]
    fn handshake_versions_must_match_exactly() {
        let ok = parse_hello("HELLO dvmfarm/1 worker w1").unwrap();
        assert_eq!(ok.role, "worker");
        assert_eq!(ok.name, "w1");
        assert!(parse_hello("HELLO dvmfarm/2 worker w1")
            .unwrap_err()
            .contains("version mismatch"));
        assert!(parse_hello("HELLO otherproto/1 worker w1")
            .unwrap_err()
            .contains("not a dvmfarm peer"));
        assert!(parse_hello("HELLO dvmfarm/1 gardener w1")
            .unwrap_err()
            .contains("unknown role"));
        assert!(parse_hello("HELLO dvmfarm/1 worker").is_err());
        assert!(parse_hello("HELLO dvmfarm/1 worker bad name").is_err());
        assert_eq!(version_token(), "dvmfarm/1");
    }

    #[test]
    fn tokens_reject_separators() {
        assert!(is_token("fig2"));
        assert!(is_token("worker-1.local"));
        assert!(!is_token(""));
        assert!(!is_token("a b"));
        assert!(!is_token("a/b"));
        assert!(!is_token(&"x".repeat(65)));
    }

    #[test]
    fn progress_labels_extract_like_the_shard_relay() {
        assert_eq!(
            progress_label("progress: shard 0/2 1/2 (BFS/FR 4K)"),
            Some("BFS/FR 4K")
        );
        assert_eq!(progress_label("progress: 3/9"), Some("3/9"));
        assert_eq!(progress_label("dataset-cache: hits=1"), None);
    }

    #[test]
    fn long_lines_truncate_on_char_boundaries() {
        let ascii = "x".repeat(MAX_LINE + 100);
        assert_eq!(truncate_line(&ascii).len(), MAX_LINE);
        let multi = "é".repeat(MAX_LINE); // 2 bytes each
        let cut = truncate_line(&multi);
        assert!(cut.len() <= MAX_LINE);
        assert!(multi.is_char_boundary(cut.len()));
        assert_eq!(truncate_line("short"), "short");
    }
}
