//! `farmworker` — a sweep-farm worker. Registers with a coordinator and
//! runs the shard slices it is handed by spawning bench binaries from
//! `--bin-dir`, until the coordinator dismisses it or the link drops.

use dvm_farm::WorkerConfig;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
usage: farmworker --connect HOST:PORT --bin-dir DIR [options]

options:
  --connect HOST:PORT   coordinator address (required)
  --bin-dir DIR         directory with the bench binaries (required)
  --name NAME           worker name in coordinator logs
                        (default worker-<pid>)
  --cache-dir DIR       local dataset cache (overrides the job's)
  --report-cache DIR    local report cache (overrides the job's)
  --scratch DIR         fragment staging directory (default: temp dir)
  --connect-wait SECS   retry the initial connect this long (default 10)
  --help                show this help
";

fn usage_err(msg: &str) -> ! {
    eprintln!("farmworker: {msg}");
    eprint!("{USAGE}");
    exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut bin_dir: Option<PathBuf> = None;
    let mut name = format!("worker-{}", std::process::id());
    let mut cache_dir = None;
    let mut report_cache = None;
    let mut scratch = std::env::temp_dir();
    let mut connect_wait = Duration::from_secs(10);
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .unwrap_or_else(|| usage_err(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            "--connect" => addr = Some(value("--connect")),
            "--bin-dir" => bin_dir = Some(PathBuf::from(value("--bin-dir"))),
            "--name" => name = value("--name"),
            "--cache-dir" => cache_dir = Some(PathBuf::from(value("--cache-dir"))),
            "--report-cache" => report_cache = Some(PathBuf::from(value("--report-cache"))),
            "--scratch" => scratch = PathBuf::from(value("--scratch")),
            "--connect-wait" => {
                connect_wait = Duration::from_secs(
                    value("--connect-wait")
                        .parse()
                        .unwrap_or_else(|_| usage_err("--connect-wait needs an integer")),
                )
            }
            other => usage_err(&format!("unknown argument '{other}'")),
        }
    }
    let Some(addr) = addr else {
        usage_err("--connect is required");
    };
    let Some(bin_dir) = bin_dir else {
        usage_err("--bin-dir is required");
    };
    if !bin_dir.is_dir() {
        usage_err(&format!(
            "--bin-dir {} is not a directory",
            bin_dir.display()
        ));
    }
    let cfg = WorkerConfig {
        addr,
        bin_dir,
        name,
        cache_dir,
        report_cache,
        scratch,
        connect_wait,
    };
    if let Err(err) = dvm_farm::run_worker(&cfg) {
        eprintln!("farmworker[{}]: {err}", cfg.name);
        exit(1);
    }
}
