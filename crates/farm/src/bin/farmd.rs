//! `farmd` — the sweep-farm coordinator. Binds a TCP listener, prints
//! `farmd: listening on <addr>` (scrape that when binding port 0), and
//! serves jobs until killed.

use dvm_farm::FarmConfig;
use std::net::TcpListener;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
usage: farmd [options]

options:
  --listen ADDR             bind address (default 127.0.0.1:0; port 0
                            picks a free port, printed on stderr)
  --heartbeat-timeout SECS  drop workers silent this long (default 10)
  --slice-timeout SECS      requeue slices running this long (default 600)
  --retries N               attempts per slice before the job fails
                            (default 3)
  --help                    show this help
";

fn usage_err(msg: &str) -> ! {
    eprintln!("farmd: {msg}");
    eprint!("{USAGE}");
    exit(2);
}

fn main() {
    let mut listen = "127.0.0.1:0".to_string();
    let mut cfg = FarmConfig::default();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| {
            argv.next()
                .unwrap_or_else(|| usage_err(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                exit(0);
            }
            "--listen" => listen = value("--listen"),
            "--heartbeat-timeout" => {
                cfg.heartbeat_timeout =
                    Duration::from_secs(parse_secs(&value("--heartbeat-timeout")))
            }
            "--slice-timeout" => {
                cfg.slice_timeout = Duration::from_secs(parse_secs(&value("--slice-timeout")))
            }
            "--retries" => {
                cfg.max_attempts = value("--retries")
                    .parse()
                    .ok()
                    .filter(|n| *n >= 1)
                    .unwrap_or_else(|| usage_err("--retries needs an integer >= 1"))
            }
            other => usage_err(&format!("unknown argument '{other}'")),
        }
    }
    let listener = TcpListener::bind(&listen).unwrap_or_else(|err| {
        eprintln!("farmd: cannot bind {listen}: {err}");
        exit(1);
    });
    if let Err(err) = dvm_farm::serve(listener, cfg) {
        eprintln!("farmd: {err}");
        exit(1);
    }
}

fn parse_secs(value: &str) -> u64 {
    value
        .parse()
        .ok()
        .filter(|n| *n >= 1)
        .unwrap_or_else(|| usage_err("timeouts need an integer number of seconds >= 1"))
}
