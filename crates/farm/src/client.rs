//! The client side of the farm protocol: submit one sweep job to a
//! coordinator and collect the ordered fragment bytes. Used by the
//! bench binaries when `--farm host:port` is passed; the caller merges
//! the fragments through the ordinary shard-merge path, which is what
//! keeps farm output byte-identical to a serial run.

use crate::proto::{is_token, read_frame, version_token, write_frame};
use std::io::BufReader;
use std::net::TcpStream;

/// One sweep job as submitted to `farmd`.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Bench binary name (plain token; workers resolve it in their
    /// `--bin-dir`).
    pub bin: String,
    /// Experiment name, for coordinator logs.
    pub experiment: String,
    /// Requested slice count; 0 lets the coordinator pick one slice per
    /// live worker.
    pub slices: usize,
    /// Grid size, so the coordinator can aggregate progress.
    pub total_units: usize,
    /// Argv the workers run the binary with (shard flags are appended
    /// worker-side).
    pub argv: Vec<String>,
}

/// Live updates streamed back while a job runs.
#[derive(Debug, Clone, Copy)]
pub enum JobEvent<'a> {
    /// Aggregated done/total across all workers, with the unit label
    /// that just finished.
    Progress {
        /// Units finished so far (coordinator-capped at `total`).
        done: usize,
        /// Total units in the grid.
        total: usize,
        /// Label of the finishing unit.
        label: &'a str,
    },
    /// A non-progress worker stderr line, passed through verbatim.
    Line(&'a str),
}

fn bad(msg: String) -> String {
    format!("farm: {msg}")
}

/// Submit `req` to the coordinator at `addr` and block until the job
/// finishes. Returns the fragment bytes in slice order.
///
/// # Errors
///
/// Connect/handshake failures, protocol violations, and `JOBFAIL` (a
/// slice exhausted its retry budget) all surface as `Err(message)`.
pub fn run_job(
    addr: &str,
    req: &JobRequest,
    on_event: &mut dyn FnMut(JobEvent<'_>),
) -> Result<Vec<Vec<u8>>, String> {
    if !is_token(&req.bin) || !is_token(&req.experiment) {
        return Err(bad(format!(
            "bin/experiment must be plain tokens, got '{}'/'{}'",
            req.bin, req.experiment
        )));
    }
    if let Some(arg) = req.argv.iter().find(|a| a.contains('\n')) {
        return Err(bad(format!("argv entry contains a newline: {arg:?}")));
    }
    let stream = TcpStream::connect(addr)
        .map_err(|err| bad(format!("cannot connect to coordinator {addr}: {err}")))?;
    stream.set_nodelay(true).ok();
    let writer = stream
        .try_clone()
        .map_err(|err| bad(format!("socket clone failed: {err}")))?;
    let mut reader = BufReader::new(stream);
    let send = |header: &str, body: &[u8]| {
        write_frame(&mut &writer, header, body)
            .map_err(|err| bad(format!("send to coordinator failed: {err}")))
    };
    send(
        &format!("HELLO {} client {}", version_token(), req.bin),
        b"",
    )?;
    let oleh =
        read_frame(&mut reader).map_err(|err| bad(format!("handshake read failed: {err}")))?;
    if oleh.verb() != "OLEH" {
        return Err(bad(format!(
            "coordinator rejected handshake: {} {}",
            oleh.header,
            oleh.body_str()
        )));
    }
    send(
        &format!(
            "SUBMIT {} {} {} {}",
            req.bin, req.experiment, req.slices, req.total_units
        ),
        req.argv.join("\n").as_bytes(),
    )?;
    let mut fragments: Vec<Option<Vec<u8>>> = Vec::new();
    loop {
        let frame = read_frame(&mut reader)
            .map_err(|err| bad(format!("coordinator connection lost: {err}")))?;
        let args = frame.args();
        match frame.verb() {
            "ACCEPT" => {
                let [_job, slices] = args.as_slice() else {
                    return Err(bad(format!("malformed ACCEPT '{}'", frame.header)));
                };
                let slices: usize = slices
                    .parse()
                    .map_err(|_| bad(format!("malformed ACCEPT '{}'", frame.header)))?;
                fragments = vec![None; slices];
            }
            "PROG" => {
                if let [done, total] = args.as_slice() {
                    if let (Ok(done), Ok(total)) = (done.parse(), total.parse()) {
                        on_event(JobEvent::Progress {
                            done,
                            total,
                            label: &frame.body_str(),
                        });
                    }
                }
            }
            "LINE" => on_event(JobEvent::Line(&frame.body_str())),
            "FRAG" => {
                let [slice, _count] = args.as_slice() else {
                    return Err(bad(format!("malformed FRAG '{}'", frame.header)));
                };
                let slice: usize = slice
                    .parse()
                    .map_err(|_| bad(format!("malformed FRAG '{}'", frame.header)))?;
                let slot = fragments
                    .get_mut(slice)
                    .ok_or_else(|| bad(format!("fragment index {slice} out of range")))?;
                *slot = Some(frame.body);
            }
            "JOBDONE" => {
                let mut out = Vec::with_capacity(fragments.len());
                for (index, slot) in fragments.iter_mut().enumerate() {
                    out.push(slot.take().ok_or_else(|| {
                        bad(format!("job done but fragment {index} never arrived"))
                    })?);
                }
                if out.is_empty() {
                    return Err(bad("job done before ACCEPT".into()));
                }
                return Ok(out);
            }
            "JOBFAIL" => return Err(bad(format!("job failed: {}", frame.body_str()))),
            "ERR" => return Err(bad(format!("coordinator error: {}", frame.body_str()))),
            other => return Err(bad(format!("unexpected frame '{other}' from coordinator"))),
        }
    }
}
