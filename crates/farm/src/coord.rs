//! The coordinator (`farmd`): accepts sweep jobs from clients, dispatches
//! shard slices to registered workers, tracks liveness via heartbeats,
//! requeues slices from dead or slow workers (bounded retry with
//! exponential backoff), aggregates per-worker progress streams into one
//! done/total counter, and streams completed fragments back to the
//! client — which merges them through the ordinary shard-merge path, so
//! farm output is byte-identical to a serial run.
//!
//! Concurrency model: one reader thread per connection plus a ticker;
//! all of them funnel into one `Mutex<State>`. Writes to any peer go
//! through a per-socket mutex ([`Peer`]), one whole frame per lock, so
//! frames never interleave.

use crate::proto::{
    emit_stderr_line, is_token, parse_hello, progress_label, read_frame, truncate_line,
    version_token, write_frame, Frame,
};
use std::io::{self, BufReader};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on slices per job; merge cost is linear in this.
pub const MAX_SLICES: usize = 4096;

/// Coordinator tuning knobs (the `farmd` flags).
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// A worker silent for longer than this is dead: its connection is
    /// closed and its running slice requeued.
    pub heartbeat_timeout: Duration,
    /// A slice running longer than this on one worker is requeued to
    /// another (the slow worker keeps running; the first finisher wins).
    pub slice_timeout: Duration,
    /// Total tries per slice before the whole job fails.
    pub max_attempts: u32,
    /// Base of the exponential reassignment backoff: retry `k` becomes
    /// eligible `backoff_base * 2^(k-1)` after the failure.
    pub backoff_base: Duration,
}

impl Default for FarmConfig {
    fn default() -> Self {
        Self {
            heartbeat_timeout: Duration::from_secs(10),
            slice_timeout: Duration::from_secs(600),
            max_attempts: 3,
            backoff_base: Duration::from_millis(500),
        }
    }
}

/// The write half of a connection: one whole frame per lock acquisition.
#[derive(Clone)]
struct Peer {
    stream: Arc<Mutex<TcpStream>>,
}

impl Peer {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream: Arc::new(Mutex::new(stream)),
        }
    }

    /// Send one frame; `false` means the peer is unreachable.
    fn send(&self, header: &str, body: &[u8]) -> bool {
        let mut stream = self.stream.lock().expect("peer stream poisoned");
        write_frame(&mut *stream, header, body).is_ok()
    }

    /// Close both directions, waking any thread blocked reading it.
    fn shutdown(&self) {
        let stream = self.stream.lock().expect("peer stream poisoned");
        let _ = stream.shutdown(Shutdown::Both);
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SliceStatus {
    Pending,
    Running { worker: u64, started_tick: u64 },
    Done,
}

#[derive(Debug, Clone)]
struct Slice {
    status: SliceStatus,
    /// Dispatches so far (the running one included).
    attempts: u32,
    /// Not dispatched before this instant (retry backoff).
    eligible_at: Instant,
}

struct Job {
    id: u64,
    client_id: u64,
    bin: String,
    experiment: String,
    argv: Vec<String>,
    slices: usize,
    total_units: usize,
    done_units: usize,
    client: Peer,
    closed: bool,
    slice: Vec<Slice>,
}

struct Worker {
    id: u64,
    name: String,
    peer: Peer,
    last_seen: Instant,
    idle: bool,
    running: Option<(u64, usize)>,
}

struct State {
    cfg: FarmConfig,
    next_worker_id: u64,
    next_job_id: u64,
    next_client_id: u64,
    workers: Vec<Worker>,
    jobs: Vec<Job>,
    /// Monotonic clock for slice-timeout bookkeeping, advanced by the
    /// ticker; `Instant` math stays out of the hot matching code.
    now: Instant,
}

fn log(msg: &str) {
    emit_stderr_line(&format!("farmd: {msg}"));
}

impl State {
    fn new(cfg: FarmConfig) -> Self {
        Self {
            cfg,
            next_worker_id: 1,
            next_job_id: 1,
            next_client_id: 1,
            workers: Vec::new(),
            jobs: Vec::new(),
            now: Instant::now(),
        }
    }

    fn add_worker(&mut self, name: String, peer: Peer, from: &str) -> u64 {
        let id = self.next_worker_id;
        self.next_worker_id += 1;
        log(&format!("worker '{name}' connected from {from} (id {id})"));
        self.workers.push(Worker {
            id,
            name,
            peer,
            last_seen: Instant::now(),
            idle: false,
            running: None,
        });
        id
    }

    fn worker_mut(&mut self, id: u64) -> Option<&mut Worker> {
        self.workers.iter_mut().find(|w| w.id == id)
    }

    fn job_mut(&mut self, id: u64) -> Option<&mut Job> {
        self.jobs.iter_mut().find(|j| j.id == id && !j.closed)
    }

    /// Remove a worker (connection gone, heartbeat expired, or a send
    /// failed) and requeue whatever it was running. Idempotent: a ticker
    /// and a reader thread may both report the same loss.
    fn drop_worker(&mut self, id: u64, reason: &str) {
        let Some(pos) = self.workers.iter().position(|w| w.id == id) else {
            return;
        };
        let worker = self.workers.remove(pos);
        worker.peer.shutdown();
        log(&format!("worker '{}' lost: {reason}", worker.name));
        if let Some((job_id, slice)) = worker.running {
            self.requeue(
                job_id,
                slice,
                &format!("worker '{}' died", worker.name),
                Some(id),
            );
        }
        self.dispatch();
    }

    /// Put a slice back in the pending queue with backoff — unless it
    /// already completed, its job is gone, or (when `expect_worker` is
    /// given) it has since been handed to a different worker.
    fn requeue(&mut self, job_id: u64, slice: usize, reason: &str, expect_worker: Option<u64>) {
        let max_attempts = self.cfg.max_attempts;
        let backoff_base = self.cfg.backoff_base;
        let Some(job) = self.job_mut(job_id) else {
            return;
        };
        let Some(s) = job.slice.get_mut(slice) else {
            return;
        };
        match (s.status, expect_worker) {
            (SliceStatus::Done, _) => return,
            (SliceStatus::Running { worker, .. }, Some(expect)) if worker != expect => return,
            (SliceStatus::Pending, Some(_)) => return,
            _ => {}
        }
        if s.attempts >= max_attempts {
            let msg = format!(
                "slice {slice} failed after {} attempts: {reason}",
                s.attempts
            );
            log(&format!("job {} failed: {msg}", job.id));
            job.closed = true;
            job.client
                .send(&format!("JOBFAIL {}", job.id), msg.as_bytes());
            return;
        }
        let backoff = backoff_base * 2u32.saturating_pow(s.attempts.saturating_sub(1));
        s.status = SliceStatus::Pending;
        s.eligible_at = Instant::now() + backoff;
        log(&format!(
            "job {} slice {slice} requeued ({reason}); attempt {} eligible in {backoff:?}",
            job_id,
            s.attempts + 1
        ));
    }

    /// Hand every eligible pending slice to an idle worker, jobs in
    /// submission order.
    fn dispatch(&mut self) {
        let now = Instant::now();
        loop {
            let Some(widx) = self.workers.iter().position(|w| w.idle) else {
                return;
            };
            let target = self.jobs.iter().find_map(|job| {
                if job.closed {
                    return None;
                }
                job.slice.iter().enumerate().find_map(|(sidx, s)| {
                    (s.status == SliceStatus::Pending && s.eligible_at <= now)
                        .then_some((job.id, sidx))
                })
            });
            let Some((job_id, sidx)) = target else { return };
            let (header, body, attempt, slices) = {
                let job = self.job_mut(job_id).expect("job just matched");
                job.slice[sidx].attempts += 1;
                (
                    format!("RUN {} {sidx} {} {}", job.id, job.slices, job.bin),
                    job.argv.join("\n").into_bytes(),
                    job.slice[sidx].attempts,
                    job.slices,
                )
            };
            let worker = &mut self.workers[widx];
            let worker_id = worker.id;
            let worker_name = worker.name.clone();
            if worker.peer.send(&header, &body) {
                worker.idle = false;
                worker.running = Some((job_id, sidx));
                let tick = self.now.elapsed().as_millis() as u64;
                let job = self.job_mut(job_id).expect("job still open");
                job.slice[sidx].status = SliceStatus::Running {
                    worker: worker_id,
                    started_tick: tick,
                };
                log(&format!(
                    "job {job_id} slice {sidx}/{slices} -> worker '{worker_name}' (attempt {attempt})"
                ));
            } else {
                if let Some(job) = self.job_mut(job_id) {
                    job.slice[sidx].attempts -= 1;
                }
                self.drop_worker(worker_id, "send failed");
            }
        }
    }

    fn worker_ready(&mut self, id: u64) {
        if let Some(worker) = self.worker_mut(id) {
            worker.idle = true;
            worker.running = None;
        }
        self.dispatch();
    }

    fn worker_done(&mut self, id: u64, job_id: u64, slice: usize, fragment: Vec<u8>) {
        if let Some(worker) = self.worker_mut(id) {
            if worker.running == Some((job_id, slice)) {
                worker.running = None;
            }
        }
        let Some(job) = self.job_mut(job_id) else {
            log(&format!(
                "ignoring result for finished job {job_id} slice {slice}"
            ));
            return;
        };
        let Some(s) = job.slice.get_mut(slice) else {
            return;
        };
        if s.status == SliceStatus::Done {
            log(&format!(
                "duplicate result for job {job_id} slice {slice} ignored"
            ));
            return;
        }
        s.status = SliceStatus::Done;
        job.client
            .send(&format!("FRAG {slice} {}", job.slices), &fragment);
        if job.slice.iter().all(|s| s.status == SliceStatus::Done) {
            job.closed = true;
            job.client.send(&format!("JOBDONE {}", job.id), b"");
            log(&format!("job {} complete ({} slices)", job.id, job.slices));
        }
    }

    fn worker_fail(&mut self, id: u64, job_id: u64, slice: usize, reason: &str) {
        if let Some(worker) = self.worker_mut(id) {
            if worker.running == Some((job_id, slice)) {
                worker.running = None;
            }
        }
        let reason = format!("worker reported failure: {}", truncate_line(reason));
        self.requeue(job_id, slice, &reason, Some(id));
        self.dispatch();
    }

    /// One relayed stderr line from a worker's running slice. Progress
    /// lines are collapsed into the job's global done/total counter (the
    /// aggregate the client prints); everything else passes through as a
    /// `LINE` frame.
    fn worker_prog(&mut self, job_id: u64, line: &str) {
        let Some(job) = self.job_mut(job_id) else {
            return;
        };
        if let Some(label) = progress_label(line) {
            // A retried slice replays ticks its first attempt already
            // counted, so the aggregate is clamped to the grid size.
            if job.done_units < job.total_units {
                job.done_units += 1;
            }
            let header = format!("PROG {} {}", job.done_units, job.total_units);
            job.client.send(&header, label.as_bytes());
        } else {
            job.client.send("LINE", line.as_bytes());
        }
    }

    fn submit(&mut self, client_id: u64, client: &Peer, frame: &Frame) {
        let reply_err = |msg: String| {
            client.send("ERR", msg.as_bytes());
        };
        let args = frame.args();
        let [bin, experiment, slices, total_units] = args.as_slice() else {
            reply_err(
                "malformed SUBMIT (want: SUBMIT <bin> <experiment> <slices> <total_units>)".into(),
            );
            return;
        };
        if !is_token(bin) || !is_token(experiment) {
            reply_err(format!("bad bin/experiment token '{bin}'/'{experiment}'"));
            return;
        }
        let (Ok(requested), Ok(total_units)) =
            (slices.parse::<usize>(), total_units.parse::<usize>())
        else {
            reply_err(format!("bad slice/unit counts '{slices}'/'{total_units}'"));
            return;
        };
        if requested > MAX_SLICES {
            reply_err(format!("{requested} slices exceeds the {MAX_SLICES} cap"));
            return;
        }
        let argv: Vec<String> = if frame.body.is_empty() {
            Vec::new()
        } else {
            match std::str::from_utf8(&frame.body) {
                Ok(text) => text.lines().map(str::to_string).collect(),
                Err(_) => {
                    reply_err("SUBMIT argv is not UTF-8".into());
                    return;
                }
            }
        };
        let slices = if requested == 0 {
            self.workers.len().max(1)
        } else {
            requested
        }
        .min(total_units.max(1))
        .min(MAX_SLICES);
        let id = self.next_job_id;
        self.next_job_id += 1;
        let now = Instant::now();
        self.jobs.push(Job {
            id,
            client_id,
            bin: (*bin).to_string(),
            experiment: (*experiment).to_string(),
            argv,
            slices,
            total_units,
            done_units: 0,
            client: client.clone(),
            closed: false,
            slice: vec![
                Slice {
                    status: SliceStatus::Pending,
                    attempts: 0,
                    eligible_at: now,
                };
                slices
            ],
        });
        client.send(&format!("ACCEPT {id} {slices}"), b"");
        let job = self.jobs.last().expect("job just pushed");
        log(&format!(
            "job {id} submitted: {}/{} in {} slices over {} units",
            job.bin, job.experiment, job.slices, job.total_units
        ));
        self.dispatch();
    }

    fn client_gone(&mut self, client_id: u64) {
        for job in &mut self.jobs {
            if job.client_id == client_id && !job.closed {
                job.closed = true;
                log(&format!("job {} abandoned: client disconnected", job.id));
            }
        }
    }

    /// Periodic maintenance: expire silent workers, requeue slices that
    /// outlived the slice timeout, purge finished jobs, dispatch.
    fn tick(&mut self) {
        let now = Instant::now();
        let stale: Vec<u64> = self
            .workers
            .iter()
            .filter(|w| now.duration_since(w.last_seen) > self.cfg.heartbeat_timeout)
            .map(|w| w.id)
            .collect();
        for id in stale {
            self.drop_worker(id, "heartbeat timeout");
        }
        let now_tick = self.now.elapsed().as_millis() as u64;
        let limit_ms = self.cfg.slice_timeout.as_millis() as u64;
        let slow: Vec<(u64, usize, u64)> = self
            .jobs
            .iter()
            .filter(|j| !j.closed)
            .flat_map(|j| {
                j.slice
                    .iter()
                    .enumerate()
                    .filter_map(move |(sidx, s)| match s.status {
                        SliceStatus::Running {
                            worker,
                            started_tick,
                        } if now_tick.saturating_sub(started_tick) > limit_ms => {
                            Some((j.id, sidx, worker))
                        }
                        _ => None,
                    })
            })
            .collect();
        for (job_id, sidx, worker) in slow {
            self.requeue(job_id, sidx, "slice timeout", Some(worker));
        }
        self.jobs.retain(|j| !j.closed);
        self.dispatch();
    }
}

/// Run the coordinator on `listener` until the process is killed. Prints
/// `farmd: listening on <addr>` to stderr once bound — scripts scrape
/// that line for the actual port when binding `:0`.
///
/// # Errors
///
/// Only if the listener's local address cannot be read; per-connection
/// errors are handled (and logged) internally.
pub fn serve(listener: TcpListener, cfg: FarmConfig) -> io::Result<()> {
    let local = listener.local_addr()?;
    log(&format!("listening on {local}"));
    let state = Arc::new(Mutex::new(State::new(cfg)));
    {
        let state = Arc::clone(&state);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(250));
            state.lock().expect("farm state poisoned").tick();
        });
    }
    for conn in listener.incoming() {
        let Ok(stream) = conn else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || handle_connection(stream, &state));
    }
    Ok(())
}

fn handle_connection(stream: TcpStream, state: &Mutex<State>) {
    let from = stream
        .peer_addr()
        .map_or_else(|_| "?".to_string(), |a| a.to_string());
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let peer = Peer::new(write_half);
    let mut reader = BufReader::new(stream);
    let hello = match read_frame(&mut reader) {
        Ok(frame) => match parse_hello(&frame.header) {
            Ok(hello) => hello,
            Err(reason) => {
                log(&format!("rejected {from}: {reason}"));
                peer.send("ERR", reason.as_bytes());
                return;
            }
        },
        Err(_) => return,
    };
    if !peer.send(&format!("OLEH {} farmd", version_token()), b"") {
        return;
    }
    match hello.role.as_str() {
        "worker" => worker_session(&mut reader, &peer, hello.name, &from, state),
        _ => client_session(&mut reader, &peer, state),
    }
}

fn parse_job_slice(args: &[&str]) -> Option<(u64, usize)> {
    let [job, slice, ..] = args else { return None };
    Some((job.parse().ok()?, slice.parse().ok()?))
}

fn worker_session(
    reader: &mut BufReader<TcpStream>,
    peer: &Peer,
    name: String,
    from: &str,
    state: &Mutex<State>,
) {
    let id = state
        .lock()
        .expect("farm state poisoned")
        .add_worker(name, peer.clone(), from);
    while let Ok(frame) = read_frame(reader) {
        let mut st = state.lock().expect("farm state poisoned");
        let Some(worker) = st.worker_mut(id) else {
            // The ticker declared this worker dead while a frame was in
            // flight; drop the connection rather than resurrect it.
            return;
        };
        worker.last_seen = Instant::now();
        match frame.verb() {
            "PING" => {}
            "READY" => st.worker_ready(id),
            "PROG" => {
                if let Some((job, _slice)) = parse_job_slice(&frame.args()) {
                    st.worker_prog(job, truncate_line(&frame.body_str()));
                }
            }
            "DONE" => {
                if let Some((job, slice)) = parse_job_slice(&frame.args()) {
                    st.worker_done(id, job, slice, frame.body);
                }
            }
            "FAIL" => {
                if let Some((job, slice)) = parse_job_slice(&frame.args()) {
                    st.worker_fail(id, job, slice, &frame.body_str());
                }
            }
            other => log(&format!("ignoring unknown worker frame '{other}'")),
        }
    }
    state
        .lock()
        .expect("farm state poisoned")
        .drop_worker(id, "disconnected");
}

fn client_session(reader: &mut BufReader<TcpStream>, peer: &Peer, state: &Mutex<State>) {
    let client_id = {
        let mut st = state.lock().expect("farm state poisoned");
        let id = st.next_client_id;
        st.next_client_id += 1;
        id
    };
    while let Ok(frame) = read_frame(reader) {
        let mut st = state.lock().expect("farm state poisoned");
        match frame.verb() {
            "SUBMIT" => st.submit(client_id, peer, &frame),
            other => log(&format!("ignoring unknown client frame '{other}'")),
        }
    }
    state
        .lock()
        .expect("farm state poisoned")
        .client_gone(client_id);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A loopback socket pair: (coordinator-side peer, test-side stream).
    fn socket_pair() -> (Peer, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ours = TcpStream::connect(addr).unwrap();
        let (theirs, _) = listener.accept().unwrap();
        (Peer::new(theirs), ours)
    }

    fn submit_frame(bin: &str, slices: usize, total: usize) -> Frame {
        Frame {
            header: format!("SUBMIT {bin} {bin} {slices} {total}"),
            body: b"--scale\nsmoke".to_vec(),
        }
    }

    fn drain_frames(stream: &mut TcpStream) -> Vec<Frame> {
        stream
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut frames = Vec::new();
        while let Ok(frame) = read_frame(&mut reader) {
            frames.push(frame);
        }
        frames
    }

    fn state_with_worker_and_job() -> (State, TcpStream, TcpStream) {
        let mut st = State::new(FarmConfig {
            backoff_base: Duration::from_millis(0),
            ..FarmConfig::default()
        });
        let (wpeer, wstream) = socket_pair();
        let (cpeer, cstream) = socket_pair();
        let wid = st.add_worker("w1".into(), wpeer, "test");
        st.submit(1, &cpeer, &submit_frame("fig2", 2, 4));
        st.worker_ready(wid);
        (st, wstream, cstream)
    }

    #[test]
    fn submit_dispatches_to_idle_workers_and_accepts() {
        let (mut st, mut wstream, mut cstream) = state_with_worker_and_job();
        // Worker got slice 0 with the argv body.
        let wframes = drain_frames(&mut wstream);
        assert_eq!(wframes.len(), 1);
        assert_eq!(wframes[0].verb(), "RUN");
        assert_eq!(wframes[0].args(), vec!["1", "0", "2", "fig2"]);
        assert_eq!(wframes[0].body, b"--scale\nsmoke");
        // Client got ACCEPT with the slice count.
        let cframes = drain_frames(&mut cstream);
        assert_eq!(cframes[0].header, "ACCEPT 1 2");
        // Finishing slice 0 then 1 completes the job.
        let wid = st.workers[0].id;
        st.worker_done(wid, 1, 0, b"frag0".to_vec());
        st.worker_ready(wid);
        st.worker_done(wid, 1, 1, b"frag1".to_vec());
        let cframes = drain_frames(&mut cstream);
        let headers: Vec<&str> = cframes.iter().map(|f| f.header.as_str()).collect();
        assert_eq!(headers, vec!["FRAG 0 2", "FRAG 1 2", "JOBDONE 1"]);
        assert_eq!(cframes[0].body, b"frag0");
    }

    #[test]
    fn zero_slices_means_one_per_live_worker_clamped_to_units() {
        let mut st = State::new(FarmConfig::default());
        let (w1, _k1) = socket_pair();
        let (w2, _k2) = socket_pair();
        st.add_worker("w1".into(), w1, "test");
        st.add_worker("w2".into(), w2, "test");
        let (cpeer, mut cstream) = socket_pair();
        st.submit(1, &cpeer, &submit_frame("fig8", 0, 30));
        st.submit(1, &cpeer, &submit_frame("fig9", 0, 1));
        let frames = drain_frames(&mut cstream);
        assert_eq!(frames[0].header, "ACCEPT 1 2"); // one per worker
        assert_eq!(frames[1].header, "ACCEPT 2 1"); // clamped to units
    }

    #[test]
    fn dead_worker_requeues_with_bounded_retry_then_fails_job() {
        let (mut st, _wstream, mut cstream) = state_with_worker_and_job();
        // Kill the worker three times (max_attempts = 3): each loss
        // requeues the running slice until the budget is spent.
        for round in 0..3 {
            let wid = st.workers[0].id;
            assert_eq!(st.workers[0].running, Some((1, 0)), "round {round}");
            st.drop_worker(wid, "test kill");
            assert!(st.jobs[0].closed == (round == 2));
            if round < 2 {
                // Replacement worker picks the requeued slice up.
                let (wpeer, _ws) = socket_pair();
                let wid = st.add_worker("w-next".into(), wpeer, "test");
                st.worker_ready(wid);
            }
        }
        let frames = drain_frames(&mut cstream);
        let fail = frames.iter().find(|f| f.verb() == "JOBFAIL").unwrap();
        assert!(fail.body_str().contains("after 3 attempts"));
    }

    #[test]
    fn duplicate_and_late_results_are_ignored() {
        let (mut st, _wstream, mut cstream) = state_with_worker_and_job();
        let wid = st.workers[0].id;
        st.worker_done(wid, 1, 0, b"first".to_vec());
        st.worker_done(wid, 1, 0, b"second".to_vec());
        // Unknown job and out-of-range slice are both ignored.
        st.worker_done(wid, 99, 0, b"zombie".to_vec());
        st.worker_done(wid, 1, 9, b"range".to_vec());
        let frags: Vec<Frame> = drain_frames(&mut cstream)
            .into_iter()
            .filter(|f| f.verb() == "FRAG")
            .collect();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].body, b"first");
    }

    #[test]
    fn progress_lines_aggregate_into_one_capped_counter() {
        let (mut st, _wstream, mut cstream) = state_with_worker_and_job();
        st.worker_prog(1, "progress: shard 0/2 1/2 (BFS/FR 4K)");
        st.worker_prog(1, "dataset-cache: hits=1 misses=0");
        for _ in 0..10 {
            st.worker_prog(1, "progress: 1/2 (CF/NF Ideal)");
        }
        let frames = drain_frames(&mut cstream);
        let progs: Vec<&Frame> = frames.iter().filter(|f| f.verb() == "PROG").collect();
        assert_eq!(progs[0].header, "PROG 1 4");
        assert_eq!(progs[0].body, b"BFS/FR 4K");
        // Replayed ticks never push the counter past the grid size.
        assert_eq!(progs.last().unwrap().header, "PROG 4 4");
        assert!(frames
            .iter()
            .any(|f| f.verb() == "LINE" && f.body_str().starts_with("dataset-cache:")));
    }

    #[test]
    fn abandoned_clients_close_their_jobs() {
        let (mut st, mut wstream, _cstream) = state_with_worker_and_job();
        st.client_gone(1);
        assert!(st.jobs[0].closed);
        st.tick();
        assert!(st.jobs.is_empty());
        // The worker's eventual result is dropped silently.
        let wid = st.workers[0].id;
        st.worker_done(wid, 1, 0, b"late".to_vec());
        let frames = drain_frames(&mut wstream);
        assert!(frames.iter().all(|f| f.verb() == "RUN"));
    }

    #[test]
    fn bad_submits_are_rejected_with_err() {
        let mut st = State::new(FarmConfig::default());
        let (cpeer, mut cstream) = socket_pair();
        let bad = |header: &str| Frame {
            header: header.to_string(),
            body: Vec::new(),
        };
        st.submit(1, &cpeer, &bad("SUBMIT fig2 fig2 2"));
        st.submit(1, &cpeer, &bad("SUBMIT ../evil fig2 2 4"));
        st.submit(1, &cpeer, &bad("SUBMIT fig2 fig2 999999 4"));
        st.submit(1, &cpeer, &bad("SUBMIT fig2 fig2 x 4"));
        let frames = drain_frames(&mut cstream);
        assert_eq!(frames.len(), 4);
        assert!(frames.iter().all(|f| f.verb() == "ERR"));
        assert!(st.jobs.is_empty());
    }
}
