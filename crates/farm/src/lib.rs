//! `dvm-farm`: a coordinator/worker daemon for one-command distributed
//! sweeps.
//!
//! Three pieces share one zero-dependency, length-prefixed TCP protocol
//! (DESIGN.md, "Sweep farm"):
//!
//! - [`serve`] — the coordinator loop behind the `farmd` binary:
//!   accepts jobs, dispatches shard slices to registered workers,
//!   requeues slices from dead/slow workers with bounded backoff, and
//!   aggregates progress.
//! - [`run_worker`] — the `farmworker` loop: runs slices by spawning
//!   the named bench binary with `--shard I/N --shard-out`, streaming
//!   stderr back and shipping the fragment file as one frame.
//! - [`run_job`] — the client call the bench binaries make under
//!   `--farm host:port`; returns fragment bytes in slice order for the
//!   ordinary shard-merge path, keeping farm output byte-identical to a
//!   serial run.
//!
//! The farm never parses fragment contents: they are opaque bytes here,
//! which keeps this crate free of any bench dependency (bench depends
//! on farm, not the reverse).

pub mod client;
pub mod coord;
pub mod proto;
pub mod worker;

pub use client::{run_job, JobEvent, JobRequest};
pub use coord::{serve, FarmConfig, MAX_SLICES};
pub use proto::{emit_stderr_line, truncate_line, version_token, MAX_LINE};
pub use worker::{run_worker, WorkerConfig};
