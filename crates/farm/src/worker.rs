//! The worker (`farmworker`): registers with a coordinator, runs the
//! shard slices it is handed by spawning the named bench binary with
//! `--shard I/N --shard-out <tmp>`, relays the child's stderr lines as
//! `PROG` frames, and ships the finished fragment file back as one
//! `DONE` frame. Heartbeats (`PING`) flow every second, including while
//! idle, so the coordinator can tell a slow worker from a dead one.

use crate::proto::{
    emit_stderr_line, is_token, read_frame_resume, truncate_line, version_token, write_frame,
    Frame, MAGIC,
};
use std::io::{self, BufRead, BufReader, ErrorKind, Read};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// How a worker connects and where it runs slices.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator `host:port`.
    pub addr: String,
    /// Directory holding the bench binaries the coordinator names.
    pub bin_dir: PathBuf,
    /// Name reported in the handshake (shows up in `farmd` logs).
    pub name: String,
    /// Local dataset cache; overrides the job's `--cache-dir` value.
    pub cache_dir: Option<PathBuf>,
    /// Local report cache; overrides the job's `--report-cache` value.
    pub report_cache: Option<PathBuf>,
    /// Where fragment files are staged between child exit and `DONE`.
    pub scratch: PathBuf,
    /// Keep retrying the initial connect for this long (lets scripts
    /// start workers before — or while — `farmd` comes up).
    pub connect_wait: Duration,
}

fn log(name: &str, msg: &str) {
    emit_stderr_line(&format!("farmworker[{name}]: {msg}"));
}

fn connect_with_retry(addr: &str, wait: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + wait;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(err) if Instant::now() < deadline => {
                let _ = err;
                std::thread::sleep(Duration::from_millis(250));
            }
            Err(err) => return Err(err),
        }
    }
}

/// Read one frame, sending a `PING` each time the 1-second read timeout
/// fires while the line is idle. Only the *first* byte is read under the
/// timeout; once a frame starts, the rest is read blocking, so a timeout
/// can never desynchronise the stream mid-frame.
fn read_frame_idle(reader: &mut BufReader<TcpStream>, writer: &TcpStream) -> io::Result<Frame> {
    loop {
        let mut first = [0u8; 1];
        match reader.read_exact(&mut first) {
            Ok(()) => {
                reader.get_ref().set_read_timeout(None)?;
                let frame = read_frame_resume(first[0], reader);
                reader
                    .get_ref()
                    .set_read_timeout(Some(Duration::from_secs(1)))?;
                return frame;
            }
            Err(err) if matches!(err.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                write_frame(&mut &*writer, "PING", b"")?;
            }
            Err(err) => return Err(err),
        }
    }
}

/// Rewrite the job argv for this worker: point both caches at local
/// directories when configured (replacing the submitted value, or
/// appending the flag if the job didn't pass one), force `--progress` so
/// the coordinator can aggregate, and append the shard assignment.
fn slice_argv(
    argv: &[String],
    cfg: &WorkerConfig,
    slice: usize,
    count: usize,
    fragment: &Path,
) -> Vec<String> {
    let mut out: Vec<String> = Vec::with_capacity(argv.len() + 6);
    let overrides: [(&str, Option<&PathBuf>); 2] = [
        ("--cache-dir", cfg.cache_dir.as_ref()),
        ("--report-cache", cfg.report_cache.as_ref()),
    ];
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        if let Some((_, Some(dir))) = overrides
            .iter()
            .find(|(flag, over)| arg == flag && over.is_some())
        {
            iter.next(); // discard the submitted value
            out.push(arg.clone());
            out.push(dir.display().to_string());
        } else {
            out.push(arg.clone());
        }
    }
    for (flag, over) in overrides {
        if let Some(dir) = over {
            if !argv.iter().any(|a| a == flag) {
                out.push(flag.to_string());
                out.push(dir.display().to_string());
            }
        }
    }
    if !out.iter().any(|a| a == "--progress") {
        out.push("--progress".to_string());
    }
    out.push("--shard".to_string());
    out.push(format!("{slice}/{count}"));
    out.push("--shard-out".to_string());
    out.push(fragment.display().to_string());
    out
}

/// Outcome of one slice: the fragment bytes, or a failure description.
fn run_slice(
    cfg: &WorkerConfig,
    writer: &TcpStream,
    job: u64,
    slice: usize,
    count: usize,
    bin: &str,
    argv: &[String],
) -> io::Result<Result<Vec<u8>, String>> {
    let exe = cfg.bin_dir.join(bin);
    let fragment = cfg.scratch.join(format!(
        "dvmfarm-{}-j{job}-s{slice}.json",
        std::process::id()
    ));
    let child_argv = slice_argv(argv, cfg, slice, count, &fragment);
    log(
        &cfg.name,
        &format!("job {job} slice {slice}/{count}: {}", exe.display()),
    );
    let mut child = match Command::new(&exe)
        .args(&child_argv)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
    {
        Ok(child) => child,
        Err(err) => return Ok(Err(format!("spawn {} failed: {err}", exe.display()))),
    };
    let status = relay_child(writer, &mut child, job, slice)?;
    let outcome = if status.success() {
        match std::fs::read(&fragment) {
            Ok(bytes) => Ok(bytes),
            Err(err) => Err(format!("fragment {} unreadable: {err}", fragment.display())),
        }
    } else {
        Err(format!(
            "{bin} --shard {slice}/{count} exited with {status}"
        ))
    };
    let _ = std::fs::remove_file(&fragment);
    Ok(outcome)
}

/// Pump the child's stderr to the coordinator as `PROG` frames while
/// keeping heartbeats flowing; returns the child's exit status. An
/// `Err` here means the coordinator link itself broke — the caller
/// kills the child and exits.
fn relay_child(
    writer: &TcpStream,
    child: &mut Child,
    job: u64,
    slice: usize,
) -> io::Result<std::process::ExitStatus> {
    let stderr = child.stderr.take().expect("stderr was piped");
    let (tx, rx) = mpsc::channel::<String>();
    let pump = std::thread::spawn(move || {
        for line in BufReader::new(stderr).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let header = format!("PROG {job} {slice}");
    let mut last_ping = Instant::now();
    let status = loop {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok(line) => {
                if let Err(err) =
                    write_frame(&mut &*writer, &header, truncate_line(&line).as_bytes())
                {
                    let _ = child.kill();
                    let _ = child.wait();
                    let _ = pump.join();
                    return Err(err);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // stderr closed; the child is exiting — collect it.
                break child.wait()?;
            }
        }
        if last_ping.elapsed() >= Duration::from_secs(1) {
            write_frame(&mut &*writer, "PING", b"")?;
            last_ping = Instant::now();
        }
        if let Some(status) = child.try_wait()? {
            // Drain whatever stderr remains before reporting.
            while let Ok(line) = rx.try_recv() {
                write_frame(&mut &*writer, &header, truncate_line(&line).as_bytes())?;
            }
            break status;
        }
    };
    let _ = pump.join();
    Ok(status)
}

/// Connect, register, and serve slices until the coordinator says `BYE`
/// or the link drops.
///
/// # Errors
///
/// Connection or handshake failure, or a broken coordinator link
/// mid-session. A failing *slice* is not an error — it is reported to
/// the coordinator as a `FAIL` frame and the worker stays up.
pub fn run_worker(cfg: &WorkerConfig) -> io::Result<()> {
    if !is_token(&cfg.name) {
        return Err(io::Error::new(
            ErrorKind::InvalidInput,
            format!("worker name '{}' is not a plain token", cfg.name),
        ));
    }
    let stream = connect_with_retry(&cfg.addr, cfg.connect_wait)?;
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut &writer,
        &format!("HELLO {} worker {}", version_token(), cfg.name),
        b"",
    )?;
    let oleh = read_frame_resume(
        {
            let mut first = [0u8; 1];
            reader.read_exact(&mut first)?;
            first[0]
        },
        &mut reader,
    )?;
    if oleh.verb() != "OLEH" {
        return Err(io::Error::new(
            ErrorKind::ConnectionRefused,
            format!(
                "coordinator rejected us: {} {}",
                oleh.header,
                oleh.body_str()
            ),
        ));
    }
    log(&cfg.name, &format!("registered with {}", cfg.addr));
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(1)))?;
    write_frame(&mut &writer, "READY", b"")?;
    loop {
        let frame = match read_frame_idle(&mut reader, &writer) {
            Ok(frame) => frame,
            Err(err) if err.kind() == ErrorKind::UnexpectedEof => {
                log(&cfg.name, "coordinator closed the connection");
                return Ok(());
            }
            Err(err) => return Err(err),
        };
        match frame.verb() {
            "BYE" => {
                log(&cfg.name, "dismissed by coordinator");
                return Ok(());
            }
            "RUN" => {
                let args = frame.args();
                let [job, slice, count, bin] = args.as_slice() else {
                    log(&cfg.name, &format!("malformed RUN '{}'", frame.header));
                    continue;
                };
                let (Ok(job), Ok(slice), Ok(count)) = (
                    job.parse::<u64>(),
                    slice.parse::<usize>(),
                    count.parse::<usize>(),
                ) else {
                    log(&cfg.name, &format!("malformed RUN '{}'", frame.header));
                    continue;
                };
                if !is_token(bin) {
                    // Never join untrusted path segments into bin_dir.
                    log(&cfg.name, &format!("refusing bin '{bin}'"));
                    write_frame(
                        &mut &writer,
                        &format!("FAIL {job} {slice}"),
                        format!("worker refused bin name '{bin}'").as_bytes(),
                    )?;
                    write_frame(&mut &writer, "READY", b"")?;
                    continue;
                }
                let argv: Vec<String> = frame.body_str().lines().map(str::to_string).collect();
                let outcome = run_slice(cfg, &writer, job, slice, count, bin, &argv)?;
                match outcome {
                    Ok(bytes) => {
                        write_frame(&mut &writer, &format!("DONE {job} {slice}"), &bytes)?;
                        log(
                            &cfg.name,
                            &format!("job {job} slice {slice} done ({} bytes)", bytes.len()),
                        );
                    }
                    Err(reason) => {
                        log(
                            &cfg.name,
                            &format!("job {job} slice {slice} failed: {reason}"),
                        );
                        write_frame(
                            &mut &writer,
                            &format!("FAIL {job} {slice}"),
                            reason.as_bytes(),
                        )?;
                    }
                }
                write_frame(&mut &writer, "READY", b"")?;
            }
            other => log(
                &cfg.name,
                &format!("ignoring unknown frame '{other}' ({MAGIC} drift?)"),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(cache: Option<&str>, report: Option<&str>) -> WorkerConfig {
        WorkerConfig {
            addr: "127.0.0.1:0".into(),
            bin_dir: PathBuf::from("/bins"),
            name: "w1".into(),
            cache_dir: cache.map(PathBuf::from),
            report_cache: report.map(PathBuf::from),
            scratch: PathBuf::from("/tmp"),
            connect_wait: Duration::from_secs(0),
        }
    }

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn slice_argv_appends_shard_and_progress() {
        let got = slice_argv(
            &strs(&["--scale", "quick", "--jobs", "1"]),
            &cfg(None, None),
            1,
            4,
            Path::new("/tmp/frag.json"),
        );
        assert_eq!(
            got,
            strs(&[
                "--scale",
                "quick",
                "--jobs",
                "1",
                "--progress",
                "--shard",
                "1/4",
                "--shard-out",
                "/tmp/frag.json",
            ])
        );
    }

    #[test]
    fn slice_argv_overrides_submitted_cache_paths() {
        let got = slice_argv(
            &strs(&["--cache-dir", "/theirs", "--progress", "--scale", "smoke"]),
            &cfg(Some("/ours"), Some("/ours-reports")),
            0,
            2,
            Path::new("f.json"),
        );
        assert_eq!(
            got,
            strs(&[
                "--cache-dir",
                "/ours",
                "--progress",
                "--scale",
                "smoke",
                "--report-cache",
                "/ours-reports",
                "--shard",
                "0/2",
                "--shard-out",
                "f.json",
            ])
        );
    }

    #[test]
    fn slice_argv_keeps_job_caches_when_worker_has_none() {
        let got = slice_argv(
            &strs(&["--cache-dir", "/theirs"]),
            &cfg(None, None),
            0,
            1,
            Path::new("f.json"),
        );
        assert_eq!(got[..2], strs(&["--cache-dir", "/theirs"])[..]);
    }
}
