//! The farm contract, end to end over real binaries on 127.0.0.1: a
//! `fig2 --farm` run through `farmd` + two `farmworker`s is
//! byte-identical (stdout and `--json`) to a serial run — including
//! after one worker is SIGKILLed mid-slice and its slice is requeued to
//! the survivor.
//!
//! `fig2` lives in the bench crate, so there is no `CARGO_BIN_EXE_fig2`
//! here; it is located next to our own binaries in the target directory
//! and the tests skip (loudly) when a bench build hasn't produced it.
//! `scripts/ci.sh` runs the same scenario unconditionally.

use std::io::BufRead;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Kills its children on drop so a failed assertion can't leak daemons.
struct Reap(Vec<Child>);

impl Drop for Reap {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn bin_dir() -> PathBuf {
    Path::new(env!("CARGO_BIN_EXE_farmd"))
        .parent()
        .expect("farmd has a parent directory")
        .to_path_buf()
}

fn fig2_exe() -> Option<PathBuf> {
    let exe = bin_dir().join(format!("fig2{}", std::env::consts::EXE_SUFFIX));
    exe.is_file().then_some(exe)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvm-farm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(exe: &Path, args: &[&str]) -> Output {
    let output = Command::new(exe).args(args).output().expect("binary ran");
    assert!(
        output.status.success(),
        "{} {args:?} failed:\n{}",
        exe.display(),
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

/// Start `farmd --listen 127.0.0.1:0`, collect its stderr lines into a
/// shared log, and return (child, address, log).
fn start_farmd(extra: &[&str]) -> (Child, String, Arc<Mutex<Vec<String>>>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_farmd"))
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("farmd spawned");
    let stderr = child.stderr.take().expect("stderr piped");
    let log = Arc::new(Mutex::new(Vec::<String>::new()));
    {
        let log = Arc::clone(&log);
        std::thread::spawn(move || {
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                log.lock().unwrap().push(line);
            }
        });
    }
    let addr = wait_for_line(&log, "farmd: listening on ", Duration::from_secs(10))
        .expect("farmd printed its address")
        .trim_start_matches("farmd: listening on ")
        .to_string();
    (child, addr, log)
}

fn wait_for_line(log: &Mutex<Vec<String>>, needle: &str, timeout: Duration) -> Option<String> {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if let Some(line) = log
            .lock()
            .unwrap()
            .iter()
            .find(|line| line.contains(needle))
        {
            return Some(line.clone());
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    None
}

fn start_worker(addr: &str, name: &str, bins: &Path, scratch: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_farmworker"))
        .args([
            "--connect",
            addr,
            "--name",
            name,
            "--bin-dir",
            bins.to_str().unwrap(),
            "--scratch",
            scratch.to_str().unwrap(),
        ])
        .stderr(Stdio::null())
        .spawn()
        .expect("farmworker spawned")
}

const FIG2_ARGS: &[&str] = &["--scale", "smoke", "--datasets", "FR", "--jobs", "1"];

fn fig2_serial(exe: &Path, dir: &Path) -> (Output, String) {
    let json = dir.join("serial.json");
    let out = run(
        exe,
        &[FIG2_ARGS, &["--json", json.to_str().unwrap()]].concat(),
    );
    (out, std::fs::read_to_string(&json).unwrap())
}

#[test]
fn farm_run_is_byte_identical_to_serial() {
    let Some(fig2) = fig2_exe() else {
        eprintln!("skipping: fig2 not built next to farmd (run a workspace build first)");
        return;
    };
    let dir = scratch("loopback");
    let (serial, serial_json) = fig2_serial(&fig2, &dir);

    let (farmd, addr, _log) = start_farmd(&[]);
    let mut reap = Reap(vec![farmd]);
    reap.0.push(start_worker(&addr, "w1", &bin_dir(), &dir));
    reap.0.push(start_worker(&addr, "w2", &bin_dir(), &dir));

    // Default slicing: one slice per connected worker.
    let farm_json = dir.join("farm.json");
    let farm = run(
        &fig2,
        &[
            FIG2_ARGS,
            &["--farm", &addr, "--json", farm_json.to_str().unwrap()],
        ]
        .concat(),
    );
    assert_eq!(
        serial.stdout, farm.stdout,
        "farm stdout differs from serial"
    );
    assert_eq!(
        serial_json,
        std::fs::read_to_string(&farm_json).unwrap(),
        "farm --json differs from serial"
    );

    // Explicit slice count (more slices than workers).
    let farm3_json = dir.join("farm3.json");
    let farm3 = run(
        &fig2,
        &[
            FIG2_ARGS,
            &[
                "--farm",
                &addr,
                "--shards",
                "3",
                "--json",
                farm3_json.to_str().unwrap(),
            ],
        ]
        .concat(),
    );
    assert_eq!(
        serial.stdout, farm3.stdout,
        "--shards 3 farm stdout differs"
    );
    assert_eq!(
        serial_json,
        std::fs::read_to_string(&farm3_json).unwrap(),
        "--shards 3 farm --json differs"
    );
    drop(reap);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg(unix)]
fn killing_a_worker_mid_slice_requeues_and_stays_byte_identical() {
    let Some(fig2) = fig2_exe() else {
        eprintln!("skipping: fig2 not built next to farmd (run a workspace build first)");
        return;
    };
    let dir = scratch("kill9");
    let (serial, serial_json) = fig2_serial(&fig2, &dir);

    // w2 gets a decoy bin dir whose `fig2` sleeps forever, so its slice
    // is guaranteed to still be running when we SIGKILL the worker; the
    // requeued slice then runs on w1 with the real binary, so the final
    // output must still be byte-identical.
    let decoy_dir = dir.join("decoy-bins");
    std::fs::create_dir_all(&decoy_dir).unwrap();
    let decoy = decoy_dir.join("fig2");
    std::fs::write(&decoy, "#!/bin/sh\nsleep 120\n").unwrap();
    {
        use std::os::unix::fs::PermissionsExt as _;
        std::fs::set_permissions(&decoy, std::fs::Permissions::from_mode(0o755)).unwrap();
    }

    let (farmd, addr, log) = start_farmd(&[]);
    let mut reap = Reap(vec![farmd]);
    reap.0.push(start_worker(&addr, "w1", &bin_dir(), &dir));
    let w2 = start_worker(&addr, "w2", &decoy_dir, &dir);
    reap.0.push(w2);

    // Run the farm job on a helper thread; the main thread watches the
    // coordinator log for w2's assignment and then kills it.
    let farm_json = dir.join("farm.json");
    let runner = {
        let fig2 = fig2.clone();
        let addr = addr.clone();
        let json = farm_json.to_str().unwrap().to_string();
        std::thread::spawn(move || {
            run(
                &fig2,
                &[FIG2_ARGS, &["--farm", &addr, "--json", &json]].concat(),
            )
        })
    };
    wait_for_line(&log, "-> worker 'w2'", Duration::from_secs(30))
        .expect("farmd assigned a slice to w2");
    let w2 = reap.0.pop().expect("w2 is the last child");
    Reap(vec![w2]); // SIGKILL, mid-slice by construction

    let farm = runner.join().expect("farm run finished");
    assert_eq!(serial.stdout, farm.stdout, "farm stdout differs after kill");
    assert_eq!(
        serial_json,
        std::fs::read_to_string(&farm_json).unwrap(),
        "farm --json differs after kill"
    );
    let log = log.lock().unwrap().join("\n");
    assert!(
        log.contains("requeued (worker 'w2' died)"),
        "farmd log never recorded the requeue:\n{log}"
    );
    drop(reap);
    let _ = std::fs::remove_dir_all(&dir);
}
