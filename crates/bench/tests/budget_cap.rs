//! The cache byte-budget contract, end to end over real processes: two
//! concurrent shard workers filling one budget-capped dataset-cache
//! directory must (a) leave the directory at or under the budget, (b)
//! never serve a torn entry (`rejected=0`), and (c) produce merged
//! output byte-identical to an uncapped serial run — eviction races
//! degrade to regeneration, never to wrong results.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvm-budget-cap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(exe: &str, args: &[&str]) -> Output {
    let output = Command::new(exe).args(args).output().expect("binary ran");
    assert!(
        output.status.success(),
        "{exe} {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn csr_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".csr"))
        .map(|e| e.metadata().unwrap().len())
        .sum()
}

#[test]
fn concurrent_workers_respect_the_budget_and_match_serial_output() {
    let exe = env!("CARGO_BIN_EXE_fig2");
    let dir = scratch("fig2");

    // Uncapped serial baseline: fills a cache dir so we can size a
    // budget strictly below the sweep's working set.
    let serial_json = dir.join("serial.json");
    let full_cache = dir.join("full-cache");
    let serial = run(
        exe,
        &[
            "--scale",
            "smoke",
            "--jobs",
            "1",
            "--cache-dir",
            full_cache.to_str().unwrap(),
            "--json",
            serial_json.to_str().unwrap(),
        ],
    );
    let working_set = csr_bytes(&full_cache);
    assert!(working_set > 1, "baseline run cached nothing");
    let budget = working_set - 1;

    // Two shard workers race on one capped cache dir.
    let capped_cache = dir.join("capped-cache");
    let frags = dir.join("frags");
    std::fs::create_dir_all(&frags).unwrap();
    let workers: Vec<std::process::Child> = (0..2)
        .map(|i| {
            let out = frags.join(format!("fig2_shard{i}of2.json"));
            Command::new(exe)
                .args([
                    "--scale",
                    "smoke",
                    "--shard",
                    &format!("{i}/2"),
                    "--shard-out",
                    out.to_str().unwrap(),
                    "--cache-dir",
                    capped_cache.to_str().unwrap(),
                    "--cache-max-bytes",
                    &budget.to_string(),
                ])
                .stderr(std::process::Stdio::piped())
                .spawn()
                .expect("worker spawned")
        })
        .collect();
    for worker in workers {
        let output = worker.wait_with_output().expect("worker finished");
        let stderr = String::from_utf8_lossy(&output.stderr).to_string();
        assert!(output.status.success(), "worker failed:\n{stderr}");
        assert!(
            stderr.contains("rejected=0"),
            "a worker loaded a torn entry: {stderr}"
        );
    }

    // The winners' directory ended under the budget (entries only; the
    // recency index is bookkeeping, not cached payload).
    assert!(
        csr_bytes(&capped_cache) <= budget,
        "cache dir exceeds its byte budget"
    );

    // Merged output is byte-identical to the uncapped serial run.
    let merged_json = dir.join("merged.json");
    let merged = run(
        exe,
        &[
            "--scale",
            "smoke",
            "--merge-dir",
            frags.to_str().unwrap(),
            "--json",
            merged_json.to_str().unwrap(),
        ],
    );
    assert_eq!(
        serial.stdout, merged.stdout,
        "budget-capped stdout differs from uncapped serial"
    );
    assert_eq!(
        read(&serial_json),
        read(&merged_json),
        "budget-capped --json differs from uncapped serial"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
