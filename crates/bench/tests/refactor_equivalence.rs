//! The trait-registry refactor's equivalence contract: the scheme-trait
//! dispatch path must reproduce, byte for byte, the documents the old
//! closed-enum `MmuConfig` implementation emitted. The fixture was
//! captured by running `fig8 --scale smoke --json` on the pre-refactor
//! tree; any divergence here means a scheme's behaviour (not just its
//! plumbing) changed.

use std::path::Path;
use std::process::Command;

#[test]
fn trait_dispatch_reproduces_the_pre_refactor_fig8_document() {
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/fig8_smoke.json");
    let expected = std::fs::read(&fixture).expect("fixture present");

    let dir = std::env::temp_dir().join(format!("dvm-refactor-eq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("fig8_smoke.json");
    let status = Command::new(env!("CARGO_BIN_EXE_fig8"))
        .args(["--scale", "smoke", "--json"])
        .arg(&out)
        .status()
        .expect("fig8 runs");
    assert!(status.success(), "fig8 exited with {status}");

    let produced = std::fs::read(&out).expect("fig8 wrote the document");
    assert!(
        produced == expected,
        "fig8 smoke document diverged from the pre-refactor fixture \
         ({} vs {} bytes); a scheme's simulated behaviour changed",
        produced.len(),
        expected.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
