//! The sharding contract, end to end over real binaries: an N-shard run
//! produces byte-identical stdout and `--json` output to a serial run,
//! whether the shards are spawned by a coordinator (`--shards N`) or run
//! by hand and merged later (`--shard I/N` + `--merge-dir`).

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dvm-shard-merge-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(exe: &str, args: &[&str]) -> Output {
    let output = Command::new(exe).args(args).output().expect("binary ran");
    assert!(
        output.status.success(),
        "{exe} {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    output
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn fig2_sharded_runs_match_serial_byte_for_byte() {
    let exe = env!("CARGO_BIN_EXE_fig2");
    let dir = scratch("fig2");
    let serial_json = dir.join("serial.json");
    let serial = run(
        exe,
        &[
            "--scale",
            "smoke",
            "--jobs",
            "1",
            "--json",
            serial_json.to_str().unwrap(),
        ],
    );

    for shards in ["2", "3"] {
        let sharded_json = dir.join(format!("sharded{shards}.json"));
        let sharded = run(
            exe,
            &[
                "--scale",
                "smoke",
                "--jobs",
                "1",
                "--shards",
                shards,
                "--json",
                sharded_json.to_str().unwrap(),
            ],
        );
        assert_eq!(
            serial.stdout, sharded.stdout,
            "stdout of --shards {shards} differs from serial"
        );
        assert_eq!(
            read(&serial_json),
            read(&sharded_json),
            "--json of --shards {shards} differs from serial"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig2_manual_shards_merge_through_merge_dir() {
    let exe = env!("CARGO_BIN_EXE_fig2");
    let dir = scratch("fig2-manual");
    let serial_json = dir.join("serial.json");
    let serial = run(
        exe,
        &[
            "--scale",
            "smoke",
            "--jobs",
            "1",
            "--json",
            serial_json.to_str().unwrap(),
        ],
    );

    // Run the two workers by hand (multi-machine workflow), sharing an
    // on-disk dataset cache, then merge their fragments.
    let frags = dir.join("frags");
    let cache = dir.join("cache");
    for i in 0..2 {
        let out = frags.join(format!("fig2_shard{i}of2.json"));
        let worker = run(
            exe,
            &[
                "--scale",
                "smoke",
                "--shard",
                &format!("{i}/2"),
                "--shard-out",
                out.to_str().unwrap(),
                "--cache-dir",
                cache.to_str().unwrap(),
            ],
        );
        // Worker stdout carries no banner; cache stats go to stderr.
        assert!(worker.stdout.is_empty(), "worker stdout should be empty");
        assert!(
            String::from_utf8_lossy(&worker.stderr).contains("dataset-cache:"),
            "worker stderr should report cache stats"
        );
    }
    let merged_json = dir.join("merged.json");
    let merged = run(
        exe,
        &[
            "--scale",
            "smoke",
            "--merge-dir",
            frags.to_str().unwrap(),
            "--json",
            merged_json.to_str().unwrap(),
        ],
    );
    assert_eq!(serial.stdout, merged.stdout);
    assert_eq!(read(&serial_json), read(&merged_json));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn grid_binary_shards_match_serial_byte_for_byte() {
    // virt runs the non-sweep grid path (run_grid); it has no datasets,
    // so it is the cheapest end-to-end check of that runner.
    let exe = env!("CARGO_BIN_EXE_virt");
    let dir = scratch("virt");
    let serial_json = dir.join("serial.json");
    let serial = run(exe, &["--json", serial_json.to_str().unwrap()]);
    let sharded_json = dir.join("sharded.json");
    let sharded = run(
        exe,
        &["--shards", "2", "--json", sharded_json.to_str().unwrap()],
    );
    assert_eq!(serial.stdout, sharded.stdout);
    assert_eq!(read(&serial_json), read(&sharded_json));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_cached_run_skips_generation() {
    let exe = env!("CARGO_BIN_EXE_table3");
    let dir = scratch("cache-counts");
    let cache = dir.join("cache");
    let args = [
        "--scale",
        "smoke",
        "--datasets",
        "FR,NF",
        "--cache-dir",
        cache.to_str().unwrap(),
    ];
    let first = run(exe, &args);
    let second = run(exe, &args);
    let stderr_of = |o: &Output| String::from_utf8_lossy(&o.stderr).to_string();
    assert!(
        stderr_of(&first).contains("hits=0 misses=2"),
        "first run should generate both datasets: {}",
        stderr_of(&first)
    );
    assert!(
        stderr_of(&second).contains("hits=2 misses=0"),
        "second run should hit the cache twice: {}",
        stderr_of(&second)
    );
    assert_eq!(first.stdout, second.stdout);
    let _ = std::fs::remove_dir_all(&dir);
}
