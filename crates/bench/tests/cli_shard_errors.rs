//! Every harness binary must reject malformed `--shard` values the same
//! way: exit code 2 and one uniform diagnostic, regardless of *how* the
//! value is malformed (no slash, non-numeric, N = 0, I >= N). A farm
//! worker builds `--shard I/N` from coordinator-supplied numbers, so a
//! drifting or binary-specific message would make those failures
//! needlessly hard to trace.

use std::process::Command;

/// All ten harness binaries that accept the shared CLI.
const BINS: &[(&str, &str)] = &[
    ("fig2", env!("CARGO_BIN_EXE_fig2")),
    ("fig8", env!("CARGO_BIN_EXE_fig8")),
    ("fig9", env!("CARGO_BIN_EXE_fig9")),
    ("fig10", env!("CARGO_BIN_EXE_fig10")),
    ("fig11", env!("CARGO_BIN_EXE_fig11")),
    ("table1", env!("CARGO_BIN_EXE_table1")),
    ("table3", env!("CARGO_BIN_EXE_table3")),
    ("table4", env!("CARGO_BIN_EXE_table4")),
    ("table5", env!("CARGO_BIN_EXE_table5")),
    ("virt", env!("CARGO_BIN_EXE_virt")),
];

fn run(exe: &str, args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("running {exe} failed: {e}"));
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn bad_shard_values_exit_2_with_one_message_everywhere() {
    // index >= count, count = 0, non-numeric halves, missing pieces.
    let bad_values = ["0/0", "3/3", "7/2", "x/3", "1/y", "2", "/", "1/"];
    for (name, exe) in BINS {
        for bad in bad_values {
            let (code, stderr) = run(exe, &["--shard", bad]);
            assert_eq!(
                code,
                Some(2),
                "{name} --shard {bad}: expected exit 2, stderr: {stderr}"
            );
            let want = format!("--shard needs I/N with 0 <= I < N (e.g. 0/4), got '{bad}'");
            assert!(
                stderr.contains(&want),
                "{name} --shard {bad}: stderr {stderr:?} missing {want:?}"
            );
        }
    }
}

#[test]
fn bad_shard_counts_exit_2_everywhere() {
    for (name, exe) in BINS {
        for bad in ["0", "x"] {
            let (code, stderr) = run(exe, &["--shards", bad]);
            assert_eq!(code, Some(2), "{name} --shards {bad}: expected exit 2");
            assert!(
                stderr.contains("--shards needs a positive integer"),
                "{name} --shards {bad}: stderr {stderr:?}"
            );
        }
    }
}

#[test]
fn farm_misuse_exits_2_everywhere() {
    for (name, exe) in BINS {
        let (code, stderr) = run(exe, &["--farm", "nohostport"]);
        assert_eq!(code, Some(2), "{name} --farm nohostport: expected exit 2");
        assert!(
            stderr.contains("--farm needs HOST:PORT"),
            "{name}: stderr {stderr:?}"
        );
        let (code, stderr) = run(exe, &["--farm", "h:1", "--shard", "0/2"]);
        assert_eq!(code, Some(2), "{name} --farm+--shard: expected exit 2");
        assert!(
            stderr.contains("--farm cannot be combined"),
            "{name}: stderr {stderr:?}"
        );
    }
}
