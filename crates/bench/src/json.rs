//! A hand-rolled JSON emitter for machine-readable results.
//!
//! Every harness binary writes a `results/<name>_<scale>.json` next to
//! its text table (when `--json` is given), so downstream tooling can
//! diff runs without screen-scraping the aligned-column output. The
//! emitter is ~150 lines of plain Rust rather than a serde dependency,
//! keeping the workspace's zero-external-crate hermetic build.
//!
//! Output is deterministic: object keys keep insertion order, floats use
//! Rust's shortest round-trip formatting, and nothing (timestamps, job
//! counts, hostnames) that varies between equivalent runs is emitted —
//! a parallel sweep's JSON is byte-identical to a serial one's.

use dvm_core::GraphRunReport;
use std::fmt;
use std::io;
use std::path::Path;

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counters, cycles).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Float; non-finite values render as `null`.
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// `{"hits": h, "misses": m}` or `null` — the shape of the optional
    /// cache statistics on [`GraphRunReport`].
    pub fn hit_miss(stats: Option<(u64, u64)>) -> Json {
        match stats {
            Some((h, m)) => Json::obj([("hits", Json::UInt(h)), ("misses", Json::UInt(m))]),
            None => Json::Null,
        }
    }

    fn write_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        const INDENT: &str = "  ";
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) if !x.is_finite() => f.write_str("null"),
            // `{}` on f64 is shortest-round-trip and prints "1" for 1.0,
            // which is still a valid JSON number.
            Json::Float(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    return f.write_str("[]");
                }
                f.write_str("[\n")?;
                for (i, item) in items.iter().enumerate() {
                    f.write_str(&INDENT.repeat(depth + 1))?;
                    item.write_indented(f, depth + 1)?;
                    f.write_str(if i + 1 < items.len() { ",\n" } else { "\n" })?;
                }
                f.write_str(&INDENT.repeat(depth))?;
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    return f.write_str("{}");
                }
                f.write_str("{\n")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    f.write_str(&INDENT.repeat(depth + 1))?;
                    write_escaped(f, k)?;
                    f.write_str(": ")?;
                    v.write_indented(f, depth + 1)?;
                    f.write_str(if i + 1 < pairs.len() { ",\n" } else { "\n" })?;
                }
                f.write_str(&INDENT.repeat(depth))?;
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

/// Serialize every metric of one experiment report.
pub fn report_json(r: &GraphRunReport) -> Json {
    Json::obj([
        ("mmu", Json::Str(r.mmu.name().to_string())),
        ("workload", Json::Str(r.workload.to_string())),
        ("cycles", Json::UInt(r.cycles)),
        ("accesses", Json::UInt(r.accesses)),
        ("tlb", Json::hit_miss(r.tlb)),
        ("ptc", Json::hit_miss(r.ptc)),
        ("bitmap_cache", Json::hit_miss(r.bitmap_cache)),
        ("walk_mem_refs", Json::UInt(r.walk_mem_refs)),
        ("identity_validations", Json::UInt(r.identity_validations)),
        ("fallback_translations", Json::UInt(r.fallback_translations)),
        ("preload_squashes", Json::UInt(r.preload_squashes)),
        ("mm_energy_pj", Json::Float(r.mm_energy_pj)),
        ("dram_accesses", Json::UInt(r.dram_accesses)),
        ("heap_bytes", Json::UInt(r.heap_bytes)),
        ("edges_processed", Json::UInt(r.run.edges_processed)),
        ("iterations", Json::UInt(u64::from(r.run.iterations))),
    ])
}

/// Accumulates one harness's machine-readable output: the same grid as
/// its text table (label + one value per column), plus optional raw
/// per-scheme reports per row and figure-level summary entries.
#[derive(Debug, Clone)]
pub struct FigureJson {
    experiment: String,
    scale: String,
    columns: Vec<String>,
    rows: Vec<Json>,
    summary: Vec<(String, Json)>,
}

impl FigureJson {
    /// Start a document for `experiment` at `scale` with the given value
    /// columns (row labels are implicit).
    pub fn new(experiment: &str, scale: &str, columns: &[&str]) -> Self {
        Self {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Append a row of column values.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn row(&mut self, label: &str, values: Vec<Json>) {
        self.push_row(label, values, None);
    }

    /// Append a row carrying the full per-scheme reports it was derived
    /// from (the raw material for result diffing).
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn row_with_reports(&mut self, label: &str, values: Vec<Json>, reports: &[GraphRunReport]) {
        let raw = Json::Arr(reports.iter().map(report_json).collect());
        self.push_row(label, values, Some(raw));
    }

    fn push_row(&mut self, label: &str, values: Vec<Json>, reports: Option<Json>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row arity {} != column arity {}",
            values.len(),
            self.columns.len()
        );
        let mut pairs = vec![
            ("label".to_string(), Json::Str(label.to_string())),
            ("values".to_string(), Json::Arr(values)),
        ];
        if let Some(raw) = reports {
            pairs.push(("reports".to_string(), raw));
        }
        self.rows.push(Json::Obj(pairs));
    }

    /// Add a figure-level summary entry (e.g. the geomean row).
    pub fn summary(&mut self, key: &str, value: Json) {
        self.summary.push((key.to_string(), value));
    }

    /// The complete document.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("scale".to_string(), Json::Str(self.scale.clone())),
            (
                "columns".to_string(),
                Json::Arr(self.columns.iter().cloned().map(Json::Str).collect()),
            ),
            ("rows".to_string(), Json::Arr(self.rows.clone())),
        ];
        if !self.summary.is_empty() {
            pairs.push(("summary".to_string(), Json::Obj(self.summary.clone())));
        }
        Json::Obj(pairs)
    }

    /// Render the document with a trailing newline.
    pub fn render(&self) -> String {
        format!("{}\n", self.to_json())
    }

    /// Write the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_document() {
        let mut fig = FigureJson::new("fig-test", "quick", &["a", "b"]);
        fig.row("BFS/FR", vec![Json::Float(1.5), Json::UInt(7)]);
        fig.row("odd \"label\"\n", vec![Json::Null, Json::Float(f64::NAN)]);
        fig.summary("geomean", Json::Arr(vec![Json::Float(2.0)]));
        let expected = concat!(
            "{\n",
            "  \"experiment\": \"fig-test\",\n",
            "  \"scale\": \"quick\",\n",
            "  \"columns\": [\n",
            "    \"a\",\n",
            "    \"b\"\n",
            "  ],\n",
            "  \"rows\": [\n",
            "    {\n",
            "      \"label\": \"BFS/FR\",\n",
            "      \"values\": [\n",
            "        1.5,\n",
            "        7\n",
            "      ]\n",
            "    },\n",
            "    {\n",
            "      \"label\": \"odd \\\"label\\\"\\n\",\n",
            "      \"values\": [\n",
            "        null,\n",
            "        null\n",
            "      ]\n",
            "    }\n",
            "  ],\n",
            "  \"summary\": {\n",
            "    \"geomean\": [\n",
            "      2\n",
            "    ]\n",
            "  }\n",
            "}\n",
        );
        assert_eq!(fig.render(), expected);
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Arr(Vec::new()).to_string(), "[]");
        assert_eq!(Json::Obj(Vec::new()).to_string(), "{}");
    }

    #[test]
    fn floats_render_shortest() {
        assert_eq!(Json::Float(0.1).to_string(), "0.1");
        assert_eq!(Json::Float(2.0).to_string(), "2");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_checked() {
        let mut fig = FigureJson::new("x", "quick", &["a"]);
        fig.row("r", vec![]);
    }
}
