//! A hand-rolled JSON emitter *and parser* for machine-readable results.
//!
//! Every harness binary writes a `results/<name>_<scale>.json` next to
//! its text table (when `--json` is given), so downstream tooling can
//! diff runs without screen-scraping the aligned-column output. Both
//! directions are plain Rust rather than a serde dependency, keeping the
//! workspace's zero-external-crate hermetic build.
//!
//! Output is deterministic: object keys keep insertion order, floats use
//! Rust's shortest round-trip formatting, and nothing (timestamps, job
//! counts, hostnames) that varies between equivalent runs is emitted —
//! a parallel or sharded sweep's JSON is byte-identical to a serial
//! one's.
//!
//! Every emitted document starts with the same two header fields, built
//! by [`JsonDoc`]: `schema_version` (bumped when the layout of any
//! document changes) and `experiment`. Consumers — the shard merger, the
//! result-diff harness — call [`validate_header`] before trusting a
//! file, so a stale fragment or a mismatched golden fails loudly instead
//! of merging garbage.

use dvm_core::GraphRunReport;
use std::fmt;
use std::io;
use std::path::Path;

/// Version of every emitted document's layout. Bump on any change to the
/// shape of figure documents or shard fragments.
pub const SCHEMA_VERSION: u64 = 1;

/// A JSON value with deterministic rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (counters, cycles).
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Float; non-finite values render as `null`.
    Float(f64),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; keys render in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// `{"hits": h, "misses": m}` or `null` — the shape of the optional
    /// cache statistics on [`GraphRunReport`].
    pub fn hit_miss(stats: Option<(u64, u64)>) -> Json {
        match stats {
            Some((h, m)) => Json::obj([("hits", Json::UInt(h)), ("misses", Json::UInt(m))]),
            None => Json::Null,
        }
    }

    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a float (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Fetch `key` as a u64, with a path-ish error for diagnostics.
    pub fn expect_u64(&self, key: &str) -> Result<u64, String> {
        self.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing or non-integer field '{key}'"))
    }

    /// Fetch `key` as an f64.
    pub fn expect_f64(&self, key: &str) -> Result<f64, String> {
        self.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
    }

    /// Fetch `key` as a string.
    pub fn expect_str(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing or non-string field '{key}'"))
    }

    /// Fetch `key` as an array.
    pub fn expect_arr(&self, key: &str) -> Result<&[Json], String> {
        self.get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing or non-array field '{key}'"))
    }

    fn write_indented(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        const INDENT: &str = "  ";
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) if !x.is_finite() => f.write_str("null"),
            // `{}` on f64 is shortest-round-trip and prints "1" for 1.0,
            // which is still a valid JSON number.
            Json::Float(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    return f.write_str("[]");
                }
                f.write_str("[\n")?;
                for (i, item) in items.iter().enumerate() {
                    f.write_str(&INDENT.repeat(depth + 1))?;
                    item.write_indented(f, depth + 1)?;
                    f.write_str(if i + 1 < items.len() { ",\n" } else { "\n" })?;
                }
                f.write_str(&INDENT.repeat(depth))?;
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    return f.write_str("{}");
                }
                f.write_str("{\n")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    f.write_str(&INDENT.repeat(depth + 1))?;
                    write_escaped(f, k)?;
                    f.write_str(": ")?;
                    v.write_indented(f, depth + 1)?;
                    f.write_str(if i + 1 < pairs.len() { ",\n" } else { "\n" })?;
                }
                f.write_str(&INDENT.repeat(depth))?;
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

/// Parse a JSON text into a [`Json`] value.
///
/// Integer literals without `.`/exponent become [`Json::UInt`] /
/// [`Json::Int`] (so counters survive a round trip exactly); everything
/// else numeric becomes [`Json::Float`] via Rust's correctly-rounded
/// parser, which makes `parse(render(x))` value-identical for every
/// document this crate emits.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", want as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                pairs.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("short \\u escape at byte {pos}"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates never appear in our own output;
                        // replace rather than reject foreign input.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always on a boundary).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    if text.is_empty() || text == "-" {
        return Err(format!("expected a value at byte {start}"));
    }
    if !is_float {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::UInt(n));
        }
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

/// Builder for a top-level document: every document this crate emits
/// opens with the same `schema_version` + `experiment` header so
/// downstream consumers can validate before they merge or diff.
///
/// # Examples
///
/// ```
/// use dvm_bench::{Json, JsonDoc};
/// let doc = JsonDoc::new("fig2")
///     .field("scale", Json::Str("quick".into()))
///     .build();
/// assert_eq!(doc.expect_str("experiment"), Ok("fig2"));
/// assert_eq!(doc.expect_u64("schema_version"), Ok(dvm_bench::SCHEMA_VERSION));
/// ```
#[derive(Debug, Clone)]
pub struct JsonDoc {
    pairs: Vec<(String, Json)>,
}

impl JsonDoc {
    /// Start a document for `experiment` with the standard header.
    pub fn new(experiment: &str) -> Self {
        Self {
            pairs: vec![
                ("schema_version".to_string(), Json::UInt(SCHEMA_VERSION)),
                ("experiment".to_string(), Json::Str(experiment.to_string())),
            ],
        }
    }

    /// Append a field (insertion order is render order).
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Self {
        self.pairs.push((key.to_string(), value));
        self
    }

    /// The finished document.
    pub fn build(self) -> Json {
        Json::Obj(self.pairs)
    }
}

/// Check a parsed document's header: current `schema_version`, and the
/// expected `experiment` when the caller knows which one it wants.
///
/// # Errors
///
/// Describes the first mismatch (missing field, version skew, wrong
/// experiment).
pub fn validate_header(doc: &Json, experiment: Option<&str>) -> Result<(), String> {
    let version = doc.expect_u64("schema_version")?;
    if version != SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {SCHEMA_VERSION}"
        ));
    }
    let found = doc.expect_str("experiment")?;
    if let Some(want) = experiment {
        if found != want {
            return Err(format!("experiment '{found}' != expected '{want}'"));
        }
    }
    Ok(())
}

/// Serialize every metric of one experiment report.
pub fn report_json(r: &GraphRunReport) -> Json {
    Json::obj([
        ("mmu", Json::Str(r.mmu.name().to_string())),
        ("workload", Json::Str(r.workload.to_string())),
        ("cycles", Json::UInt(r.cycles)),
        ("accesses", Json::UInt(r.accesses)),
        ("tlb", Json::hit_miss(r.tlb)),
        ("ptc", Json::hit_miss(r.ptc)),
        ("bitmap_cache", Json::hit_miss(r.bitmap_cache)),
        ("walk_mem_refs", Json::UInt(r.walk_mem_refs)),
        ("identity_validations", Json::UInt(r.identity_validations)),
        ("fallback_translations", Json::UInt(r.fallback_translations)),
        ("preload_squashes", Json::UInt(r.preload_squashes)),
        ("mm_energy_pj", Json::Float(r.mm_energy_pj)),
        ("dram_accesses", Json::UInt(r.dram_accesses)),
        ("heap_bytes", Json::UInt(r.heap_bytes)),
        ("edges_processed", Json::UInt(r.run.edges_processed)),
        ("iterations", Json::UInt(u64::from(r.run.iterations))),
    ])
}

/// Accumulates one harness's machine-readable output: the same grid as
/// its text table (label + one value per column), plus optional raw
/// per-scheme reports per row and figure-level summary entries.
#[derive(Debug, Clone)]
pub struct FigureJson {
    experiment: String,
    scale: String,
    columns: Vec<String>,
    rows: Vec<Json>,
    summary: Vec<(String, Json)>,
}

impl FigureJson {
    /// Start a document for `experiment` at `scale` with the given value
    /// columns (row labels are implicit).
    pub fn new(experiment: &str, scale: &str, columns: &[&str]) -> Self {
        Self {
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Append a row of column values.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn row(&mut self, label: &str, values: Vec<Json>) {
        self.push_row(label, values, None);
    }

    /// Append a row carrying the full per-scheme reports it was derived
    /// from (the raw material for result diffing).
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the column count.
    pub fn row_with_reports(&mut self, label: &str, values: Vec<Json>, reports: &[GraphRunReport]) {
        let raw = Json::Arr(reports.iter().map(report_json).collect());
        self.push_row(label, values, Some(raw));
    }

    fn push_row(&mut self, label: &str, values: Vec<Json>, reports: Option<Json>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row arity {} != column arity {}",
            values.len(),
            self.columns.len()
        );
        let mut pairs = vec![
            ("label".to_string(), Json::Str(label.to_string())),
            ("values".to_string(), Json::Arr(values)),
        ];
        if let Some(raw) = reports {
            pairs.push(("reports".to_string(), raw));
        }
        self.rows.push(Json::Obj(pairs));
    }

    /// Add a figure-level summary entry (e.g. the geomean row).
    pub fn summary(&mut self, key: &str, value: Json) {
        self.summary.push((key.to_string(), value));
    }

    /// The complete document, opened by the standard [`JsonDoc`] header.
    pub fn to_json(&self) -> Json {
        let mut doc = JsonDoc::new(&self.experiment)
            .field("scale", Json::Str(self.scale.clone()))
            .field(
                "columns",
                Json::Arr(self.columns.iter().cloned().map(Json::Str).collect()),
            )
            .field("rows", Json::Arr(self.rows.clone()));
        if !self.summary.is_empty() {
            doc = doc.field("summary", Json::Obj(self.summary.clone()));
        }
        doc.build()
    }

    /// Render the document with a trailing newline.
    pub fn render(&self) -> String {
        format!("{}\n", self.to_json())
    }

    /// Write the document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_document() {
        let mut fig = FigureJson::new("fig-test", "quick", &["a", "b"]);
        fig.row("BFS/FR", vec![Json::Float(1.5), Json::UInt(7)]);
        fig.row("odd \"label\"\n", vec![Json::Null, Json::Float(f64::NAN)]);
        fig.summary("geomean", Json::Arr(vec![Json::Float(2.0)]));
        let expected = concat!(
            "{\n",
            "  \"schema_version\": 1,\n",
            "  \"experiment\": \"fig-test\",\n",
            "  \"scale\": \"quick\",\n",
            "  \"columns\": [\n",
            "    \"a\",\n",
            "    \"b\"\n",
            "  ],\n",
            "  \"rows\": [\n",
            "    {\n",
            "      \"label\": \"BFS/FR\",\n",
            "      \"values\": [\n",
            "        1.5,\n",
            "        7\n",
            "      ]\n",
            "    },\n",
            "    {\n",
            "      \"label\": \"odd \\\"label\\\"\\n\",\n",
            "      \"values\": [\n",
            "        null,\n",
            "        null\n",
            "      ]\n",
            "    }\n",
            "  ],\n",
            "  \"summary\": {\n",
            "    \"geomean\": [\n",
            "      2\n",
            "    ]\n",
            "  }\n",
            "}\n",
        );
        assert_eq!(fig.render(), expected);
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Arr(Vec::new()).to_string(), "[]");
        assert_eq!(Json::Obj(Vec::new()).to_string(), "{}");
    }

    #[test]
    fn floats_render_shortest() {
        assert_eq!(Json::Float(0.1).to_string(), "0.1");
        assert_eq!(Json::Float(2.0).to_string(), "2");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_checked() {
        let mut fig = FigureJson::new("x", "quick", &["a"]);
        fig.row("r", vec![]);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let mut fig = FigureJson::new("rt", "quick", &["a", "b"]);
        fig.row(
            "odd \"label\"\n\t\\",
            vec![Json::Float(0.1), Json::UInt(u64::MAX)],
        );
        fig.row("negatives", vec![Json::Int(-3), Json::Float(-2.5e-9)]);
        fig.summary("flags", Json::Arr(vec![Json::Bool(true), Json::Null]));
        let doc = fig.to_json();
        let round = parse(&fig.render()).unwrap();
        assert_eq!(round, doc);
        // And the re-render is byte-identical.
        assert_eq!(format!("{round}\n"), fig.render());
    }

    #[test]
    fn parse_distinguishes_integer_kinds() {
        assert_eq!(parse("7").unwrap(), Json::UInt(7));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("7.0").unwrap(), Json::Float(7.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::UInt(u64::MAX));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = parse("{\"a\": {\"b\": [1, \"x\"]}, \"f\": 1.5}").unwrap();
        assert_eq!(doc.get("a").unwrap().expect_arr("b").unwrap().len(), 2);
        assert_eq!(doc.expect_f64("f"), Ok(1.5));
        assert!(doc.expect_u64("missing").is_err());
        assert!(doc.expect_str("f").is_err());
    }

    #[test]
    fn header_validation_catches_skew() {
        let good = JsonDoc::new("fig2").build();
        assert!(validate_header(&good, Some("fig2")).is_ok());
        assert!(validate_header(&good, None).is_ok());
        assert!(validate_header(&good, Some("fig8")).is_err());
        let stale = Json::obj([
            ("schema_version", Json::UInt(SCHEMA_VERSION + 1)),
            ("experiment", Json::Str("fig2".into())),
        ]);
        assert!(validate_header(&stale, Some("fig2")).is_err());
        assert!(validate_header(&Json::Null, None).is_err());
    }
}
