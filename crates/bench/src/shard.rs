//! The multi-process sweep runner.
//!
//! A bench binary invoked with `--shards N` becomes a **coordinator**: it
//! respawns its own executable N times with `--shard I/N`, each worker
//! runs the round-robin slice of the grid ([`SweepSpec::shard`]) and
//! writes a *fragment* — raw per-unit results keyed by global grid index
//! — then exits. The coordinator collects the fragments, reassembles the
//! results **in spec order**, and runs the ordinary formatting path
//! exactly once. Because formatting consumes the same values a
//! single-process run would produce (integers exactly, floats through
//! the shortest-representation render and correctly-rounded parse), the
//! merged text table and `--json` document are byte-identical to a
//! `--jobs 1` run by construction.
//!
//! Workers' stdout is discarded (their banner lines are not part of any
//! contract). Without `--progress`, stderr is inherited so dataset-cache
//! statistics stream through; with it, the coordinator pipes each
//! worker's stderr and merges the N per-shard `progress:` streams into
//! one global `done/total` count (other lines pass through verbatim).
//! `--merge-dir DIR` skips the spawning and merges fragments some other
//! machine's workers already wrote — the multi-host workflow.
//!
//! Workers inherit the coordinator's cache flags verbatim (see
//! [`BenchArgs::worker_argv`]), including `--cache-max-bytes` and
//! `--report-cache-max-bytes`: every worker enforces the same LRU byte
//! budget on the shared cache directories. Eviction is safe under this
//! concurrency because a worker that loses an entry mid-sweep just
//! regenerates it — budgets never change sweep output bytes.
//!
//! Reconstructed [`GraphRunReport`]s carry only the fields
//! [`report_json`] serializes; `engine_cycles`, `walker_cycles` and the
//! latency histogram come back empty. No formatting path reads them, and
//! re-serializing a reconstructed report yields the bytes it was parsed
//! from.

use crate::{
    pair_label, parse, report_json, validate_header, BenchArgs, Json, JsonDoc, Shard, ShardRole,
};
use dvm_core::{
    parallel_map_ordered, CellReports, GraphRunReport, RunResult, SchemeId, SweepProgress,
    SweepRunner, SweepSpec, Workload,
};
use dvm_pagetable::SizeReport;
use dvm_sim::Histogram;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A per-unit result that can cross a process boundary through a shard
/// fragment and come back *value-identical*: `from_json(to_json(x))`
/// reproduces every bit the figure formatters read.
pub trait ShardValue: Sized {
    /// Serialize for a fragment.
    fn to_json(&self) -> Json;
    /// Deserialize from a fragment.
    ///
    /// # Errors
    ///
    /// Describes the first shape or type mismatch.
    fn from_json(value: &Json) -> Result<Self, String>;
}

impl ShardValue for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
    fn from_json(value: &Json) -> Result<Self, String> {
        value
            .as_f64()
            .ok_or_else(|| format!("expected a number, got {value}"))
    }
}

impl ShardValue for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
    fn from_json(value: &Json) -> Result<Self, String> {
        value
            .as_u64()
            .ok_or_else(|| format!("expected an integer, got {value}"))
    }
}

impl<const N: usize> ShardValue for [u64; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|&v| Json::UInt(v)).collect())
    }
    fn from_json(value: &Json) -> Result<Self, String> {
        array_from_json(value, |v| {
            v.as_u64()
                .ok_or_else(|| format!("expected an integer, got {v}"))
        })
    }
}

impl<const N: usize> ShardValue for [f64; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(|&v| Json::Float(v)).collect())
    }
    fn from_json(value: &Json) -> Result<Self, String> {
        array_from_json(value, |v| {
            v.as_f64()
                .ok_or_else(|| format!("expected a number, got {v}"))
        })
    }
}

fn array_from_json<T: Copy + Default, const N: usize>(
    value: &Json,
    element: impl Fn(&Json) -> Result<T, String>,
) -> Result<[T; N], String> {
    let arr = value
        .as_arr()
        .ok_or_else(|| format!("expected an array, got {value}"))?;
    if arr.len() != N {
        return Err(format!("expected {N} elements, got {}", arr.len()));
    }
    let mut out = [T::default(); N];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = element(item)?;
    }
    Ok(out)
}

fn size_report_json(r: &SizeReport) -> Json {
    Json::obj([
        ("table_frames", r.table_frames.to_json()),
        ("present_entries", r.present_entries.to_json()),
        ("l1_pte_count", Json::UInt(r.l1_pte_count)),
        ("pe_entries", r.pe_entries.to_json()),
        ("huge_leaf_entries", Json::UInt(r.huge_leaf_entries)),
    ])
}

fn size_report_from_json(value: &Json) -> Result<SizeReport, String> {
    Ok(SizeReport {
        table_frames: ShardValue::from_json(
            value
                .get("table_frames")
                .ok_or("missing field 'table_frames'")?,
        )?,
        present_entries: ShardValue::from_json(
            value
                .get("present_entries")
                .ok_or("missing field 'present_entries'")?,
        )?,
        l1_pte_count: value.expect_u64("l1_pte_count")?,
        pe_entries: ShardValue::from_json(
            value
                .get("pe_entries")
                .ok_or("missing field 'pe_entries'")?,
        )?,
        huge_leaf_entries: value.expect_u64("huge_leaf_entries")?,
    })
}

impl ShardValue for dvm_core::PageTableStudy {
    fn to_json(&self) -> Json {
        Json::obj([
            ("conventional", size_report_json(&self.conventional)),
            ("with_pes", size_report_json(&self.with_pes)),
            ("heap_bytes", Json::UInt(self.heap_bytes)),
        ])
    }
    fn from_json(value: &Json) -> Result<Self, String> {
        Ok(Self {
            conventional: size_report_from_json(
                value
                    .get("conventional")
                    .ok_or("missing field 'conventional'")?,
            )?,
            with_pes: size_report_from_json(
                value.get("with_pes").ok_or("missing field 'with_pes'")?,
            )?,
            heap_bytes: value.expect_u64("heap_bytes")?,
        })
    }
}

/// A churn unit's whole trajectory crosses the fragment boundary as an
/// array of per-epoch counter objects. Only integers are carried —
/// derived rates are computed at format time on the coordinator, so no
/// float round-trip (or 0/0 rate) can perturb merged output.
impl ShardValue for Vec<dvm_core::ChurnEpoch> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(churn_epoch_json).collect())
    }
    fn from_json(value: &Json) -> Result<Self, String> {
        let arr = value
            .as_arr()
            .ok_or_else(|| format!("expected an epoch array, got {value}"))?;
        arr.iter()
            .enumerate()
            .map(|(i, e)| churn_epoch_from_json(e).map_err(|err| format!("epoch {i}: {err}")))
            .collect()
    }
}

fn churn_epoch_json(e: &dvm_core::ChurnEpoch) -> Json {
    Json::obj([
        ("epoch", Json::UInt(u64::from(e.epoch))),
        ("live_procs", Json::UInt(e.live_procs)),
        ("identity_maps", Json::UInt(e.identity_maps)),
        ("identity_fallbacks", Json::UInt(e.identity_fallbacks)),
        (
            "identity_bytes_requested",
            Json::UInt(e.identity_bytes_requested),
        ),
        ("identity_bytes_padded", Json::UInt(e.identity_bytes_padded)),
        ("demand_bytes", Json::UInt(e.demand_bytes)),
        ("cow_breaks", Json::UInt(e.cow_breaks)),
        ("oom_events", Json::UInt(e.oom_events)),
        ("free_frames", Json::UInt(e.free_frames)),
        ("free_runs", Json::UInt(e.free_runs)),
        ("largest_run", Json::UInt(e.largest_run)),
        ("sub_granule_runs", Json::UInt(e.sub_granule_runs)),
    ])
}

fn churn_epoch_from_json(value: &Json) -> Result<dvm_core::ChurnEpoch, String> {
    Ok(dvm_core::ChurnEpoch {
        epoch: u32::try_from(value.expect_u64("epoch")?)
            .map_err(|_| "epoch out of range".to_string())?,
        live_procs: value.expect_u64("live_procs")?,
        identity_maps: value.expect_u64("identity_maps")?,
        identity_fallbacks: value.expect_u64("identity_fallbacks")?,
        identity_bytes_requested: value.expect_u64("identity_bytes_requested")?,
        identity_bytes_padded: value.expect_u64("identity_bytes_padded")?,
        demand_bytes: value.expect_u64("demand_bytes")?,
        cow_breaks: value.expect_u64("cow_breaks")?,
        oom_events: value.expect_u64("oom_events")?,
        free_frames: value.expect_u64("free_frames")?,
        free_runs: value.expect_u64("free_runs")?,
        largest_run: value.expect_u64("largest_run")?,
        sub_granule_runs: value.expect_u64("sub_granule_runs")?,
    })
}

/// Rebuild a [`GraphRunReport`] from its [`report_json`] serialization,
/// in the context of the cell (`mmu`, `workload`) the coordinator's own
/// spec says the unit belongs to — the names stored in the fragment are
/// cross-checked against that context.
pub(crate) fn report_from_json(
    obj: &Json,
    mmu: SchemeId,
    workload: &Workload,
) -> Result<GraphRunReport, String> {
    let found_mmu = obj.expect_str("mmu")?;
    if found_mmu != mmu.name() {
        return Err(format!("scheme '{found_mmu}' != expected '{}'", mmu.name()));
    }
    let found_workload = obj.expect_str("workload")?;
    if found_workload != workload.name() {
        return Err(format!(
            "workload '{found_workload}' != expected '{}'",
            workload.name()
        ));
    }
    let hit_miss = |key: &str| -> Result<Option<(u64, u64)>, String> {
        match obj.get(key) {
            None => Err(format!("missing field '{key}'")),
            Some(Json::Null) => Ok(None),
            Some(v) => Ok(Some((v.expect_u64("hits")?, v.expect_u64("misses")?))),
        }
    };
    let cycles = obj.expect_u64("cycles")?;
    Ok(GraphRunReport {
        mmu,
        workload: workload.name(),
        cycles,
        run: RunResult {
            cycles,
            engine_cycles: Vec::new(),
            edges_processed: obj.expect_u64("edges_processed")?,
            iterations: u32::try_from(obj.expect_u64("iterations")?)
                .map_err(|_| "iterations out of range".to_string())?,
            walker_cycles: 0,
            latency_hist: Histogram::new("latency"),
        },
        accesses: obj.expect_u64("accesses")?,
        tlb: hit_miss("tlb")?,
        ptc: hit_miss("ptc")?,
        bitmap_cache: hit_miss("bitmap_cache")?,
        walk_mem_refs: obj.expect_u64("walk_mem_refs")?,
        identity_validations: obj.expect_u64("identity_validations")?,
        fallback_translations: obj.expect_u64("fallback_translations")?,
        preload_squashes: obj.expect_u64("preload_squashes")?,
        mm_energy_pj: obj.expect_f64("mm_energy_pj")?,
        dram_accesses: obj.expect_u64("dram_accesses")?,
        heap_bytes: obj.expect_u64("heap_bytes")?,
    })
}

/// Canonical fragment file name: `<experiment>_shard<I>of<N>.json`.
pub fn fragment_name(experiment: &str, index: usize, count: usize) -> String {
    format!("{experiment}_shard{index}of{count}.json")
}

fn fragment_doc(
    experiment: &str,
    scale: &str,
    shard: Shard,
    total_units: usize,
    units: Vec<(usize, String, Json)>,
) -> Json {
    JsonDoc::new(experiment)
        .field("kind", Json::Str("shard-fragment".to_string()))
        .field("scale", Json::Str(scale.to_string()))
        .field("shard", Json::UInt(shard.index as u64))
        .field("shards", Json::UInt(shard.count as u64))
        .field("total_units", Json::UInt(total_units as u64))
        .field(
            "units",
            Json::Arr(
                units
                    .into_iter()
                    .map(|(index, label, value)| {
                        Json::obj([
                            ("index", Json::UInt(index as u64)),
                            ("label", Json::Str(label)),
                            ("value", value),
                        ])
                    })
                    .collect(),
            ),
        )
        .build()
}

/// Validate and flatten fragments into one `(label, value)` slot per
/// global unit index. Every unit must appear exactly once, and the
/// fragments must form a complete, consistent shard set.
fn merge_fragments(
    fragments: &[Json],
    experiment: &str,
    scale: &str,
    total: usize,
) -> Result<Vec<(String, Json)>, String> {
    if fragments.is_empty() {
        return Err("no shard fragments found".to_string());
    }
    let mut slots: Vec<Option<(String, Json)>> = vec![None; total];
    let mut count = None;
    let mut shards_seen: Vec<u64> = Vec::new();
    for frag in fragments {
        validate_header(frag, Some(experiment))?;
        let kind = frag.expect_str("kind")?;
        if kind != "shard-fragment" {
            return Err(format!("document kind '{kind}' is not a shard fragment"));
        }
        let found_scale = frag.expect_str("scale")?;
        if found_scale != scale {
            return Err(format!(
                "fragment scale '{found_scale}' != run scale '{scale}'"
            ));
        }
        let found_total = frag.expect_u64("total_units")? as usize;
        if found_total != total {
            return Err(format!(
                "fragment grid has {found_total} units, this run has {total}"
            ));
        }
        let shards = frag.expect_u64("shards")?;
        let shard = frag.expect_u64("shard")?;
        if shard >= shards {
            return Err(format!("fragment claims shard {shard} of {shards}"));
        }
        match count {
            None => count = Some(shards),
            Some(c) if c == shards => {}
            Some(c) => {
                return Err(format!(
                    "fragments disagree on shard count ({c} vs {shards})"
                ))
            }
        }
        if shards_seen.contains(&shard) {
            return Err(format!("shard {shard} appears in two fragments"));
        }
        shards_seen.push(shard);
        for unit in frag.expect_arr("units")? {
            let index = unit.expect_u64("index")? as usize;
            if index >= total {
                return Err(format!("unit index {index} out of range ({total} units)"));
            }
            if slots[index].is_some() {
                return Err(format!("unit {index} appears twice"));
            }
            let label = unit.expect_str("label")?.to_string();
            let value = unit.get("value").ok_or("unit missing 'value'")?.clone();
            slots[index] = Some((label, value));
        }
    }
    let count = count.expect("at least one fragment") as usize;
    if shards_seen.len() != count {
        return Err(format!(
            "found {} of {count} shard fragments",
            shards_seen.len()
        ));
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.ok_or_else(|| format!("unit {i} missing from every fragment")))
        .collect()
}

fn fail(context: &str, message: &str) -> ! {
    eprintln!("{context}: {message}");
    std::process::exit(1);
}

fn write_fragment(
    args: &BenchArgs,
    experiment: &str,
    shard: Shard,
    total: usize,
    units: Vec<(usize, String, Json)>,
) {
    let path = args.shard_out.clone().unwrap_or_else(|| {
        PathBuf::from("results/shards").join(fragment_name(experiment, shard.index, shard.count))
    });
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("creating fragment directory failed");
        }
    }
    let doc = fragment_doc(experiment, args.scale.name(), shard, total, units);
    std::fs::write(&path, format!("{doc}\n")).expect("writing shard fragment failed");
}

/// Respawn this executable as `count` shard workers, wait for all of
/// them, and return their parsed fragments. Worker stdout is discarded —
/// banners belong to the coordinator. Under `--progress` each worker's
/// stderr is piped through [`collapse_progress`] so the user sees one
/// `done/total_units` count over the whole grid instead of `count`
/// interleaved per-shard counts; otherwise stderr is inherited.
fn spawn_workers(
    args: &BenchArgs,
    experiment: &str,
    count: usize,
    total_units: usize,
) -> Result<Vec<Json>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}"))?;
    let dir = std::env::temp_dir().join(format!("dvm-shards-{experiment}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let done = std::sync::Arc::new(AtomicUsize::new(0));
    let result = (|| {
        let paths: Vec<PathBuf> = (0..count)
            .map(|i| dir.join(fragment_name(experiment, i, count)))
            .collect();
        let mut children = Vec::with_capacity(count);
        for (i, path) in paths.iter().enumerate() {
            let mut command = Command::new(&exe);
            command
                .args(args.worker_argv(i, count, path))
                .stdout(Stdio::null());
            if args.progress {
                command.stderr(Stdio::piped());
            }
            let mut child = command
                .spawn()
                .map_err(|e| format!("spawning shard {i}/{count} failed: {e}"))?;
            let relay = child.stderr.take().map(|stderr| {
                let done = std::sync::Arc::clone(&done);
                std::thread::spawn(move || relay_worker_stderr(stderr, &done, total_units))
            });
            children.push((child, relay));
        }
        for (i, (mut child, relay)) in children.into_iter().enumerate() {
            let status = child
                .wait()
                .map_err(|e| format!("waiting on shard {i} failed: {e}"))?;
            if let Some(relay) = relay {
                let _ = relay.join();
            }
            if !status.success() {
                return Err(format!("shard {i}/{count} exited with {status}"));
            }
        }
        paths.iter().map(|path| read_fragment(path)).collect()
    })();
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// Stream one worker's stderr to ours, collapsing its `progress:` lines
/// into the shared global count; everything else (dataset-cache
/// statistics, diagnostics) passes through untouched. Lines go out via
/// [`dvm_farm::emit_stderr_line`] — length-checked and written whole
/// under the stderr lock — so concurrent relay threads can never tear
/// each other's lines the way buffered `eprintln!` fragments could.
fn relay_worker_stderr(stderr: std::process::ChildStderr, done: &AtomicUsize, total: usize) {
    use std::io::BufRead as _;
    for line in std::io::BufReader::new(stderr).lines() {
        let Ok(line) = line else { return };
        match collapse_progress(&line, done, total) {
            Some(merged) => dvm_farm::emit_stderr_line(&merged),
            None => dvm_farm::emit_stderr_line(&line),
        }
    }
}

/// If `line` is a worker `progress:` line, bump the global counter and
/// return the merged `progress: done/total (unit label)` form — the
/// worker's own shard tag and per-shard count are dropped, the unit
/// label (the text in the final parentheses) is kept.
fn collapse_progress(line: &str, done: &AtomicUsize, total: usize) -> Option<String> {
    let rest = line.strip_prefix("progress: ")?;
    let label = rest
        .rfind('(')
        .map_or(rest, |open| rest[open + 1..].trim_end_matches(')'));
    let n = done.fetch_add(1, Ordering::AcqRel) + 1;
    Some(format!("progress: {n}/{total} ({label})"))
}

/// Submit the sweep to the `--farm` coordinator and return the parsed
/// fragments its workers produced, in slice order. The farm ships
/// fragment *bytes*; they are the same documents `--shard` workers
/// write, so the ordinary merge path downstream keeps the output
/// byte-identical to a serial run.
fn farm_fragments(
    args: &BenchArgs,
    experiment: &str,
    total_units: usize,
) -> Result<Vec<Json>, String> {
    let addr = args.farm.as_deref().expect("farm role has an address");
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}"))?;
    let bin = exe
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or("cannot name own executable")?
        .to_string();
    let req = dvm_farm::JobRequest {
        bin,
        experiment: experiment.to_string(),
        slices: args.shards.unwrap_or(0),
        total_units,
        argv: args.farm_argv(),
    };
    let progress = args.progress;
    let mut on_event = |event: dvm_farm::JobEvent<'_>| match event {
        dvm_farm::JobEvent::Progress { done, total, label } => {
            if progress {
                dvm_farm::emit_stderr_line(&format!("progress: {done}/{total} ({label})"));
            }
        }
        dvm_farm::JobEvent::Line(line) => dvm_farm::emit_stderr_line(line),
    };
    let fragments = dvm_farm::run_job(addr, &req, &mut on_event)?;
    fragments
        .iter()
        .enumerate()
        .map(|(i, bytes)| {
            let text = std::str::from_utf8(bytes)
                .map_err(|_| format!("farm fragment {i} is not UTF-8"))?;
            parse(text).map_err(|e| format!("farm fragment {i} is not valid JSON: {e}"))
        })
        .collect()
}

fn read_fragment(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read fragment {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("fragment {} is not valid JSON: {e}", path.display()))
}

/// Read every `<experiment>_shard*.json` under `dir`.
fn read_merge_dir(dir: &Path, experiment: &str) -> Result<Vec<Json>, String> {
    let prefix = format!("{experiment}_shard");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read --merge-dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no {prefix}*.json fragments in {}", dir.display()));
    }
    paths.iter().map(|path| read_fragment(path)).collect()
}

/// Run a graph sweep under this process's sharding role, returning
/// merged results in spec order. Workers write their fragment and exit
/// inside this call; the single/coordinator/farm/merge roles return.
///
/// # Panics
///
/// Panics if any experiment fails — harness binaries have no recovery
/// path.
pub fn run_sharded_sweep(
    args: &BenchArgs,
    experiment: &str,
    schemes: &[SchemeId],
) -> Vec<CellReports> {
    let spec = args.sweep_spec(schemes);
    match args.role() {
        ShardRole::Single => {
            let cells = sweep_with_options(args, &spec, None);
            args.report_cache_stats();
            cells
        }
        ShardRole::Worker(shard) => {
            let sub = spec.shard(shard.index, shard.count);
            let cells = sweep_with_options(args, &sub, Some(shard));
            let units = spec
                .shard_indices(shard.index, shard.count)
                .zip(&cells)
                .map(|(index, cell)| {
                    (
                        index,
                        pair_label(&cell.workload, cell.dataset),
                        Json::Arr(cell.reports.iter().map(report_json).collect()),
                    )
                })
                .collect();
            write_fragment(args, experiment, shard, spec.cells.len(), units);
            args.report_cache_stats();
            std::process::exit(0);
        }
        ShardRole::Coordinator(count) => {
            let fragments = spawn_workers(args, experiment, count, spec.unit_count())
                .unwrap_or_else(|e| fail(experiment, &e));
            cells_from_fragments(args, experiment, &spec, &fragments)
        }
        ShardRole::Farm => {
            let fragments = farm_fragments(args, experiment, spec.unit_count())
                .unwrap_or_else(|e| fail(experiment, &e));
            cells_from_fragments(args, experiment, &spec, &fragments)
        }
        ShardRole::Merge => {
            let dir = args.merge_dir.as_deref().expect("merge role has a dir");
            let fragments =
                read_merge_dir(dir, experiment).unwrap_or_else(|e| fail(experiment, &e));
            cells_from_fragments(args, experiment, &spec, &fragments)
        }
    }
}

fn cells_from_fragments(
    args: &BenchArgs,
    experiment: &str,
    spec: &SweepSpec,
    fragments: &[Json],
) -> Vec<CellReports> {
    let slots = merge_fragments(fragments, experiment, args.scale.name(), spec.cells.len())
        .unwrap_or_else(|e| fail(experiment, &e));
    spec.cells
        .iter()
        .zip(slots)
        .map(|(cell, (label, value))| {
            let want = pair_label(&cell.workload, cell.dataset);
            if label != want {
                fail(
                    experiment,
                    &format!("unit label '{label}' != expected '{want}'"),
                );
            }
            let arr = value.as_arr().unwrap_or_else(|| {
                fail(experiment, &format!("unit '{label}' value is not an array"))
            });
            if arr.len() != cell.schemes.len() {
                fail(
                    experiment,
                    &format!(
                        "unit '{label}' has {} reports, expected {}",
                        arr.len(),
                        cell.schemes.len()
                    ),
                );
            }
            let reports = cell
                .schemes
                .iter()
                .zip(arr)
                .map(|(&mmu, obj)| {
                    report_from_json(obj, mmu, &cell.workload)
                        .unwrap_or_else(|e| fail(experiment, &format!("unit '{label}': {e}")))
                })
                .collect();
            CellReports {
                workload: cell.workload,
                dataset: cell.dataset,
                reports,
            }
        })
        .collect()
}

fn sweep_with_options(
    args: &BenchArgs,
    spec: &SweepSpec,
    shard: Option<Shard>,
) -> Vec<CellReports> {
    let tag = shard.map_or(String::new(), |s| format!("shard {s} "));
    let report = move |p: SweepProgress<'_>| {
        eprintln!(
            "progress: {tag}{}/{} ({}/{} {})",
            p.done, p.total, p.workload, p.dataset, p.scheme
        );
    };
    let mut runner = SweepRunner::new(spec).jobs(args.jobs).lanes(args.lanes);
    if let Some(cache) = args.cache.as_ref() {
        runner = runner.cache(cache);
    }
    if args.progress {
        runner = runner.progress(&report);
    }
    if let Some(reports) = args.reports.as_ref() {
        runner = runner.report_store(reports);
    }
    runner.run().expect("experiment failed")
}

/// Run an arbitrary shared-nothing grid — `compute(i)` for each of
/// `labels.len()` units — under this process's sharding role, returning
/// values in unit order. The non-sweep harnesses (Figure 10's CPU grid,
/// the table studies, the nested-translation study) all route through
/// here, so every binary honours `--shards`/`--shard`/`--merge-dir`
/// identically.
///
/// # Panics
///
/// Panics if `compute` panics; exits with a diagnostic on fragment
/// problems.
pub fn run_grid<T, F>(args: &BenchArgs, experiment: &str, labels: &[String], compute: F) -> Vec<T>
where
    T: ShardValue + Send,
    F: Fn(usize) -> T + Sync,
{
    match args.role() {
        ShardRole::Single => {
            let indices: Vec<usize> = (0..labels.len()).collect();
            let values = grid_indices(args, labels, &indices, &compute);
            args.report_cache_stats();
            values
        }
        ShardRole::Worker(shard) => {
            let indices: Vec<usize> = (shard.index..labels.len()).step_by(shard.count).collect();
            let values = grid_indices(args, labels, &indices, &compute);
            let units = indices
                .iter()
                .zip(&values)
                .map(|(&i, v)| (i, labels[i].clone(), v.to_json()))
                .collect();
            write_fragment(args, experiment, shard, labels.len(), units);
            args.report_cache_stats();
            std::process::exit(0);
        }
        ShardRole::Coordinator(count) => {
            let fragments = spawn_workers(args, experiment, count, labels.len())
                .unwrap_or_else(|e| fail(experiment, &e));
            grid_from_fragments(args, experiment, labels, &fragments)
        }
        ShardRole::Farm => {
            let fragments = farm_fragments(args, experiment, labels.len())
                .unwrap_or_else(|e| fail(experiment, &e));
            grid_from_fragments(args, experiment, labels, &fragments)
        }
        ShardRole::Merge => {
            let dir = args.merge_dir.as_deref().expect("merge role has a dir");
            let fragments =
                read_merge_dir(dir, experiment).unwrap_or_else(|e| fail(experiment, &e));
            grid_from_fragments(args, experiment, labels, &fragments)
        }
    }
}

fn grid_indices<T, F>(args: &BenchArgs, labels: &[String], indices: &[usize], compute: &F) -> Vec<T>
where
    T: ShardValue + Send,
    F: Fn(usize) -> T + Sync,
{
    let done = AtomicUsize::new(0);
    let total = indices.len();
    parallel_map_ordered(indices, args.jobs, |&i| {
        let value = compute(i);
        if args.progress {
            eprintln!(
                "progress: {}/{} ({})",
                done.fetch_add(1, Ordering::AcqRel) + 1,
                total,
                labels[i]
            );
        }
        value
    })
}

fn grid_from_fragments<T: ShardValue>(
    args: &BenchArgs,
    experiment: &str,
    labels: &[String],
    fragments: &[Json],
) -> Vec<T> {
    let slots = merge_fragments(fragments, experiment, args.scale.name(), labels.len())
        .unwrap_or_else(|e| fail(experiment, &e));
    labels
        .iter()
        .zip(slots)
        .map(|(want, (label, value))| {
            if &label != want {
                fail(
                    experiment,
                    &format!("unit label '{label}' != expected '{want}'"),
                );
            }
            T::from_json(&value)
                .unwrap_or_else(|e| fail(experiment, &format!("unit '{label}': {e}")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_core::{page_table_study, run_graph_experiment, ExperimentConfig};
    use dvm_graph::{rmat, RmatParams};

    fn labeled(units: Vec<(usize, &str, Json)>) -> Vec<(usize, String, Json)> {
        units
            .into_iter()
            .map(|(i, l, v)| (i, l.to_string(), v))
            .collect()
    }

    fn shard(index: usize, count: usize) -> Shard {
        Shard { index, count }
    }

    #[test]
    fn scalar_and_array_values_round_trip() {
        for v in [0.1f64, -2.5e-9, 3.0, 1e300] {
            assert_eq!(
                f64::from_json(&parse(&v.to_json().to_string()).unwrap()),
                Ok(v)
            );
        }
        assert_eq!(u64::from_json(&Json::UInt(u64::MAX)), Ok(u64::MAX));
        let a = [1u64, u64::MAX, 0];
        assert_eq!(
            <[u64; 3]>::from_json(&parse(&a.to_json().to_string()).unwrap()),
            Ok(a)
        );
        let f = [0.25f64, 3.0, -1.5];
        assert_eq!(
            <[f64; 3]>::from_json(&parse(&f.to_json().to_string()).unwrap()),
            Ok(f)
        );
        assert!(<[u64; 2]>::from_json(&a.to_json()).is_err());
        assert!(f64::from_json(&Json::Str("x".into())).is_err());
    }

    #[test]
    fn page_table_study_round_trips() {
        let graph = rmat(12, 4, RmatParams::default(), 5);
        let study = page_table_study(&graph, &Workload::PageRank { iterations: 1 }).unwrap();
        let round =
            dvm_core::PageTableStudy::from_json(&parse(&study.to_json().to_string()).unwrap())
                .unwrap();
        assert_eq!(format!("{study:?}"), format!("{round:?}"));
    }

    #[test]
    fn graph_report_round_trips_through_fragment_form() {
        let graph = rmat(10, 4, RmatParams::default(), 3);
        let workload = Workload::Bfs { root: 0 };
        for mmu in [
            SchemeId::CONV_4K,
            SchemeId::DVM_BM,
            SchemeId::DVM_PE_PLUS,
            SchemeId::IDEAL,
        ] {
            let report =
                run_graph_experiment(&workload, &graph, &ExperimentConfig::for_mmu(mmu)).unwrap();
            let serialized = report_json(&report);
            let parsed = parse(&serialized.to_string()).unwrap();
            let round = report_from_json(&parsed, mmu, &workload).unwrap();
            // Re-serializing the reconstruction gives the same bytes the
            // formatters would have consumed.
            assert_eq!(report_json(&round), serialized);
            assert_eq!(round.tlb_miss_rate(), report.tlb_miss_rate());
            assert_eq!(round.cycles, report.cycles);
            assert_eq!(round.mm_energy_pj, report.mm_energy_pj);
        }
    }

    #[test]
    fn report_context_mismatch_is_rejected() {
        let graph = rmat(10, 4, RmatParams::default(), 3);
        let workload = Workload::Bfs { root: 0 };
        let report = run_graph_experiment(
            &workload,
            &graph,
            &ExperimentConfig::for_mmu(SchemeId::IDEAL),
        )
        .unwrap();
        let doc = report_json(&report);
        assert!(report_from_json(&doc, SchemeId::DVM_BM, &workload).is_err());
        assert!(
            report_from_json(&doc, SchemeId::IDEAL, &Workload::PageRank { iterations: 1 }).is_err()
        );
    }

    #[test]
    fn fragments_merge_in_unit_order() {
        let f0 = fragment_doc(
            "t",
            "smoke",
            shard(0, 2),
            3,
            labeled(vec![(0, "a", Json::UInt(10)), (2, "c", Json::UInt(30))]),
        );
        let f1 = fragment_doc(
            "t",
            "smoke",
            shard(1, 2),
            3,
            labeled(vec![(1, "b", Json::UInt(20))]),
        );
        // Order of fragments must not matter.
        for frags in [[f0.clone(), f1.clone()], [f1, f0]] {
            let slots = merge_fragments(&frags, "t", "smoke", 3).unwrap();
            let labels: Vec<&str> = slots.iter().map(|(l, _)| l.as_str()).collect();
            assert_eq!(labels, ["a", "b", "c"]);
            assert_eq!(slots[2].1, Json::UInt(30));
        }
    }

    #[test]
    fn merge_rejects_inconsistent_fragment_sets() {
        let full = |units| fragment_doc("t", "smoke", shard(0, 1), 2, units);
        // Missing unit.
        let frag = full(labeled(vec![(0, "a", Json::UInt(1))]));
        assert!(merge_fragments(&[frag], "t", "smoke", 2)
            .unwrap_err()
            .contains("missing"));
        // Duplicate unit.
        let frag = full(labeled(vec![
            (0, "a", Json::UInt(1)),
            (0, "a", Json::UInt(1)),
        ]));
        assert!(merge_fragments(&[frag], "t", "smoke", 2)
            .unwrap_err()
            .contains("twice"));
        // Wrong experiment / scale / grid size.
        let frag = full(labeled(vec![
            (0, "a", Json::UInt(1)),
            (1, "b", Json::UInt(2)),
        ]));
        assert!(merge_fragments(std::slice::from_ref(&frag), "other", "smoke", 2).is_err());
        assert!(merge_fragments(std::slice::from_ref(&frag), "t", "quick", 2).is_err());
        assert!(merge_fragments(std::slice::from_ref(&frag), "t", "smoke", 5).is_err());
        // Incomplete shard set.
        let partial = fragment_doc(
            "t",
            "smoke",
            shard(0, 2),
            2,
            labeled(vec![(0, "a", Json::UInt(1)), (1, "b", Json::UInt(2))]),
        );
        assert!(merge_fragments(&[partial], "t", "smoke", 2)
            .unwrap_err()
            .contains("1 of 2"));
        // Empty set.
        assert!(merge_fragments(&[], "t", "smoke", 2).is_err());
    }

    #[test]
    fn interleaved_worker_progress_collapses_into_one_count() {
        let done = AtomicUsize::new(0);
        // Two workers over a 4-unit grid, lines arriving interleaved:
        // shard tags and per-shard counts vanish, labels survive, and
        // the merged count runs 1..=4 in arrival order.
        let lines = [
            "progress: shard 0/2 1/2 (BFS/FR 4K)",
            "progress: shard 1/2 1/2 (BFS/Wiki 2M)",
            "progress: shard 1/2 2/2 (CF/NF Ideal)",
            "progress: shard 0/2 2/2 (SSSP/LJ DVM)",
        ];
        let merged: Vec<String> = lines
            .iter()
            .filter_map(|line| collapse_progress(line, &done, 4))
            .collect();
        assert_eq!(
            merged,
            [
                "progress: 1/4 (BFS/FR 4K)",
                "progress: 2/4 (BFS/Wiki 2M)",
                "progress: 3/4 (CF/NF Ideal)",
                "progress: 4/4 (SSSP/LJ DVM)",
            ]
        );
        // run_grid-style lines (no shard tag) and non-progress chatter.
        assert_eq!(
            collapse_progress("progress: 1/9 (1 GiB heap)", &done, 4).as_deref(),
            Some("progress: 5/4 (1 GiB heap)")
        );
        assert_eq!(
            collapse_progress("dataset-cache: hits=3 misses=0", &done, 4),
            None
        );
        assert_eq!(done.load(Ordering::Acquire), 5);
    }

    #[test]
    fn fragment_documents_survive_render_and_parse() {
        let doc = fragment_doc(
            "fig2",
            "smoke",
            shard(1, 3),
            15,
            labeled(vec![(1, "BFS/Wiki", Json::Arr(vec![Json::Float(0.5)]))]),
        );
        let round = parse(&doc.to_string()).unwrap();
        assert_eq!(round, doc);
        assert_eq!(round.expect_str("kind"), Ok("shard-fragment"));
        assert_eq!(fragment_name("fig2", 1, 3), "fig2_shard1of3.json");
    }
}
