//! On-disk memo of per-unit sweep reports.
//!
//! Figures 2, 8 and 9 sweep the *same* (workload × dataset × scheme)
//! grid — fig2 a 2-scheme subset, fig8 and fig9 the full 7-scheme set —
//! and each binary used to re-simulate every unit from scratch. A
//! [`ReportCache`] plugged into [`dvm_core::SweepRunner::report_store`]
//! records each unit's [`GraphRunReport`] as it completes and replays it
//! on the next request, so one simulation pass serves every figure that
//! shares the grid.
//!
//! Correctness rests on the same round-trip contract as the shard
//! fragments: entries hold exactly the [`report_json`] serialization the
//! formatters consume, and re-serializing a reconstructed report yields
//! the bytes it was parsed from (asserted by the fragment tests in
//! [`crate::shard`]). A cached run's output is therefore byte-identical
//! to an uncached one. Simulations are deterministic, so the *values*
//! are the runs' values — the cache only skips redundant replay.
//!
//! Entries are keyed by the full unit identity (workload with all its
//! parameters, dataset, shrink divisor, MMU scheme); the key is stored
//! inside the entry and cross-checked on load, so a filename collision
//! degrades to a miss, never a wrong report. File names cap the
//! readable slug at [`MAX_SLUG_CHARS`] — the FNV-1a hash plus the
//! in-entry cross-check carry identity — so an arbitrarily long
//! parameter set can never overflow the 255-byte file-name limit and
//! silently disable the cache. Writes go through a temp-file rename
//! with a per-process *and* per-call tmp name
//! ([`dvm_graph::unique_tmp_path`]), so neither shard workers nor
//! `--jobs N` threads racing on one entry ever publish a torn file.
//! `--report-cache-max-bytes` bounds the directory through the shared
//! [`CacheBudget`] LRU layer; an evicted entry re-simulates on its next
//! request, so output bytes never change. The cache is meant to live
//! for one `reproduce_all.sh` invocation (the script clears it up
//! front): entries do not try to survive simulator changes.

use crate::shard::report_from_json;
use crate::{parse, report_json, validate_header, Json, JsonDoc};
use dvm_core::{GraphRunReport, ReportStore, UnitKey};
use dvm_graph::{unique_tmp_path, CacheBudget};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Longest readable slug embedded in an entry file name. With the 17
/// hash characters and the `.json` suffix the name stays well under
/// every mainstream filesystem's 255-byte limit.
pub const MAX_SLUG_CHARS: usize = 160;

/// Directory-backed store of per-unit sweep reports.
#[derive(Debug)]
pub struct ReportCache {
    dir: PathBuf,
    budget: CacheBudget,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ReportCache {
    /// Open (creating if needed) an unbounded report cache in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        Self::with_budget(dir, None)
    }

    /// Open a report cache bounded to `max_bytes` of entries (`None` =
    /// unbounded).
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn with_budget(dir: impl Into<PathBuf>, max_bytes: Option<u64>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            budget: CacheBudget::new(dir.clone(), ".json", max_bytes),
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// The eviction layer (always present; inert without a budget).
    pub fn budget(&self) -> &CacheBudget {
        &self.budget
    }

    /// Entries this process evicted to stay under the byte budget.
    pub fn evictions(&self) -> u64 {
        self.budget.evictions()
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Units served from disk.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Units that had to be simulated (no entry, or a stale/foreign one).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The canonical textual identity of a unit. Uses the `Debug` form
    /// of the workload so every parameter (PageRank iteration count, CF
    /// feature count, ...) is part of the key, and the scheme's
    /// *registry name* — never its registration index — so entries stay
    /// valid no matter what order schemes were registered in and an
    /// at-runtime registration can never alias a builtin's entries.
    fn key_string(key: &UnitKey<'_>) -> String {
        format!(
            "{:?}|{}|div{}|{}",
            key.workload,
            key.dataset.short_name(),
            key.divisor,
            key.mmu.name()
        )
    }

    /// The file name for a key text: a readable slug plus an FNV-1a
    /// hash of the exact key. The slug is lossy *and* truncated to
    /// [`MAX_SLUG_CHARS`] — identity rests on the hash and the in-entry
    /// key cross-check — so a workload with an arbitrarily long `Debug`
    /// form can never exceed the 255-byte file-name limit (which would
    /// make every store fail silently and the cache never hit).
    fn file_name_for(text: &str) -> String {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in text.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let slug: String = text
            .chars()
            .take(MAX_SLUG_CHARS)
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("{slug}-{hash:016x}.json")
    }

    /// Where the entry for `key` lives.
    pub fn entry_path(&self, key: &UnitKey<'_>) -> PathBuf {
        self.dir.join(Self::file_name_for(&Self::key_string(key)))
    }
}

impl ReportStore for ReportCache {
    fn load(&self, key: &UnitKey<'_>) -> Option<GraphRunReport> {
        let path = self.entry_path(key);
        let loaded = (|| {
            let text = std::fs::read_to_string(&path).ok()?;
            let doc = parse(&text).ok()?;
            validate_header(&doc, Some("report-cache")).ok()?;
            if doc.expect_str("kind") != Ok("unit-report")
                || doc.expect_str("key") != Ok(&Self::key_string(key))
            {
                return None;
            }
            report_from_json(doc.get("report")?, key.mmu, key.workload).ok()
        })();
        match &loaded {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                if let (Some(name), Ok(meta)) = (
                    path.file_name().and_then(|n| n.to_str()),
                    std::fs::metadata(&path),
                ) {
                    self.budget.record_access(name, meta.len());
                }
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
        };
        loaded
    }

    fn store(&self, key: &UnitKey<'_>, report: &GraphRunReport) {
        let doc = JsonDoc::new("report-cache")
            .field("kind", Json::Str("unit-report".to_string()))
            .field("key", Json::Str(Self::key_string(key)))
            .field("report", report_json(report))
            .build();
        let path = self.entry_path(key);
        let text = format!("{doc}\n");
        // Write-then-rename so a concurrently reading worker never sees
        // a torn entry; the tmp name is unique per process and per call
        // so racing writers never share one, and a lost rename race
        // overwrites with identical content. Any failure removes the
        // tmp file instead of leaking it.
        let tmp = unique_tmp_path(&path);
        let written = std::fs::write(&tmp, &text).and_then(|()| std::fs::rename(&tmp, &path));
        if written.is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
            self.budget.record_access(name, text.len() as u64);
        }
        self.budget.enforce();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_core::{
        run_graph_experiment, Dataset, ExperimentConfig, SchemeId, SweepRunner, SweepSpec, Workload,
    };
    use dvm_graph::rmat;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dvm-reportcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips_serialized_form() {
        let dir = tmp_dir("roundtrip");
        let cache = ReportCache::new(&dir).unwrap();
        let graph = rmat(10, 4, dvm_graph::RmatParams::default(), 3);
        let workload = Workload::Bfs { root: 0 };
        for mmu in [SchemeId::CONV_4K, SchemeId::DVM_PE_PLUS, SchemeId::IDEAL] {
            let report =
                run_graph_experiment(&workload, &graph, &ExperimentConfig::for_mmu(mmu)).unwrap();
            let key = UnitKey {
                workload: &workload,
                dataset: Dataset::Rmat24,
                divisor: 999,
                mmu,
            };
            assert!(cache.load(&key).is_none(), "cold cache must miss");
            cache.store(&key, &report);
            let loaded = cache.load(&key).expect("stored entry loads");
            // The serialized form — everything the formatters read — is
            // identical; that is the byte-identity contract.
            assert_eq!(report_json(&loaded), report_json(&report));
        }
        assert_eq!(cache.hits(), 3);
        assert_eq!(cache.misses(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_keys_produce_capped_distinct_writable_names() {
        // Regression test for the file-name overflow: the slug used to
        // embed the full key text, so a long parameter set exceeded the
        // 255-byte name limit, every store failed silently and the
        // cache never hit. The slug is now capped; identity rides on
        // the hash plus the in-entry key cross-check.
        let long_a = "x".repeat(4000);
        let long_b = format!("{}y", "x".repeat(3999));
        let name_a = ReportCache::file_name_for(&long_a);
        let name_b = ReportCache::file_name_for(&long_b);
        assert!(
            name_a.len() <= 255,
            "name still overflows: {}",
            name_a.len()
        );
        assert_ne!(name_a, name_b, "hash must distinguish shared prefixes");
        // The capped name is actually storable on the real filesystem.
        let dir = tmp_dir("longname");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(&name_a), "x").expect("capped name stores");
        // Short keys keep their full readable slug.
        let short = ReportCache::file_name_for("BFS|FR|div64|Ideal");
        assert!(short.starts_with("BFS_FR_div64_Ideal-"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_on_one_entry_never_publish_a_torn_report() {
        // Regression test for the tmp-name race: tmp names used to be
        // unique per process only, so two --jobs threads storing the
        // same unit interleaved writes on one tmp path and could rename
        // a torn file into place. Every load must round-trip the exact
        // serialized form; a None (parse failure) means a torn entry.
        let dir = tmp_dir("hammer");
        let cache = ReportCache::new(&dir).unwrap();
        let graph = rmat(10, 4, dvm_graph::RmatParams::default(), 3);
        let workload = Workload::Bfs { root: 0 };
        let report = run_graph_experiment(
            &workload,
            &graph,
            &ExperimentConfig::for_mmu(SchemeId::IDEAL),
        )
        .unwrap();
        let key = UnitKey {
            workload: &workload,
            dataset: Dataset::Flickr,
            divisor: 64,
            mmu: SchemeId::IDEAL,
        };
        let expected = report_json(&report).to_string();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        cache.store(&key, &report);
                        let loaded = cache.load(&key).expect("complete entry always loads");
                        assert_eq!(report_json(&loaded).to_string(), expected);
                    }
                });
            }
        });
        assert_eq!(cache.misses(), 0, "a torn entry was renamed into place");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_bounds_the_directory_and_evicts_lru_reports() {
        let dir = tmp_dir("budget");
        let graph = rmat(10, 4, dvm_graph::RmatParams::default(), 3);
        let workload = Workload::Bfs { root: 0 };
        let report = run_graph_experiment(
            &workload,
            &graph,
            &ExperimentConfig::for_mmu(SchemeId::IDEAL),
        )
        .unwrap();
        let key = |divisor| UnitKey {
            workload: &workload,
            dataset: Dataset::Flickr,
            divisor,
            mmu: SchemeId::IDEAL,
        };
        // Same report, same-length keys: every entry has the same size.
        let sizer = ReportCache::new(&dir).unwrap();
        sizer.store(&key(64), &report);
        let entry_bytes = std::fs::metadata(sizer.entry_path(&key(64))).unwrap().len();

        let cache = ReportCache::with_budget(&dir, Some(2 * entry_bytes)).unwrap();
        cache.store(&key(65), &report);
        cache.store(&key(66), &report);
        assert_eq!(cache.evictions(), 1, "third entry evicts the LRU one");
        assert!(cache.budget().used_bytes() <= 2 * entry_bytes);
        // The oldest key (64) was evicted; the recent two still hit.
        assert!(cache.load(&key(64)).is_none());
        assert!(cache.load(&key(65)).is_some());
        assert!(cache.load(&key(66)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_use_registry_names_not_positions() {
        // The on-disk identity must be the scheme's registered name so a
        // cache survives reordering/registration of schemes; an ordinal
        // (e.g. "SchemeId(4)") would silently alias entries across
        // registry layouts.
        let workload = Workload::Bfs { root: 0 };
        for mmu in SchemeId::all() {
            let key = UnitKey {
                workload: &workload,
                dataset: Dataset::Flickr,
                divisor: 64,
                mmu,
            };
            let text = ReportCache::key_string(&key);
            assert!(
                text.ends_with(&format!("|{}", mmu.name())),
                "key not name-based: {text}"
            );
            assert!(!text.contains("SchemeId"), "ordinal leaked into {text}");
        }
    }

    #[test]
    fn key_mismatch_degrades_to_miss() {
        let dir = tmp_dir("mismatch");
        let cache = ReportCache::new(&dir).unwrap();
        let graph = rmat(10, 4, dvm_graph::RmatParams::default(), 3);
        let workload = Workload::Bfs { root: 0 };
        let report = run_graph_experiment(
            &workload,
            &graph,
            &ExperimentConfig::for_mmu(SchemeId::IDEAL),
        )
        .unwrap();
        let key = UnitKey {
            workload: &workload,
            dataset: Dataset::Flickr,
            divisor: 64,
            mmu: SchemeId::IDEAL,
        };
        cache.store(&key, &report);
        // Same path contents, different expected key (divisor differs):
        // copy the entry onto the other key's path to force a collision.
        let other = UnitKey { divisor: 65, ..key };
        std::fs::copy(cache.entry_path(&key), cache.entry_path(&other)).unwrap();
        assert!(cache.load(&other).is_none(), "foreign entry must not load");
        // Distinct workload parameters key distinct entries.
        let rooted = Workload::Bfs { root: 7 };
        let rekeyed = UnitKey {
            workload: &rooted,
            ..key
        };
        assert_ne!(cache.entry_path(&key), cache.entry_path(&rekeyed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_reuses_cached_units_without_perturbing_results() {
        let dir = tmp_dir("sweep");
        let cache = ReportCache::new(&dir).unwrap();
        let spec = SweepSpec::for_pairs(
            [
                (Workload::Bfs { root: 0 }, Dataset::Flickr),
                (Workload::PageRank { iterations: 1 }, Dataset::Flickr),
            ],
            &[SchemeId::IDEAL, SchemeId::DVM_PE],
            |_| 1024,
        );
        let plain = SweepRunner::new(&spec).run().unwrap();
        let first = SweepRunner::new(&spec).report_store(&cache).run().unwrap();
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 4);
        let second = SweepRunner::new(&spec).report_store(&cache).run().unwrap();
        assert_eq!(cache.hits(), 4, "second sweep replays every unit");
        for (a, b) in plain.iter().zip(&second) {
            for (ra, rb) in a.reports.iter().zip(&b.reports) {
                assert_eq!(report_json(ra), report_json(rb));
            }
        }
        // A scheme the cache has not seen still simulates.
        let wider = SweepSpec::for_pairs(
            [(Workload::Bfs { root: 0 }, Dataset::Flickr)],
            &[SchemeId::IDEAL, SchemeId::DVM_BM],
            |_| 1024,
        );
        let mixed = SweepRunner::new(&wider).report_store(&cache).run().unwrap();
        assert_eq!(mixed[0].reports.len(), 2);
        assert_eq!(cache.hits(), 5);
        assert_eq!(cache.misses(), 5);
        drop(first);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
