//! Table 5: the paper reports lines of code changed in Linux v4.10 per
//! affected feature. Our reproduction implements the whole OS substrate
//! from scratch, so the analogous accounting is the size of each module
//! implementing those features; this binary counts them from the source
//! tree and prints both side by side.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin table5 [--json PATH]
//! ```

use dvm_bench::{run_grid, BenchArgs, FigureJson, Json};
use dvm_sim::Table;
use std::path::Path;

/// Count non-blank, non-comment-only lines in a source file.
fn loc(path: &Path) -> u64 {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count() as u64
}

fn main() {
    let args = BenchArgs::parse();
    args.reject_schemes("table5");
    args.reject_lanes("table5");
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let crates = manifest.parent().expect("crates dir");
    args.banner("Table 5: implementation size per affected feature\n");
    args.banner("(The paper patched Linux; we built the substrate from scratch, so");
    args.banner("our column is the size of the module implementing each feature.)\n");

    let rows: &[(&str, u64, &[&str])] = &[
        (
            "Heap / memory-mapped segments (identity mapping, Fig. 7)",
            56 + 1,
            &["os/src/os.rs"],
        ),
        (
            "Address-space layout (flexible VMAs, ASLR)",
            39 + 63, // paper: code segment + stack segment
            &["os/src/process.rs"],
        ),
        (
            "Page tables (Permission Entries)",
            78,
            &["pagetable/src/entry.rs", "pagetable/src/table.rs"],
        ),
        (
            "User allocator (glibc malloc via mmap)",
            0, // the paper counts only kernel lines
            &["os/src/malloc.rs"],
        ),
        (
            "Miscellaneous (bitmap DAV support, fragmentation stress)",
            15,
            &["pagetable/src/bitmap.rs", "os/src/shbench.rs"],
        ),
    ];
    let labels: Vec<String> = rows
        .iter()
        .map(|(feature, _, _)| feature.to_string())
        .collect();
    let ours_counts: Vec<u64> = run_grid(&args, "table5", &labels, |i| {
        rows[i].2.iter().map(|f| loc(&crates.join(f))).sum::<u64>()
    });

    let mut table = Table::new(&["feature", "paper (Linux LoC)", "this repo (Rust LoC)"]);
    let mut fig = FigureJson::new(
        "table5",
        args.scale.name(),
        &["paper (Linux LoC)", "this repo (Rust LoC)"],
    );
    let mut paper_total = 0u64;
    let mut ours_total = 0u64;
    for ((feature, paper_loc, _), &ours) in rows.iter().zip(&ours_counts) {
        paper_total += paper_loc;
        ours_total += ours;
        table.row(&[
            (*feature).into(),
            if *paper_loc == 0 {
                "(userspace)".into()
            } else {
                paper_loc.to_string()
            },
            ours.to_string(),
        ]);
        fig.row(feature, vec![Json::UInt(*paper_loc), Json::UInt(ours)]);
    }
    table.row(&[
        "total".into(),
        paper_total.to_string(),
        ours_total.to_string(),
    ]);
    fig.summary(
        "total",
        Json::Arr(vec![Json::UInt(paper_total), Json::UInt(ours_total)]),
    );
    args.emit_json(&fig);
    println!("{table}");
    println!("paper total: 252 lines changed in Linux v4.10 (Table 5).");
}
