//! Figure 2: TLB miss rates for the graph workloads with a 128-entry
//! fully associative TLB, 4 KiB vs 2 MiB pages.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig2 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```

use dvm_bench::{pair_label, run_sharded_sweep, BenchArgs, FigureJson, Json};
use dvm_core::{MmuConfig, PageSize};
use dvm_sim::Table;

fn main() {
    let args = BenchArgs::parse();
    args.banner(&format!(
        "Figure 2: TLB miss rates (128-entry FA TLB), scale = {}\n",
        args.scale.name()
    ));
    let schemes = [
        MmuConfig::Conventional {
            page_size: PageSize::Size4K,
        },
        MmuConfig::Conventional {
            page_size: PageSize::Size2M,
        },
    ];
    let cells = run_sharded_sweep(&args, "fig2", &schemes);

    let mut table = Table::new(&["workload/graph", "4K pages", "2M pages"]);
    let mut fig = FigureJson::new("fig2", args.scale.name(), &["4K pages", "2M pages"]);
    let mut sums = [0.0f64; 2];
    for cell in &cells {
        let rates: Vec<f64> = schemes
            .iter()
            .map(|&mmu| {
                cell.report_for(mmu)
                    .expect("scheme ran")
                    .tlb_miss_rate()
                    .expect("conventional has a TLB")
            })
            .collect();
        sums[0] += rates[0];
        sums[1] += rates[1];
        let label = pair_label(&cell.workload, cell.dataset);
        table.row(&[
            label.clone(),
            format!("{:.1}%", rates[0] * 100.0),
            format!("{:.1}%", rates[1] * 100.0),
        ]);
        fig.row_with_reports(
            &label,
            rates.iter().map(|&r| Json::Float(r)).collect(),
            &cell.reports,
        );
    }
    if !cells.is_empty() {
        let n = cells.len() as f64;
        table.row(&[
            "average".into(),
            format!("{:.1}%", sums[0] / n * 100.0),
            format!("{:.1}%", sums[1] / n * 100.0),
        ]);
        fig.summary(
            "average",
            Json::Arr(sums.iter().map(|&s| Json::Float(s / n)).collect()),
        );
    }
    args.emit_json(&fig);
    println!("{table}");
    println!("paper: ~21% average with 4K pages; 2M improves by only ~1% on");
    println!("average, except NF whose small movie side gives 2M high locality.");
}
