//! Figure 2: TLB miss rates for the graph workloads with a 128-entry
//! fully associative TLB, 4 KiB vs 2 MiB pages.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig2 [--scale quick|paper|full]
//! ```

use dvm_bench::{pair_label, paper_pairs, HarnessArgs};
use dvm_core::{run_graph_experiment, ExperimentConfig, MmuConfig, PageSize};
use dvm_sim::Table;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 2: TLB miss rates (128-entry FA TLB), scale = {}\n",
        args.scale.name()
    );
    let mut table = Table::new(&["workload/graph", "4K pages", "2M pages"]);
    let mut sums = [0.0f64; 2];
    let mut count = 0u32;
    for (workload, dataset) in paper_pairs() {
        if !args.wants(dataset) {
            continue;
        }
        let graph = dataset.generate(args.scale.divisor(dataset));
        let mut rates = Vec::new();
        for page_size in [PageSize::Size4K, PageSize::Size2M] {
            let report = run_graph_experiment(
                &workload,
                &graph,
                &ExperimentConfig::for_mmu(MmuConfig::Conventional { page_size }),
            )
            .expect("experiment failed");
            rates.push(report.tlb_miss_rate().expect("conventional has a TLB"));
        }
        sums[0] += rates[0];
        sums[1] += rates[1];
        count += 1;
        table.row(&[
            pair_label(&workload, dataset),
            format!("{:.1}%", rates[0] * 100.0),
            format!("{:.1}%", rates[1] * 100.0),
        ]);
    }
    if count > 0 {
        table.row(&[
            "average".into(),
            format!("{:.1}%", sums[0] / count as f64 * 100.0),
            format!("{:.1}%", sums[1] / count as f64 * 100.0),
        ]);
    }
    println!("{table}");
    println!("paper: ~21% average with 4K pages; 2M improves by only ~1% on");
    println!("average, except NF whose small movie side gives 2M high locality.");
}
