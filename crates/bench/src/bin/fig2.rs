//! Figure 2: TLB miss rates for the graph workloads with a 128-entry
//! fully associative TLB, 4 KiB vs 2 MiB pages.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig2 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```

use dvm_bench::{pair_label, run_sharded_sweep, BenchArgs, FigureJson, Json};
use dvm_core::SchemeId;
use dvm_sim::Table;

fn main() {
    let args = BenchArgs::parse();
    args.banner(&format!(
        "Figure 2: TLB miss rates (128-entry FA TLB), scale = {}\n",
        args.scale.name()
    ));
    let schemes = args.iommu_schemes(&[SchemeId::CONV_4K, SchemeId::CONV_2M]);
    // The figure's historical column labels for the default pair; a
    // --schemes selection uses registry names (schemes without a TLB
    // report a 0.0 miss rate).
    let names: Vec<String> = if args.schemes.is_none() {
        vec!["4K pages".to_string(), "2M pages".to_string()]
    } else {
        schemes.iter().map(|c| c.name().to_string()).collect()
    };
    let cells = run_sharded_sweep(&args, "fig2", &schemes);

    let mut header = vec!["workload/graph".to_string()];
    header.extend(names.iter().cloned());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut fig = FigureJson::new("fig2", args.scale.name(), &name_refs);
    let mut sums = vec![0.0f64; schemes.len()];
    for cell in &cells {
        let rates: Vec<f64> = schemes
            .iter()
            .map(|&mmu| {
                cell.report_for(mmu)
                    .expect("scheme ran")
                    .tlb_miss_rate()
                    .unwrap_or(0.0)
            })
            .collect();
        for (sum, rate) in sums.iter_mut().zip(&rates) {
            *sum += rate;
        }
        let label = pair_label(&cell.workload, cell.dataset);
        let mut row = vec![label.clone()];
        row.extend(rates.iter().map(|r| format!("{:.1}%", r * 100.0)));
        table.row(&row);
        fig.row_with_reports(
            &label,
            rates.iter().map(|&r| Json::Float(r)).collect(),
            &cell.reports,
        );
    }
    if !cells.is_empty() {
        let n = cells.len() as f64;
        let mut avg_row = vec!["average".to_string()];
        avg_row.extend(sums.iter().map(|s| format!("{:.1}%", s / n * 100.0)));
        table.row(&avg_row);
        fig.summary(
            "average",
            Json::Arr(sums.iter().map(|&s| Json::Float(s / n)).collect()),
        );
    }
    args.emit_json(&fig);
    println!("{table}");
    println!("paper: ~21% average with 4K pages; 2M improves by only ~1% on");
    println!("average, except NF whose small movie side gives 2M high locality.");
}
