//! Extension (paper §5 "Virtual Machines"): nested translation cost under
//! conventional 2D paging vs the three DVM deployments. Not a numbered
//! figure in the paper — it quantifies the discussion's claim that DVM
//! "converts the two-dimensional page walk to a one-dimensional walk" and
//! can eliminate it entirely.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin virt [--jobs N] [--shards N] [--json PATH]
//! ```

use dvm_bench::{run_grid, BenchArgs, FigureJson, Json};
use dvm_mem::{BuddyAllocator, Dram, DramConfig, PhysMem};
use dvm_mmu::{NestedScheme, NestedWalker};
use dvm_pagetable::PageTable;
use dvm_sim::{DetRng, Table};
use dvm_types::{PageSize, Permission, VirtAddr};

/// Per-scheme measurement: (entry reads, mem refs, stall) per translation.
fn measure(scheme: NestedScheme, span: u64, base: VirtAddr, translations: u64) -> [f64; 3] {
    let mut mem = PhysMem::new(1 << 20); // 4 GiB
    let mut alloc = BuddyAllocator::new(1 << 20);
    let guest_identity = matches!(scheme, NestedScheme::GuestDvm | NestedScheme::FullDvm);
    let host_identity = matches!(scheme, NestedScheme::HostDvm | NestedScheme::FullDvm);

    let mut guest_pt = PageTable::new(&mut mem, &mut alloc).unwrap();
    if guest_identity {
        guest_pt
            .map_identity_pe(&mut mem, &mut alloc, base, span, Permission::ReadWrite)
            .unwrap();
    } else {
        guest_pt
            .map_identity_leaves(
                &mut mem,
                &mut alloc,
                base,
                span,
                Permission::ReadWrite,
                PageSize::Size4K,
            )
            .unwrap();
    }
    let mut host_pt = PageTable::new(&mut mem, &mut alloc).unwrap();
    // Host maps low memory (where guest tables live) and guest RAM.
    host_pt
        .map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(0),
            512 << 20,
            Permission::ReadWrite,
        )
        .unwrap();
    if host_identity {
        host_pt
            .map_identity_pe(&mut mem, &mut alloc, base, span, Permission::ReadWrite)
            .unwrap();
    } else {
        host_pt
            .map_identity_leaves(
                &mut mem,
                &mut alloc,
                base,
                span,
                Permission::ReadWrite,
                PageSize::Size2M,
            )
            .unwrap();
    }

    let mut dram = Dram::new(DramConfig::default());
    let mut walker = NestedWalker::new(scheme);
    let mut rng = DetRng::new(11);
    let mut stall_total = 0u64;
    for _ in 0..translations {
        let gva = base + (rng.below(span / 64) * 64);
        let t = walker
            .translate(gva, &guest_pt, &host_pt, &mem, &mut dram)
            .expect("mapped");
        stall_total += t.stall;
    }
    let n = walker.stats.translations.get() as f64;
    [
        walker.stats.entry_reads.get() as f64 / n,
        walker.stats.mem_refs.get() as f64 / n,
        stall_total as f64 / n,
    ]
}

fn main() {
    let args = BenchArgs::parse();
    args.reject_lanes("virt");
    let span: u64 = 256 << 20;
    let base = VirtAddr::new(1 << 30);
    let translations = 200_000u64;
    args.banner(&format!(
        "Nested translation (guest heap {} MiB, {} random translations)\n",
        span >> 20,
        translations
    ));

    // --schemes filters this binary's own nested-scheme rows by name.
    let schemes = args.scheme_columns(&NestedScheme::ALL, |s| s.name());
    // Each scheme builds its own memory, page tables and walker; the
    // measurements run on the sharded grid runner.
    let labels: Vec<String> = schemes.iter().map(|s| s.name().to_string()).collect();
    let results: Vec<[f64; 3]> = run_grid(&args, "virt", &labels, |i| {
        measure(schemes[i], span, base, translations)
    });

    let columns = [
        "entry reads/translation",
        "mem refs/translation",
        "avg stall (cycles)",
    ];
    let mut table = Table::new(&std::iter::once("scheme").chain(columns).collect::<Vec<_>>());
    let mut fig = FigureJson::new("virt", args.scale.name(), &columns);
    for (scheme, metrics) in schemes.iter().zip(&results) {
        table.row(&[
            scheme.name().into(),
            format!("{:.2}", metrics[0]),
            format!("{:.3}", metrics[1]),
            format!("{:.2}", metrics[2]),
        ]);
        fig.row(
            scheme.name(),
            metrics.iter().map(|&m| Json::Float(m)).collect(),
        );
    }
    args.emit_json(&fig);
    println!("{table}");
    println!("paper §5: 2D nested walks need up to 24 entry reads; DVM at either");
    println!("level makes the walk one-dimensional, and at both levels removes");
    println!("translation from most accesses entirely.");
}
