//! Figure 9: dynamic energy spent in address translation / access
//! validation, normalized to the 4K TLB+PWC baseline.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig9 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```

use dvm_bench::{geomean, pair_label, run_sharded_sweep, BenchArgs, FigureJson, Json};
use dvm_core::SchemeId;
use dvm_sim::Table;

fn main() {
    let args = BenchArgs::parse();
    args.banner(&format!(
        "Figure 9: dynamic MM energy normalized to 4K,TLB+PWC, scale = {}\n",
        args.scale.name()
    ));
    let baseline = SchemeId::CONV_4K;
    let selected = args.iommu_schemes(&SchemeId::PAPER_SET);
    // The figure shows 2M, 1G, DVM-BM, DVM-PE, DVM-PE+ relative to 4K
    // (Ideal spends nothing and is omitted); the 4K baseline is always
    // swept even when filtered out of the columns.
    let shown: Vec<SchemeId> = selected
        .iter()
        .copied()
        .filter(|&c| c != baseline && c != SchemeId::IDEAL)
        .collect();
    let mut sweep = selected;
    if !sweep.contains(&baseline) {
        sweep.push(baseline);
    }
    let names: Vec<&str> = shown.iter().map(|c| c.name()).collect();
    let mut header = vec!["workload/graph"];
    header.extend(&names);
    let mut table = Table::new(&header);
    let mut fig = FigureJson::new("fig9", args.scale.name(), &names);
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); shown.len()];

    for cell in &run_sharded_sweep(&args, "fig9", &sweep) {
        let base = cell
            .report_for(baseline)
            .expect("sweep includes 4K")
            .mm_energy_pj
            .max(1e-9);
        let label = pair_label(&cell.workload, cell.dataset);
        let mut row = vec![label.clone()];
        let mut values = Vec::new();
        for (i, &mmu) in shown.iter().enumerate() {
            let report = cell.report_for(mmu).expect("scheme ran");
            let normalized = report.mm_energy_pj / base;
            per_config[i].push(normalized);
            row.push(format!("{normalized:.3}"));
            values.push(Json::Float(normalized));
        }
        table.row(&row);
        fig.row_with_reports(&label, values, &cell.reports);
    }
    let mut avg_row = vec!["geomean".to_string()];
    for values in &per_config {
        avg_row.push(format!("{:.3}", geomean(values)));
    }
    table.row(&avg_row);
    fig.summary(
        "geomean",
        Json::Arr(per_config.iter().map(|v| Json::Float(geomean(v))).collect()),
    );
    args.emit_json(&fig);
    println!("{table}");
    println!("paper: DVM-PE uses ~0.24x the 4K baseline's dynamic energy");
    println!("(3.9x less than 2M); DVM-BM ~0.85x; 1G low due to few misses.");
}
