//! Figure 9: dynamic energy spent in address translation / access
//! validation, normalized to the 4K TLB+PWC baseline.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig9 [--scale quick|paper|full]
//! ```

use dvm_bench::{geomean, pair_label, paper_pairs, HarnessArgs};
use dvm_core::run_paper_configs;
use dvm_sim::Table;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 9: dynamic MM energy normalized to 4K,TLB+PWC, scale = {}\n",
        args.scale.name()
    );
    // The figure shows 2M, 1G, DVM-BM, DVM-PE, DVM-PE+ relative to 4K.
    let mut table = Table::new(&[
        "workload/graph",
        "2M,TLB+PWC",
        "1G,TLB+PWC",
        "DVM-BM",
        "DVM-PE",
        "DVM-PE+",
    ]);
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for (workload, dataset) in paper_pairs() {
        if !args.wants(dataset) {
            continue;
        }
        let graph = dataset.generate(args.scale.divisor(dataset));
        let reports = run_paper_configs(&workload, &graph).expect("experiment failed");
        let baseline = reports[0].mm_energy_pj.max(1e-9);
        let mut row = vec![pair_label(&workload, dataset)];
        for (i, report) in reports.iter().skip(1).take(5).enumerate() {
            let normalized = report.mm_energy_pj / baseline;
            per_config[i].push(normalized);
            row.push(format!("{normalized:.3}"));
        }
        table.row(&row);
        eprint!(".");
    }
    eprintln!();
    let mut avg_row = vec!["geomean".to_string()];
    for values in &per_config {
        avg_row.push(format!("{:.3}", geomean(values)));
    }
    table.row(&avg_row);
    println!("{table}");
    println!("paper: DVM-PE uses ~0.24x the 4K baseline's dynamic energy");
    println!("(3.9x less than 2M); DVM-BM ~0.85x; 1G low due to few misses.");
}
