//! Figure 10: VM overheads of CPU-only workloads (runtime normalized to
//! the ideal, translation-free case) under 4K pages, transparent huge
//! pages, and cDVM.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig10 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```

use dvm_bench::{run_grid, BenchArgs, FigureJson, Json, Scale};
use dvm_core::{evaluate_cpu, CpuModelConfig, CpuScheme, CpuWorkload};
use dvm_sim::Table;

fn main() {
    let args = BenchArgs::parse();
    args.reject_lanes("fig10");
    let config = CpuModelConfig {
        accesses: match args.scale {
            Scale::Smoke => 100_000,
            Scale::Quick => 500_000,
            _ => 2_000_000,
        },
        ..CpuModelConfig::default()
    };
    args.banner(&format!(
        "Figure 10: CPU VM overheads vs ideal, scale = {} ({} accesses/run)\n",
        args.scale.name(),
        config.accesses
    ));
    // --schemes filters this binary's own CPU-scheme columns by name.
    let schemes = args.scheme_columns(&CpuScheme::ALL, |s| s.name());
    // The (workload × scheme) grid is shared-nothing, so it runs on the
    // sharded grid runner like every other harness.
    let units: Vec<(CpuWorkload, CpuScheme)> = CpuWorkload::ALL
        .iter()
        .flat_map(|&w| schemes.iter().map(move |&s| (w, s)))
        .collect();
    let labels: Vec<String> = units
        .iter()
        .map(|(w, s)| format!("{}/{}", w.name(), s.name()))
        .collect();
    let overheads: Vec<f64> = run_grid(&args, "fig10", &labels, |i| {
        let (workload, scheme) = units[i];
        evaluate_cpu(workload, scheme, &config)
            .expect("cpu model failed")
            .overhead_percent()
    });

    let names: Vec<&str> = schemes.iter().map(|s| s.name()).collect();
    let mut header = vec!["workload"];
    header.extend(&names);
    let mut table = Table::new(&header);
    let mut fig = FigureJson::new("fig10", args.scale.name(), &names);
    let mut sums = vec![0.0f64; schemes.len()];
    for (w, workload) in CpuWorkload::ALL.iter().enumerate() {
        let mut row = vec![workload.name().to_string()];
        let mut values = Vec::new();
        for s in 0..schemes.len() {
            let overhead = overheads[w * schemes.len() + s];
            sums[s] += overhead;
            row.push(format!("{overhead:.1}%"));
            values.push(Json::Float(overhead));
        }
        table.row(&row);
        fig.row(workload.name(), values);
    }
    let n = CpuWorkload::ALL.len() as f64;
    let mut avg_row = vec!["average".to_string()];
    avg_row.extend(sums.iter().map(|s| format!("{:.1}%", s / n)));
    table.row(&avg_row);
    fig.summary(
        "average",
        Json::Arr(sums.iter().map(|&s| Json::Float(s / n)).collect()),
    );
    args.emit_json(&fig);
    println!("{table}");
    println!("paper: ~29% average with 4K (mcf 84%), ~13% with THP, ~5% with cDVM.");
}
