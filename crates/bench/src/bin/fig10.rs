//! Figure 10: VM overheads of CPU-only workloads (runtime normalized to
//! the ideal, translation-free case) under 4K pages, transparent huge
//! pages, and cDVM.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig10 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```

use dvm_bench::{run_grid, BenchArgs, FigureJson, Json, Scale};
use dvm_core::{evaluate_cpu, CpuModelConfig, CpuScheme, CpuWorkload};
use dvm_sim::Table;

fn main() {
    let args = BenchArgs::parse();
    let config = CpuModelConfig {
        accesses: match args.scale {
            Scale::Smoke => 100_000,
            Scale::Quick => 500_000,
            _ => 2_000_000,
        },
        ..CpuModelConfig::default()
    };
    args.banner(&format!(
        "Figure 10: CPU VM overheads vs ideal, scale = {} ({} accesses/run)\n",
        args.scale.name(),
        config.accesses
    ));
    // The (workload × scheme) grid is shared-nothing, so it runs on the
    // sharded grid runner like every other harness.
    let units: Vec<(CpuWorkload, CpuScheme)> = CpuWorkload::ALL
        .iter()
        .flat_map(|&w| CpuScheme::ALL.iter().map(move |&s| (w, s)))
        .collect();
    let labels: Vec<String> = units
        .iter()
        .map(|(w, s)| format!("{}/{}", w.name(), s.name()))
        .collect();
    let overheads: Vec<f64> = run_grid(&args, "fig10", &labels, |i| {
        let (workload, scheme) = units[i];
        evaluate_cpu(workload, scheme, &config)
            .expect("cpu model failed")
            .overhead_percent()
    });

    let mut table = Table::new(&["workload", "4K", "THP", "cDVM"]);
    let mut fig = FigureJson::new("fig10", args.scale.name(), &["4K", "THP", "cDVM"]);
    let mut sums = [0.0f64; 3];
    for (w, workload) in CpuWorkload::ALL.iter().enumerate() {
        let mut row = vec![workload.name().to_string()];
        let mut values = Vec::new();
        for s in 0..CpuScheme::ALL.len() {
            let overhead = overheads[w * CpuScheme::ALL.len() + s];
            sums[s] += overhead;
            row.push(format!("{overhead:.1}%"));
            values.push(Json::Float(overhead));
        }
        table.row(&row);
        fig.row(workload.name(), values);
    }
    let n = CpuWorkload::ALL.len() as f64;
    table.row(&[
        "average".into(),
        format!("{:.1}%", sums[0] / n),
        format!("{:.1}%", sums[1] / n),
        format!("{:.1}%", sums[2] / n),
    ]);
    fig.summary(
        "average",
        Json::Arr(sums.iter().map(|&s| Json::Float(s / n)).collect()),
    );
    args.emit_json(&fig);
    println!("{table}");
    println!("paper: ~29% average with 4K (mcf 84%), ~13% with THP, ~5% with cDVM.");
}
