//! Figure 10: VM overheads of CPU-only workloads (runtime normalized to
//! the ideal, translation-free case) under 4K pages, transparent huge
//! pages, and cDVM.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig10 [--scale quick|paper|full]
//! ```

use dvm_bench::{HarnessArgs, Scale};
use dvm_core::{evaluate_cpu, CpuModelConfig, CpuScheme, CpuWorkload};
use dvm_sim::Table;

fn main() {
    let args = HarnessArgs::parse();
    let config = CpuModelConfig {
        accesses: match args.scale {
            Scale::Quick => 500_000,
            _ => 2_000_000,
        },
        ..CpuModelConfig::default()
    };
    println!(
        "Figure 10: CPU VM overheads vs ideal, scale = {} ({} accesses/run)\n",
        args.scale.name(),
        config.accesses
    );
    let mut table = Table::new(&["workload", "4K", "THP", "cDVM"]);
    let mut sums = [0.0f64; 3];
    for workload in CpuWorkload::ALL {
        let mut row = vec![workload.name().to_string()];
        for (i, scheme) in CpuScheme::ALL.iter().enumerate() {
            let report = evaluate_cpu(workload, *scheme, &config).expect("cpu model failed");
            sums[i] += report.overhead_percent();
            row.push(format!("{:.1}%", report.overhead_percent()));
        }
        table.row(&row);
        eprint!(".");
    }
    eprintln!();
    let n = CpuWorkload::ALL.len() as f64;
    table.row(&[
        "average".into(),
        format!("{:.1}%", sums[0] / n),
        format!("{:.1}%", sums[1] / n),
        format!("{:.1}%", sums[2] / n),
    ]);
    println!("{table}");
    println!("paper: ~29% average with 4K (mcf 84%), ~13% with THP, ~5% with cDVM.");
}
