//! Figure 8: accelerator execution time under each memory-management
//! scheme, normalized to the Ideal (direct physical access) run.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig8 [--scale quick|paper|full]
//! ```

use dvm_bench::{geomean, pair_label, paper_pairs, HarnessArgs};
use dvm_core::{run_paper_configs, MmuConfig};
use dvm_sim::Table;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Figure 8: execution time normalized to Ideal, scale = {}\n",
        args.scale.name()
    );
    let names: Vec<&str> = MmuConfig::PAPER_SET.iter().map(|c| c.name()).collect();
    let mut header = vec!["workload/graph"];
    header.extend(names.iter().take(6)); // Ideal (==1.0) omitted as in the figure
    let mut table = Table::new(&header);
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); 6];

    for (workload, dataset) in paper_pairs() {
        if !args.wants(dataset) {
            continue;
        }
        let graph = dataset.generate(args.scale.divisor(dataset));
        let reports = run_paper_configs(&workload, &graph).expect("experiment failed");
        let ideal = reports[6].cycles.max(1) as f64;
        let mut row = vec![pair_label(&workload, dataset)];
        for (i, report) in reports.iter().take(6).enumerate() {
            let normalized = report.cycles as f64 / ideal;
            per_config[i].push(normalized);
            row.push(format!("{normalized:.3}"));
        }
        table.row(&row);
        eprint!(".");
    }
    eprintln!();
    let mut avg_row = vec!["geomean".to_string()];
    for values in &per_config {
        avg_row.push(format!("{:.3}", geomean(values)));
    }
    table.row(&avg_row);
    println!("{table}");
    println!("paper: 4K/2M ~2.2x/2.1x, DVM-BM ~1.23x, DVM-PE ~1.035x,");
    println!("DVM-PE+ ~1.017x, 1G near-ideal for these footprints.");
}
