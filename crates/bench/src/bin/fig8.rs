//! Figure 8: accelerator execution time under each memory-management
//! scheme, normalized to the Ideal (direct physical access) run.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig8 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```

use dvm_bench::{geomean, pair_label, run_sharded_sweep, BenchArgs, FigureJson, Json};
use dvm_core::MmuConfig;
use dvm_sim::Table;

fn main() {
    let args = BenchArgs::parse();
    args.banner(&format!(
        "Figure 8: execution time normalized to Ideal, scale = {}\n",
        args.scale.name()
    ));
    // Ideal (== 1.0 by construction) is omitted as in the figure.
    let shown: Vec<MmuConfig> = MmuConfig::PAPER_SET
        .iter()
        .copied()
        .filter(|&c| c != MmuConfig::Ideal)
        .collect();
    let names: Vec<&str> = shown.iter().map(|c| c.name()).collect();
    let mut header = vec!["workload/graph"];
    header.extend(&names);
    let mut table = Table::new(&header);
    let mut fig = FigureJson::new("fig8", args.scale.name(), &names);
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); shown.len()];

    for cell in &run_sharded_sweep(&args, "fig8", &MmuConfig::PAPER_SET) {
        let ideal = cell
            .report_for(MmuConfig::Ideal)
            .expect("paper set includes Ideal")
            .cycles
            .max(1) as f64;
        let label = pair_label(&cell.workload, cell.dataset);
        let mut row = vec![label.clone()];
        let mut values = Vec::new();
        for (i, &mmu) in shown.iter().enumerate() {
            let report = cell.report_for(mmu).expect("scheme ran");
            let normalized = report.cycles as f64 / ideal;
            per_config[i].push(normalized);
            row.push(format!("{normalized:.3}"));
            values.push(Json::Float(normalized));
        }
        table.row(&row);
        fig.row_with_reports(&label, values, &cell.reports);
    }
    let mut avg_row = vec!["geomean".to_string()];
    for values in &per_config {
        avg_row.push(format!("{:.3}", geomean(values)));
    }
    table.row(&avg_row);
    fig.summary(
        "geomean",
        Json::Arr(per_config.iter().map(|v| Json::Float(geomean(v))).collect()),
    );
    args.emit_json(&fig);
    println!("{table}");
    println!("paper: 4K/2M ~2.2x/2.1x, DVM-BM ~1.23x, DVM-PE ~1.035x,");
    println!("DVM-PE+ ~1.017x, 1G near-ideal for these footprints.");
}
