//! Table 1: page-table sizes for PageRank and CF, with and without
//! Permission Entries.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin table1 [--scale quick|paper|full]
//! ```

use dvm_bench::HarnessArgs;
use dvm_core::{page_table_study, Dataset, Workload};
use dvm_sim::Table;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Table 1: page-table sizes (PageRank for graph inputs, CF for bipartite), scale = {}\n",
        args.scale.name()
    );
    let mut table = Table::new(&[
        "input",
        "heap (MB)",
        "page tables (KB)",
        "% L1PTEs",
        "with PEs (KB)",
        "reduction",
    ]);
    for dataset in Dataset::ALL {
        if !args.wants(dataset) {
            continue;
        }
        let workload = if dataset.is_bipartite() {
            Workload::Cf {
                iterations: 1,
                features: 8,
            }
        } else {
            Workload::PageRank { iterations: 1 }
        };
        let graph = dataset.generate(args.scale.divisor(dataset));
        let study = page_table_study(&graph, &workload).expect("study failed");
        table.row(&[
            dataset.short_name().into(),
            format!("{}", study.heap_bytes >> 20),
            format!("{}", study.conventional_kb()),
            format!("{:.1}%", study.l1_fraction() * 100.0),
            format!("{}", study.pe_kb()),
            format!(
                "{:.0}x",
                study.conventional_kb() as f64 / study.pe_kb().max(1) as f64
            ),
        ]);
        eprint!(".");
    }
    eprintln!();
    println!("{table}");
    println!("paper: 616-13340 KB conventional, ~98-99% L1PTEs, 48-68 KB with PEs.");
}
