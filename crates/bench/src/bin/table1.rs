//! Table 1: page-table sizes for PageRank and CF, with and without
//! Permission Entries.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin table1 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```

use dvm_bench::{run_grid, BenchArgs, FigureJson, Json};
use dvm_core::{page_table_study, Dataset, PageTableStudy, Workload};
use dvm_sim::Table;

fn main() {
    let args = BenchArgs::parse();
    args.reject_schemes("table1");
    args.reject_lanes("table1");
    args.banner(&format!(
        "Table 1: page-table sizes (PageRank for graph inputs, CF for bipartite), scale = {}\n",
        args.scale.name()
    ));
    let datasets: Vec<Dataset> = Dataset::ALL
        .into_iter()
        .filter(|&d| args.wants(d))
        .collect();
    let labels: Vec<String> = datasets
        .iter()
        .map(|d| d.short_name().to_string())
        .collect();
    let studies: Vec<PageTableStudy> = run_grid(&args, "table1", &labels, |i| {
        let dataset = datasets[i];
        let workload = if dataset.is_bipartite() {
            Workload::Cf {
                iterations: 1,
                features: 8,
            }
        } else {
            Workload::PageRank { iterations: 1 }
        };
        let graph = args.generate_graph(dataset);
        page_table_study(&graph, &workload).expect("study failed")
    });

    let columns = [
        "heap (MB)",
        "page tables (KB)",
        "% L1PTEs",
        "with PEs (KB)",
        "reduction",
    ];
    let mut table = Table::new(&std::iter::once("input").chain(columns).collect::<Vec<_>>());
    let mut fig = FigureJson::new("table1", args.scale.name(), &columns);
    for (dataset, study) in datasets.iter().zip(&studies) {
        let reduction = study.conventional_kb() as f64 / study.pe_kb().max(1) as f64;
        table.row(&[
            dataset.short_name().into(),
            format!("{}", study.heap_bytes >> 20),
            format!("{}", study.conventional_kb()),
            format!("{:.1}%", study.l1_fraction() * 100.0),
            format!("{}", study.pe_kb()),
            format!("{reduction:.0}x"),
        ]);
        fig.row(
            dataset.short_name(),
            vec![
                Json::UInt(study.heap_bytes >> 20),
                Json::UInt(study.conventional_kb()),
                Json::Float(study.l1_fraction()),
                Json::UInt(study.pe_kb()),
                Json::Float(reduction),
            ],
        );
    }
    args.emit_json(&fig);
    println!("{table}");
    println!("paper: 616-13340 KB conventional, ~98-99% L1PTEs, 48-68 KB with PEs.");
}
