//! Table 3: the evaluation datasets — published properties and the
//! synthetic stand-ins generated at the selected scale.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin table3 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```

use dvm_bench::{run_grid, BenchArgs, FigureJson, Json};
use dvm_core::Dataset;
use dvm_sim::Table;

fn main() {
    let args = BenchArgs::parse();
    args.reject_schemes("table3");
    args.reject_lanes("table3");
    args.banner(&format!(
        "Table 3: graph datasets (published vs generated stand-ins), scale = {}\n",
        args.scale.name()
    ));
    let datasets: Vec<Dataset> = Dataset::ALL
        .into_iter()
        .filter(|&d| args.wants(d))
        .collect();
    let labels: Vec<String> = datasets
        .iter()
        .map(|d| d.short_name().to_string())
        .collect();
    // Generation is the entire cost of this table; fan it out.
    let generated: Vec<[u64; 3]> = run_grid(&args, "table3", &labels, |i| {
        let graph = args.generate_graph(datasets[i]);
        [
            u64::from(graph.num_vertices()),
            graph.num_edges(),
            graph.footprint_bytes(),
        ]
    });

    let columns = [
        "paper |V|",
        "paper |E|",
        "paper heap",
        "gen div",
        "gen |V|",
        "gen |E|",
        "gen heap (MB)",
    ];
    let mut table = Table::new(&std::iter::once("graph").chain(columns).collect::<Vec<_>>());
    let mut fig = FigureJson::new("table3", args.scale.name(), &columns);
    for (dataset, &[vertices, edges, footprint]) in datasets.iter().zip(&generated) {
        let spec = dataset.spec();
        let div = args.scale.divisor(*dataset);
        table.row(&[
            dataset.short_name().into(),
            format!("{:.2}M", spec.vertices as f64 / 1e6),
            format!("{:.2}M", spec.edges as f64 / 1e6),
            format!("{:.2} GB", spec.heap_mib as f64 / 1024.0),
            format!("1/{div}"),
            format!("{:.2}M", vertices as f64 / 1e6),
            format!("{:.2}M", edges as f64 / 1e6),
            format!("{}", footprint >> 20),
        ]);
        fig.row(
            dataset.short_name(),
            vec![
                Json::UInt(spec.vertices),
                Json::UInt(spec.edges),
                Json::UInt(spec.heap_mib),
                Json::UInt(u64::from(div)),
                Json::UInt(vertices),
                Json::UInt(edges),
                Json::UInt(footprint),
            ],
        );
    }
    args.emit_json(&fig);
    println!("{table}");
}
