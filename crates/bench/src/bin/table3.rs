//! Table 3: the evaluation datasets — published properties and the
//! synthetic stand-ins generated at the selected scale.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin table3 [--scale quick|paper|full]
//! ```

use dvm_bench::HarnessArgs;
use dvm_core::Dataset;
use dvm_sim::Table;

fn main() {
    let args = HarnessArgs::parse();
    println!(
        "Table 3: graph datasets (published vs generated stand-ins), scale = {}\n",
        args.scale.name()
    );
    let mut table = Table::new(&[
        "graph",
        "paper |V|",
        "paper |E|",
        "paper heap",
        "gen div",
        "gen |V|",
        "gen |E|",
        "gen heap (MB)",
    ]);
    for dataset in Dataset::ALL {
        if !args.wants(dataset) {
            continue;
        }
        let spec = dataset.spec();
        let div = args.scale.divisor(dataset);
        let graph = dataset.generate(div);
        table.row(&[
            dataset.short_name().into(),
            format!("{:.2}M", spec.vertices as f64 / 1e6),
            format!("{:.2}M", spec.edges as f64 / 1e6),
            format!("{:.2} GB", spec.heap_mib as f64 / 1024.0),
            format!("1/{div}"),
            format!("{:.2}M", graph.num_vertices() as f64 / 1e6),
            format!("{:.2}M", graph.num_edges() as f64 / 1e6),
            format!("{}", graph.footprint_bytes() >> 20),
        ]);
    }
    println!("{table}");
}
