//! Figure 11 (extension): DVM versus shared-virtual-addressing rivals.
//! Execution time normalized to Ideal for the 4K baseline, DVM-PE+, and
//! the two registered SVA schemes — SVA-Pf (TLB-prefetching SVA, after
//! Kurth et al.) and SVA-IOMMU (PCIe-style IOMMU with a context fetch,
//! after Koenig et al.) — over the same workload × dataset grid as
//! Figure 8.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin fig11 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```

use dvm_bench::{geomean, pair_label, run_sharded_sweep, BenchArgs, FigureJson, Json};
use dvm_core::SchemeId;
use dvm_sim::Table;

fn main() {
    let args = BenchArgs::parse();
    args.banner(&format!(
        "Figure 11: DVM vs SVA rivals, runtime normalized to Ideal, scale = {}\n",
        args.scale.name()
    ));
    let selected = args.iommu_schemes(&[
        SchemeId::CONV_4K,
        SchemeId::DVM_PE_PLUS,
        SchemeId::SVA_PF,
        SchemeId::SVA_IOMMU,
    ]);
    // Ideal (== 1.0 by construction) is always swept: every column
    // normalizes to it.
    let shown: Vec<SchemeId> = selected
        .iter()
        .copied()
        .filter(|&c| c != SchemeId::IDEAL)
        .collect();
    let mut sweep = selected;
    if !sweep.contains(&SchemeId::IDEAL) {
        sweep.push(SchemeId::IDEAL);
    }
    let names: Vec<&str> = shown.iter().map(|c| c.name()).collect();
    let mut header = vec!["workload/graph"];
    header.extend(&names);
    let mut table = Table::new(&header);
    let mut fig = FigureJson::new("fig11", args.scale.name(), &names);
    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); shown.len()];

    for cell in &run_sharded_sweep(&args, "fig11", &sweep) {
        let ideal = cell
            .report_for(SchemeId::IDEAL)
            .expect("sweep includes Ideal")
            .cycles
            .max(1) as f64;
        let label = pair_label(&cell.workload, cell.dataset);
        let mut row = vec![label.clone()];
        let mut values = Vec::new();
        for (i, &mmu) in shown.iter().enumerate() {
            let report = cell.report_for(mmu).expect("scheme ran");
            let normalized = report.cycles as f64 / ideal;
            per_config[i].push(normalized);
            row.push(format!("{normalized:.3}"));
            values.push(Json::Float(normalized));
        }
        table.row(&row);
        fig.row_with_reports(&label, values, &cell.reports);
    }
    let mut avg_row = vec!["geomean".to_string()];
    for values in &per_config {
        avg_row.push(format!("{:.3}", geomean(values)));
    }
    table.row(&avg_row);
    fig.summary(
        "geomean",
        Json::Arr(per_config.iter().map(|v| Json::Float(geomean(v))).collect()),
    );
    args.emit_json(&fig);
    println!("{table}");
    println!("expected: SVA-Pf's next-page prefetch helps streaming workloads (CF)");
    println!("but wastes walker and DRAM bandwidth on random access, where it can");
    println!("even lose to plain 4K; SVA-IOMMU pays extra for context fetches.");
    println!("DVM-PE+ beats both by validating identity mappings, not translating.");
}
