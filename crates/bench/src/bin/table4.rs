//! Table 4: percentage of system memory successfully allocated with
//! identity mapping under shbench churn, for 16/32/64 GiB machines.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin table4 [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```
//!
//! `smoke`/`quick` use 4/8/16 GiB machines; `paper`/`full` the published
//! 16/32/64 GiB.

use dvm_bench::{run_grid, BenchArgs, FigureJson, Json, Scale};
use dvm_core::{MachineConfig, Os, OsConfig, ShbenchConfig};
use dvm_os::shbench;
use dvm_sim::Table;

type Experiment = (&'static str, fn() -> ShbenchConfig);

fn main() {
    let args = BenchArgs::parse();
    args.reject_schemes("table4");
    args.reject_lanes("table4");
    let gib: &[u64] = match args.scale {
        Scale::Smoke | Scale::Quick => &[4, 8, 16],
        _ => &[16, 32, 64],
    };
    args.banner(&format!(
        "Table 4: % of memory identity-mapped at first failure (shbench), scale = {}\n",
        args.scale.name()
    ));
    let experiments: [Experiment; 3] = [
        ("expt 1 (small)", ShbenchConfig::experiment1),
        ("expt 2 (large)", ShbenchConfig::experiment2),
        ("expt 3 (4x large)", ShbenchConfig::experiment3),
    ];
    // Every (machine size, experiment) cell builds its own OS, so the
    // grid is shared-nothing and runs on the sharded grid runner.
    let units: Vec<(u64, usize)> = gib
        .iter()
        .flat_map(|&g| (0..experiments.len()).map(move |e| (g, e)))
        .collect();
    let labels: Vec<String> = units
        .iter()
        .map(|&(g, e)| format!("{g}GB/{}", experiments[e].0))
        .collect();
    let percents: Vec<f64> = run_grid(&args, "table4", &labels, |i| {
        let (g, e) = units[i];
        let mut os = Os::new(OsConfig {
            machine: MachineConfig { mem_bytes: g << 30 },
            ..OsConfig::default()
        });
        let result = shbench::run(&mut os, experiments[e].1()).expect("shbench failed");
        result.identity_percent()
    });

    let columns: Vec<&str> = experiments.iter().map(|(name, _)| *name).collect();
    let mut table = Table::new(
        &std::iter::once("system memory")
            .chain(columns.iter().copied())
            .collect::<Vec<_>>(),
    );
    let mut fig = FigureJson::new("table4", args.scale.name(), &columns);
    for (i, &g) in gib.iter().enumerate() {
        let label = format!("{g} GB");
        let cells = &percents[i * experiments.len()..(i + 1) * experiments.len()];
        let mut row = vec![label.clone()];
        row.extend(cells.iter().map(|p| format!("{p:.0}%")));
        table.row(&row);
        fig.row(&label, cells.iter().map(|&p| Json::Float(p)).collect());
    }
    args.emit_json(&fig);
    println!("{table}");
    println!("paper: 95-97% across all cells.");
}
