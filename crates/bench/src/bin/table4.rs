//! Table 4: percentage of system memory successfully allocated with
//! identity mapping under shbench churn, for 16/32/64 GiB machines.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin table4 [--scale quick|paper|full]
//! ```
//!
//! `quick` uses 4/8/16 GiB machines; `paper`/`full` the published
//! 16/32/64 GiB.

use dvm_bench::{HarnessArgs, Scale};
use dvm_core::{MachineConfig, Os, OsConfig, ShbenchConfig};
use dvm_os::shbench;
use dvm_sim::Table;

fn main() {
    let args = HarnessArgs::parse();
    let gib: &[u64] = match args.scale {
        Scale::Quick => &[4, 8, 16],
        _ => &[16, 32, 64],
    };
    println!(
        "Table 4: % of memory identity-mapped at first failure (shbench), scale = {}\n",
        args.scale.name()
    );
    let mut table = Table::new(&["system memory", "expt 1 (small)", "expt 2 (large)", "expt 3 (4x large)"]);
    for &g in gib {
        let mut row = vec![format!("{g} GB")];
        for config in [
            ShbenchConfig::experiment1(),
            ShbenchConfig::experiment2(),
            ShbenchConfig::experiment3(),
        ] {
            let mut os = Os::new(OsConfig {
                machine: MachineConfig { mem_bytes: g << 30 },
                ..OsConfig::default()
            });
            let result = shbench::run(&mut os, config).expect("shbench failed");
            row.push(format!("{:.0}%", result.identity_percent()));
            eprint!(".");
        }
        table.row(&row);
    }
    eprintln!();
    println!("{table}");
    println!("paper: 95-97% across all cells.");
}
