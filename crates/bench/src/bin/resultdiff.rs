//! Compare a committed golden result document against a freshly
//! generated one. Exit 0 when they agree, 1 on drift, 2 on structural
//! problems (unreadable file, invalid JSON, header mismatch).
//!
//! ```text
//! cargo run --release -p dvm-bench --bin resultdiff -- GOLDEN FRESH [--rel-tol X]
//! ```

use dvm_bench::{diff_json, parse, validate_header, Json};
use std::path::Path;

const USAGE: &str = "usage: resultdiff GOLDEN FRESH [--rel-tol X]";

fn structural(msg: &str) -> ! {
    eprintln!("resultdiff: {msg}");
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| structural(&format!("cannot read {path}: {e}")));
    let doc =
        parse(&text).unwrap_or_else(|e| structural(&format!("{path} is not valid JSON: {e}")));
    validate_header(&doc, None).unwrap_or_else(|e| structural(&format!("{path}: {e}")));
    doc
}

fn main() {
    let mut rel_tol = 0.0f64;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rel-tol" => {
                let v = args.next().unwrap_or_default();
                rel_tol = v
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| {
                        structural(&format!("--rel-tol needs a non-negative number, got '{v}'"))
                    });
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => paths.push(other.to_string()),
        }
    }
    let [golden_path, fresh_path] = paths.as_slice() else {
        structural(USAGE);
    };

    let golden = load(golden_path);
    let fresh = load(fresh_path);
    let experiment = golden
        .expect_str("experiment")
        .unwrap_or_else(|e| structural(&e));
    validate_header(&fresh, Some(experiment))
        .unwrap_or_else(|e| structural(&format!("{fresh_path}: {e}")));

    let diffs = diff_json(&golden, &fresh, rel_tol);
    if diffs.is_empty() {
        println!(
            "resultdiff: {experiment}: {} matches {}",
            Path::new(fresh_path).display(),
            Path::new(golden_path).display()
        );
        return;
    }
    const SHOWN: usize = 20;
    eprintln!(
        "resultdiff: {experiment}: {} divergence(s) between {golden_path} and {fresh_path}:",
        diffs.len()
    );
    for diff in diffs.iter().take(SHOWN) {
        eprintln!("  {diff}");
    }
    if diffs.len() > SHOWN {
        eprintln!("  ... and {} more", diffs.len() - SHOWN);
    }
    std::process::exit(1);
}
