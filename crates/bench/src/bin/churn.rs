//! Multi-tenant churn: long-horizon fork/exec/exit time-series showing
//! identity-mapping decay under buddy-allocator fragmentation.
//!
//! ```text
//! cargo run --release -p dvm-bench --bin churn [--scale smoke|quick|paper|full] [--jobs N] [--shards N]
//! ```
//!
//! The paper evaluates identity mapping on fresh address spaces; this
//! harness runs the regime a production system lives in — processes
//! arriving, CoW-forking, exec'ing and exiting for dozens of epochs while
//! the machine sits near its memory capacity. Each scheme configuration
//! is one simulation unit producing a whole trajectory; the JSON document
//! has one row per (config, epoch) in [`EpochGrid`] order.

use dvm_bench::{run_grid, BenchArgs, FigureJson, Json, Scale};
use dvm_core::{ChurnConfig, ChurnEpoch, EpochGrid, MapFlavor};
use dvm_os::churn;
use dvm_sim::Table;
use dvm_types::PageSize;

/// The scheme configurations compared, in column-group order.
const CONFIGS: [(&str, MapFlavor); 3] = [
    ("DVM-PE", MapFlavor::DvmPe),
    ("Paged-4K", MapFlavor::Paged(PageSize::Size4K)),
    ("Paged-2M", MapFlavor::Paged(PageSize::Size2M)),
];

/// The scenario at each scale (flavour is filled in per unit). `quick`
/// is the library default — the tuned 512 MiB scenario whose decay the
/// dvm-os unit tests pin.
fn scenario(scale: Scale) -> ChurnConfig {
    match scale {
        Scale::Smoke => ChurnConfig {
            mem_bytes: 128 << 20,
            epochs: 12,
            arrivals_per_epoch: 5,
            cow_fork_fraction: 0.4,
            mean_lifetime_epochs: 3,
            regions_per_proc: 2,
            min_region_bytes: 64 << 10,
            max_region_bytes: 2 << 20,
            ..ChurnConfig::default()
        },
        Scale::Quick => ChurnConfig::default(),
        Scale::Paper => ChurnConfig {
            mem_bytes: 2 << 30,
            epochs: 96,
            arrivals_per_epoch: 12,
            mean_lifetime_epochs: 8,
            max_region_bytes: 16 << 20,
            ..ChurnConfig::default()
        },
        Scale::Full => ChurnConfig {
            mem_bytes: 4 << 30,
            epochs: 192,
            arrivals_per_epoch: 16,
            mean_lifetime_epochs: 10,
            regions_per_proc: 4,
            max_region_bytes: 32 << 20,
            ..ChurnConfig::default()
        },
    }
}

fn rate_json(rate: Option<f64>) -> Json {
    rate.map_or(Json::Null, Json::Float)
}

fn main() {
    let args = BenchArgs::parse();
    args.reject_schemes("churn");
    args.reject_lanes("churn");
    let base = scenario(args.scale);
    args.banner(&format!(
        "Churn: identity-mapping decay over {} epochs of fork/exec/exit, \
         {} MiB machine, scale = {}\n",
        base.epochs,
        base.mem_bytes >> 20,
        args.scale.name()
    ));

    let grid = EpochGrid::new(CONFIGS.iter().map(|(name, _)| *name), base.epochs);
    let labels: Vec<String> = grid.configs.clone();
    let series: Vec<Vec<ChurnEpoch>> = run_grid(&args, "churn", &labels, |i| {
        let config = ChurnConfig {
            flavor: CONFIGS[i].1,
            ..base
        };
        let result = churn::run(&config).expect("churn scenario failed");
        assert_eq!(
            result.leaked_frames, 0,
            "{}: frames leaked through the churn drain",
            CONFIGS[i].0
        );
        result.epochs
    });

    let columns = [
        "live_procs",
        "mmaps",
        "identity_rate",
        "identity_bytes_requested",
        "identity_bytes_padded",
        "demand_bytes",
        "cow_breaks",
        "oom_events",
        "free_frames",
        "free_runs",
        "largest_run",
        "sub_granule_runs",
    ];
    let mut fig = FigureJson::new("churn", args.scale.name(), &columns);
    for (c, e) in grid.rows() {
        let epoch = &series[c][e as usize];
        fig.row(
            &grid.row_label(c, e),
            vec![
                Json::UInt(epoch.live_procs),
                Json::UInt(epoch.mmaps()),
                rate_json(epoch.identity_rate()),
                Json::UInt(epoch.identity_bytes_requested),
                Json::UInt(epoch.identity_bytes_padded),
                Json::UInt(epoch.demand_bytes),
                Json::UInt(epoch.cow_breaks),
                Json::UInt(epoch.oom_events),
                Json::UInt(epoch.free_frames),
                Json::UInt(epoch.free_runs),
                Json::UInt(epoch.largest_run),
                Json::UInt(epoch.sub_granule_runs),
            ],
        );
    }
    // Pooled first-quarter vs last-quarter success rates: the decay
    // headline, per configuration.
    let n = base.epochs as usize;
    for ((name, _), epochs) in CONFIGS.iter().zip(&series) {
        let pooled = |range: std::ops::Range<usize>| {
            let maps: u64 = epochs[range.clone()].iter().map(|e| e.identity_maps).sum();
            let total: u64 = epochs[range].iter().map(ChurnEpoch::mmaps).sum();
            (total > 0).then(|| maps as f64 / total as f64)
        };
        fig.summary(
            &format!("{name}_identity_rate_early"),
            rate_json(pooled(0..n / 4)),
        );
        fig.summary(
            &format!("{name}_identity_rate_late"),
            rate_json(pooled(3 * n / 4..n)),
        );
    }
    args.emit_json(&fig);

    // Condensed text view: every config at a sample of epochs.
    let mut table = Table::new(&[
        "config",
        "epoch",
        "live",
        "id-rate",
        "free runs",
        "largest",
        "sub-gran",
        "cow",
        "oom",
    ]);
    let step = (n / 12).max(1);
    for (c, (name, _)) in CONFIGS.iter().enumerate() {
        for epoch in series[c]
            .iter()
            .filter(|e| (e.epoch as usize).is_multiple_of(step) || e.epoch as usize == n - 1)
        {
            table.row(&[
                name.to_string(),
                format!("{}", epoch.epoch),
                format!("{}", epoch.live_procs),
                epoch
                    .identity_rate()
                    .map_or_else(|| "n/a".to_string(), |r| format!("{r:.3}")),
                format!("{}", epoch.free_runs),
                format!("{}", epoch.largest_run),
                format!("{}", epoch.sub_granule_runs),
                format!("{}", epoch.cow_breaks),
                format!("{}", epoch.oom_events),
            ]);
        }
    }
    println!("{table}");
    for ((name, _), epochs) in CONFIGS.iter().zip(&series) {
        let early: u64 = epochs[..n / 4].iter().map(ChurnEpoch::mmaps).sum();
        let early_ok: u64 = epochs[..n / 4].iter().map(|e| e.identity_maps).sum();
        let late: u64 = epochs[3 * n / 4..].iter().map(ChurnEpoch::mmaps).sum();
        let late_ok: u64 = epochs[3 * n / 4..].iter().map(|e| e.identity_maps).sum();
        let show = |ok: u64, total: u64| {
            if total == 0 {
                "n/a".to_string()
            } else {
                format!("{:.1}%", 100.0 * ok as f64 / total as f64)
            }
        };
        println!(
            "{name}: identity success {} (first quarter) -> {} (last quarter)",
            show(early_ok, early),
            show(late_ok, late),
        );
    }
    println!("paper: not evaluated (the paper measures fresh address spaces only).");
}
