//! Shared plumbing for the benchmark harness binaries that regenerate
//! every table and figure of the paper (see DESIGN.md §5 for the index).
//!
//! The crate is organised as three layers the binaries compose:
//!
//! * [`cli`] — the one typed command line ([`BenchArgs`]) every binary
//!   parses, including the sharding flags,
//! * [`shard`] — the multi-process sweep runner: a coordinator respawns
//!   the binary as `--shard I/N` workers, collects raw-result fragments
//!   and formats the merged grid exactly once, so N-shard output is
//!   byte-identical to the serial run,
//! * [`json`] — the hand-rolled JSON layer: [`JsonDoc`] builder (every
//!   document opens with `schema_version` + `experiment`), renderer,
//!   parser and header validation.
//!
//! Scales:
//!
//! * `smoke` — seconds; for tests and CI gates only.
//! * `quick` — minutes on a laptop; dataset stand-ins shrunk 8x further
//!   than `paper`. Shapes hold because footprints still exceed TLB reach.
//! * `paper` — stand-ins sized so vertex counts approach the published
//!   datasets (tens of minutes for Figure 8/9).
//! * `full`  — unscaled Table 3 sizes (hours; needs ~16 GiB of host RAM).
//!
//! All binaries execute through [`dvm_core::sweep`], so `--jobs N` runs
//! the shared-nothing (scheme × workload × dataset) grid on N threads —
//! and `--shards N` across N processes — while producing output
//! byte-identical to the serial run.

pub mod cli;
pub mod diff;
pub mod json;
pub mod reportcache;
pub mod shard;

pub use cli::{BenchArgs, CliError, Shard, ShardRole};
pub use diff::diff_json;
pub use json::{parse, report_json, validate_header, FigureJson, Json, JsonDoc, SCHEMA_VERSION};
pub use reportcache::ReportCache;
pub use shard::{run_grid, run_sharded_sweep, ShardValue};

use dvm_core::{Dataset, Workload};
use std::fmt::Write as _;

/// Dataset scaling selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 64x smaller than `quick`; seconds end to end, for tests/CI.
    Smoke,
    /// 8x smaller than `paper`; default.
    Quick,
    /// Near-published sizes.
    Paper,
    /// Exactly the published sizes.
    Full,
}

impl Scale {
    /// Human name.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
            Scale::Full => "full",
        }
    }

    /// Inverse of [`Scale::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The `scale_div` to pass to [`Dataset::generate`]. The `paper`
    /// divisors are tuned per dataset so (a) every vertex set comfortably
    /// exceeds the 512 KiB reach of the 128-entry 4K TLB, and (b) most
    /// footprints exceed the 256 MiB reach of the 2M TLB — the property
    /// behind the paper's "2M pages barely help" observation — while edge
    /// counts stay tractable. `smoke` keeps none of those properties; it
    /// only exercises the machinery.
    pub fn divisor(&self, dataset: Dataset) -> u32 {
        let paper = match dataset {
            Dataset::Flickr => 1,
            Dataset::Wikipedia => 4,
            Dataset::LiveJournal => 4,
            Dataset::Rmat24 => 8,
            Dataset::Netflix => 4,
            Dataset::Bip1 => 2,
            Dataset::Bip2 => 8,
        };
        match self {
            Scale::Full => 1,
            Scale::Paper => paper,
            Scale::Quick => paper * 4,
            Scale::Smoke => paper * 256,
        }
    }
}

/// The 15 (workload, dataset) pairs of Figures 2, 8 and 9, in the paper's
/// order: BFS/PageRank/SSSP over {FR, Wiki, LJ, S24}, CF over
/// {NF, Bip1, Bip2}.
pub fn paper_pairs() -> Vec<(Workload, Dataset)> {
    let mut pairs = Vec::new();
    let graph_workloads = [
        Workload::Bfs { root: 0 },
        Workload::PageRank { iterations: 1 },
        Workload::Sssp {
            root: 0,
            max_iterations: 64,
        },
    ];
    for workload in graph_workloads {
        for dataset in Dataset::GRAPH_SET {
            pairs.push((workload, dataset));
        }
    }
    for dataset in Dataset::CF_SET {
        pairs.push((
            Workload::Cf {
                iterations: 1,
                features: 32,
            },
            dataset,
        ));
    }
    pairs
}

/// Label like "BFS/FR" used in figure rows.
pub fn pair_label(workload: &Workload, dataset: Dataset) -> String {
    let mut s = String::new();
    let _ = write!(s, "{}/{}", workload.name(), dataset.short_name());
    s
}

/// Geometric mean (the right average for normalized ratios).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_core::SchemeId;

    #[test]
    fn fifteen_pairs_in_paper_order() {
        let pairs = paper_pairs();
        assert_eq!(pairs.len(), 15);
        assert_eq!(pair_label(&pairs[0].0, pairs[0].1), "BFS/FR");
        assert_eq!(pair_label(&pairs[14].0, pairs[14].1), "CF/Bip2");
    }

    #[test]
    fn divisors_shrink_with_quick() {
        for ds in Dataset::ALL {
            assert_eq!(Scale::Full.divisor(ds), 1);
            assert_eq!(Scale::Quick.divisor(ds), Scale::Paper.divisor(ds) * 4);
            assert_eq!(Scale::Smoke.divisor(ds), Scale::Quick.divisor(ds) * 64);
        }
    }

    #[test]
    fn scale_names_round_trip() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper, Scale::Full] {
            assert_eq!(Scale::from_name(scale.name()), Some(scale));
        }
        assert_eq!(Scale::from_name("huge"), None);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn sweep_spec_respects_filter() {
        let args = BenchArgs::try_parse(["--datasets".to_string(), "FR".to_string()]).unwrap();
        let spec = args.sweep_spec(&[SchemeId::IDEAL]);
        // FR appears once per graph workload (BFS, PageRank, SSSP).
        assert_eq!(spec.cells.len(), 3);
        assert!(spec.cells.iter().all(|c| c.dataset == Dataset::Flickr));
        assert_eq!(spec.cells[0].divisor, Scale::Quick.divisor(Dataset::Flickr));
    }
}
