//! Shared plumbing for the benchmark harness binaries that regenerate
//! every table and figure of the paper (see DESIGN.md §5 for the index).
//!
//! Each binary accepts:
//!
//! ```text
//! --scale quick|paper|full   dataset sizing (default: quick)
//! --datasets FR,Wiki,...     restrict to some inputs
//! --jobs N                   worker threads (0 = all cores; default 1)
//! --json PATH                also write machine-readable results
//! ```
//!
//! * `quick` — minutes on a laptop; dataset stand-ins shrunk 8x further
//!   than `paper`. Shapes hold because footprints still exceed TLB reach.
//! * `paper` — stand-ins sized so vertex counts approach the published
//!   datasets (tens of minutes for Figure 8/9).
//! * `full`  — unscaled Table 3 sizes (hours; needs ~16 GiB of host RAM).
//!
//! All binaries execute through [`dvm_core::sweep`], so `--jobs N` runs
//! the shared-nothing (scheme × workload × dataset) grid on N threads
//! while producing output byte-identical to the serial run.

pub mod json;

pub use json::{report_json, FigureJson, Json};

use dvm_core::{run_sweep, CellReports, Dataset, MmuConfig, SweepSpec, Workload};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Dataset scaling selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 8x smaller than `paper`; default.
    Quick,
    /// Near-published sizes.
    Paper,
    /// Exactly the published sizes.
    Full,
}

impl Scale {
    /// Human name.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
            Scale::Full => "full",
        }
    }

    /// The `scale_div` to pass to [`Dataset::generate`]. The `paper`
    /// divisors are tuned per dataset so (a) every vertex set comfortably
    /// exceeds the 512 KiB reach of the 128-entry 4K TLB, and (b) most
    /// footprints exceed the 256 MiB reach of the 2M TLB — the property
    /// behind the paper's "2M pages barely help" observation — while edge
    /// counts stay tractable.
    pub fn divisor(&self, dataset: Dataset) -> u32 {
        let paper = match dataset {
            Dataset::Flickr => 1,
            Dataset::Wikipedia => 4,
            Dataset::LiveJournal => 4,
            Dataset::Rmat24 => 8,
            Dataset::Netflix => 4,
            Dataset::Bip1 => 2,
            Dataset::Bip2 => 8,
        };
        match self {
            Scale::Full => 1,
            Scale::Paper => paper,
            Scale::Quick => paper * 4,
        }
    }
}

/// Parsed harness options.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Dataset filter (None = all).
    pub datasets: Option<Vec<String>>,
    /// Sweep worker threads: `0` = all cores, `1` = serial (default).
    pub jobs: usize,
    /// Where to write the machine-readable results, if anywhere.
    pub json: Option<PathBuf>,
}

impl HarnessArgs {
    /// Parse `std::env::args`; exits with usage help on `--help` or bad
    /// input.
    pub fn parse() -> Self {
        let mut scale = Scale::Quick;
        let mut datasets = None;
        let mut jobs = 1usize;
        let mut json = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().unwrap_or_default();
                    scale = match v.as_str() {
                        "quick" => Scale::Quick,
                        "paper" => Scale::Paper,
                        "full" => Scale::Full,
                        other => {
                            eprintln!("unknown scale '{other}' (quick|paper|full)");
                            std::process::exit(2);
                        }
                    };
                }
                "--datasets" => {
                    let v = args.next().unwrap_or_default();
                    datasets = Some(v.split(',').map(|s| s.to_string()).collect());
                }
                "--jobs" => {
                    let v = args.next().unwrap_or_default();
                    jobs = match v.parse() {
                        Ok(n) => n,
                        Err(_) => {
                            eprintln!("--jobs needs an integer (0 = all cores), got '{v}'");
                            std::process::exit(2);
                        }
                    };
                }
                "--json" => {
                    let v = args.next().unwrap_or_default();
                    if v.is_empty() {
                        eprintln!("--json needs a path");
                        std::process::exit(2);
                    }
                    json = Some(PathBuf::from(v));
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale quick|paper|full] [--datasets FR,Wiki,...] \
                         [--jobs N] [--json PATH]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument '{other}'");
                    std::process::exit(2);
                }
            }
        }
        Self {
            scale,
            datasets,
            jobs,
            json,
        }
    }

    /// `true` if `dataset` passed the filter.
    pub fn wants(&self, dataset: Dataset) -> bool {
        self.datasets
            .as_ref()
            .is_none_or(|list| list.iter().any(|n| n == dataset.short_name()))
    }

    /// The paper pairs that pass the dataset filter, as a sweep spec over
    /// `schemes` at the selected scale.
    pub fn sweep_spec(&self, schemes: &[MmuConfig]) -> SweepSpec {
        SweepSpec::for_pairs(
            paper_pairs().into_iter().filter(|(_, d)| self.wants(*d)),
            schemes,
            |d| self.scale.divisor(d),
        )
    }

    /// Run the filtered paper pairs under `schemes` on the sweep engine.
    ///
    /// # Panics
    ///
    /// Panics if any experiment fails — harness binaries have no recovery
    /// path.
    pub fn run_graph_sweep(&self, schemes: &[MmuConfig]) -> Vec<CellReports> {
        run_sweep(&self.sweep_spec(schemes), self.jobs).expect("experiment failed")
    }

    /// Write `fig` to the `--json` path, if one was given.
    ///
    /// # Panics
    ///
    /// Panics on filesystem errors.
    pub fn emit_json(&self, fig: &FigureJson) {
        if let Some(path) = &self.json {
            fig.write(path).expect("writing --json output failed");
        }
    }
}

/// The 15 (workload, dataset) pairs of Figures 2, 8 and 9, in the paper's
/// order: BFS/PageRank/SSSP over {FR, Wiki, LJ, S24}, CF over
/// {NF, Bip1, Bip2}.
pub fn paper_pairs() -> Vec<(Workload, Dataset)> {
    let mut pairs = Vec::new();
    let graph_workloads = [
        Workload::Bfs { root: 0 },
        Workload::PageRank { iterations: 1 },
        Workload::Sssp {
            root: 0,
            max_iterations: 64,
        },
    ];
    for workload in graph_workloads {
        for dataset in Dataset::GRAPH_SET {
            pairs.push((workload, dataset));
        }
    }
    for dataset in Dataset::CF_SET {
        pairs.push((
            Workload::Cf {
                iterations: 1,
                features: 32,
            },
            dataset,
        ));
    }
    pairs
}

/// Label like "BFS/FR" used in figure rows.
pub fn pair_label(workload: &Workload, dataset: Dataset) -> String {
    let mut s = String::new();
    let _ = write!(s, "{}/{}", workload.name(), dataset.short_name());
    s
}

/// Geometric mean (the right average for normalized ratios).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_pairs_in_paper_order() {
        let pairs = paper_pairs();
        assert_eq!(pairs.len(), 15);
        assert_eq!(pair_label(&pairs[0].0, pairs[0].1), "BFS/FR");
        assert_eq!(pair_label(&pairs[14].0, pairs[14].1), "CF/Bip2");
    }

    #[test]
    fn divisors_shrink_with_quick() {
        for ds in Dataset::ALL {
            assert_eq!(Scale::Full.divisor(ds), 1);
            assert_eq!(Scale::Quick.divisor(ds), Scale::Paper.divisor(ds) * 4);
        }
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn sweep_spec_respects_filter() {
        let args = HarnessArgs {
            scale: Scale::Quick,
            datasets: Some(vec!["FR".into()]),
            jobs: 1,
            json: None,
        };
        let spec = args.sweep_spec(&[MmuConfig::Ideal]);
        // FR appears once per graph workload (BFS, PageRank, SSSP).
        assert_eq!(spec.cells.len(), 3);
        assert!(spec.cells.iter().all(|c| c.dataset == Dataset::Flickr));
        assert_eq!(spec.cells[0].divisor, Scale::Quick.divisor(Dataset::Flickr));
    }
}
