//! The one command line shared by every bench binary.
//!
//! Before this module, each of the nine binaries carried its own ad-hoc
//! `std::env::args()` loop; they now parse through [`BenchArgs`] once and
//! stay declarative (a [`dvm_core::SweepSpec`] or item grid plus a
//! formatter). Parsing is pure ([`BenchArgs::try_parse`] takes any
//! iterator and returns typed errors), so the grammar is unit-testable;
//! [`BenchArgs::parse`] is the process-facing wrapper that prints usage
//! and exits.
//!
//! ```text
//! --scale smoke|quick|paper|full  dataset sizing (default: quick)
//! --datasets FR,Wiki,...          restrict to some inputs
//! --schemes a,b,c                 restrict to some translation schemes
//! --jobs N                        worker threads per process (0 = all cores)
//! --lanes N                       intra-unit lanes (1 = serial, 0 = auto)
//! --json PATH                     also write the machine-readable document
//! --shards N                      fan the grid out over N worker processes
//! --shard I/N                     run only shard I, write a fragment, exit
//! --shard-out PATH                fragment path (only with --shard)
//! --merge-dir DIR                 merge fragments written by --shard workers
//! --cache-dir DIR                 on-disk dataset cache (see dvm-graph)
//! --cache-max-bytes N             LRU-evict dataset-cache entries over N bytes
//! --report-cache DIR              per-unit report cache shared across binaries
//! --report-cache-max-bytes N      LRU-evict report-cache entries over N bytes
//! --progress                      per-cell progress lines on stderr
//! ```

use crate::{paper_pairs, FigureJson, ReportCache, Scale};
use dvm_core::{SchemeId, SweepSpec};
use dvm_graph::{Dataset, DatasetCache};
use std::fmt;
use std::fmt::Write as _;
use std::path::PathBuf;

/// A worker's slice of the grid: shard `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index.
    pub index: usize,
    /// Total shards the grid is split into.
    pub count: usize,
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Which of the sharding roles this process plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRole {
    /// Run the whole grid in this process (the default).
    Single,
    /// Spawn `N` worker processes and merge their fragments.
    Coordinator(usize),
    /// Run one shard and write a fragment (no stdout contract).
    Worker(Shard),
    /// Merge fragments other workers already wrote (e.g. on other
    /// machines) without running anything.
    Merge,
    /// Submit the sweep to a `farmd` coordinator (`--farm host:port`)
    /// and merge the fragments its workers send back.
    Farm,
}

/// Typed options for a bench binary.
#[derive(Debug)]
pub struct BenchArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Dataset filter (None = all).
    pub datasets: Option<Vec<String>>,
    /// Translation-scheme filter (None = the binary's default set). Kept
    /// as raw names: binaries with an IOMMU-scheme dimension resolve them
    /// through the registry ([`Self::iommu_schemes`]), while fig10/virt
    /// match them against their own CPU/nested scheme names.
    pub schemes: Option<Vec<String>>,
    /// Sweep worker threads per process: `0` = all cores, `1` = serial.
    pub jobs: usize,
    /// Intra-unit lanes: `1` = the fused serial path (default), `2` =
    /// the functional/timing pipeline, `3` = functional/translate/memory
    /// (higher clamps), `0` = auto (divides the host's cores among the
    /// `--jobs` workers). Output is byte-identical either way; this flag
    /// only trades threads for wall-clock within a unit. Rejected by the
    /// grid binaries (tables, fig10, virt), which do not run the sweep
    /// engine.
    pub lanes: u32,
    /// Where to write the machine-readable results, if anywhere.
    pub json: Option<PathBuf>,
    /// Coordinator: number of worker processes to spawn.
    pub shards: Option<usize>,
    /// Worker: the slice of the grid this process runs.
    pub shard: Option<Shard>,
    /// Worker: where to write the fragment (defaults to
    /// `results/shards/<experiment>_shard<I>of<N>.json`).
    pub shard_out: Option<PathBuf>,
    /// Merge fragments from this directory instead of running.
    pub merge_dir: Option<PathBuf>,
    /// Submit the sweep to this `farmd` coordinator (`host:port`)
    /// instead of running locally.
    pub farm: Option<String>,
    /// Opened dataset cache, when `--cache-dir` was given.
    pub cache: Option<DatasetCache>,
    /// Byte budget for the dataset cache (LRU eviction), if any.
    pub cache_max_bytes: Option<u64>,
    /// Opened per-unit report cache, when `--report-cache` was given.
    pub reports: Option<ReportCache>,
    /// Byte budget for the report cache (LRU eviction), if any.
    pub report_cache_max_bytes: Option<u64>,
    /// Print the dataset cache's on-disk state and exit (no sweep).
    pub cache_stats: bool,
    /// Emit per-cell progress on stderr.
    pub progress: bool,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The usage text printed on `--help` and after errors.
pub const USAGE: &str = "usage: [--scale smoke|quick|paper|full] [--datasets FR,Wiki,...]
       [--schemes a,b,c]
       [--jobs N] [--lanes N] [--json PATH] [--progress] [--cache-dir DIR]
       [--cache-max-bytes N] [--cache-stats] [--report-cache DIR]
       [--report-cache-max-bytes N]
       [--shards N | --shard I/N [--shard-out PATH] | --merge-dir DIR]
       [--farm HOST:PORT]

  --scale        dataset sizing (default: quick; smoke is for CI/tests)
  --datasets     comma-separated short names; others are skipped
  --schemes      comma-separated translation-scheme names; the sweep is
                 restricted to them (paper names contain commas, so
                 spell those with '-': e.g. 4K-TLB+PWC, or just 4K)
  --jobs         worker threads per process (0 = all cores, default 1)
  --lanes        intra-unit lanes: 1 = fused serial path (default),
                 2 = functional/timing pipeline, 3 = functional/
                 translate/memory, 0 = auto (cores / --jobs); results
                 are byte-identical regardless (sweep binaries only)
  --json         also write the machine-readable document to PATH
  --progress     per-cell progress lines on stderr (stdout is untouched)
  --cache-dir    load/store generated datasets in an on-disk cache
  --cache-max-bytes
                 evict least-recently-used dataset-cache entries once
                 the directory exceeds N bytes (suffixes K/M/G/T)
  --cache-stats  print the dataset cache's entries (size, age, last
                 use, evictions), sweep orphaned tmp files, and exit
  --report-cache reuse per-unit sweep reports across figure binaries
  --report-cache-max-bytes
                 same LRU byte budget, for the report cache
  --shards       fan the grid out over N worker processes and merge
  --shard        run only shard I of N and write a fragment, then exit
  --shard-out    fragment path for --shard (default results/shards/...)
  --merge-dir    merge fragments already written by --shard workers
  --farm         submit the sweep to a farmd coordinator and merge the
                 fragments its workers return (with --shards N, ask for
                 N slices; default: one slice per connected worker)";

/// Parse a byte count with an optional binary suffix: `1536`, `64K`,
/// `512M`, `8G`, `1T` (case-insensitive).
pub fn parse_byte_size(text: &str) -> Option<u64> {
    let (digits, multiplier) = match text.char_indices().last()? {
        (i, 'k' | 'K') => (&text[..i], 1u64 << 10),
        (i, 'm' | 'M') => (&text[..i], 1 << 20),
        (i, 'g' | 'G') => (&text[..i], 1 << 30),
        (i, 't' | 'T') => (&text[..i], 1 << 40),
        _ => (text, 1),
    };
    digits.parse::<u64>().ok()?.checked_mul(multiplier)
}

impl BenchArgs {
    /// Parse an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] describing the first problem; `--help`
    /// surfaces as an error containing the usage text so [`parse`]
    /// can exit 0.
    ///
    /// [`parse`]: BenchArgs::parse
    pub fn try_parse(args: impl IntoIterator<Item = String>) -> Result<Self, CliError> {
        let mut scale = Scale::Quick;
        let mut datasets = None;
        let mut schemes = None;
        let mut jobs = 1usize;
        let mut lanes = 1u32;
        let mut json = None;
        let mut shards = None;
        let mut shard = None;
        let mut shard_out = None;
        let mut merge_dir = None;
        let mut farm = None;
        let mut cache_dir: Option<PathBuf> = None;
        let mut cache_max_bytes = None;
        let mut report_dir: Option<PathBuf> = None;
        let mut report_cache_max_bytes = None;
        let mut cache_stats = false;
        let mut progress = false;

        let mut args = args.into_iter();
        let value_of = |flag: &str, args: &mut dyn Iterator<Item = String>| {
            args.next()
                .filter(|v| !v.is_empty())
                .ok_or_else(|| err(format!("{flag} needs a value")))
        };
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = value_of("--scale", &mut args)?;
                    scale = Scale::from_name(&v).ok_or_else(|| {
                        err(format!("unknown scale '{v}' (smoke|quick|paper|full)"))
                    })?;
                }
                "--datasets" => {
                    let v = value_of("--datasets", &mut args)?;
                    let names: Vec<String> = v.split(',').map(str::to_string).collect();
                    for name in &names {
                        if !Dataset::ALL.iter().any(|d| d.short_name() == name) {
                            return Err(err(format!(
                                "unknown dataset '{name}' (expected one of {})",
                                Dataset::ALL.map(|d| d.short_name()).join(", ")
                            )));
                        }
                    }
                    datasets = Some(names);
                }
                "--schemes" => {
                    let v = value_of("--schemes", &mut args)?;
                    let names: Vec<String> = v.split(',').map(str::to_string).collect();
                    if names.iter().any(String::is_empty) {
                        return Err(err(format!("empty scheme name in --schemes '{v}'")));
                    }
                    schemes = Some(names);
                }
                "--jobs" => {
                    let v = value_of("--jobs", &mut args)?;
                    jobs = v.parse().map_err(|_| {
                        err(format!(
                            "--jobs needs an integer (0 = all cores), got '{v}'"
                        ))
                    })?;
                }
                "--lanes" => {
                    let v = value_of("--lanes", &mut args)?;
                    lanes = v.parse().map_err(|_| {
                        err(format!(
                            "--lanes needs an integer (0 = auto, 1 = serial), got '{v}'"
                        ))
                    })?;
                }
                "--json" => json = Some(PathBuf::from(value_of("--json", &mut args)?)),
                "--shards" => {
                    let v = value_of("--shards", &mut args)?;
                    let n: usize = v.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
                        err(format!("--shards needs a positive integer, got '{v}'"))
                    })?;
                    shards = Some(n);
                }
                "--shard" => {
                    let v = value_of("--shard", &mut args)?;
                    // One message for every malformed shape — no slash,
                    // non-numeric I or N, N = 0, I >= N — so all ten
                    // binaries reject bad slices identically (exit 2).
                    let bad = || {
                        err(format!(
                            "--shard needs I/N with 0 <= I < N (e.g. 0/4), got '{v}'"
                        ))
                    };
                    let (i, n) = v.split_once('/').ok_or_else(bad)?;
                    let parsed = (i.parse::<usize>(), n.parse::<usize>());
                    shard = match parsed {
                        (Ok(index), Ok(count)) if count >= 1 && index < count => {
                            Some(Shard { index, count })
                        }
                        _ => return Err(bad()),
                    };
                }
                "--shard-out" => {
                    shard_out = Some(PathBuf::from(value_of("--shard-out", &mut args)?));
                }
                "--merge-dir" => {
                    merge_dir = Some(PathBuf::from(value_of("--merge-dir", &mut args)?));
                }
                "--farm" => {
                    let v = value_of("--farm", &mut args)?;
                    let valid = v.rsplit_once(':').is_some_and(|(host, port)| {
                        !host.is_empty() && port.parse::<u16>().is_ok()
                    });
                    if !valid {
                        return Err(err(format!("--farm needs HOST:PORT, got '{v}'")));
                    }
                    farm = Some(v);
                }
                "--cache-dir" => {
                    cache_dir = Some(PathBuf::from(value_of("--cache-dir", &mut args)?));
                }
                "--cache-max-bytes" => {
                    let v = value_of("--cache-max-bytes", &mut args)?;
                    cache_max_bytes = Some(parse_byte_size(&v).ok_or_else(|| {
                        err(format!(
                            "--cache-max-bytes needs a byte count (e.g. 8G), got '{v}'"
                        ))
                    })?);
                }
                "--report-cache" => {
                    report_dir = Some(PathBuf::from(value_of("--report-cache", &mut args)?));
                }
                "--report-cache-max-bytes" => {
                    let v = value_of("--report-cache-max-bytes", &mut args)?;
                    report_cache_max_bytes = Some(parse_byte_size(&v).ok_or_else(|| {
                        err(format!(
                            "--report-cache-max-bytes needs a byte count (e.g. 8G), got '{v}'"
                        ))
                    })?);
                }
                "--cache-stats" => cache_stats = true,
                "--progress" => progress = true,
                "--help" | "-h" => return Err(err(USAGE)),
                other => {
                    return Err(err(format!("unknown argument '{other}'\n\n{USAGE}")));
                }
            }
        }

        let roles = [shards.is_some(), shard.is_some(), merge_dir.is_some()];
        if roles.iter().filter(|&&r| r).count() > 1 {
            return Err(err(
                "--shards, --shard and --merge-dir are mutually exclusive",
            ));
        }
        // --farm composes with --shards (the requested slice count) but
        // not with the other roles: a farm worker already is a --shard
        // process, and --merge-dir never runs anything.
        if farm.is_some() && (shard.is_some() || merge_dir.is_some()) {
            return Err(err("--farm cannot be combined with --shard or --merge-dir"));
        }
        if shard_out.is_some() && shard.is_none() {
            return Err(err("--shard-out only makes sense with --shard"));
        }
        if cache_stats && cache_dir.is_none() {
            return Err(err("--cache-stats needs --cache-dir"));
        }
        if cache_max_bytes.is_some() && cache_dir.is_none() {
            return Err(err("--cache-max-bytes needs --cache-dir"));
        }
        if report_cache_max_bytes.is_some() && report_dir.is_none() {
            return Err(err("--report-cache-max-bytes needs --report-cache"));
        }
        let cache = match cache_dir {
            None => None,
            Some(dir) => Some(
                DatasetCache::with_budget(&dir, cache_max_bytes)
                    .map_err(|e| err(format!("cannot open --cache-dir {}: {e}", dir.display())))?,
            ),
        };
        let reports = match report_dir {
            None => None,
            Some(dir) => Some(
                ReportCache::with_budget(&dir, report_cache_max_bytes).map_err(|e| {
                    err(format!("cannot open --report-cache {}: {e}", dir.display()))
                })?,
            ),
        };
        Ok(Self {
            scale,
            datasets,
            schemes,
            jobs,
            lanes,
            json,
            shards,
            shard,
            shard_out,
            merge_dir,
            farm,
            cache,
            cache_max_bytes,
            reports,
            report_cache_max_bytes,
            cache_stats,
            progress,
        })
    }

    /// Parse `std::env::args`; prints usage and exits on `--help` (0) or
    /// bad input (2). `--cache-stats` prints the dataset cache's on-disk
    /// state and exits 0 without running anything.
    pub fn parse() -> Self {
        match Self::try_parse(std::env::args().skip(1)) {
            Ok(args) => {
                if args.cache_stats {
                    print!("{}", args.cache_stats_text());
                    std::process::exit(0);
                }
                args
            }
            Err(CliError(msg)) if msg == USAGE => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            Err(CliError(msg)) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The `--cache-stats` report: one line per wanted dataset at the
    /// selected scale — present entries with their size on disk, absent
    /// ones marked — plus hit/miss counters and a byte total.
    ///
    /// # Panics
    ///
    /// Panics unless `--cache-dir` was given (parsing enforces this for
    /// `--cache-stats`).
    pub fn cache_stats_text(&self) -> String {
        let cache = self
            .cache
            .as_ref()
            .expect("--cache-stats requires --cache-dir");
        let mut out = format!(
            "dataset cache {} (scale {}):\n",
            cache.dir().display(),
            self.scale.name()
        );
        let mut present = 0usize;
        let mut total_bytes = 0u64;
        for dataset in Dataset::ALL {
            if !self.wants(dataset) {
                continue;
            }
            let divisor = self.scale.divisor(dataset);
            let path = cache.entry_path(dataset, divisor);
            match std::fs::metadata(&path) {
                Ok(meta) => {
                    present += 1;
                    total_bytes += meta.len();
                    let _ = writeln!(
                        out,
                        "  {:<5} div{:<4} {:>12} bytes  {}",
                        dataset.short_name(),
                        divisor,
                        meta.len(),
                        path.file_name().unwrap_or_default().to_string_lossy()
                    );
                }
                Err(_) => {
                    let _ = writeln!(
                        out,
                        "  {:<5} div{:<4} {:>12}        {}",
                        dataset.short_name(),
                        divisor,
                        "absent",
                        path.file_name().unwrap_or_default().to_string_lossy()
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "  {present} present, {total_bytes} bytes total; this process: hits={} misses={}",
            cache.hits(),
            cache.misses()
        );
        // The budget view covers *everything* on disk (all scales and
        // filters), with per-entry size/age/last-use — and sweeps tmp
        // files orphaned by crashed writers of earlier runs.
        let budget = cache.budget();
        let swept = budget.sweep_orphans();
        let entries = budget.entries();
        let _ = writeln!(
            out,
            "on-disk entries ({}, most recently used first):",
            match budget.max_bytes() {
                Some(max) => format!("budget {max} bytes, {} used", budget.used_bytes()),
                None => "no byte budget".to_string(),
            }
        );
        for entry in entries {
            let last_use = entry
                .last_use_secs
                .map_or("never".to_string(), |s| format!("{s}s ago"));
            let _ = writeln!(
                out,
                "  {:>12} bytes  age {:>6}s  last-use {:>10}  {}",
                entry.bytes, entry.age_secs, last_use, entry.name
            );
        }
        let _ = writeln!(
            out,
            "cumulative evictions: {}; orphaned tmp files swept: {swept}",
            budget.evictions_total()
        );
        out
    }

    /// This process's sharding role.
    pub fn role(&self) -> ShardRole {
        if let Some(shard) = self.shard {
            ShardRole::Worker(shard)
        } else if self.farm.is_some() {
            ShardRole::Farm
        } else if let Some(n) = self.shards {
            ShardRole::Coordinator(n)
        } else if self.merge_dir.is_some() {
            ShardRole::Merge
        } else {
            ShardRole::Single
        }
    }

    /// `true` if `dataset` passed the filter.
    pub fn wants(&self, dataset: Dataset) -> bool {
        self.datasets
            .as_ref()
            .is_none_or(|list| list.iter().any(|n| n == dataset.short_name()))
    }

    /// Print a banner line on stdout — skipped in worker mode, whose
    /// stdout is not part of the output contract.
    pub fn banner(&self, line: &str) {
        if self.shard.is_none() {
            println!("{line}");
        }
    }

    /// The paper pairs that pass the dataset filter, as a sweep spec over
    /// `schemes` at the selected scale.
    pub fn sweep_spec(&self, schemes: &[SchemeId]) -> SweepSpec {
        SweepSpec::for_pairs(
            paper_pairs().into_iter().filter(|(_, d)| self.wants(*d)),
            schemes,
            |d| self.scale.divisor(d),
        )
    }

    /// Resolve `--schemes` against the IOMMU-scheme registry, or return
    /// `defaults` verbatim if the flag was not given. Order follows the
    /// command line, duplicates are dropped.
    ///
    /// # Errors
    ///
    /// Any name the registry cannot resolve yields a [`CliError`] listing
    /// every registered scheme.
    pub fn try_iommu_schemes(&self, defaults: &[SchemeId]) -> Result<Vec<SchemeId>, CliError> {
        let Some(names) = &self.schemes else {
            return Ok(defaults.to_vec());
        };
        let mut picked: Vec<SchemeId> = Vec::with_capacity(names.len());
        for name in names {
            let id = SchemeId::parse(name).ok_or_else(|| {
                err(format!(
                    "unknown scheme '{name}' (registered: {})",
                    SchemeId::registered_names().join(", ")
                ))
            })?;
            if !picked.contains(&id) {
                picked.push(id);
            }
        }
        Ok(picked)
    }

    /// [`Self::try_iommu_schemes`], exiting 2 with the error on stderr —
    /// the process-facing wrapper the bench binaries call.
    pub fn iommu_schemes(&self, defaults: &[SchemeId]) -> Vec<SchemeId> {
        self.try_iommu_schemes(defaults).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        })
    }

    /// Filter a binary's own scheme columns (fig10's CPU schemes, virt's
    /// nested schemes) by `--schemes`, matching names case-insensitively.
    /// Returns `columns` verbatim when the flag was not given.
    ///
    /// # Errors
    ///
    /// An unmatched name yields a [`CliError`] listing the valid columns.
    pub fn try_scheme_columns<T: Copy>(
        &self,
        columns: &[T],
        name_of: impl Fn(&T) -> &'static str,
    ) -> Result<Vec<T>, CliError> {
        let Some(names) = &self.schemes else {
            return Ok(columns.to_vec());
        };
        let mut picked: Vec<(T, &'static str)> = Vec::with_capacity(names.len());
        for name in names {
            let found = columns
                .iter()
                .find(|c| name_of(c).eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    err(format!(
                        "unknown scheme '{name}' (this binary knows: {})",
                        columns.iter().map(&name_of).collect::<Vec<_>>().join(", ")
                    ))
                })?;
            if !picked.iter().any(|(_, n)| *n == name_of(found)) {
                picked.push((*found, name_of(found)));
            }
        }
        Ok(picked.into_iter().map(|(c, _)| c).collect())
    }

    /// [`Self::try_scheme_columns`], exiting 2 with the error on stderr.
    pub fn scheme_columns<T: Copy>(
        &self,
        columns: &[T],
        name_of: impl Fn(&T) -> &'static str,
    ) -> Vec<T> {
        self.try_scheme_columns(columns, name_of)
            .unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
    }

    /// Refuse `--schemes` in binaries without a scheme dimension
    /// (the tables), exiting 2 so a typo is not silently ignored.
    pub fn reject_schemes(&self, binary: &str) {
        if self.schemes.is_some() {
            eprintln!("--schemes: {binary} has no translation-scheme dimension");
            std::process::exit(2);
        }
    }

    /// Refuse a non-default `--lanes` in binaries that do not run the
    /// accelerator sweep engine (the tables, fig10, virt), exiting 2 so
    /// the flag is not silently ignored.
    pub fn reject_lanes(&self, binary: &str) {
        if self.lanes != 1 {
            eprintln!("--lanes: {binary} does not run the accelerator sweep engine");
            std::process::exit(2);
        }
    }

    /// Write `fig` to the `--json` path, if one was given.
    ///
    /// # Panics
    ///
    /// Panics on filesystem errors.
    pub fn emit_json(&self, fig: &FigureJson) {
        if let Some(path) = &self.json {
            fig.write(path).expect("writing --json output failed");
        }
    }

    /// Generate (or load through the cache) one dataset at the selected
    /// scale.
    pub fn generate_graph(&self, dataset: Dataset) -> dvm_graph::Graph {
        let divisor = self.scale.divisor(dataset);
        match &self.cache {
            Some(cache) => cache.get_or_generate(dataset, divisor),
            None => dataset.generate(divisor),
        }
    }

    /// Report cache statistics on stderr, if a cache is in use. Called by
    /// the grid runners once results are in; the format is stable so
    /// `reproduce_all.sh` can scrape the counts into `BENCH_sweep.json`.
    pub fn report_cache_stats(&self) {
        if let Some(cache) = &self.cache {
            if cache.hits() + cache.misses() > 0 {
                eprintln!(
                    "dataset-cache: hits={} misses={} rejected={} evicted={} dir={}",
                    cache.hits(),
                    cache.misses(),
                    cache.rejected(),
                    cache.evictions(),
                    cache.dir().display()
                );
            }
        }
        if let Some(reports) = &self.reports {
            if reports.hits() + reports.misses() > 0 {
                eprintln!(
                    "report-cache: hits={} misses={} evicted={} dir={}",
                    reports.hits(),
                    reports.misses(),
                    reports.evictions(),
                    reports.dir().display()
                );
            }
        }
    }

    /// The grid-defining flags every re-spawned process needs: scale,
    /// filters, jobs/lanes, caches, progress — minus any role flag.
    fn base_argv(&self) -> Vec<String> {
        let mut argv = vec!["--scale".to_string(), self.scale.name().to_string()];
        if let Some(datasets) = &self.datasets {
            argv.push("--datasets".to_string());
            argv.push(datasets.join(","));
        }
        if let Some(schemes) = &self.schemes {
            // Tokens are comma-free by construction (parsing split on
            // commas), so joining with ',' round-trips.
            argv.push("--schemes".to_string());
            argv.push(schemes.join(","));
        }
        argv.push("--jobs".to_string());
        argv.push(self.jobs.to_string());
        if self.lanes != 1 {
            argv.push("--lanes".to_string());
            argv.push(self.lanes.to_string());
        }
        if let Some(cache) = &self.cache {
            argv.push("--cache-dir".to_string());
            argv.push(cache.dir().display().to_string());
            if let Some(max) = self.cache_max_bytes {
                argv.push("--cache-max-bytes".to_string());
                argv.push(max.to_string());
            }
        }
        if let Some(reports) = &self.reports {
            argv.push("--report-cache".to_string());
            argv.push(reports.dir().display().to_string());
            if let Some(max) = self.report_cache_max_bytes {
                argv.push("--report-cache-max-bytes".to_string());
                argv.push(max.to_string());
            }
        }
        if self.progress {
            argv.push("--progress".to_string());
        }
        argv
    }

    /// The argv a coordinator hands to worker `index` of `count`:
    /// everything the worker needs to build the identical grid, minus the
    /// coordinator-only flags.
    pub fn worker_argv(
        &self,
        index: usize,
        count: usize,
        fragment: &std::path::Path,
    ) -> Vec<String> {
        let mut argv = self.base_argv();
        argv.push("--shard".to_string());
        argv.push(format!("{index}/{count}"));
        argv.push("--shard-out".to_string());
        argv.push(fragment.display().to_string());
        argv
    }

    /// The argv submitted with a `--farm` job: the same grid-defining
    /// flags as [`Self::worker_argv`], but with no shard assignment —
    /// farm workers append `--shard I/N --shard-out PATH` themselves
    /// per slice (and may override the cache paths with local ones).
    pub fn farm_argv(&self) -> Vec<String> {
        self.base_argv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchArgs, CliError> {
        BenchArgs::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_the_old_harness() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.scale, Scale::Quick);
        assert_eq!(args.jobs, 1);
        assert_eq!(args.lanes, 1);
        assert!(args.datasets.is_none() && args.json.is_none());
        assert_eq!(args.role(), ShardRole::Single);
        assert!(!args.progress && args.cache.is_none());
    }

    #[test]
    fn full_flag_set_parses() {
        let args = parse(&[
            "--scale",
            "smoke",
            "--datasets",
            "FR,NF",
            "--jobs",
            "0",
            "--json",
            "out.json",
            "--progress",
        ])
        .unwrap();
        assert_eq!(args.scale, Scale::Smoke);
        assert_eq!(
            args.datasets.as_deref(),
            Some(&["FR".to_string(), "NF".to_string()][..])
        );
        assert_eq!(args.jobs, 0);
        assert_eq!(args.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert!(args.progress);
        assert!(args.wants(Dataset::Flickr));
        assert!(!args.wants(Dataset::Wikipedia));
    }

    #[test]
    fn shard_roles_parse_and_exclude_each_other() {
        assert_eq!(
            parse(&["--shard", "1/3"]).unwrap().role(),
            ShardRole::Worker(Shard { index: 1, count: 3 })
        );
        assert_eq!(
            parse(&["--shards", "4"]).unwrap().role(),
            ShardRole::Coordinator(4)
        );
        assert_eq!(
            parse(&["--merge-dir", "d"]).unwrap().role(),
            ShardRole::Merge
        );
        assert!(parse(&["--shard", "3/3"]).is_err());
        assert!(parse(&["--shard", "x/3"]).is_err());
        assert!(parse(&["--shards", "0"]).is_err());
        assert!(parse(&["--shards", "2", "--shard", "0/2"]).is_err());
        assert!(parse(&["--shard-out", "f.json"]).is_err());
    }

    #[test]
    fn bad_shards_share_one_message() {
        // Every malformed shape — no slash, bad numbers, N = 0, I >= N —
        // produces the same diagnostic across all binaries.
        for bad in ["0/0", "3/3", "7/2", "x/3", "1/y", "2", "/", "1/", "-1/3"] {
            let msg = parse(&["--shard", bad]).unwrap_err().0;
            assert_eq!(
                msg,
                format!("--shard needs I/N with 0 <= I < N (e.g. 0/4), got '{bad}'")
            );
        }
    }

    #[test]
    fn farm_parses_and_excludes_worker_roles() {
        let args = parse(&["--farm", "127.0.0.1:9000"]).unwrap();
        assert_eq!(args.farm.as_deref(), Some("127.0.0.1:9000"));
        assert_eq!(args.role(), ShardRole::Farm);
        // --shards under --farm is the requested slice count, not a
        // local coordinator role.
        let args = parse(&["--farm", "host:1", "--shards", "4"]).unwrap();
        assert_eq!(args.role(), ShardRole::Farm);
        assert_eq!(args.shards, Some(4));
        for bad in ["nohost", "host:", ":9000", "host:notaport", "host:99999"] {
            assert!(parse(&["--farm", bad]).unwrap_err().0.contains("HOST:PORT"));
        }
        assert!(parse(&["--farm", "h:1", "--shard", "0/2"]).is_err());
        assert!(parse(&["--farm", "h:1", "--merge-dir", "d"]).is_err());
    }

    #[test]
    fn farm_argv_is_worker_argv_without_the_shard_tail() {
        let args = parse(&[
            "--farm",
            "h:1",
            "--scale",
            "smoke",
            "--jobs",
            "2",
            "--progress",
        ])
        .unwrap();
        let farm = args.farm_argv();
        let worker = args.worker_argv(0, 2, std::path::Path::new("f.json"));
        assert_eq!(worker[..farm.len()], farm[..]);
        assert_eq!(
            worker[farm.len()..],
            ["--shard", "0/2", "--shard-out", "f.json"]
        );
        assert!(!farm.iter().any(|a| a == "--farm" || a == "--shard"));
    }

    #[test]
    fn bad_input_is_described() {
        assert!(parse(&["--scale", "huge"])
            .unwrap_err()
            .0
            .contains("unknown scale"));
        assert!(parse(&["--datasets", "FR,Nope"])
            .unwrap_err()
            .0
            .contains("unknown dataset"));
        assert!(parse(&["--jobs", "many"])
            .unwrap_err()
            .0
            .contains("integer"));
        assert!(parse(&["--jobs"]).unwrap_err().0.contains("needs a value"));
        assert!(parse(&["--lanes", "wide"])
            .unwrap_err()
            .0
            .contains("integer"));
        assert!(parse(&["--frobnicate"]).unwrap_err().0.contains("usage:"));
    }

    #[test]
    fn cache_stats_needs_the_cache_dir() {
        assert!(parse(&["--cache-stats"])
            .unwrap_err()
            .0
            .contains("--cache-dir"));
        let dir = std::env::temp_dir().join(format!("dvm-cli-stats-{}", std::process::id()));
        let args = parse(&["--cache-stats", "--cache-dir", dir.to_str().unwrap()]).unwrap();
        assert!(args.cache_stats);
        let text = args.cache_stats_text();
        assert!(text.contains("absent") && text.contains("bytes total"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_sizes_parse_with_binary_suffixes() {
        assert_eq!(parse_byte_size("1536"), Some(1536));
        assert_eq!(parse_byte_size("64K"), Some(64 << 10));
        assert_eq!(parse_byte_size("512m"), Some(512 << 20));
        assert_eq!(parse_byte_size("8G"), Some(8u64 << 30));
        assert_eq!(parse_byte_size("1t"), Some(1u64 << 40));
        assert_eq!(parse_byte_size(""), None);
        assert_eq!(parse_byte_size("G"), None);
        assert_eq!(parse_byte_size("12x"), None);
        assert_eq!(parse_byte_size("99999999999999999999T"), None);
    }

    #[test]
    fn budget_flags_need_their_cache_and_reach_the_caches() {
        assert!(parse(&["--cache-max-bytes", "1G"])
            .unwrap_err()
            .0
            .contains("--cache-dir"));
        assert!(parse(&["--report-cache-max-bytes", "1G"])
            .unwrap_err()
            .0
            .contains("--report-cache"));
        assert!(parse(&["--cache-dir", "d", "--cache-max-bytes", "huge"])
            .unwrap_err()
            .0
            .contains("byte count"));

        let dir = std::env::temp_dir().join(format!("dvm-cli-budget-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache_dir = dir.join("cache");
        let report_dir = dir.join("reports");
        let args = parse(&[
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--cache-max-bytes",
            "2G",
            "--report-cache",
            report_dir.to_str().unwrap(),
            "--report-cache-max-bytes",
            "64M",
        ])
        .unwrap();
        assert_eq!(args.cache_max_bytes, Some(2 << 30));
        assert_eq!(
            args.cache.as_ref().unwrap().budget().max_bytes(),
            Some(2 << 30)
        );
        assert_eq!(
            args.reports.as_ref().unwrap().budget().max_bytes(),
            Some(64 << 20)
        );
        // Workers must enforce the same budgets on the shared dirs.
        let argv = args.worker_argv(0, 2, std::path::Path::new("frag.json"));
        let worker = BenchArgs::try_parse(argv).unwrap();
        assert_eq!(worker.cache_max_bytes, Some(2 << 30));
        assert_eq!(worker.report_cache_max_bytes, Some(64 << 20));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_stats_dump_lists_entries_and_evictions() {
        let dir = std::env::temp_dir().join(format!("dvm-cli-statsdump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = parse(&[
            "--scale",
            "smoke",
            "--cache-stats",
            "--cache-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        let cache = args.cache.as_ref().unwrap();
        cache.get_or_generate(Dataset::Flickr, Scale::Smoke.divisor(Dataset::Flickr));
        let text = args.cache_stats_text();
        assert!(
            text.contains("on-disk entries"),
            "missing entry dump:\n{text}"
        );
        assert!(text.contains("FR_div"), "missing per-entry line:\n{text}");
        assert!(
            text.contains("last-use"),
            "missing last-use column:\n{text}"
        );
        assert!(
            text.contains("cumulative evictions: 0; orphaned tmp files swept: 0"),
            "missing eviction/orphan summary:\n{text}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_cache_flag_opens_and_propagates_to_workers() {
        let dir = std::env::temp_dir().join(format!("dvm-cli-rc-{}", std::process::id()));
        let args = parse(&["--report-cache", dir.to_str().unwrap()]).unwrap();
        let reports = args.reports.as_ref().expect("report cache opened");
        assert_eq!(reports.dir(), dir.as_path());
        let argv = args.worker_argv(0, 2, std::path::Path::new("frag.json"));
        let pos = argv.iter().position(|a| a == "--report-cache").unwrap();
        assert_eq!(argv[pos + 1], dir.display().to_string());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schemes_flag_parses_and_resolves_through_the_registry() {
        let args = parse(&["--schemes", "DVM-PE+,SVA-Pf,4K-TLB+PWC"]).unwrap();
        assert_eq!(
            args.try_iommu_schemes(&[]).unwrap(),
            vec![SchemeId::DVM_PE_PLUS, SchemeId::SVA_PF, SchemeId::CONV_4K]
        );
        // No flag: the binary's defaults pass through untouched.
        let default = parse(&[]).unwrap();
        assert_eq!(
            default.try_iommu_schemes(&[SchemeId::IDEAL]).unwrap(),
            vec![SchemeId::IDEAL]
        );
        // Duplicates collapse, order follows the command line.
        let dup = parse(&["--schemes", "Ideal,DVM-BM,Ideal"]).unwrap();
        assert_eq!(
            dup.try_iommu_schemes(&[]).unwrap(),
            vec![SchemeId::IDEAL, SchemeId::DVM_BM]
        );
    }

    #[test]
    fn unknown_scheme_names_list_the_registry() {
        let args = parse(&["--schemes", "DVM-PE+,bogus"]).unwrap();
        let msg = args.try_iommu_schemes(&[]).unwrap_err().0;
        assert!(msg.contains("unknown scheme 'bogus'"), "{msg}");
        for name in SchemeId::registered_names() {
            assert!(msg.contains(name), "missing {name} in: {msg}");
        }
        assert!(parse(&["--schemes", "a,,b"])
            .unwrap_err()
            .0
            .contains("empty scheme name"));
    }

    #[test]
    fn scheme_columns_filter_by_name_case_insensitively() {
        let args = parse(&["--schemes", "thp,4k"]).unwrap();
        let columns = [("4K", 1u32), ("THP", 2), ("cDVM", 3)];
        let picked = args.try_scheme_columns(&columns, |c| c.0).unwrap();
        assert_eq!(picked, vec![("THP", 2), ("4K", 1)]);
        let bad = parse(&["--schemes", "nope"]).unwrap();
        let msg = bad.try_scheme_columns(&columns, |c| c.0).unwrap_err().0;
        assert!(
            msg.contains("unknown scheme 'nope'") && msg.contains("cDVM"),
            "{msg}"
        );
    }

    #[test]
    fn schemes_flag_reaches_workers() {
        let coordinator = parse(&["--schemes", "DVM-PE+,SVA-IOMMU"]).unwrap();
        let argv = coordinator.worker_argv(0, 2, std::path::Path::new("frag.json"));
        let worker = BenchArgs::try_parse(argv).unwrap();
        assert_eq!(worker.schemes, coordinator.schemes);
        assert_eq!(
            worker.try_iommu_schemes(&[]).unwrap(),
            vec![SchemeId::DVM_PE_PLUS, SchemeId::SVA_IOMMU]
        );
    }

    #[test]
    fn lanes_flag_parses_and_reaches_workers() {
        assert_eq!(parse(&["--lanes", "0"]).unwrap().lanes, 0);
        assert_eq!(parse(&["--lanes", "2"]).unwrap().lanes, 2);
        let coordinator = parse(&["--lanes", "2"]).unwrap();
        let argv = coordinator.worker_argv(0, 2, std::path::Path::new("frag.json"));
        let worker = BenchArgs::try_parse(argv).unwrap();
        assert_eq!(worker.lanes, 2);
        // The default stays off the worker command line.
        let plain = parse(&[]).unwrap();
        let argv = plain.worker_argv(0, 2, std::path::Path::new("frag.json"));
        assert!(!argv.iter().any(|a| a == "--lanes"));
    }

    #[test]
    fn worker_argv_round_trips_through_the_parser() {
        let coordinator = parse(&["--scale", "smoke", "--datasets", "FR", "--jobs", "2"]).unwrap();
        let argv = coordinator.worker_argv(1, 2, std::path::Path::new("frag.json"));
        let worker = BenchArgs::try_parse(argv).unwrap();
        assert_eq!(worker.scale, coordinator.scale);
        assert_eq!(worker.datasets, coordinator.datasets);
        assert_eq!(worker.jobs, coordinator.jobs);
        assert_eq!(
            worker.role(),
            ShardRole::Worker(Shard { index: 1, count: 2 })
        );
        assert_eq!(
            worker.shard_out.as_deref(),
            Some(std::path::Path::new("frag.json"))
        );
    }
}
