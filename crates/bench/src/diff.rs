//! Result diffing: compare two emitted documents (a committed golden vs
//! a fresh run) and report every divergence with a JSON-path label.
//!
//! The default comparison is exact — the whole point of the
//! deterministic emitter is that equivalent runs are byte-identical — but
//! a relative tolerance can be supplied for cross-machine comparisons
//! where a future change might legitimately perturb floating-point
//! results.

use crate::Json;

/// Compare `golden` against `fresh`, appending one line per divergence
/// (path, golden value, fresh value). `rel_tol == 0.0` demands exact
/// equality; a positive tolerance admits numeric drift up to
/// `rel_tol * max(|golden|, |fresh|)`.
pub fn diff_json(golden: &Json, fresh: &Json, rel_tol: f64) -> Vec<String> {
    let mut out = Vec::new();
    diff_at("$", golden, fresh, rel_tol, &mut out);
    out
}

fn numbers_close(a: &Json, b: &Json, rel_tol: f64) -> bool {
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            let scale = x.abs().max(y.abs());
            (x - y).abs() <= rel_tol * scale
        }
        _ => false,
    }
}

fn diff_at(path: &str, golden: &Json, fresh: &Json, rel_tol: f64, out: &mut Vec<String>) {
    if golden == fresh {
        return;
    }
    match (golden, fresh) {
        (Json::Obj(g), Json::Obj(f)) => {
            for (key, gv) in g {
                match fresh.get(key) {
                    Some(fv) => diff_at(&format!("{path}.{key}"), gv, fv, rel_tol, out),
                    None => out.push(format!("{path}.{key}: missing from fresh document")),
                }
            }
            for (key, _) in f {
                if golden.get(key).is_none() {
                    out.push(format!("{path}.{key}: not present in golden document"));
                }
            }
        }
        (Json::Arr(g), Json::Arr(f)) => {
            if g.len() != f.len() {
                out.push(format!(
                    "{path}: golden has {} elements, fresh has {}",
                    g.len(),
                    f.len()
                ));
                return;
            }
            for (i, (gv, fv)) in g.iter().zip(f).enumerate() {
                diff_at(&format!("{path}[{i}]"), gv, fv, rel_tol, out);
            }
        }
        _ if rel_tol > 0.0 && numbers_close(golden, fresh, rel_tol) => {}
        _ => out.push(format!("{path}: golden {golden} != fresh {fresh}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn identical_documents_have_no_diffs() {
        let doc = parse("{\"a\": [1, 2.5, \"x\"], \"b\": {\"c\": null}}").unwrap();
        assert!(diff_json(&doc, &doc, 0.0).is_empty());
    }

    #[test]
    fn divergences_are_path_labeled() {
        let golden = parse("{\"rows\": [{\"label\": \"a\", \"values\": [1, 2]}]}").unwrap();
        let fresh = parse("{\"rows\": [{\"label\": \"a\", \"values\": [1, 3]}]}").unwrap();
        let diffs = diff_json(&golden, &fresh, 0.0);
        assert_eq!(diffs, vec!["$.rows[0].values[1]: golden 2 != fresh 3"]);
    }

    #[test]
    fn missing_and_extra_keys_are_reported() {
        let golden = parse("{\"a\": 1, \"b\": 2}").unwrap();
        let fresh = parse("{\"a\": 1, \"c\": 3}").unwrap();
        let diffs = diff_json(&golden, &fresh, 0.0);
        assert_eq!(diffs.len(), 2);
        assert!(diffs[0].contains("$.b") && diffs[0].contains("missing"));
        assert!(diffs[1].contains("$.c") && diffs[1].contains("not present"));
    }

    #[test]
    fn length_mismatch_short_circuits() {
        let golden = parse("[1, 2, 3]").unwrap();
        let fresh = parse("[1]").unwrap();
        let diffs = diff_json(&golden, &fresh, 0.0);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("3 elements"));
    }

    #[test]
    fn relative_tolerance_admits_small_numeric_drift() {
        let golden = parse("{\"x\": 100.0, \"y\": \"s\"}").unwrap();
        let fresh = parse("{\"x\": 100.5, \"y\": \"s\"}").unwrap();
        assert_eq!(diff_json(&golden, &fresh, 0.0).len(), 1);
        assert!(diff_json(&golden, &fresh, 0.01).is_empty());
        assert_eq!(diff_json(&golden, &fresh, 0.001).len(), 1);
        // Tolerance never excuses non-numeric divergence.
        let fresh_str = parse("{\"x\": 100.0, \"y\": \"t\"}").unwrap();
        assert_eq!(diff_json(&golden, &fresh_str, 0.5).len(), 1);
    }

    #[test]
    fn integer_vs_float_of_same_value_is_exact_inequality_but_tolerant_match() {
        // An emitted 2.0 renders as "2" and parses back as UInt — these
        // never actually diverge in our own documents, but cross-tool
        // documents might mix kinds.
        let a = Json::UInt(2);
        let b = Json::Float(2.0);
        assert_eq!(diff_json(&a, &b, 0.0).len(), 1);
        assert!(diff_json(&a, &b, 1e-12).is_empty());
    }
}
