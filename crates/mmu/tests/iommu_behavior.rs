//! Scheme-specific IOMMU behaviour: energy attribution, walker occupancy,
//! DVM-BM's parallel TLB probe, flush semantics, and preload accounting.

use dvm_energy::{EnergyParams, MmEvent};
use dvm_mem::{BuddyAllocator, Dram, DramConfig, PhysMem};
use dvm_mmu::{Iommu, MemSystem, MmuConfig};
use dvm_pagetable::{PageTable, PermBitmap};
use dvm_types::{AccessKind, PageSize, Permission, VirtAddr};

struct Rig {
    mem: PhysMem,
    pt: PageTable,
    bitmap: Option<PermBitmap>,
    dram: Dram,
}

fn rig(config: MmuConfig, span: u64) -> Rig {
    let mut mem = PhysMem::new(1 << 18);
    let mut alloc = BuddyAllocator::new(1 << 18);
    let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
    let base = VirtAddr::new(64 << 20);
    let bitmap = if config == MmuConfig::DvmBitmap {
        Some(PermBitmap::new(&mut mem, &mut alloc, 1 << 30).unwrap())
    } else {
        None
    };
    match config {
        MmuConfig::Conventional { page_size } => pt
            .map_identity_leaves(
                &mut mem,
                &mut alloc,
                base,
                span,
                Permission::ReadWrite,
                page_size,
            )
            .unwrap(),
        _ => pt
            .map_identity_pe(&mut mem, &mut alloc, base, span, Permission::ReadWrite)
            .unwrap(),
    }
    if let Some(bm) = &bitmap {
        bm.set_bytes(&mut mem, base, span, Permission::ReadWrite);
    }
    Rig {
        mem,
        pt,
        bitmap,
        dram: Dram::new(DramConfig::default()),
    }
}

fn sweep(iommu: &mut Iommu, rig: &mut Rig, accesses: u64, stride: u64) {
    let base = VirtAddr::new(64 << 20);
    let mut sys = MemSystem::new(
        iommu,
        &rig.pt,
        rig.bitmap.as_ref(),
        &mut rig.mem,
        &mut rig.dram,
    );
    for i in 0..accesses {
        sys.access(base + (i * stride) % (32 << 20), AccessKind::Read)
            .unwrap();
    }
}

#[test]
fn conventional_charges_fa_tlb_energy_per_access() {
    let config = MmuConfig::Conventional {
        page_size: PageSize::Size4K,
    };
    let mut rig = rig(config, 32 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 1000, 64);
    assert_eq!(iommu.energy.count(MmEvent::FaTlbLookup), 1000);
    assert!(iommu.energy.count(MmEvent::PtcLookup) > 0);
}

#[test]
fn dvm_pe_never_touches_a_tlb() {
    let config = MmuConfig::DvmPe { preload: false };
    let mut rig = rig(config, 32 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 1000, 4096);
    assert_eq!(iommu.energy.count(MmEvent::FaTlbLookup), 0);
    assert_eq!(iommu.energy.count(MmEvent::SaTlbLookup), 0);
    assert!(iommu.energy.count(MmEvent::PtcLookup) >= 1000);
    assert!(iommu.tlb_stats().is_none());
}

#[test]
fn dvm_bm_probes_tlb_in_parallel_every_access() {
    let config = MmuConfig::DvmBitmap;
    let mut rig = rig(config, 32 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 500, 4096);
    // Both the bitmap cache and the fallback FA TLB burn energy on every
    // access — the reason DVM-BM saves less energy than DVM-PE.
    assert_eq!(iommu.energy.count(MmEvent::BitmapCacheLookup), 500);
    assert_eq!(iommu.energy.count(MmEvent::FaTlbLookup), 500);
    assert_eq!(iommu.stats.identity_validations.get(), 500);
    assert_eq!(iommu.stats.fallback_translations.get(), 0);
}

#[test]
fn walker_occupancy_orders_schemes() {
    // 4K walks keep the shared walker far busier than PE validation.
    let span = 32 << 20;
    let mut busy = Vec::new();
    for config in [
        MmuConfig::Conventional {
            page_size: PageSize::Size4K,
        },
        MmuConfig::DvmPe { preload: false },
        MmuConfig::Ideal,
    ] {
        let mut r = rig(config, span);
        let mut iommu = Iommu::new(config, EnergyParams::default());
        // Random-ish strided sweep touching many pages.
        sweep(&mut iommu, &mut r, 4000, 81 * 4096);
        busy.push(iommu.stats.walker_busy.get());
    }
    assert!(busy[0] > busy[1] * 3, "4K {} vs PE {}", busy[0], busy[1]);
    assert_eq!(busy[2], 0, "ideal never walks");
}

#[test]
fn flush_forgets_cached_state() {
    let config = MmuConfig::Conventional {
        page_size: PageSize::Size4K,
    };
    let mut rig = rig(config, 1 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 10, 64);
    let misses_before = iommu.tlb_stats().unwrap().misses();
    iommu.flush();
    sweep(&mut iommu, &mut rig, 10, 64);
    assert!(
        iommu.tlb_stats().unwrap().misses() > misses_before,
        "post-flush accesses must re-miss"
    );
}

#[test]
fn preload_counters_balance() {
    let config = MmuConfig::DvmPe { preload: true };
    let mut rig = rig(config, 1 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    let base = VirtAddr::new(64 << 20);
    let mut sys = MemSystem::new(&mut iommu, &rig.pt, None, &mut rig.mem, &mut rig.dram);
    for i in 0..100u64 {
        sys.read_u32(base + i * 4).unwrap();
    }
    for i in 0..50u64 {
        sys.write_u32(base + i * 4, 1).unwrap();
    }
    // Every read overlapped (identity), writes never preload.
    assert_eq!(iommu.stats.preload_overlaps.get(), 100);
    assert_eq!(iommu.stats.preload_squashes.get(), 0);
    assert_eq!(iommu.stats.accesses.get(), 150);
}

#[test]
fn reset_stats_keeps_cached_state() {
    let config = MmuConfig::Conventional {
        page_size: PageSize::Size2M,
    };
    let mut rig = rig(config, 4 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 100, 4096);
    iommu.reset_stats();
    assert_eq!(iommu.stats.accesses.get(), 0);
    assert_eq!(iommu.energy.total_pj(), 0.0);
    // The TLB is still warm: a re-sweep hits everywhere.
    sweep(&mut iommu, &mut rig, 100, 4096);
    assert_eq!(iommu.tlb_stats().unwrap().misses(), 0);
    assert_eq!(iommu.tlb_stats().unwrap().hits(), 100);
}
