//! Scheme-specific IOMMU behaviour: energy attribution, walker occupancy,
//! DVM-BM's parallel TLB probe, flush semantics, and preload accounting.

use dvm_energy::{EnergyParams, MmEvent};
use dvm_mem::{BuddyAllocator, Dram, DramConfig, PhysMem};
use dvm_mmu::{Iommu, MemSystem, SchemeId};
use dvm_pagetable::{PageTable, PermBitmap};
use dvm_types::{AccessKind, Permission, VirtAddr};

struct Rig {
    mem: PhysMem,
    pt: PageTable,
    bitmap: Option<PermBitmap>,
    dram: Dram,
}

fn rig(config: SchemeId, span: u64) -> Rig {
    let mut mem = PhysMem::new(1 << 18);
    let mut alloc = BuddyAllocator::new(1 << 18);
    let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
    let base = VirtAddr::new(64 << 20);
    let bitmap = if config.needs_bitmap() {
        Some(PermBitmap::new(&mut mem, &mut alloc, 1 << 30).unwrap())
    } else {
        None
    };
    match config.required_leaf_size() {
        Some(page_size) => pt
            .map_identity_leaves(
                &mut mem,
                &mut alloc,
                base,
                span,
                Permission::ReadWrite,
                page_size,
            )
            .unwrap(),
        None => pt
            .map_identity_pe(&mut mem, &mut alloc, base, span, Permission::ReadWrite)
            .unwrap(),
    }
    if let Some(bm) = &bitmap {
        bm.set_bytes(&mut mem, base, span, Permission::ReadWrite);
    }
    Rig {
        mem,
        pt,
        bitmap,
        dram: Dram::new(DramConfig::default()),
    }
}

fn sweep(iommu: &mut Iommu, rig: &mut Rig, accesses: u64, stride: u64) {
    let base = VirtAddr::new(64 << 20);
    let mut sys = MemSystem::new(
        iommu,
        &rig.pt,
        rig.bitmap.as_ref(),
        &mut rig.mem,
        &mut rig.dram,
    );
    for i in 0..accesses {
        sys.access(base + (i * stride) % (32 << 20), AccessKind::Read)
            .unwrap();
    }
}

#[test]
fn conventional_charges_fa_tlb_energy_per_access() {
    let config = SchemeId::CONV_4K;
    let mut rig = rig(config, 32 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 1000, 64);
    assert_eq!(iommu.energy.count(MmEvent::FaTlbLookup), 1000);
    assert!(iommu.energy.count(MmEvent::PtcLookup) > 0);
}

#[test]
fn dvm_pe_never_touches_a_tlb() {
    let config = SchemeId::DVM_PE;
    let mut rig = rig(config, 32 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 1000, 4096);
    assert_eq!(iommu.energy.count(MmEvent::FaTlbLookup), 0);
    assert_eq!(iommu.energy.count(MmEvent::SaTlbLookup), 0);
    assert!(iommu.energy.count(MmEvent::PtcLookup) >= 1000);
    assert!(iommu.tlb_stats().is_none());
}

#[test]
fn dvm_bm_probes_tlb_in_parallel_every_access() {
    let config = SchemeId::DVM_BM;
    let mut rig = rig(config, 32 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 500, 4096);
    // Both the bitmap cache and the fallback FA TLB burn energy on every
    // access — the reason DVM-BM saves less energy than DVM-PE.
    assert_eq!(iommu.energy.count(MmEvent::BitmapCacheLookup), 500);
    assert_eq!(iommu.energy.count(MmEvent::FaTlbLookup), 500);
    assert_eq!(iommu.stats.identity_validations.get(), 500);
    assert_eq!(iommu.stats.fallback_translations.get(), 0);
}

#[test]
fn walker_occupancy_orders_schemes() {
    // 4K walks keep the shared walker far busier than PE validation.
    let span = 32 << 20;
    let mut busy = Vec::new();
    for config in [SchemeId::CONV_4K, SchemeId::DVM_PE, SchemeId::IDEAL] {
        let mut r = rig(config, span);
        let mut iommu = Iommu::new(config, EnergyParams::default());
        // Random-ish strided sweep touching many pages.
        sweep(&mut iommu, &mut r, 4000, 81 * 4096);
        busy.push(iommu.stats.walker_busy.get());
    }
    assert!(busy[0] > busy[1] * 3, "4K {} vs PE {}", busy[0], busy[1]);
    assert_eq!(busy[2], 0, "ideal never walks");
}

#[test]
fn flush_forgets_cached_state() {
    let config = SchemeId::CONV_4K;
    let mut rig = rig(config, 1 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 10, 64);
    let misses_before = iommu.tlb_stats().unwrap().misses();
    iommu.flush();
    sweep(&mut iommu, &mut rig, 10, 64);
    assert!(
        iommu.tlb_stats().unwrap().misses() > misses_before,
        "post-flush accesses must re-miss"
    );
}

#[test]
fn preload_counters_balance() {
    let config = SchemeId::DVM_PE_PLUS;
    let mut rig = rig(config, 1 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    let base = VirtAddr::new(64 << 20);
    let mut sys = MemSystem::new(&mut iommu, &rig.pt, None, &mut rig.mem, &mut rig.dram);
    for i in 0..100u64 {
        sys.read_u32(base + i * 4).unwrap();
    }
    for i in 0..50u64 {
        sys.write_u32(base + i * 4, 1).unwrap();
    }
    // Every read overlapped (identity), writes never preload.
    assert_eq!(iommu.stats.preload_overlaps.get(), 100);
    assert_eq!(iommu.stats.preload_squashes.get(), 0);
    assert_eq!(iommu.stats.accesses.get(), 150);
}

#[test]
fn sva_pf_prefetches_the_next_page_into_the_tlb() {
    let config = SchemeId::SVA_PF;
    let mut rig = rig(config, 32 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    // A page-granular sequential scan: each miss prefetches the next
    // page, so the scan alternates miss / prefetched-hit (~50% hits;
    // without the prefetcher, 64 fresh pages would all miss).
    sweep(&mut iommu, &mut rig, 64, 4096);
    let prefetches = iommu.stats.tlb_prefetches.get();
    assert!(prefetches > 0, "sequential misses must prefetch");
    let stats = iommu.tlb_stats().unwrap();
    assert!(
        stats.hits() >= 30,
        "prefetched pages must hit: {} hits / {} misses",
        stats.hits(),
        stats.misses()
    );
    // The prefetch walks are real work: they show up in the walk count,
    // which is why the scheme loses bandwidth on random access.
    assert!(iommu.stats.walks.get() > stats.misses());
}

#[test]
fn sva_pf_flush_forgets_prefetch_history() {
    let config = SchemeId::SVA_PF;
    let mut rig = rig(config, 32 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 64, 4096);
    assert_ne!(iommu.scratch[0], 0, "dedup history recorded");
    iommu.flush();
    assert_eq!(iommu.scratch[0], 0, "flush clears scheme scratch");
    let prefetches_before = iommu.stats.tlb_prefetches.get();
    sweep(&mut iommu, &mut rig, 64, 4096);
    assert!(
        iommu.stats.tlb_prefetches.get() > prefetches_before,
        "post-flush misses must prefetch again"
    );
}

#[test]
fn sva_iommu_fetches_the_device_context_exactly_once() {
    let config = SchemeId::SVA_IOMMU;
    let mut rig = rig(config, 32 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    let base = VirtAddr::new(64 << 20);
    {
        let mut sys = MemSystem::new(
            &mut iommu,
            &rig.pt,
            rig.bitmap.as_ref(),
            &mut rig.mem,
            &mut rig.dram,
        );
        let first = sys.access(base, AccessKind::Read).unwrap();
        let second = sys.access(base, AccessKind::Read).unwrap();
        // The first access pays the DDT fetch on top of its walk; the
        // second hits both the cached context and the IOTLB.
        assert!(
            first > second,
            "DDT fetch charged once: {first} vs {second}"
        );
    }
    let refs_after_two = iommu.stats.walk_mem_refs.get();
    // Stay inside the already-cached first page: the context flag
    // survives across accesses, so the IOTLB-hit path issues no further
    // walks and no further DDT fetches.
    sweep(&mut iommu, &mut rig, 100, 8);
    assert_eq!(iommu.stats.walk_mem_refs.get(), refs_after_two);
    // A flush (context switch) drops the cached context.
    iommu.flush();
    assert_eq!(iommu.scratch[0], 0);
    {
        let mut sys = MemSystem::new(
            &mut iommu,
            &rig.pt,
            rig.bitmap.as_ref(),
            &mut rig.mem,
            &mut rig.dram,
        );
        sys.access(base, AccessKind::Read).unwrap();
    }
    assert_eq!(iommu.scratch[0], 1, "post-flush access re-fetches the DDT");
}

#[test]
fn reset_stats_keeps_cached_state() {
    let config = SchemeId::CONV_2M;
    let mut rig = rig(config, 4 << 20);
    let mut iommu = Iommu::new(config, EnergyParams::default());
    sweep(&mut iommu, &mut rig, 100, 4096);
    iommu.reset_stats();
    assert_eq!(iommu.stats.accesses.get(), 0);
    assert_eq!(iommu.energy.total_pj(), 0.0);
    // The TLB is still warm: a re-sweep hits everywhere.
    sweep(&mut iommu, &mut rig, 100, 4096);
    assert_eq!(iommu.tlb_stats().unwrap().misses(), 0);
    assert_eq!(iommu.tlb_stats().unwrap().hits(), 100);
}
