//! Translation lookaside buffer models.
//!
//! The paper's conventional-VM baselines use a 128-entry fully associative
//! TLB with 1-cycle lookup (Table 2); §6.3.1 also discusses set-associative
//! organizations (Intel uses 4-way), which we support for ablations. All
//! entries in one TLB instance translate a single page size — the OS layout
//! guarantees uniform page size per configuration (see `dvm-os`).

use dvm_sim::RatioStat;
use dvm_types::{PageSize, Permission, VirtAddr};

/// TLB organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Associativity {
    /// Fully associative (CAM): any entry anywhere.
    Full,
    /// Set associative with the given number of ways.
    SetAssociative {
        /// Ways per set.
        ways: u32,
    },
}

/// TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Organization.
    pub assoc: Associativity,
    /// Page size all entries translate.
    pub page_size: PageSize,
}

impl TlbConfig {
    /// The paper's accelerator TLB: 128-entry fully associative (Table 2).
    pub fn paper_accelerator(page_size: PageSize) -> Self {
        Self {
            entries: 128,
            assoc: Associativity::Full,
            page_size,
        }
    }
}

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number (at the TLB's page size).
    pub vpn: u64,
    /// Physical frame number (at the TLB's page size).
    pub pfn: u64,
    /// Page permissions.
    pub perms: Permission,
}

/// Sentinel "no slot" index for the intrusive recency list.
const NIL: u32 = u32::MAX;

/// Fibonacci multiplier; puts the VPN's entropy in the high bits, which
/// the multiply-shift index hash then selects.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

#[derive(Debug, Clone)]
struct Slot {
    entry: TlbEntry,
    prev: u32,
    next: u32,
}

/// Fully-associative store: a small open-addressed index (vpn → slot)
/// plus an intrusive doubly-linked recency list through the slot arena.
/// The list head is the least-recently-used entry — the exact victim the
/// original tick-scan implementation chose, since every lookup and
/// insert stamped a unique tick and `min_by_key` over unique ticks is
/// strict LRU order.
///
/// The index is a linear-probed power-of-two table at ≤ 25% load,
/// replacing a `HashMap` that dominated the lookup cost: the common hit
/// is now one multiply, one load and one compare. Deletion (on LRU
/// eviction) uses the classic backward-shift so no tombstones accrue.
#[derive(Debug, Clone)]
struct FullStore {
    /// Open-addressed index; entries are `slot + 1`, 0 = empty.
    idx: Box<[u32]>,
    /// `idx.len() - 1` (the table is a power of two).
    mask: usize,
    /// `64 - log2(idx.len())`: multiply-shift hash into the table.
    shift: u32,
    /// Slot arena; every slot is a live entry (eviction reuses in place).
    slots: Vec<Slot>,
    /// Least recently used slot.
    head: u32,
    /// Most recently used slot.
    tail: u32,
}

impl FullStore {
    fn new(capacity: usize) -> Self {
        let table = (capacity * 4).next_power_of_two().max(8);
        Self {
            idx: vec![0; table].into_boxed_slice(),
            mask: table - 1,
            shift: 64 - table.trailing_zeros(),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    #[inline]
    fn home(&self, vpn: u64) -> usize {
        (vpn.wrapping_mul(HASH_MUL) >> self.shift) as usize
    }

    /// Probe for `vpn`: `Ok(table position)` when present, `Err(first
    /// empty position)` when absent.
    #[inline]
    fn probe(&self, vpn: u64) -> Result<usize, usize> {
        let mut pos = self.home(vpn);
        loop {
            match self.idx[pos] {
                0 => return Err(pos),
                e if self.slots[(e - 1) as usize].entry.vpn == vpn => return Ok(pos),
                _ => pos = (pos + 1) & self.mask,
            }
        }
    }

    /// Backward-shift deletion at table position `pos`: re-home any
    /// displaced entries in the probe chain so lookups never need
    /// tombstones.
    fn remove_at(&mut self, mut pos: usize) {
        let mut next = (pos + 1) & self.mask;
        loop {
            let e = self.idx[next];
            if e == 0 {
                break;
            }
            let home = self.home(self.slots[(e - 1) as usize].entry.vpn);
            // The entry at `next` may fill the hole unless its home lies
            // cyclically within (pos, next] — moving it before its home
            // would break its own probe chain.
            let pinned = if pos <= next {
                home > pos && home <= next
            } else {
                home > pos || home <= next
            };
            if !pinned {
                self.idx[pos] = e;
                pos = next;
            }
            next = (next + 1) & self.mask;
        }
        self.idx[pos] = 0;
    }

    fn unlink(&mut self, i: u32) {
        let Slot { prev, next, .. } = self.slots[i as usize];
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_back(&mut self, i: u32) {
        self.slots[i as usize].prev = self.tail;
        self.slots[i as usize].next = NIL;
        match self.tail {
            NIL => self.head = i,
            t => self.slots[t as usize].next = i,
        }
        self.tail = i;
    }

    #[inline]
    fn touch(&mut self, i: u32) {
        if self.tail != i {
            self.unlink(i);
            self.push_back(i);
        }
    }

    #[inline]
    fn lookup(&mut self, vpn: u64) -> Option<TlbEntry> {
        let Ok(pos) = self.probe(vpn) else {
            return None;
        };
        let i = self.idx[pos] - 1;
        self.touch(i);
        Some(self.slots[i as usize].entry)
    }

    fn insert(&mut self, entry: TlbEntry, capacity: usize) {
        match self.probe(entry.vpn) {
            Ok(pos) => {
                let i = self.idx[pos] - 1;
                self.slots[i as usize].entry = entry;
                self.touch(i);
            }
            Err(empty) if self.slots.len() < capacity => {
                self.slots.push(Slot {
                    entry,
                    prev: NIL,
                    next: NIL,
                });
                let i = (self.slots.len() - 1) as u32;
                self.idx[empty] = i + 1;
                self.push_back(i);
            }
            Err(_) => {
                // Evict the LRU entry and reuse its slot. The deletion's
                // backward shift can move table entries, so re-probe for
                // the insertion position afterwards.
                let i = self.head;
                let victim_pos = self
                    .probe(self.slots[i as usize].entry.vpn)
                    .expect("LRU entry is indexed");
                self.remove_at(victim_pos);
                self.unlink(i);
                self.slots[i as usize].entry = entry;
                let empty = self.probe(entry.vpn).expect_err("vpn was absent");
                self.idx[empty] = i + 1;
                self.push_back(i);
            }
        }
    }

    fn clear(&mut self) {
        self.idx.fill(0);
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[derive(Debug, Clone)]
enum Store {
    /// Fully associative: O(1) per access.
    Full(FullStore),
    /// Per-set ways kept in recency order (index 0 = LRU): a hit or
    /// reinsert rotates the entry to the back, eviction pops the front.
    Sets(Vec<Vec<TlbEntry>>),
}

/// An LRU TLB.
///
/// # Examples
///
/// ```
/// use dvm_mmu::{Tlb, TlbConfig, TlbEntry};
/// use dvm_types::{PageSize, Permission, VirtAddr};
///
/// let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K));
/// let va = VirtAddr::new(0x1234_5000);
/// assert!(tlb.lookup(va).is_none());
/// tlb.insert(TlbEntry { vpn: va.vpn(PageSize::Size4K), pfn: 99, perms: Permission::ReadWrite });
/// assert_eq!(tlb.lookup(va).unwrap().pfn, 99);
/// assert_eq!(tlb.stats().hits(), 1);
/// assert_eq!(tlb.stats().misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    store: Store,
    stats: RatioStat,
}

impl Tlb {
    /// Build a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`, or if set-associative and `ways` is zero
    /// or does not divide `entries`.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB needs entries");
        let store = match config.assoc {
            Associativity::Full => Store::Full(FullStore::new(config.entries as usize)),
            Associativity::SetAssociative { ways } => {
                assert!(
                    ways > 0 && config.entries.is_multiple_of(ways),
                    "ways must divide entries"
                );
                let sets = (config.entries / ways) as usize;
                Store::Sets(vec![Vec::with_capacity(ways as usize); sets])
            }
        };
        Self {
            config,
            store,
            stats: RatioStat::new("tlb"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Page size this TLB translates.
    pub fn page_size(&self) -> PageSize {
        self.config.page_size
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &RatioStat {
        &self.stats
    }

    /// Look up the translation for `va`; records a hit or miss.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        let vpn = va.vpn(self.config.page_size);
        let found = match &mut self.store {
            Store::Full(store) => store.lookup(vpn),
            Store::Sets(sets) => {
                let nsets = sets.len() as u64;
                let set = &mut sets[(vpn % nsets) as usize];
                set.iter().position(|e| e.vpn == vpn).map(|pos| {
                    let entry = set.remove(pos);
                    set.push(entry);
                    entry
                })
            }
        };
        if found.is_some() {
            self.stats.hit();
        } else {
            self.stats.miss();
        }
        found
    }

    /// Insert a translation, evicting the LRU entry (of the relevant set)
    /// if full. Re-inserting an existing vpn replaces it.
    pub fn insert(&mut self, entry: TlbEntry) {
        match &mut self.store {
            Store::Full(store) => store.insert(entry, self.config.entries as usize),
            Store::Sets(sets) => {
                let nsets = sets.len() as u64;
                let ways = match self.config.assoc {
                    Associativity::SetAssociative { ways } => ways as usize,
                    Associativity::Full => unreachable!(),
                };
                let set = &mut sets[(entry.vpn % nsets) as usize];
                if let Some(pos) = set.iter().position(|e| e.vpn == entry.vpn) {
                    set.remove(pos);
                } else if set.len() >= ways {
                    set.remove(0);
                }
                set.push(entry);
            }
        }
    }

    /// Zero the hit/miss statistics (cached entries are kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Drop all entries (context switch / shootdown).
    pub fn flush(&mut self) {
        match &mut self.store {
            Store::Full(store) => store.clear(),
            Store::Sets(sets) => sets.iter_mut().for_each(Vec::clear),
        }
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        match &self.store {
            Store::Full(store) => store.slots.len(),
            Store::Sets(sets) => sets.iter().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn entry(vpn: u64) -> TlbEntry {
        TlbEntry {
            vpn,
            pfn: vpn + 1000,
            perms: Permission::ReadWrite,
        }
    }

    fn va_of(vpn: u64, ps: PageSize) -> VirtAddr {
        VirtAddr::new(vpn << ps.shift())
    }

    #[test]
    fn full_assoc_lru_eviction() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 4,
            assoc: Associativity::Full,
            page_size: PageSize::Size4K,
        });
        for vpn in 0..4 {
            tlb.insert(entry(vpn));
        }
        // Touch 0 so 1 becomes LRU.
        assert!(tlb.lookup(va_of(0, PageSize::Size4K)).is_some());
        tlb.insert(entry(99));
        assert!(tlb.lookup(va_of(0, PageSize::Size4K)).is_some());
        assert!(
            tlb.lookup(va_of(1, PageSize::Size4K)).is_none(),
            "1 was LRU"
        );
        assert!(tlb.lookup(va_of(99, PageSize::Size4K)).is_some());
        assert_eq!(tlb.occupancy(), 4);
    }

    #[test]
    fn set_assoc_conflicts_within_set() {
        // 4 entries, 2 ways -> 2 sets; vpns 0,2,4 all map to set 0.
        let mut tlb = Tlb::new(TlbConfig {
            entries: 4,
            assoc: Associativity::SetAssociative { ways: 2 },
            page_size: PageSize::Size4K,
        });
        tlb.insert(entry(0));
        tlb.insert(entry(2));
        tlb.insert(entry(4)); // evicts 0 (LRU in set 0)
        assert!(tlb.lookup(va_of(0, PageSize::Size4K)).is_none());
        assert!(tlb.lookup(va_of(2, PageSize::Size4K)).is_some());
        assert!(tlb.lookup(va_of(4, PageSize::Size4K)).is_some());
        // Set 1 untouched: odd vpn misses but has room.
        assert!(tlb.lookup(va_of(1, PageSize::Size4K)).is_none());
    }

    #[test]
    fn page_size_affects_vpn_extraction() {
        let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size2M));
        let va = VirtAddr::new(5 << 21 | 0x12345);
        tlb.insert(TlbEntry {
            vpn: 5,
            pfn: 7,
            perms: Permission::ReadOnly,
        });
        let hit = tlb.lookup(va).unwrap();
        assert_eq!(hit.pfn, 7);
        // A different 2M page misses.
        assert!(tlb.lookup(VirtAddr::new(6 << 21)).is_none());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 2,
            assoc: Associativity::SetAssociative { ways: 2 },
            page_size: PageSize::Size4K,
        });
        tlb.insert(entry(0));
        tlb.insert(TlbEntry {
            vpn: 0,
            pfn: 5,
            perms: Permission::ReadOnly,
        });
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.lookup(va_of(0, PageSize::Size4K)).unwrap().pfn, 5);
    }

    #[test]
    fn flush_empties() {
        let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K));
        tlb.insert(entry(1));
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert!(tlb.lookup(va_of(1, PageSize::Size4K)).is_none());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K));
        tlb.insert(entry(1));
        let _ = tlb.lookup(va_of(1, PageSize::Size4K));
        let _ = tlb.lookup(va_of(2, PageSize::Size4K));
        let _ = tlb.lookup(va_of(2, PageSize::Size4K));
        assert_eq!(tlb.stats().hits(), 1);
        assert_eq!(tlb.stats().misses(), 2);
    }

    #[test]
    #[should_panic(expected = "ways must divide")]
    fn bad_ways_rejected() {
        Tlb::new(TlbConfig {
            entries: 5,
            assoc: Associativity::SetAssociative { ways: 2 },
            page_size: PageSize::Size4K,
        });
    }

    /// The pre-optimization store: last-use ticks plus an O(n)
    /// `min_by_key` eviction scan. Kept verbatim as the oracle the O(1)
    /// replacement must match access-for-access.
    struct ScanLruTlb {
        config: TlbConfig,
        full: HashMap<u64, (TlbEntry, u64)>,
        sets: Vec<Vec<(TlbEntry, u64)>>,
        tick: u64,
    }

    impl ScanLruTlb {
        fn new(config: TlbConfig) -> Self {
            let nsets = match config.assoc {
                Associativity::Full => 0,
                Associativity::SetAssociative { ways } => (config.entries / ways) as usize,
            };
            Self {
                config,
                full: HashMap::new(),
                sets: vec![Vec::new(); nsets],
                tick: 0,
            }
        }

        fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
            let vpn = va.vpn(self.config.page_size);
            self.tick += 1;
            let tick = self.tick;
            match self.config.assoc {
                Associativity::Full => self.full.get_mut(&vpn).map(|slot| {
                    slot.1 = tick;
                    slot.0
                }),
                Associativity::SetAssociative { .. } => {
                    let nsets = self.sets.len() as u64;
                    let set = &mut self.sets[(vpn % nsets) as usize];
                    set.iter_mut().find(|(e, _)| e.vpn == vpn).map(|slot| {
                        slot.1 = tick;
                        slot.0
                    })
                }
            }
        }

        fn insert(&mut self, entry: TlbEntry) {
            self.tick += 1;
            let tick = self.tick;
            match self.config.assoc {
                Associativity::Full => {
                    if self.full.len() as u32 >= self.config.entries
                        && !self.full.contains_key(&entry.vpn)
                    {
                        if let Some((&victim, _)) =
                            self.full.iter().min_by_key(|(_, (_, last_use))| *last_use)
                        {
                            self.full.remove(&victim);
                        }
                    }
                    self.full.insert(entry.vpn, (entry, tick));
                }
                Associativity::SetAssociative { ways } => {
                    let nsets = self.sets.len() as u64;
                    let set = &mut self.sets[(entry.vpn % nsets) as usize];
                    if let Some(slot) = set.iter_mut().find(|(e, _)| e.vpn == entry.vpn) {
                        *slot = (entry, tick);
                        return;
                    }
                    if set.len() >= ways as usize {
                        let lru = set
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, (_, last_use))| *last_use)
                            .map(|(i, _)| i)
                            .expect("non-empty set");
                        set.swap_remove(lru);
                    }
                    set.push((entry, tick));
                }
            }
        }

        fn contents(&self) -> Vec<TlbEntry> {
            let mut all: Vec<TlbEntry> = match self.config.assoc {
                Associativity::Full => self.full.values().map(|(e, _)| *e).collect(),
                Associativity::SetAssociative { .. } => self
                    .sets
                    .iter()
                    .flat_map(|s| s.iter().map(|(e, _)| *e))
                    .collect(),
            };
            all.sort_by_key(|e| e.vpn);
            all
        }
    }

    impl Tlb {
        fn contents(&self) -> Vec<TlbEntry> {
            let mut all: Vec<TlbEntry> = match &self.store {
                Store::Full(store) => store.slots.iter().map(|s| s.entry).collect(),
                Store::Sets(sets) => sets.iter().flatten().copied().collect(),
            };
            all.sort_by_key(|e| e.vpn);
            all
        }
    }

    /// Drive identical randomized access streams through the tick-scan
    /// oracle and the O(1) store; every lookup result, every hit/miss,
    /// and the surviving entry set (hence the eviction sequence) must
    /// match at every step.
    fn assert_equivalent(config: TlbConfig, seed: u64) {
        use dvm_sim::DetRng;
        let mut rng = DetRng::new(seed);
        let mut oracle = ScanLruTlb::new(config);
        let mut tlb = Tlb::new(config);
        for step in 0..20_000 {
            let vpn = rng.skewed_below(64, 1.1);
            if rng.chance(0.5) {
                let va = VirtAddr::new(vpn << config.page_size.shift());
                assert_eq!(tlb.lookup(va), oracle.lookup(va), "step {step} vpn {vpn}");
            } else {
                let entry = TlbEntry {
                    vpn,
                    pfn: rng.below(1 << 20),
                    perms: Permission::ReadWrite,
                };
                tlb.insert(entry);
                oracle.insert(entry);
            }
            assert_eq!(tlb.contents(), oracle.contents(), "step {step}");
        }
        assert!(tlb.stats().total() > 0);
    }

    #[test]
    fn full_assoc_matches_scan_lru_oracle() {
        for seed in 0..4 {
            assert_equivalent(TlbConfig::paper_accelerator(PageSize::Size4K), seed);
            assert_equivalent(
                TlbConfig {
                    entries: 16,
                    assoc: Associativity::Full,
                    page_size: PageSize::Size4K,
                },
                seed + 100,
            );
        }
    }

    #[test]
    fn set_assoc_matches_scan_lru_oracle() {
        for seed in 0..4 {
            assert_equivalent(
                TlbConfig {
                    entries: 16,
                    assoc: Associativity::SetAssociative { ways: 4 },
                    page_size: PageSize::Size4K,
                },
                seed,
            );
            assert_equivalent(
                TlbConfig {
                    entries: 8,
                    assoc: Associativity::SetAssociative { ways: 2 },
                    page_size: PageSize::Size2M,
                },
                seed + 50,
            );
        }
    }
}
