//! Translation lookaside buffer models.
//!
//! The paper's conventional-VM baselines use a 128-entry fully associative
//! TLB with 1-cycle lookup (Table 2); §6.3.1 also discusses set-associative
//! organizations (Intel uses 4-way), which we support for ablations. All
//! entries in one TLB instance translate a single page size — the OS layout
//! guarantees uniform page size per configuration (see `dvm-os`).

use dvm_sim::RatioStat;
use dvm_types::{PageSize, Permission, VirtAddr};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// TLB organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Associativity {
    /// Fully associative (CAM): any entry anywhere.
    Full,
    /// Set associative with the given number of ways.
    SetAssociative {
        /// Ways per set.
        ways: u32,
    },
}

/// TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Organization.
    pub assoc: Associativity,
    /// Page size all entries translate.
    pub page_size: PageSize,
}

impl TlbConfig {
    /// The paper's accelerator TLB: 128-entry fully associative (Table 2).
    pub fn paper_accelerator(page_size: PageSize) -> Self {
        Self {
            entries: 128,
            assoc: Associativity::Full,
            page_size,
        }
    }
}

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number (at the TLB's page size).
    pub vpn: u64,
    /// Physical frame number (at the TLB's page size).
    pub pfn: u64,
    /// Page permissions.
    pub perms: Permission,
}

/// Sentinel "no slot" index for the intrusive recency list.
const NIL: u32 = u32::MAX;

/// Multiply-shift hasher for u64 VPN keys. The default SipHash dominated
/// the fully-associative lookup cost; a Fibonacci multiply puts the key's
/// entropy in the high bits, which is exactly where hashbrown looks.
#[derive(Debug, Clone, Default)]
struct VpnHasher(u64);

impl Hasher for VpnHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("VPN keys hash through write_u64");
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

#[derive(Debug, Clone)]
struct Slot {
    entry: TlbEntry,
    prev: u32,
    next: u32,
}

/// Fully-associative store: O(1) hash lookup plus an intrusive
/// doubly-linked recency list through the slot arena. The list head is
/// the least-recently-used entry — the exact victim the previous
/// tick-scan implementation chose, since every lookup and insert stamped
/// a unique tick and `min_by_key` over unique ticks is strict LRU order.
#[derive(Debug, Clone)]
struct FullStore {
    map: HashMap<u64, u32, BuildHasherDefault<VpnHasher>>,
    slots: Vec<Slot>,
    /// Least recently used slot.
    head: u32,
    /// Most recently used slot.
    tail: u32,
}

impl FullStore {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity_and_hasher(capacity, Default::default()),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: u32) {
        let Slot { prev, next, .. } = self.slots[i as usize];
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_back(&mut self, i: u32) {
        self.slots[i as usize].prev = self.tail;
        self.slots[i as usize].next = NIL;
        match self.tail {
            NIL => self.head = i,
            t => self.slots[t as usize].next = i,
        }
        self.tail = i;
    }

    fn touch(&mut self, i: u32) {
        if self.tail != i {
            self.unlink(i);
            self.push_back(i);
        }
    }

    fn lookup(&mut self, vpn: u64) -> Option<TlbEntry> {
        let i = *self.map.get(&vpn)?;
        self.touch(i);
        Some(self.slots[i as usize].entry)
    }

    fn insert(&mut self, entry: TlbEntry, capacity: usize) {
        if let Some(&i) = self.map.get(&entry.vpn) {
            self.slots[i as usize].entry = entry;
            self.touch(i);
            return;
        }
        let i = if self.map.len() >= capacity {
            let i = self.head;
            self.map.remove(&self.slots[i as usize].entry.vpn);
            self.unlink(i);
            self.slots[i as usize].entry = entry;
            i
        } else {
            self.slots.push(Slot {
                entry,
                prev: NIL,
                next: NIL,
            });
            (self.slots.len() - 1) as u32
        };
        self.map.insert(entry.vpn, i);
        self.push_back(i);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

#[derive(Debug, Clone)]
enum Store {
    /// Fully associative: O(1) per access.
    Full(FullStore),
    /// Per-set ways kept in recency order (index 0 = LRU): a hit or
    /// reinsert rotates the entry to the back, eviction pops the front.
    Sets(Vec<Vec<TlbEntry>>),
}

/// An LRU TLB.
///
/// # Examples
///
/// ```
/// use dvm_mmu::{Tlb, TlbConfig, TlbEntry};
/// use dvm_types::{PageSize, Permission, VirtAddr};
///
/// let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K));
/// let va = VirtAddr::new(0x1234_5000);
/// assert!(tlb.lookup(va).is_none());
/// tlb.insert(TlbEntry { vpn: va.vpn(PageSize::Size4K), pfn: 99, perms: Permission::ReadWrite });
/// assert_eq!(tlb.lookup(va).unwrap().pfn, 99);
/// assert_eq!(tlb.stats().hits(), 1);
/// assert_eq!(tlb.stats().misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    store: Store,
    stats: RatioStat,
}

impl Tlb {
    /// Build a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`, or if set-associative and `ways` is zero
    /// or does not divide `entries`.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB needs entries");
        let store = match config.assoc {
            Associativity::Full => Store::Full(FullStore::new(config.entries as usize)),
            Associativity::SetAssociative { ways } => {
                assert!(
                    ways > 0 && config.entries.is_multiple_of(ways),
                    "ways must divide entries"
                );
                let sets = (config.entries / ways) as usize;
                Store::Sets(vec![Vec::with_capacity(ways as usize); sets])
            }
        };
        Self {
            config,
            store,
            stats: RatioStat::new("tlb"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Page size this TLB translates.
    pub fn page_size(&self) -> PageSize {
        self.config.page_size
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &RatioStat {
        &self.stats
    }

    /// Look up the translation for `va`; records a hit or miss.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        let vpn = va.vpn(self.config.page_size);
        let found = match &mut self.store {
            Store::Full(store) => store.lookup(vpn),
            Store::Sets(sets) => {
                let nsets = sets.len() as u64;
                let set = &mut sets[(vpn % nsets) as usize];
                set.iter().position(|e| e.vpn == vpn).map(|pos| {
                    let entry = set.remove(pos);
                    set.push(entry);
                    entry
                })
            }
        };
        if found.is_some() {
            self.stats.hit();
        } else {
            self.stats.miss();
        }
        found
    }

    /// Insert a translation, evicting the LRU entry (of the relevant set)
    /// if full. Re-inserting an existing vpn replaces it.
    pub fn insert(&mut self, entry: TlbEntry) {
        match &mut self.store {
            Store::Full(store) => store.insert(entry, self.config.entries as usize),
            Store::Sets(sets) => {
                let nsets = sets.len() as u64;
                let ways = match self.config.assoc {
                    Associativity::SetAssociative { ways } => ways as usize,
                    Associativity::Full => unreachable!(),
                };
                let set = &mut sets[(entry.vpn % nsets) as usize];
                if let Some(pos) = set.iter().position(|e| e.vpn == entry.vpn) {
                    set.remove(pos);
                } else if set.len() >= ways {
                    set.remove(0);
                }
                set.push(entry);
            }
        }
    }

    /// Zero the hit/miss statistics (cached entries are kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Drop all entries (context switch / shootdown).
    pub fn flush(&mut self) {
        match &mut self.store {
            Store::Full(store) => store.clear(),
            Store::Sets(sets) => sets.iter_mut().for_each(Vec::clear),
        }
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        match &self.store {
            Store::Full(store) => store.map.len(),
            Store::Sets(sets) => sets.iter().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u64) -> TlbEntry {
        TlbEntry {
            vpn,
            pfn: vpn + 1000,
            perms: Permission::ReadWrite,
        }
    }

    fn va_of(vpn: u64, ps: PageSize) -> VirtAddr {
        VirtAddr::new(vpn << ps.shift())
    }

    #[test]
    fn full_assoc_lru_eviction() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 4,
            assoc: Associativity::Full,
            page_size: PageSize::Size4K,
        });
        for vpn in 0..4 {
            tlb.insert(entry(vpn));
        }
        // Touch 0 so 1 becomes LRU.
        assert!(tlb.lookup(va_of(0, PageSize::Size4K)).is_some());
        tlb.insert(entry(99));
        assert!(tlb.lookup(va_of(0, PageSize::Size4K)).is_some());
        assert!(
            tlb.lookup(va_of(1, PageSize::Size4K)).is_none(),
            "1 was LRU"
        );
        assert!(tlb.lookup(va_of(99, PageSize::Size4K)).is_some());
        assert_eq!(tlb.occupancy(), 4);
    }

    #[test]
    fn set_assoc_conflicts_within_set() {
        // 4 entries, 2 ways -> 2 sets; vpns 0,2,4 all map to set 0.
        let mut tlb = Tlb::new(TlbConfig {
            entries: 4,
            assoc: Associativity::SetAssociative { ways: 2 },
            page_size: PageSize::Size4K,
        });
        tlb.insert(entry(0));
        tlb.insert(entry(2));
        tlb.insert(entry(4)); // evicts 0 (LRU in set 0)
        assert!(tlb.lookup(va_of(0, PageSize::Size4K)).is_none());
        assert!(tlb.lookup(va_of(2, PageSize::Size4K)).is_some());
        assert!(tlb.lookup(va_of(4, PageSize::Size4K)).is_some());
        // Set 1 untouched: odd vpn misses but has room.
        assert!(tlb.lookup(va_of(1, PageSize::Size4K)).is_none());
    }

    #[test]
    fn page_size_affects_vpn_extraction() {
        let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size2M));
        let va = VirtAddr::new(5 << 21 | 0x12345);
        tlb.insert(TlbEntry {
            vpn: 5,
            pfn: 7,
            perms: Permission::ReadOnly,
        });
        let hit = tlb.lookup(va).unwrap();
        assert_eq!(hit.pfn, 7);
        // A different 2M page misses.
        assert!(tlb.lookup(VirtAddr::new(6 << 21)).is_none());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 2,
            assoc: Associativity::SetAssociative { ways: 2 },
            page_size: PageSize::Size4K,
        });
        tlb.insert(entry(0));
        tlb.insert(TlbEntry {
            vpn: 0,
            pfn: 5,
            perms: Permission::ReadOnly,
        });
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.lookup(va_of(0, PageSize::Size4K)).unwrap().pfn, 5);
    }

    #[test]
    fn flush_empties() {
        let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K));
        tlb.insert(entry(1));
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert!(tlb.lookup(va_of(1, PageSize::Size4K)).is_none());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K));
        tlb.insert(entry(1));
        let _ = tlb.lookup(va_of(1, PageSize::Size4K));
        let _ = tlb.lookup(va_of(2, PageSize::Size4K));
        let _ = tlb.lookup(va_of(2, PageSize::Size4K));
        assert_eq!(tlb.stats().hits(), 1);
        assert_eq!(tlb.stats().misses(), 2);
    }

    #[test]
    #[should_panic(expected = "ways must divide")]
    fn bad_ways_rejected() {
        Tlb::new(TlbConfig {
            entries: 5,
            assoc: Associativity::SetAssociative { ways: 2 },
            page_size: PageSize::Size4K,
        });
    }

    /// The pre-optimization store: last-use ticks plus an O(n)
    /// `min_by_key` eviction scan. Kept verbatim as the oracle the O(1)
    /// replacement must match access-for-access.
    struct ScanLruTlb {
        config: TlbConfig,
        full: HashMap<u64, (TlbEntry, u64)>,
        sets: Vec<Vec<(TlbEntry, u64)>>,
        tick: u64,
    }

    impl ScanLruTlb {
        fn new(config: TlbConfig) -> Self {
            let nsets = match config.assoc {
                Associativity::Full => 0,
                Associativity::SetAssociative { ways } => (config.entries / ways) as usize,
            };
            Self {
                config,
                full: HashMap::new(),
                sets: vec![Vec::new(); nsets],
                tick: 0,
            }
        }

        fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
            let vpn = va.vpn(self.config.page_size);
            self.tick += 1;
            let tick = self.tick;
            match self.config.assoc {
                Associativity::Full => self.full.get_mut(&vpn).map(|slot| {
                    slot.1 = tick;
                    slot.0
                }),
                Associativity::SetAssociative { .. } => {
                    let nsets = self.sets.len() as u64;
                    let set = &mut self.sets[(vpn % nsets) as usize];
                    set.iter_mut().find(|(e, _)| e.vpn == vpn).map(|slot| {
                        slot.1 = tick;
                        slot.0
                    })
                }
            }
        }

        fn insert(&mut self, entry: TlbEntry) {
            self.tick += 1;
            let tick = self.tick;
            match self.config.assoc {
                Associativity::Full => {
                    if self.full.len() as u32 >= self.config.entries
                        && !self.full.contains_key(&entry.vpn)
                    {
                        if let Some((&victim, _)) =
                            self.full.iter().min_by_key(|(_, (_, last_use))| *last_use)
                        {
                            self.full.remove(&victim);
                        }
                    }
                    self.full.insert(entry.vpn, (entry, tick));
                }
                Associativity::SetAssociative { ways } => {
                    let nsets = self.sets.len() as u64;
                    let set = &mut self.sets[(entry.vpn % nsets) as usize];
                    if let Some(slot) = set.iter_mut().find(|(e, _)| e.vpn == entry.vpn) {
                        *slot = (entry, tick);
                        return;
                    }
                    if set.len() >= ways as usize {
                        let lru = set
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, (_, last_use))| *last_use)
                            .map(|(i, _)| i)
                            .expect("non-empty set");
                        set.swap_remove(lru);
                    }
                    set.push((entry, tick));
                }
            }
        }

        fn contents(&self) -> Vec<TlbEntry> {
            let mut all: Vec<TlbEntry> = match self.config.assoc {
                Associativity::Full => self.full.values().map(|(e, _)| *e).collect(),
                Associativity::SetAssociative { .. } => self
                    .sets
                    .iter()
                    .flat_map(|s| s.iter().map(|(e, _)| *e))
                    .collect(),
            };
            all.sort_by_key(|e| e.vpn);
            all
        }
    }

    impl Tlb {
        fn contents(&self) -> Vec<TlbEntry> {
            let mut all: Vec<TlbEntry> = match &self.store {
                Store::Full(store) => store.slots[..]
                    .iter()
                    .filter(|s| store.map.contains_key(&s.entry.vpn))
                    .map(|s| s.entry)
                    .collect(),
                Store::Sets(sets) => sets.iter().flatten().copied().collect(),
            };
            all.sort_by_key(|e| e.vpn);
            all
        }
    }

    /// Drive identical randomized access streams through the tick-scan
    /// oracle and the O(1) store; every lookup result, every hit/miss,
    /// and the surviving entry set (hence the eviction sequence) must
    /// match at every step.
    fn assert_equivalent(config: TlbConfig, seed: u64) {
        use dvm_sim::DetRng;
        let mut rng = DetRng::new(seed);
        let mut oracle = ScanLruTlb::new(config);
        let mut tlb = Tlb::new(config);
        for step in 0..20_000 {
            let vpn = rng.skewed_below(64, 1.1);
            if rng.chance(0.5) {
                let va = VirtAddr::new(vpn << config.page_size.shift());
                assert_eq!(tlb.lookup(va), oracle.lookup(va), "step {step} vpn {vpn}");
            } else {
                let entry = TlbEntry {
                    vpn,
                    pfn: rng.below(1 << 20),
                    perms: Permission::ReadWrite,
                };
                tlb.insert(entry);
                oracle.insert(entry);
            }
            assert_eq!(tlb.contents(), oracle.contents(), "step {step}");
        }
        assert!(tlb.stats().total() > 0);
    }

    #[test]
    fn full_assoc_matches_scan_lru_oracle() {
        for seed in 0..4 {
            assert_equivalent(TlbConfig::paper_accelerator(PageSize::Size4K), seed);
            assert_equivalent(
                TlbConfig {
                    entries: 16,
                    assoc: Associativity::Full,
                    page_size: PageSize::Size4K,
                },
                seed + 100,
            );
        }
    }

    #[test]
    fn set_assoc_matches_scan_lru_oracle() {
        for seed in 0..4 {
            assert_equivalent(
                TlbConfig {
                    entries: 16,
                    assoc: Associativity::SetAssociative { ways: 4 },
                    page_size: PageSize::Size4K,
                },
                seed,
            );
            assert_equivalent(
                TlbConfig {
                    entries: 8,
                    assoc: Associativity::SetAssociative { ways: 2 },
                    page_size: PageSize::Size2M,
                },
                seed + 50,
            );
        }
    }
}
