//! Translation lookaside buffer models.
//!
//! The paper's conventional-VM baselines use a 128-entry fully associative
//! TLB with 1-cycle lookup (Table 2); §6.3.1 also discusses set-associative
//! organizations (Intel uses 4-way), which we support for ablations. All
//! entries in one TLB instance translate a single page size — the OS layout
//! guarantees uniform page size per configuration (see `dvm-os`).

use dvm_sim::RatioStat;
use dvm_types::{PageSize, Permission, VirtAddr};
use std::collections::HashMap;

/// TLB organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Associativity {
    /// Fully associative (CAM): any entry anywhere.
    Full,
    /// Set associative with the given number of ways.
    SetAssociative {
        /// Ways per set.
        ways: u32,
    },
}

/// TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Organization.
    pub assoc: Associativity,
    /// Page size all entries translate.
    pub page_size: PageSize,
}

impl TlbConfig {
    /// The paper's accelerator TLB: 128-entry fully associative (Table 2).
    pub fn paper_accelerator(page_size: PageSize) -> Self {
        Self {
            entries: 128,
            assoc: Associativity::Full,
            page_size,
        }
    }
}

/// One cached translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page number (at the TLB's page size).
    pub vpn: u64,
    /// Physical frame number (at the TLB's page size).
    pub pfn: u64,
    /// Page permissions.
    pub perms: Permission,
}

#[derive(Debug, Clone)]
enum Store {
    /// vpn -> (entry, last-use tick); O(1) lookup, O(n) eviction scan.
    Full(HashMap<u64, (TlbEntry, u64)>),
    /// Per-set ways: (entry, last-use tick).
    Sets(Vec<Vec<(TlbEntry, u64)>>),
}

/// An LRU TLB.
///
/// # Examples
///
/// ```
/// use dvm_mmu::{Tlb, TlbConfig, TlbEntry};
/// use dvm_types::{PageSize, Permission, VirtAddr};
///
/// let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K));
/// let va = VirtAddr::new(0x1234_5000);
/// assert!(tlb.lookup(va).is_none());
/// tlb.insert(TlbEntry { vpn: va.vpn(PageSize::Size4K), pfn: 99, perms: Permission::ReadWrite });
/// assert_eq!(tlb.lookup(va).unwrap().pfn, 99);
/// assert_eq!(tlb.stats().hits(), 1);
/// assert_eq!(tlb.stats().misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    store: Store,
    tick: u64,
    stats: RatioStat,
}

impl Tlb {
    /// Build a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries == 0`, or if set-associative and `ways` is zero
    /// or does not divide `entries`.
    pub fn new(config: TlbConfig) -> Self {
        assert!(config.entries > 0, "TLB needs entries");
        let store = match config.assoc {
            Associativity::Full => Store::Full(HashMap::with_capacity(config.entries as usize)),
            Associativity::SetAssociative { ways } => {
                assert!(
                    ways > 0 && config.entries.is_multiple_of(ways),
                    "ways must divide entries"
                );
                let sets = (config.entries / ways) as usize;
                Store::Sets(vec![Vec::with_capacity(ways as usize); sets])
            }
        };
        Self {
            config,
            store,
            tick: 0,
            stats: RatioStat::new("tlb"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Page size this TLB translates.
    pub fn page_size(&self) -> PageSize {
        self.config.page_size
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> &RatioStat {
        &self.stats
    }

    /// Look up the translation for `va`; records a hit or miss.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        let vpn = va.vpn(self.config.page_size);
        self.tick += 1;
        let tick = self.tick;
        let found = match &mut self.store {
            Store::Full(map) => map.get_mut(&vpn).map(|slot| {
                slot.1 = tick;
                slot.0
            }),
            Store::Sets(sets) => {
                let nsets = sets.len() as u64;
                let set = &mut sets[(vpn % nsets) as usize];
                set.iter_mut().find(|(e, _)| e.vpn == vpn).map(|slot| {
                    slot.1 = tick;
                    slot.0
                })
            }
        };
        if found.is_some() {
            self.stats.hit();
        } else {
            self.stats.miss();
        }
        found
    }

    /// Insert a translation, evicting the LRU entry (of the relevant set)
    /// if full. Re-inserting an existing vpn replaces it.
    pub fn insert(&mut self, entry: TlbEntry) {
        self.tick += 1;
        let tick = self.tick;
        match &mut self.store {
            Store::Full(map) => {
                if map.len() as u32 >= self.config.entries && !map.contains_key(&entry.vpn) {
                    if let Some((&victim, _)) =
                        map.iter().min_by_key(|(_, (_, last_use))| *last_use)
                    {
                        map.remove(&victim);
                    }
                }
                map.insert(entry.vpn, (entry, tick));
            }
            Store::Sets(sets) => {
                let nsets = sets.len() as u64;
                let ways = match self.config.assoc {
                    Associativity::SetAssociative { ways } => ways as usize,
                    Associativity::Full => unreachable!(),
                };
                let set = &mut sets[(entry.vpn % nsets) as usize];
                if let Some(slot) = set.iter_mut().find(|(e, _)| e.vpn == entry.vpn) {
                    *slot = (entry, tick);
                    return;
                }
                if set.len() >= ways {
                    let lru = set
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, (_, last_use))| *last_use)
                        .map(|(i, _)| i)
                        .expect("non-empty set");
                    set.swap_remove(lru);
                }
                set.push((entry, tick));
            }
        }
    }

    /// Zero the hit/miss statistics (cached entries are kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Drop all entries (context switch / shootdown).
    pub fn flush(&mut self) {
        match &mut self.store {
            Store::Full(map) => map.clear(),
            Store::Sets(sets) => sets.iter_mut().for_each(Vec::clear),
        }
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        match &self.store {
            Store::Full(map) => map.len(),
            Store::Sets(sets) => sets.iter().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(vpn: u64) -> TlbEntry {
        TlbEntry {
            vpn,
            pfn: vpn + 1000,
            perms: Permission::ReadWrite,
        }
    }

    fn va_of(vpn: u64, ps: PageSize) -> VirtAddr {
        VirtAddr::new(vpn << ps.shift())
    }

    #[test]
    fn full_assoc_lru_eviction() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 4,
            assoc: Associativity::Full,
            page_size: PageSize::Size4K,
        });
        for vpn in 0..4 {
            tlb.insert(entry(vpn));
        }
        // Touch 0 so 1 becomes LRU.
        assert!(tlb.lookup(va_of(0, PageSize::Size4K)).is_some());
        tlb.insert(entry(99));
        assert!(tlb.lookup(va_of(0, PageSize::Size4K)).is_some());
        assert!(
            tlb.lookup(va_of(1, PageSize::Size4K)).is_none(),
            "1 was LRU"
        );
        assert!(tlb.lookup(va_of(99, PageSize::Size4K)).is_some());
        assert_eq!(tlb.occupancy(), 4);
    }

    #[test]
    fn set_assoc_conflicts_within_set() {
        // 4 entries, 2 ways -> 2 sets; vpns 0,2,4 all map to set 0.
        let mut tlb = Tlb::new(TlbConfig {
            entries: 4,
            assoc: Associativity::SetAssociative { ways: 2 },
            page_size: PageSize::Size4K,
        });
        tlb.insert(entry(0));
        tlb.insert(entry(2));
        tlb.insert(entry(4)); // evicts 0 (LRU in set 0)
        assert!(tlb.lookup(va_of(0, PageSize::Size4K)).is_none());
        assert!(tlb.lookup(va_of(2, PageSize::Size4K)).is_some());
        assert!(tlb.lookup(va_of(4, PageSize::Size4K)).is_some());
        // Set 1 untouched: odd vpn misses but has room.
        assert!(tlb.lookup(va_of(1, PageSize::Size4K)).is_none());
    }

    #[test]
    fn page_size_affects_vpn_extraction() {
        let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size2M));
        let va = VirtAddr::new(5 << 21 | 0x12345);
        tlb.insert(TlbEntry {
            vpn: 5,
            pfn: 7,
            perms: Permission::ReadOnly,
        });
        let hit = tlb.lookup(va).unwrap();
        assert_eq!(hit.pfn, 7);
        // A different 2M page misses.
        assert!(tlb.lookup(VirtAddr::new(6 << 21)).is_none());
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut tlb = Tlb::new(TlbConfig {
            entries: 2,
            assoc: Associativity::SetAssociative { ways: 2 },
            page_size: PageSize::Size4K,
        });
        tlb.insert(entry(0));
        tlb.insert(TlbEntry {
            vpn: 0,
            pfn: 5,
            perms: Permission::ReadOnly,
        });
        assert_eq!(tlb.occupancy(), 1);
        assert_eq!(tlb.lookup(va_of(0, PageSize::Size4K)).unwrap().pfn, 5);
    }

    #[test]
    fn flush_empties() {
        let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K));
        tlb.insert(entry(1));
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert!(tlb.lookup(va_of(1, PageSize::Size4K)).is_none());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut tlb = Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K));
        tlb.insert(entry(1));
        let _ = tlb.lookup(va_of(1, PageSize::Size4K));
        let _ = tlb.lookup(va_of(2, PageSize::Size4K));
        let _ = tlb.lookup(va_of(2, PageSize::Size4K));
        assert_eq!(tlb.stats().hits(), 1);
        assert_eq!(tlb.stats().misses(), 2);
    }

    #[test]
    #[should_panic(expected = "ways must divide")]
    fn bad_ways_rejected() {
        Tlb::new(TlbConfig {
            entries: 5,
            assoc: Associativity::SetAssociative { ways: 2 },
            page_size: PageSize::Size4K,
        });
    }
}
