//! Per-lane translation state for the intra-unit lane pipeline.
//!
//! The accelerator's two-lane mode (see `dvm-accel`) splits one simulation
//! unit into a *functional* lane that executes the workload and a *timing*
//! lane that replays the exact access stream through the real [`Iommu`].
//! The timing lane keeps the caller's IOMMU, DRAM and physical memory; the
//! functional lane runs on a [`FuncView`] — the page table plus physical
//! memory, with the same per-page memoization [`MemSystem`] uses, but no
//! timing machinery at all.
//!
//! [`translation_snapshot`] captures the frames backing translation (page
//! -table pages and, when present, the permission bitmap) so the timing
//! lane can walk them from another thread while the functional lane keeps
//! mutating data pages in the live memory. Page tables are immutable for
//! the duration of an accelerator run, so the snapshot stays exact.
//!
//! [`Iommu`]: crate::Iommu
//! [`MemSystem`]: crate::MemSystem

use crate::memo::TranslationMemo;
use dvm_mem::PhysMem;
use dvm_pagetable::{PageTable, PermBitmap};
use dvm_types::{Permission, PhysAddr, VirtAddr};

/// The functional lane's view of an address space: translation without
/// timing. Mirrors [`MemSystem::untimed_translate`] exactly, including the
/// memo, so functional results match the fused single-lane path.
///
/// [`MemSystem::untimed_translate`]: crate::MemSystem::untimed_translate
#[derive(Debug)]
pub struct FuncView<'a> {
    /// Page table of the offloading process.
    pub pt: &'a PageTable,
    /// Live physical memory (data pages are read and written here).
    pub mem: &'a mut PhysMem,
    /// Per-page translation memo, as in [`MemSystem`](crate::MemSystem).
    pub memo: TranslationMemo,
}

impl<'a> FuncView<'a> {
    /// Bundle a page table and physical memory for functional execution.
    pub fn new(pt: &'a PageTable, mem: &'a mut PhysMem) -> Self {
        Self {
            pt,
            mem,
            memo: TranslationMemo::new(),
        }
    }

    /// Translate `va` functionally, memoized per 4 KiB page.
    ///
    /// # Panics
    ///
    /// Panics if `va` is outside the canonical range (as
    /// [`PageTable::translate`]).
    #[inline]
    pub fn translate(&self, va: VirtAddr) -> Option<(PhysAddr, Permission)> {
        let tag = (self.mem.pt_gen(), self.pt.root_frame());
        if let Some(hit) = self.memo.lookup(tag, va) {
            return Some(hit);
        }
        let (pa, perms) = self.pt.translate(self.mem, va)?;
        self.memo.store(tag, va, pa, perms);
        Some((pa, perms))
    }
}

/// Copy the frames that back translation — every page-table page plus the
/// permission bitmap's storage, when present — into a fresh [`PhysMem`] of
/// the same size. Walking the snapshot resolves every VA (and reads every
/// bitmap entry) exactly as the original memory does at the moment of the
/// snapshot.
pub fn translation_snapshot(pt: &PageTable, bitmap: Option<&PermBitmap>, mem: &PhysMem) -> PhysMem {
    let mut frames = pt.table_frames(mem);
    if let Some(bm) = bitmap {
        let range = bm.frames();
        frames.extend(range.start..range.start + range.count);
    }
    mem.clone_frames(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_mem::BuddyAllocator;
    use dvm_types::PAGE_SIZE;

    #[test]
    fn func_view_matches_page_table() {
        let mut mem = PhysMem::new(1 << 16);
        let mut alloc = BuddyAllocator::new(1 << 16);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        pt.map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(16 << 20),
            2 << 20,
            Permission::ReadWrite,
        )
        .unwrap();
        let expected = pt.translate(&mem, VirtAddr::new((16 << 20) + 0x123));
        let view = FuncView::new(&pt, &mut mem);
        let va = VirtAddr::new((16 << 20) + 0x123);
        assert_eq!(view.translate(va), expected);
        // Second lookup comes from the memo and must agree.
        assert_eq!(view.translate(va), expected);
        assert_eq!(view.translate(VirtAddr::new(900 << 20)), None);
    }

    #[test]
    fn snapshot_translates_and_reads_bitmap() {
        let mut mem = PhysMem::new(1 << 16);
        let mut alloc = BuddyAllocator::new(1 << 16);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        let bitmap = PermBitmap::new(&mut mem, &mut alloc, 1 << 30).unwrap();
        pt.map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(16 << 20),
            1 << 20,
            Permission::ReadWrite,
        )
        .unwrap();
        bitmap.set_bytes(
            &mut mem,
            VirtAddr::new(16 << 20),
            1 << 20,
            Permission::ReadWrite,
        );
        // Materialize a data page; it must stay out of the snapshot.
        let va = VirtAddr::new(16 << 20);
        let (data_pa, _) = pt.translate(&mem, va).unwrap();
        mem.write_u64(data_pa, 0xdead_beef);
        let snap = translation_snapshot(&pt, Some(&bitmap), &mem);
        assert_eq!(pt.translate(&snap, va), pt.translate(&mem, va));
        let vpn = (16 << 20) / PAGE_SIZE;
        assert_eq!(bitmap.perms_of(&snap, vpn), Permission::ReadWrite);
        assert_eq!(bitmap.perms_of(&snap, vpn - 1), Permission::None);
        // Data pages are absent from the snapshot by design.
        assert!(snap.resident_frames() < mem.resident_frames());
        assert_eq!(snap.read_u64(data_pa), 0);
    }
}
