//! Hardware memory-management models: TLBs, page-walk caches, the Access
//! Validation Cache, and the IOMMU driving a pluggable
//! [`TranslationScheme`] — the paper's seven memory-management
//! configurations plus any scheme registered at runtime.
//!
//! The flow mirrors the paper's Figure 1: accelerator accesses arrive at
//! the [`Iommu`], which dispatches into its configured scheme — either
//! translating them (conventional VM) or performing Devirtualized Access
//! Validation (DVM) — and [`MemSystem`] completes the data access against
//! simulated DRAM with the correct serialization or overlap.
//!
//! # Examples
//!
//! ```
//! use dvm_energy::EnergyParams;
//! use dvm_mem::{BuddyAllocator, Dram, DramConfig, PhysMem};
//! use dvm_mmu::{Iommu, MemSystem, SchemeId};
//! use dvm_pagetable::PageTable;
//! use dvm_types::{Permission, VirtAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mem = PhysMem::new(1 << 16);
//! let mut alloc = BuddyAllocator::new(1 << 16);
//! let mut pt = PageTable::new(&mut mem, &mut alloc)?;
//! let base = VirtAddr::new(16 << 20);
//! pt.map_identity_pe(&mut mem, &mut alloc, base, 2 << 20, Permission::ReadWrite)?;
//!
//! let mut dram = Dram::new(DramConfig::default());
//! let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
//! let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut mem, &mut dram);
//! sys.write_u64(base, 42)?;
//! let (value, _latency) = sys.read_u64(base)?;
//! assert_eq!(value, 42);
//! # Ok(())
//! # }
//! ```

pub mod iommu;
pub mod lanes;
pub mod memo;
pub mod memsys;
pub mod nested;
pub mod ptcache;
pub mod scheme;
pub mod tlb;

pub use iommu::{AccessCtx, Iommu, IommuStats, Validation};
pub use lanes::{translation_snapshot, FuncView};
pub use memo::TranslationMemo;
pub use memsys::MemSystem;
pub use nested::{NestedScheme, NestedTranslation, NestedWalker};
pub use ptcache::{PtCache, PtCacheConfig, PtcLookup};
pub use scheme::{
    dispatch, register_scheme, SchemeDispatch, SchemeId, SchemeStructures, TranslationScheme,
};
pub use tlb::{Associativity, Tlb, TlbConfig, TlbEntry};
