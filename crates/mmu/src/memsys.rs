//! The accelerator-facing memory system: functional data access through
//! the IOMMU plus end-to-end latency accounting.
//!
//! Every typed accessor performs the *real* load/store against simulated
//! physical memory at the validated physical address, and returns the
//! access's total latency: `validation + data fetch` serialized, or
//! `max(validation, data fetch)` when the IOMMU allowed a DVM-PE+ preload
//! to overlap (paper Figure 4).

use crate::iommu::{Iommu, Validation};
use crate::memo::TranslationMemo;
use crate::scheme::{dispatch, SchemeDispatch};
use dvm_mem::{Dram, PhysMem};
use dvm_pagetable::{PageTable, PermBitmap};
use dvm_sim::Cycles;
use dvm_types::{AccessKind, Fault, Permission, PhysAddr, VirtAddr};

/// A borrow-bundle tying one IOMMU to one process's address space for the
/// duration of an accelerator run.
#[derive(Debug)]
pub struct MemSystem<'a> {
    /// The IOMMU validating accesses.
    pub iommu: &'a mut Iommu,
    /// Page table of the process that offloaded the computation.
    pub pt: &'a PageTable,
    /// DVM-BM permission bitmap, when the configuration needs one.
    pub bitmap: Option<&'a PermBitmap>,
    /// Simulated physical memory.
    pub mem: &'a mut PhysMem,
    /// DRAM timing model.
    pub dram: &'a mut Dram,
    /// Memo for [`untimed_translate`](Self::untimed_translate); replace
    /// with [`TranslationMemo::disabled`] to force full walks.
    pub memo: TranslationMemo,
}

impl<'a> MemSystem<'a> {
    /// Bundle the borrows for one accelerator run, with translation
    /// memoization enabled.
    pub fn new(
        iommu: &'a mut Iommu,
        pt: &'a PageTable,
        bitmap: Option<&'a PermBitmap>,
        mem: &'a mut PhysMem,
        dram: &'a mut Dram,
    ) -> Self {
        Self {
            iommu,
            pt,
            bitmap,
            mem,
            dram,
            memo: TranslationMemo::new(),
        }
    }

    /// Translate `va` functionally — no cycles charged, no IOMMU state
    /// touched — memoizing the result per 4 KiB page. Equivalent to
    /// `self.pt.translate(self.mem, va)`: any page-table mutation bumps
    /// [`PhysMem::pt_gen`] and invalidates the memo.
    ///
    /// # Panics
    ///
    /// Panics if `va` is outside the canonical range (as `translate`).
    #[inline]
    pub fn untimed_translate(&self, va: VirtAddr) -> Option<(PhysAddr, Permission)> {
        let tag = (self.mem.pt_gen(), self.pt.root_frame());
        if let Some(hit) = self.memo.lookup(tag, va) {
            return Some(hit);
        }
        let (pa, perms) = self.pt.translate(self.mem, va)?;
        self.memo.store(tag, va, pa, perms);
        Some((pa, perms))
    }

    /// Validate an access and charge the data-fetch timing, without
    /// touching data (trace-driven mode).
    ///
    /// # Errors
    ///
    /// Propagates the IOMMU's [`Fault`].
    pub fn access(&mut self, va: VirtAddr, kind: AccessKind) -> Result<Cycles, Fault> {
        self.access_via::<dispatch::Dyn>(va, kind)
    }

    /// [`access`](Self::access) with a compile-time dispatch token (see
    /// [`SchemeDispatch`]); `D` must match the IOMMU's configured scheme.
    ///
    /// # Errors
    ///
    /// Propagates the IOMMU's [`Fault`].
    #[inline]
    pub fn access_via<D: SchemeDispatch>(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Cycles, Fault> {
        let v = self.validate::<D>(va, kind)?;
        Ok(self.finish(va, kind, v))
    }

    #[inline]
    fn validate<D: SchemeDispatch>(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Validation, Fault> {
        self.iommu
            .access_via::<D>(va, kind, self.pt, self.bitmap, self.mem, self.dram)
    }

    #[inline]
    fn finish(&mut self, va: VirtAddr, kind: AccessKind, v: Validation) -> Cycles {
        if v.squashed_preload {
            // The mispredicted preload consumed a DRAM transaction at the
            // predicted (identity) address before being discarded.
            let _ = self.dram.access(va.to_identity_pa(), AccessKind::Read);
        }
        let data_latency = self.dram.occupancy_access(v.pa, kind);
        if v.overlap {
            v.latency.max(data_latency)
        } else {
            v.latency + data_latency
        }
    }
}

macro_rules! typed {
    ($read:ident, $read_via:ident, $write:ident, $write_via:ident, $ty:ty,
     $mem_read:ident, $mem_write:ident) => {
        impl<'a> MemSystem<'a> {
            /// Load a value through the IOMMU; returns `(value, latency)`.
            ///
            /// # Errors
            ///
            /// Propagates the IOMMU's [`Fault`].
            pub fn $read(&mut self, va: VirtAddr) -> Result<($ty, Cycles), Fault> {
                self.$read_via::<dispatch::Dyn>(va)
            }

            /// Statically dispatched load (see [`SchemeDispatch`]).
            ///
            /// # Errors
            ///
            /// Propagates the IOMMU's [`Fault`].
            #[inline]
            pub fn $read_via<D: SchemeDispatch>(
                &mut self,
                va: VirtAddr,
            ) -> Result<($ty, Cycles), Fault> {
                let v = self.validate::<D>(va, AccessKind::Read)?;
                let latency = self.finish(va, AccessKind::Read, v);
                Ok((self.mem.$mem_read(v.pa), latency))
            }

            /// Store a value through the IOMMU; returns the latency.
            ///
            /// # Errors
            ///
            /// Propagates the IOMMU's [`Fault`].
            pub fn $write(&mut self, va: VirtAddr, value: $ty) -> Result<Cycles, Fault> {
                self.$write_via::<dispatch::Dyn>(va, value)
            }

            /// Statically dispatched store (see [`SchemeDispatch`]).
            ///
            /// # Errors
            ///
            /// Propagates the IOMMU's [`Fault`].
            #[inline]
            pub fn $write_via<D: SchemeDispatch>(
                &mut self,
                va: VirtAddr,
                value: $ty,
            ) -> Result<Cycles, Fault> {
                let v = self.validate::<D>(va, AccessKind::Write)?;
                let latency = self.finish(va, AccessKind::Write, v);
                self.mem.$mem_write(v.pa, value);
                Ok(latency)
            }
        }
    };
}

typed!(
    read_u32,
    read_u32_via,
    write_u32,
    write_u32_via,
    u32,
    read_u32,
    write_u32
);
typed!(
    read_u64,
    read_u64_via,
    write_u64,
    write_u64_via,
    u64,
    read_u64,
    write_u64
);
typed!(
    read_f32,
    read_f32_via,
    write_f32,
    write_f32_via,
    f32,
    read_f32,
    write_f32
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeId;
    use dvm_energy::EnergyParams;
    use dvm_mem::{BuddyAllocator, Dram, DramConfig, PhysMem};
    use dvm_pagetable::PageTable;
    use dvm_types::{Permission, VirtAddr};

    fn harness() -> (PhysMem, BuddyAllocator, PageTable, Dram) {
        let mut mem = PhysMem::new(1 << 16);
        let mut alloc = BuddyAllocator::new(1 << 16);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        // Reserve and identity-map a 2 MiB arena at 16 MiB.
        // (Frames are already free; we only need the mapping here.)
        pt.map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(16 << 20),
            2 << 20,
            Permission::ReadWrite,
        )
        .unwrap();
        (mem, alloc, pt, Dram::new(DramConfig::default()))
    }

    #[test]
    fn functional_roundtrip_all_configs() {
        for config in SchemeId::PAPER_SET {
            if config == SchemeId::DVM_BM {
                continue; // exercised in the bitmap test below
            }
            let (mut mem, _alloc, pt, mut dram) = harness();
            let mut iommu = Iommu::new(config, EnergyParams::default());
            let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut mem, &mut dram);
            let va = VirtAddr::new((16 << 20) + 0x100);
            sys.write_u64(va, 0xfeed_f00d).unwrap();
            let (v, _) = sys.read_u64(va).unwrap();
            assert_eq!(v, 0xfeed_f00d, "config {config}");
        }
    }

    #[test]
    fn conventional_4k_uses_tables_with_leaves() {
        // The harness maps with PEs; for the conventional config we remap
        // with 4K leaves to honour the OS layout invariant.
        let mut mem = PhysMem::new(1 << 16);
        let mut alloc = BuddyAllocator::new(1 << 16);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        pt.map_identity_leaves(
            &mut mem,
            &mut alloc,
            VirtAddr::new(16 << 20),
            1 << 20,
            Permission::ReadWrite,
            dvm_types::PageSize::Size4K,
        )
        .unwrap();
        let mut dram = Dram::new(DramConfig::default());
        let mut iommu = Iommu::new(SchemeId::CONV_4K, EnergyParams::default());
        let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut mem, &mut dram);
        let va = VirtAddr::new(16 << 20);
        // First access: TLB miss + walk (4 steps, at least one DRAM ref).
        let lat1 = sys.access(va, AccessKind::Read).unwrap();
        // Second access same page: TLB hit -> 1 + pipelined data access.
        let lat2 = sys.access(va, AccessKind::Read).unwrap();
        assert!(lat1 > lat2, "walk must cost more than a TLB hit");
        assert_eq!(lat2, 1 + sys.dram.config().occupancy_cycles);
        assert_eq!(sys.iommu.tlb_stats().unwrap().misses(), 1);
        assert_eq!(sys.iommu.tlb_stats().unwrap().hits(), 1);
    }

    #[test]
    fn dvm_pe_plus_overlaps_reads_but_not_writes() {
        let (mut mem, _alloc, pt, mut dram) = harness();
        let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
        let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut mem, &mut dram);
        let va = VirtAddr::new((16 << 20) + 64);
        let data = sys.dram.config().occupancy_cycles;
        // Warm the AVC.
        let _ = sys.access(va, AccessKind::Read).unwrap();
        let read_lat = sys.access(va, AccessKind::Read).unwrap();
        let write_lat = sys.access(va, AccessKind::Write).unwrap();
        // Read: max(1-cycle pipelined DAV, data) == data. Write: 1 + data
        // (stores must validate before updating memory - paper Figure 4).
        assert_eq!(read_lat, data);
        assert_eq!(write_lat, 1 + data);
        assert!(sys.iommu.stats.preload_overlaps.get() >= 2);
        assert_eq!(sys.iommu.stats.preload_squashes.get(), 0);
    }

    #[test]
    fn dvm_bitmap_validates_and_falls_back() {
        let mut mem = PhysMem::new(1 << 16);
        let mut alloc = BuddyAllocator::new(1 << 16);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        let bitmap = PermBitmap::new(&mut mem, &mut alloc, 1 << 30).unwrap();
        // Identity arena, recorded in the bitmap.
        pt.map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(16 << 20),
            1 << 20,
            Permission::ReadWrite,
        )
        .unwrap();
        bitmap.set_bytes(
            &mut mem,
            VirtAddr::new(16 << 20),
            1 << 20,
            Permission::ReadWrite,
        );
        // A non-identity 4K page NOT in the bitmap (00 -> fallback).
        let alien_va = VirtAddr::new(64 << 20);
        let alien_pa = dvm_types::PhysAddr::new(32 << 20);
        pt.map_page(
            &mut mem,
            &mut alloc,
            alien_va,
            alien_pa,
            dvm_types::PageSize::Size4K,
            Permission::ReadWrite,
        )
        .unwrap();
        let mut dram = Dram::new(DramConfig::default());
        let mut iommu = Iommu::new(SchemeId::DVM_BM, EnergyParams::default());
        let mut sys = MemSystem::new(&mut iommu, &pt, Some(&bitmap), &mut mem, &mut dram);
        // Identity access validates via the bitmap.
        sys.write_u32(VirtAddr::new(16 << 20), 7).unwrap();
        assert_eq!(sys.iommu.stats.identity_validations.get(), 1);
        // Alien access falls back to translation and still works.
        sys.write_u32(alien_va, 9).unwrap();
        assert_eq!(sys.iommu.stats.fallback_translations.get(), 1);
        let (v, _) = sys.read_u32(alien_va).unwrap();
        assert_eq!(v, 9);
        // The data really landed at the alien PA.
        assert_eq!(sys.mem.read_u32(alien_pa), 9);
    }

    #[test]
    fn protection_fault_on_write_to_readonly() {
        let mut mem = PhysMem::new(1 << 16);
        let mut alloc = BuddyAllocator::new(1 << 16);
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        pt.map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(16 << 20),
            128 * 1024,
            Permission::ReadOnly,
        )
        .unwrap();
        let mut dram = Dram::new(DramConfig::default());
        let mut iommu = Iommu::new(SchemeId::DVM_PE_PLUS, EnergyParams::default());
        let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut mem, &mut dram);
        let va = VirtAddr::new(16 << 20);
        assert!(sys.read_u32(va).is_ok());
        let fault = sys.write_u32(va, 1).unwrap_err();
        assert_eq!(fault.kind, dvm_types::FaultKind::Protection);
        assert_eq!(sys.iommu.stats.faults.get(), 1);
        // Unmapped access faults as NotMapped (and squashes the preload).
        let fault = sys.read_u32(VirtAddr::new(900 << 20)).unwrap_err();
        assert_eq!(fault.kind, dvm_types::FaultKind::NotMapped);
        assert_eq!(sys.iommu.stats.preload_squashes.get(), 1);
    }

    #[test]
    fn ideal_has_zero_translation_latency() {
        let (mut mem, _alloc, pt, mut dram) = harness();
        let mut iommu = Iommu::new(SchemeId::IDEAL, EnergyParams::default());
        let mut sys = MemSystem::new(&mut iommu, &pt, None, &mut mem, &mut dram);
        let lat = sys
            .access(VirtAddr::new(16 << 20), AccessKind::Read)
            .unwrap();
        assert_eq!(lat, sys.dram.config().occupancy_cycles);
        assert_eq!(sys.iommu.energy.total_pj(), 0.0);
    }
}
