//! Nested (virtualized) address translation and the three DVM extensions
//! of the paper's §5 "Virtual Machines" discussion.
//!
//! Under virtualization an access needs two translations: guest virtual
//! (gVA) to guest physical (gPA) through the guest OS's page table, and
//! gPA to system physical (sPA) through the hypervisor's table. A
//! conventional two-dimensional walk must translate the *guest page-table
//! pointers themselves*, so a 4-level-by-4-level walk costs up to 24
//! entry reads (the classic nested-paging blow-up the paper cites from
//! Bhargava et al.).
//!
//! The paper sketches three DVM deployments:
//!
//! 1. **host-DVM** — the hypervisor identity-maps guest physical memory
//!    (gPA == sPA), validated by Permission Entries: the guest walk
//!    becomes one-dimensional.
//! 2. **guest-DVM** — the guest OS identity-maps its processes
//!    (gVA == gPA): only the hypervisor dimension remains.
//! 3. **full-DVM** — both levels identity-map (gVA == sPA): translation
//!    degenerates to a single Devirtualized Access Validation against the
//!    host's Permission-Entry table (plus a guest-side PE validation that
//!    the AVC also absorbs).
//!
//! [`NestedWalker`] models all four schemes over real page tables in
//! simulated memory and reports entry reads, memory references and stall
//! cycles per translation, which the `virt` harness and the ablation
//! benches aggregate.

use crate::ptcache::{PtCache, PtCacheConfig, PtcLookup};
use dvm_mem::{Dram, PhysMem};
use dvm_pagetable::{PageTable, Walk, WalkOutcome};
use dvm_sim::{Counter, Cycles};
use dvm_types::{AccessKind, Fault, FaultKind, PhysAddr, VirtAddr};

/// How the two translation dimensions are implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestedScheme {
    /// Conventional nested paging: both dimensions are leaf-PTE tables
    /// and guest-table pointers are translated through the host table.
    TwoDimensional,
    /// Hypervisor identity-maps guest memory with PEs (gPA == sPA):
    /// one-dimensional guest walk, host validation from the AVC.
    HostDvm,
    /// Guest identity-maps with PEs (gVA == gPA): one-dimensional host
    /// walk.
    GuestDvm,
    /// Both identity-map (gVA == sPA): validation only.
    FullDvm,
}

impl NestedScheme {
    /// All schemes, cheapest last.
    pub const ALL: [NestedScheme; 4] = [
        NestedScheme::TwoDimensional,
        NestedScheme::HostDvm,
        NestedScheme::GuestDvm,
        NestedScheme::FullDvm,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            NestedScheme::TwoDimensional => "2D nested",
            NestedScheme::HostDvm => "host-DVM",
            NestedScheme::GuestDvm => "guest-DVM",
            NestedScheme::FullDvm => "full-DVM",
        }
    }
}

impl core::fmt::Display for NestedScheme {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of one nested translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NestedTranslation {
    /// Final system physical address.
    pub spa: PhysAddr,
    /// Page-table entries read across both dimensions.
    pub entry_reads: u32,
    /// Entry reads that missed the nested walk cache and went to memory.
    pub mem_refs: u32,
    /// Stall cycles (memory fetches; cache probes are pipelined).
    pub stall: Cycles,
}

/// Statistics across a walker's lifetime.
#[derive(Debug, Clone)]
pub struct NestedStats {
    /// Translations performed.
    pub translations: Counter,
    /// Total entry reads.
    pub entry_reads: Counter,
    /// Total walker memory references.
    pub mem_refs: Counter,
}

/// A nested page-table walker with a shared walk cache for both
/// dimensions (as in AMD NPT walk caching).
#[derive(Debug)]
pub struct NestedWalker {
    scheme: NestedScheme,
    cache: PtCache,
    /// Statistics.
    pub stats: NestedStats,
}

impl NestedWalker {
    /// Create a walker; the cache uses the paper's AVC geometry.
    pub fn new(scheme: NestedScheme) -> Self {
        Self {
            scheme,
            cache: PtCache::new(PtCacheConfig::paper_avc()),
            stats: NestedStats {
                translations: Counter::new("translations"),
                entry_reads: Counter::new("entry_reads"),
                mem_refs: Counter::new("mem_refs"),
            },
        }
    }

    /// The scheme being modelled.
    pub fn scheme(&self) -> NestedScheme {
        self.scheme
    }

    /// Charge one entry read at `pte_pa` against the walk cache.
    fn charge(&mut self, pte_pa: PhysAddr, level: u8, dram: &mut Dram, t: &mut NestedTranslation) {
        t.entry_reads += 1;
        self.stats.entry_reads.inc();
        if self.cache.access(pte_pa, level) != PtcLookup::Hit {
            t.mem_refs += 1;
            self.stats.mem_refs.inc();
            t.stall += dram.access(pte_pa, AccessKind::Read);
        }
    }

    /// Charge a completed one-dimensional walk.
    fn charge_walk(&mut self, walk: &Walk, dram: &mut Dram, t: &mut NestedTranslation) {
        for step in walk.steps() {
            self.charge(step.pte_pa, step.level, dram, t);
        }
    }

    /// Translate a guest virtual address to a system physical address.
    ///
    /// `guest_pt` maps gVA -> gPA; `host_pt` maps gPA -> sPA. Both tables
    /// live in (host) simulated physical memory. For the DVM schemes the
    /// corresponding table must have been built with Permission Entries
    /// over identity mappings; a leaf outcome still works (it is the
    /// paper's fallback path) but costs the conventional dimension.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if either dimension has no mapping for the
    /// address.
    pub fn translate(
        &mut self,
        gva: VirtAddr,
        guest_pt: &PageTable,
        host_pt: &PageTable,
        mem: &PhysMem,
        dram: &mut Dram,
    ) -> Result<NestedTranslation, Fault> {
        self.stats.translations.inc();
        let mut t = NestedTranslation {
            spa: PhysAddr::ZERO,
            entry_reads: 0,
            mem_refs: 0,
            stall: 0,
        };
        let not_mapped = |va: VirtAddr| Fault {
            va,
            access: AccessKind::Read,
            kind: FaultKind::NotMapped,
        };

        // Dimension 1: gVA -> gPA.
        let gpa = match self.scheme {
            NestedScheme::TwoDimensional => {
                // Each guest entry read needs its own host translation of
                // the guest-table pointer (the 2D blow-up). We replay the
                // guest walk and, before each entry read, charge a host
                // walk for the entry's gPA.
                let guest_walk = guest_pt.walk(mem, gva);
                for step in guest_walk.steps() {
                    // The guest PTE's "physical" address is a gPA; in our
                    // model guest tables are allocated from host memory,
                    // so the host walk is over the same address (an
                    // identity nesting of table frames) — the *costs* are
                    // what we are modelling.
                    let host_walk = host_pt.walk(mem, step.pte_pa.to_identity_va());
                    self.charge_walk(&host_walk, dram, &mut t);
                    self.charge(step.pte_pa, step.level, dram, &mut t);
                }
                guest_walk.resolve(gva).ok_or(not_mapped(gva))?.0
            }
            NestedScheme::GuestDvm | NestedScheme::FullDvm => {
                // Guest identity maps: validate via the guest PE table.
                let guest_walk = guest_pt.walk(mem, gva);
                self.charge_walk(&guest_walk, dram, &mut t);
                match guest_walk.outcome {
                    WalkOutcome::PermissionEntry { perms, .. } if perms.is_mapped() => {
                        gva.to_identity_pa()
                    }
                    _ => guest_walk.resolve(gva).ok_or(not_mapped(gva))?.0,
                }
            }
            NestedScheme::HostDvm => {
                // Conventional guest walk, but guest-table pointers need
                // no host translation (gPA == sPA): one-dimensional.
                let guest_walk = guest_pt.walk(mem, gva);
                self.charge_walk(&guest_walk, dram, &mut t);
                guest_walk.resolve(gva).ok_or(not_mapped(gva))?.0
            }
        };

        // Dimension 2: gPA -> sPA.
        let gpa_va = gpa.to_identity_va();
        let spa = match self.scheme {
            NestedScheme::HostDvm | NestedScheme::FullDvm => {
                // Host identity maps: DAV against the host PE table.
                let host_walk = host_pt.walk(mem, gpa_va);
                self.charge_walk(&host_walk, dram, &mut t);
                match host_walk.outcome {
                    WalkOutcome::PermissionEntry { perms, .. } if perms.is_mapped() => gpa,
                    _ => host_walk.resolve(gpa_va).ok_or(not_mapped(gpa_va))?.0,
                }
            }
            NestedScheme::TwoDimensional | NestedScheme::GuestDvm => {
                let host_walk = host_pt.walk(mem, gpa_va);
                self.charge_walk(&host_walk, dram, &mut t);
                host_walk.resolve(gpa_va).ok_or(not_mapped(gpa_va))?.0
            }
        };
        t.spa = spa;
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_mem::{BuddyAllocator, DramConfig};
    use dvm_types::{PageSize, Permission};

    /// Build guest and host tables over a 32 MiB guest region at 1 GiB.
    /// `guest_identity`/`host_identity` select PE tables vs 4K leaves.
    fn rig(guest_identity: bool, host_identity: bool) -> (PhysMem, Dram, PageTable, PageTable) {
        let mut mem = PhysMem::new(1 << 19);
        let mut alloc = BuddyAllocator::new(1 << 19);
        let base = VirtAddr::new(1 << 30);
        let span: u64 = 32 << 20;

        let mut guest_pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        if guest_identity {
            guest_pt
                .map_identity_pe(&mut mem, &mut alloc, base, span, Permission::ReadWrite)
                .unwrap();
        } else {
            guest_pt
                .map_identity_leaves(
                    &mut mem,
                    &mut alloc,
                    base,
                    span,
                    Permission::ReadWrite,
                    PageSize::Size4K,
                )
                .unwrap();
        }

        let mut host_pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        // The host table must also map the guest's table frames (low
        // memory) so 2D walks can translate guest-table pointers.
        host_pt
            .map_identity_pe(
                &mut mem,
                &mut alloc,
                VirtAddr::new(0),
                64 << 20,
                Permission::ReadWrite,
            )
            .unwrap();
        if host_identity {
            host_pt
                .map_identity_pe(&mut mem, &mut alloc, base, span, Permission::ReadWrite)
                .unwrap();
        } else {
            host_pt
                .map_identity_leaves(
                    &mut mem,
                    &mut alloc,
                    base,
                    span,
                    Permission::ReadWrite,
                    PageSize::Size4K,
                )
                .unwrap();
        }
        (mem, Dram::new(DramConfig::default()), guest_pt, host_pt)
    }

    fn reads_for(scheme: NestedScheme, guest_identity: bool, host_identity: bool) -> u32 {
        let (mem, mut dram, guest_pt, host_pt) = rig(guest_identity, host_identity);
        let mut walker = NestedWalker::new(scheme);
        let t = walker
            .translate(
                VirtAddr::new((1 << 30) + 0x5000),
                &guest_pt,
                &host_pt,
                &mem,
                &mut dram,
            )
            .unwrap();
        assert_eq!(t.spa, PhysAddr::new((1 << 30) + 0x5000), "{scheme}");
        t.entry_reads
    }

    #[test]
    fn dimensionality_ordering() {
        let two_d = reads_for(NestedScheme::TwoDimensional, false, false);
        let host = reads_for(NestedScheme::HostDvm, false, true);
        let guest = reads_for(NestedScheme::GuestDvm, true, false);
        let full = reads_for(NestedScheme::FullDvm, true, true);
        // 2D: 4 guest steps, each preceded by a host walk, plus the final
        // host walk — far more than any 1D scheme.
        assert!(two_d > host + 4, "2D {two_d} vs host-DVM {host}");
        assert!(two_d > guest + 4, "2D {two_d} vs guest-DVM {guest}");
        assert!(full <= host.min(guest), "full-DVM cheapest: {full}");
        // Full DVM is validation only: a couple of PE reads per dimension.
        assert!(full <= 6, "full {full}");
    }

    #[test]
    fn two_d_blowup_is_quadratic_ish() {
        // 4 guest levels x (up to 3 host PE steps) + 4 guest reads + final
        // host walk: comfortably over 16 entry reads with leaf tables on
        // both dimensions (the paper cites up to 24 for 4x4 nested paging).
        let two_d = reads_for(NestedScheme::TwoDimensional, false, false);
        assert!(two_d >= 16, "2D read count {two_d}");
    }

    #[test]
    fn caching_collapses_repeat_translations() {
        let (mem, mut dram, guest_pt, host_pt) = rig(true, true);
        let mut walker = NestedWalker::new(NestedScheme::FullDvm);
        let gva = VirtAddr::new((1 << 30) + 0x2000);
        let cold = walker
            .translate(gva, &guest_pt, &host_pt, &mem, &mut dram)
            .unwrap();
        let warm = walker
            .translate(gva, &guest_pt, &host_pt, &mem, &mut dram)
            .unwrap();
        assert!(cold.mem_refs > 0);
        assert_eq!(warm.mem_refs, 0, "AVC absorbs repeat validations");
        assert_eq!(warm.stall, 0);
    }

    #[test]
    fn unmapped_guest_address_faults() {
        let (mem, mut dram, guest_pt, host_pt) = rig(true, true);
        let mut walker = NestedWalker::new(NestedScheme::FullDvm);
        let fault = walker
            .translate(VirtAddr::new(1 << 40), &guest_pt, &host_pt, &mem, &mut dram)
            .unwrap_err();
        assert_eq!(fault.kind, FaultKind::NotMapped);
    }
}
