//! The IOMMU driver: structure bring-up, statistics, energy accounting
//! and the shared page-walker, with per-access behaviour delegated to
//! the configured [`TranslationScheme`]. The scheme implementations —
//! the paper's seven configurations plus the registered rivals — live
//! in [`crate::scheme`].

use crate::memo::WalkMemo;
use crate::ptcache::{PtCache, PtcLookup};
use crate::scheme::{SchemeDispatch, SchemeId, TranslationScheme};
use crate::tlb::{Associativity, Tlb};
use dvm_energy::{EnergyAccount, EnergyParams, MmEvent};
use dvm_mem::{Dram, PhysMem};
use dvm_pagetable::{PageTable, PermBitmap, Walk};
use dvm_sim::{Counter, Cycles, RatioStat};
use dvm_types::{AccessKind, Fault, FaultKind, Permission, PhysAddr, VirtAddr};

/// Outcome of translation / access validation for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validation {
    /// Physical address to access.
    pub pa: PhysAddr,
    /// Cycles spent in translation / validation.
    pub latency: Cycles,
    /// `true` if the data fetch may proceed in parallel with validation
    /// (DVM-PE+ reads whose prediction PA==VA was correct).
    pub overlap: bool,
    /// `true` if a preload was launched and squashed (mispredict): the
    /// wasted DRAM transaction has been charged to the energy account and
    /// the caller should count the extra DRAM traffic.
    pub squashed_preload: bool,
}

/// Event counters exposed by the IOMMU.
#[derive(Debug, Clone)]
pub struct IommuStats {
    /// Total accesses validated/translated.
    pub accesses: Counter,
    /// Page-table walks performed.
    pub walks: Counter,
    /// DRAM accesses issued by the walker (and bitmap fetches).
    pub walk_mem_refs: Counter,
    /// Accesses validated as identity (DAV fast path).
    pub identity_validations: Counter,
    /// Accesses that needed a conventional translation under DVM.
    pub fallback_translations: Counter,
    /// DVM-PE+ reads whose preload overlapped successfully.
    pub preload_overlaps: Counter,
    /// DVM-PE+ preloads squashed on mispredict.
    pub preload_squashes: Counter,
    /// Faults raised to the host CPU.
    pub faults: Counter,
    /// Total cycles the shared page-walker / DAV engine was busy
    /// (probes + memory fetches). The accelerator model treats the walker
    /// as a shared resource with a configurable number of ports.
    pub walker_busy: Counter,
    /// Background TLB prefetches launched (SVA-Pf-style schemes).
    pub tlb_prefetches: Counter,
}

impl IommuStats {
    fn new() -> Self {
        Self {
            accesses: Counter::new("accesses"),
            walks: Counter::new("walks"),
            walk_mem_refs: Counter::new("walk_mem_refs"),
            identity_validations: Counter::new("identity_validations"),
            fallback_translations: Counter::new("fallback_translations"),
            preload_overlaps: Counter::new("preload_overlaps"),
            preload_squashes: Counter::new("preload_squashes"),
            faults: Counter::new("faults"),
            walker_busy: Counter::new("walker_busy"),
            tlb_prefetches: Counter::new("tlb_prefetches"),
        }
    }

    fn reset(&mut self) {
        self.accesses.reset();
        self.walks.reset();
        self.walk_mem_refs.reset();
        self.identity_validations.reset();
        self.fallback_translations.reset();
        self.preload_overlaps.reset();
        self.preload_squashes.reset();
        self.faults.reset();
        self.walker_busy.reset();
        self.tlb_prefetches.reset();
    }
}

/// Borrowed system state a scheme translates against: the process page
/// table, the optional flat permission bitmap, physical memory and the
/// DRAM timing model.
pub struct AccessCtx<'a> {
    /// Process page table.
    pub pt: &'a PageTable,
    /// Flat permission bitmap, if the OS maintains one.
    pub bitmap: Option<&'a PermBitmap>,
    /// Physical memory (for bitmap reads and functional walks).
    pub mem: &'a PhysMem,
    /// DRAM timing model; walker fetches go through it.
    pub dram: &'a mut Dram,
}

/// The IOMMU servicing accelerator memory accesses (paper Figure 1).
///
/// Holds the structures the configured scheme asked for plus all mutable
/// per-run state; the scheme object itself is stateless and shared.
#[derive(Debug, Clone)]
pub struct Iommu {
    config: SchemeId,
    scheme: &'static dyn TranslationScheme,
    /// Translation (or fallback) TLB, if the scheme configured one.
    pub tlb: Option<Tlb>,
    /// Page-walk cache / AVC, if configured.
    pub ptc: Option<PtCache>,
    /// Bitmap cache (DVM-BM-style schemes), if configured.
    pub bitmap_cache: Option<PtCache>,
    walk_memo: WalkMemo,
    /// Scheme-private scratch words (prefetch history, cached context
    /// flags, ...); zeroed at construction and on [`flush`](Self::flush).
    pub scratch: [u64; 4],
    /// Dynamic-energy account for MM events.
    pub energy: EnergyAccount,
    /// Event counters.
    pub stats: IommuStats,
}

impl Iommu {
    /// Build an IOMMU for the given scheme, instantiating the structures
    /// the scheme asks for (Table 2 sizes for the paper set).
    pub fn new(config: SchemeId, energy_params: EnergyParams) -> Self {
        let scheme = config.scheme();
        let structures = scheme.structures();
        Self {
            config,
            scheme,
            tlb: structures.tlb.map(Tlb::new),
            ptc: structures.ptc.map(PtCache::new),
            bitmap_cache: structures.bitmap_cache.map(PtCache::new),
            walk_memo: WalkMemo::new(),
            scratch: [0; 4],
            energy: EnergyAccount::new(energy_params),
            stats: IommuStats::new(),
        }
    }

    /// Enable or disable memoization of timed walks (enabled by default;
    /// equivalence tests disable it to compare against direct walks).
    pub fn set_walk_memo(&mut self, enabled: bool) {
        self.walk_memo.set_enabled(enabled);
    }

    /// The configured scheme.
    pub fn config(&self) -> SchemeId {
        self.config
    }

    /// The scheme object driving this IOMMU.
    pub fn scheme(&self) -> &'static dyn TranslationScheme {
        self.scheme
    }

    /// Translation TLB statistics, if this configuration has a TLB.
    pub fn tlb_stats(&self) -> Option<&RatioStat> {
        self.tlb.as_ref().map(|t| t.stats())
    }

    /// PWC/AVC statistics, if present.
    pub fn ptc_stats(&self) -> Option<&RatioStat> {
        self.ptc.as_ref().map(|c| c.stats())
    }

    /// Bitmap-cache statistics (DVM-BM only).
    pub fn bitmap_cache_stats(&self) -> Option<&RatioStat> {
        self.bitmap_cache.as_ref().map(|c| c.stats())
    }

    /// Reset all statistics and energy counts (cached state is kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.energy.reset();
        if let Some(t) = &mut self.tlb {
            t.reset_stats();
        }
        if let Some(c) = &mut self.ptc {
            c.reset_stats();
        }
        if let Some(b) = &mut self.bitmap_cache {
            b.reset_stats();
        }
    }

    /// Flush all cached translation state (context switch), including the
    /// scheme's scratch words.
    pub fn flush(&mut self) {
        if let Some(t) = &mut self.tlb {
            t.flush();
        }
        if let Some(c) = &mut self.ptc {
            c.flush();
        }
        if let Some(b) = &mut self.bitmap_cache {
            b.flush();
        }
        self.scratch = [0; 4];
    }

    /// Validate/translate one access by dispatching into the configured
    /// scheme.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] the IOMMU would raise on the host CPU when the
    /// access is to unmapped memory or lacks permissions.
    pub fn access(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        pt: &PageTable,
        bitmap: Option<&PermBitmap>,
        mem: &PhysMem,
        dram: &mut Dram,
    ) -> Result<Validation, Fault> {
        self.access_via::<crate::scheme::dispatch::Dyn>(va, kind, pt, bitmap, mem, dram)
    }

    /// [`access`](Self::access) with the dispatch chosen at compile time:
    /// `D` must stand for the same scheme this IOMMU was built for (the
    /// default [`dispatch::Dyn`](crate::scheme::dispatch::Dyn) always
    /// does). The sweep engine uses the static tokens to monomorphize the
    /// hot per-access path.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] the IOMMU would raise on the host CPU when the
    /// access is to unmapped memory or lacks permissions.
    #[inline]
    pub fn access_via<D: SchemeDispatch>(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        pt: &PageTable,
        bitmap: Option<&PermBitmap>,
        mem: &PhysMem,
        dram: &mut Dram,
    ) -> Result<Validation, Fault> {
        self.stats.accesses.inc();
        let mut ctx = AccessCtx {
            pt,
            bitmap,
            mem,
            dram,
        };
        D::access(self, &mut ctx, va, kind)
    }

    /// The energy event a probe of this IOMMU's TLB costs (CAMs are an
    /// order of magnitude more expensive than set-associative arrays).
    #[inline]
    pub fn tlb_energy_event(&self) -> MmEvent {
        match self.tlb.as_ref().map(|t| t.config().assoc) {
            Some(Associativity::Full) => MmEvent::FaTlbLookup,
            _ => MmEvent::SaTlbLookup,
        }
    }

    /// Count and construct a fault.
    #[inline]
    pub fn fault(&mut self, va: VirtAddr, kind: AccessKind, fk: FaultKind) -> Fault {
        self.stats.faults.inc();
        Fault {
            va,
            access: kind,
            kind: fk,
        }
    }

    /// Check permissions, counting and raising a fault on violation.
    ///
    /// # Errors
    ///
    /// `NotMapped` if the permissions are absent, `Protection` if they
    /// do not allow `kind`.
    #[inline]
    pub fn check(
        &mut self,
        perms: Permission,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<(), Fault> {
        if !perms.is_mapped() {
            return Err(self.fault(va, kind, FaultKind::NotMapped));
        }
        if !perms.allows(kind) {
            return Err(self.fault(va, kind, FaultKind::Protection));
        }
        Ok(())
    }

    /// Replay a functional walk through the PWC/AVC. Cache probes are
    /// pipelined in the walker (back-to-back walks stream through them),
    /// so the returned stall latency counts only the memory fetches; the
    /// per-probe cycles are charged to the shared walker's occupancy.
    #[inline]
    pub fn timed_walk(&mut self, ctx: &mut AccessCtx<'_>, va: VirtAddr) -> (Walk, Cycles) {
        self.stats.walks.inc();
        let walk = self.walk_memo.walk(ctx.pt, ctx.mem, va);
        let mut stall: Cycles = 0;
        let mut busy: Cycles = 0;
        for step in walk.steps() {
            match &mut self.ptc {
                Some(ptc) => match ptc.access(step.pte_pa, step.level) {
                    PtcLookup::Hit => {
                        busy += 1;
                        self.energy.record(MmEvent::PtcLookup);
                    }
                    PtcLookup::Miss => {
                        busy += 1;
                        self.energy.record(MmEvent::PtcLookup);
                        let fetch = ctx.dram.access(step.pte_pa, AccessKind::Read);
                        stall += fetch;
                        busy += fetch;
                        self.energy.record(MmEvent::WalkerDram);
                        self.stats.walk_mem_refs.inc();
                    }
                    PtcLookup::Bypass => {
                        let fetch = ctx.dram.access(step.pte_pa, AccessKind::Read);
                        stall += fetch;
                        busy += fetch;
                        self.energy.record(MmEvent::WalkerDram);
                        self.stats.walk_mem_refs.inc();
                    }
                },
                None => {
                    let fetch = ctx.dram.access(step.pte_pa, AccessKind::Read);
                    stall += fetch;
                    busy += fetch;
                    self.energy.record(MmEvent::WalkerDram);
                    self.stats.walk_mem_refs.inc();
                }
            }
        }
        self.stats.walker_busy.add(busy);
        (walk, stall)
    }
}
