//! The IOMMU model: conventional translation, Devirtualized Access
//! Validation (DAV) in its bitmap and Permission-Entry variants, and the
//! ideal no-translation baseline — the seven configurations of the paper's
//! Figure 8.
//!
//! | name | structures | behaviour |
//! |---|---|---|
//! | `4K/2M/1G,TLB+PWC` | 128-entry FA TLB + 1 KiB PWC | translate, then access |
//! | `DVM-BM` | 128-entry bitmap cache + flat bitmap + FA TLB fallback | 1-step DAV; full translation on `00` |
//! | `DVM-PE` | 1 KiB AVC only | PE page-walk validation, then access |
//! | `DVM-PE+` | 1 KiB AVC | like DVM-PE, but reads overlap DAV with a preload |
//! | `Ideal` | none | direct physical access |

use crate::memo::WalkMemo;
use crate::ptcache::{PtCache, PtCacheConfig, PtcLookup};
use crate::tlb::{Associativity, Tlb, TlbConfig, TlbEntry};
use core::fmt;
use dvm_energy::{EnergyAccount, EnergyParams, MmEvent};
use dvm_mem::{Dram, PhysMem};
use dvm_pagetable::{PageTable, PermBitmap, Walk, WalkOutcome};
use dvm_sim::{Counter, Cycles, RatioStat};
use dvm_types::{AccessKind, Fault, FaultKind, PageSize, Permission, PhysAddr, VirtAddr};

/// Memory-management scheme simulated by the IOMMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmuConfig {
    /// Conventional VM: TLB + page-walk cache at the given page size.
    Conventional {
        /// Uniform page size of the configuration.
        page_size: PageSize,
    },
    /// DVM with the flat permission bitmap (Border-Control-style DAV).
    DvmBitmap,
    /// DVM with Permission Entries and the Access Validation Cache.
    DvmPe {
        /// Allow reads to overlap DAV with a preload (DVM-PE+).
        preload: bool,
    },
    /// Direct physical access without translation or protection.
    Ideal,
}

impl MmuConfig {
    /// The seven configurations evaluated in Figures 8 and 9, in the
    /// paper's order.
    pub const PAPER_SET: [MmuConfig; 7] = [
        MmuConfig::Conventional {
            page_size: PageSize::Size4K,
        },
        MmuConfig::Conventional {
            page_size: PageSize::Size2M,
        },
        MmuConfig::Conventional {
            page_size: PageSize::Size1G,
        },
        MmuConfig::DvmBitmap,
        MmuConfig::DvmPe { preload: false },
        MmuConfig::DvmPe { preload: true },
        MmuConfig::Ideal,
    ];

    /// The paper's display name for this configuration.
    pub fn name(&self) -> &'static str {
        match self {
            MmuConfig::Conventional {
                page_size: PageSize::Size4K,
            } => "4K,TLB+PWC",
            MmuConfig::Conventional {
                page_size: PageSize::Size2M,
            } => "2M,TLB+PWC",
            MmuConfig::Conventional {
                page_size: PageSize::Size1G,
            } => "1G,TLB+PWC",
            MmuConfig::DvmBitmap => "DVM-BM",
            MmuConfig::DvmPe { preload: false } => "DVM-PE",
            MmuConfig::DvmPe { preload: true } => "DVM-PE+",
            MmuConfig::Ideal => "Ideal",
        }
    }

    /// Page size the OS should use when building page tables for this
    /// configuration (DVM variants use PE tables; `None` means no table
    /// needed at all).
    pub fn required_leaf_size(&self) -> Option<PageSize> {
        match self {
            MmuConfig::Conventional { page_size } => Some(*page_size),
            _ => None,
        }
    }
}

impl fmt::Display for MmuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of translation / access validation for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validation {
    /// Physical address to access.
    pub pa: PhysAddr,
    /// Cycles spent in translation / validation.
    pub latency: Cycles,
    /// `true` if the data fetch may proceed in parallel with validation
    /// (DVM-PE+ reads whose prediction PA==VA was correct).
    pub overlap: bool,
    /// `true` if a preload was launched and squashed (mispredict): the
    /// wasted DRAM transaction has been charged to the energy account and
    /// the caller should count the extra DRAM traffic.
    pub squashed_preload: bool,
}

/// Event counters exposed by the IOMMU.
#[derive(Debug, Clone)]
pub struct IommuStats {
    /// Total accesses validated/translated.
    pub accesses: Counter,
    /// Page-table walks performed.
    pub walks: Counter,
    /// DRAM accesses issued by the walker (and bitmap fetches).
    pub walk_mem_refs: Counter,
    /// Accesses validated as identity (DAV fast path).
    pub identity_validations: Counter,
    /// Accesses that needed a conventional translation under DVM.
    pub fallback_translations: Counter,
    /// DVM-PE+ reads whose preload overlapped successfully.
    pub preload_overlaps: Counter,
    /// DVM-PE+ preloads squashed on mispredict.
    pub preload_squashes: Counter,
    /// Faults raised to the host CPU.
    pub faults: Counter,
    /// Total cycles the shared page-walker / DAV engine was busy
    /// (probes + memory fetches). The accelerator model treats the walker
    /// as a shared resource with a configurable number of ports.
    pub walker_busy: Counter,
}

impl IommuStats {
    fn new() -> Self {
        Self {
            accesses: Counter::new("accesses"),
            walks: Counter::new("walks"),
            walk_mem_refs: Counter::new("walk_mem_refs"),
            identity_validations: Counter::new("identity_validations"),
            fallback_translations: Counter::new("fallback_translations"),
            preload_overlaps: Counter::new("preload_overlaps"),
            preload_squashes: Counter::new("preload_squashes"),
            faults: Counter::new("faults"),
            walker_busy: Counter::new("walker_busy"),
        }
    }

    fn reset(&mut self) {
        self.accesses.reset();
        self.walks.reset();
        self.walk_mem_refs.reset();
        self.identity_validations.reset();
        self.fallback_translations.reset();
        self.preload_overlaps.reset();
        self.preload_squashes.reset();
        self.faults.reset();
        self.walker_busy.reset();
    }
}

/// The IOMMU servicing accelerator memory accesses (paper Figure 1).
#[derive(Debug, Clone)]
pub struct Iommu {
    config: MmuConfig,
    tlb: Option<Tlb>,
    ptc: Option<PtCache>,
    bitmap_cache: Option<PtCache>,
    walk_memo: WalkMemo,
    /// Dynamic-energy account for MM events.
    pub energy: EnergyAccount,
    /// Event counters.
    pub stats: IommuStats,
}

impl Iommu {
    /// Build an IOMMU for the given scheme with the paper's structure
    /// sizes (Table 2).
    pub fn new(config: MmuConfig, energy_params: EnergyParams) -> Self {
        let (tlb, ptc, bitmap_cache) = match config {
            MmuConfig::Conventional { page_size } => (
                Some(Tlb::new(TlbConfig::paper_accelerator(page_size))),
                Some(PtCache::new(PtCacheConfig::paper_pwc())),
                None,
            ),
            MmuConfig::DvmBitmap => (
                // Fallback translation TLB, probed in parallel with the
                // bitmap cache so the 00 fallback is not serialized.
                Some(Tlb::new(TlbConfig::paper_accelerator(PageSize::Size4K))),
                None,
                // 128-entry bitmap cache of 64 B bitmap blocks (each block
                // holds the 2-bit fields of 256 pages).
                Some(PtCache::new(PtCacheConfig {
                    pte_entries: 128,
                    ways: 4,
                    block_bytes: 64,
                    cache_l1: true,
                })),
            ),
            MmuConfig::DvmPe { .. } => (None, Some(PtCache::new(PtCacheConfig::paper_avc())), None),
            MmuConfig::Ideal => (None, None, None),
        };
        Self {
            config,
            tlb,
            ptc,
            bitmap_cache,
            walk_memo: WalkMemo::new(),
            energy: EnergyAccount::new(energy_params),
            stats: IommuStats::new(),
        }
    }

    /// Enable or disable memoization of timed walks (enabled by default;
    /// equivalence tests disable it to compare against direct walks).
    pub fn set_walk_memo(&mut self, enabled: bool) {
        self.walk_memo.set_enabled(enabled);
    }

    /// The configured scheme.
    pub fn config(&self) -> MmuConfig {
        self.config
    }

    /// Translation TLB statistics, if this configuration has a TLB.
    pub fn tlb_stats(&self) -> Option<&RatioStat> {
        self.tlb.as_ref().map(|t| t.stats())
    }

    /// PWC/AVC statistics, if present.
    pub fn ptc_stats(&self) -> Option<&RatioStat> {
        self.ptc.as_ref().map(|c| c.stats())
    }

    /// Bitmap-cache statistics (DVM-BM only).
    pub fn bitmap_cache_stats(&self) -> Option<&RatioStat> {
        self.bitmap_cache.as_ref().map(|c| c.stats())
    }

    /// Reset all statistics and energy counts (cached state is kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.energy.reset();
        if let Some(t) = &mut self.tlb {
            t.reset_stats();
        }
        if let Some(c) = &mut self.ptc {
            c.reset_stats();
        }
        if let Some(b) = &mut self.bitmap_cache {
            b.reset_stats();
        }
    }

    /// Flush all cached translation state (context switch).
    pub fn flush(&mut self) {
        if let Some(t) = &mut self.tlb {
            t.flush();
        }
        if let Some(c) = &mut self.ptc {
            c.flush();
        }
        if let Some(b) = &mut self.bitmap_cache {
            b.flush();
        }
    }

    /// Validate/translate one access.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] the IOMMU would raise on the host CPU when the
    /// access is to unmapped memory or lacks permissions.
    pub fn access(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        pt: &PageTable,
        bitmap: Option<&PermBitmap>,
        mem: &PhysMem,
        dram: &mut Dram,
    ) -> Result<Validation, Fault> {
        self.stats.accesses.inc();
        match self.config {
            MmuConfig::Ideal => Ok(Validation {
                pa: va.to_identity_pa(),
                latency: 0,
                overlap: false,
                squashed_preload: false,
            }),
            MmuConfig::Conventional { page_size } => {
                self.conventional_access(va, kind, page_size, pt, mem, dram)
            }
            MmuConfig::DvmPe { preload } => self.dvm_pe_access(va, kind, preload, pt, mem, dram),
            MmuConfig::DvmBitmap => {
                let bitmap = bitmap.expect("DVM-BM requires a permission bitmap");
                self.dvm_bm_access(va, kind, bitmap, pt, mem, dram)
            }
        }
    }

    fn tlb_energy_event(&self) -> MmEvent {
        match self.tlb.as_ref().map(|t| t.config().assoc) {
            Some(Associativity::Full) => MmEvent::FaTlbLookup,
            _ => MmEvent::SaTlbLookup,
        }
    }

    fn fault(&mut self, va: VirtAddr, kind: AccessKind, fk: FaultKind) -> Fault {
        self.stats.faults.inc();
        Fault {
            va,
            access: kind,
            kind: fk,
        }
    }

    fn check(&mut self, perms: Permission, va: VirtAddr, kind: AccessKind) -> Result<(), Fault> {
        if !perms.is_mapped() {
            return Err(self.fault(va, kind, FaultKind::NotMapped));
        }
        if !perms.allows(kind) {
            return Err(self.fault(va, kind, FaultKind::Protection));
        }
        Ok(())
    }

    /// Replay a functional walk through the PWC/AVC. Cache probes are
    /// pipelined in the walker (back-to-back walks stream through them),
    /// so the returned stall latency counts only the memory fetches; the
    /// per-probe cycles are charged to the shared walker's occupancy.
    fn timed_walk(
        &mut self,
        pt: &PageTable,
        mem: &PhysMem,
        dram: &mut Dram,
        va: VirtAddr,
    ) -> (Walk, Cycles) {
        self.stats.walks.inc();
        let walk = self.walk_memo.walk(pt, mem, va);
        let mut stall: Cycles = 0;
        let mut busy: Cycles = 0;
        for step in walk.steps() {
            match &mut self.ptc {
                Some(ptc) => match ptc.access(step.pte_pa, step.level) {
                    PtcLookup::Hit => {
                        busy += 1;
                        self.energy.record(MmEvent::PtcLookup);
                    }
                    PtcLookup::Miss => {
                        busy += 1;
                        self.energy.record(MmEvent::PtcLookup);
                        let fetch = dram.access(step.pte_pa, AccessKind::Read);
                        stall += fetch;
                        busy += fetch;
                        self.energy.record(MmEvent::WalkerDram);
                        self.stats.walk_mem_refs.inc();
                    }
                    PtcLookup::Bypass => {
                        let fetch = dram.access(step.pte_pa, AccessKind::Read);
                        stall += fetch;
                        busy += fetch;
                        self.energy.record(MmEvent::WalkerDram);
                        self.stats.walk_mem_refs.inc();
                    }
                },
                None => {
                    let fetch = dram.access(step.pte_pa, AccessKind::Read);
                    stall += fetch;
                    busy += fetch;
                    self.energy.record(MmEvent::WalkerDram);
                    self.stats.walk_mem_refs.inc();
                }
            }
        }
        self.stats.walker_busy.add(busy);
        (walk, stall)
    }

    fn conventional_access(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        page_size: PageSize,
        pt: &PageTable,
        mem: &PhysMem,
        dram: &mut Dram,
    ) -> Result<Validation, Fault> {
        self.energy.record(self.tlb_energy_event());
        let hit = self.tlb.as_mut().expect("conventional has TLB").lookup(va);
        if let Some(entry) = hit {
            self.check(entry.perms, va, kind)?;
            let pa = PhysAddr::new((entry.pfn << page_size.shift()) | va.page_offset(page_size));
            return Ok(Validation {
                pa,
                latency: 1,
                overlap: false,
                squashed_preload: false,
            });
        }
        let (walk, walk_stall) = self.timed_walk(pt, mem, dram, va);
        let latency = 1 + walk_stall;
        match walk.outcome {
            WalkOutcome::Leaf { pa, perms, page } => {
                self.check(perms, va, kind)?;
                debug_assert_eq!(
                    page, page_size,
                    "conventional tables must be uniform (OS layout invariant)"
                );
                self.tlb.as_mut().expect("tlb").insert(TlbEntry {
                    vpn: va.vpn(page_size),
                    pfn: pa.raw() >> page_size.shift(),
                    perms,
                });
                Ok(Validation {
                    pa,
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            // Defensive: hardware that understands PEs treats them as
            // identity validations even in conventional mode.
            WalkOutcome::PermissionEntry { perms, .. } => {
                self.check(perms, va, kind)?;
                self.stats.identity_validations.inc();
                Ok(Validation {
                    pa: va.to_identity_pa(),
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::NotMapped { .. } => Err(self.fault(va, kind, FaultKind::NotMapped)),
        }
    }

    fn dvm_pe_access(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        preload: bool,
        pt: &PageTable,
        mem: &PhysMem,
        dram: &mut Dram,
    ) -> Result<Validation, Fault> {
        let (walk, walk_stall) = self.timed_walk(pt, mem, dram, va);
        let validation_latency = 1 + walk_stall;
        let predicted = preload && kind == AccessKind::Read;
        match walk.outcome {
            WalkOutcome::PermissionEntry { perms, .. } => {
                self.check(perms, va, kind).inspect_err(|_| {
                    // A predicted preload to VA==PA was launched; DAV
                    // failed, so it is squashed.
                    if predicted {
                        self.stats.preload_squashes.inc();
                        self.energy.record(MmEvent::PreloadSquash);
                    }
                })?;
                self.stats.identity_validations.inc();
                if predicted {
                    self.stats.preload_overlaps.inc();
                }
                Ok(Validation {
                    pa: va.to_identity_pa(),
                    latency: validation_latency,
                    overlap: predicted,
                    squashed_preload: false,
                })
            }
            WalkOutcome::Leaf { pa, perms, .. } => {
                // Non-identity fallback: the leaf PTE already gives the
                // translation, so the fallback costs no extra walk (§4.1.1).
                self.stats.fallback_translations.inc();
                let identity = pa.raw() == va.raw();
                let squashed = predicted && !identity;
                if squashed {
                    self.stats.preload_squashes.inc();
                    self.energy.record(MmEvent::PreloadSquash);
                }
                self.check(perms, va, kind)?;
                if predicted && identity {
                    self.stats.preload_overlaps.inc();
                }
                Ok(Validation {
                    pa,
                    latency: validation_latency,
                    overlap: predicted && identity,
                    squashed_preload: squashed,
                })
            }
            WalkOutcome::NotMapped { .. } => {
                if predicted {
                    self.stats.preload_squashes.inc();
                    self.energy.record(MmEvent::PreloadSquash);
                }
                Err(self.fault(va, kind, FaultKind::NotMapped))
            }
        }
    }

    fn dvm_bm_access(
        &mut self,
        va: VirtAddr,
        kind: AccessKind,
        bitmap: &PermBitmap,
        pt: &PageTable,
        mem: &PhysMem,
        dram: &mut Dram,
    ) -> Result<Validation, Fault> {
        let vpn = va.vpn(PageSize::Size4K);
        // The bitmap cache and the fallback FA TLB are probed in parallel
        // on every access (so the 00 path is not serialized); both
        // lookups burn energy every time — the reason DVM-BM saves far
        // less energy than DVM-PE (paper Figure 9).
        self.energy.record(MmEvent::BitmapCacheLookup);
        let tlb_event = self.tlb_energy_event();
        self.energy.record(tlb_event);
        let tlb_hit = self.tlb.as_mut().expect("fallback TLB").lookup(va);
        let word_pa = bitmap.entry_pa(vpn);
        let cache = self
            .bitmap_cache
            .as_mut()
            .expect("DVM-BM has a bitmap cache");
        let (hit, dav_latency) = match cache.access(word_pa, 2) {
            PtcLookup::Hit => (true, 1),
            _ => {
                let fetch = dram.access(word_pa, AccessKind::Read);
                self.energy.record(MmEvent::WalkerDram);
                self.stats.walk_mem_refs.inc();
                self.stats.walker_busy.add(fetch);
                (false, 1 + fetch)
            }
        };
        let _ = hit;
        let perms = bitmap.perms_of(mem, vpn);
        if perms.is_mapped() {
            // 1-step DAV success: identity access.
            if !perms.allows(kind) {
                return Err(self.fault(va, kind, FaultKind::Protection));
            }
            self.stats.identity_validations.inc();
            return Ok(Validation {
                pa: va.to_identity_pa(),
                latency: dav_latency,
                overlap: false,
                squashed_preload: false,
            });
        }
        // 00: not identity mapped; full translation, expedited by the TLB
        // that was already probed in parallel.
        self.stats.fallback_translations.inc();
        if let Some(entry) = tlb_hit {
            self.check(entry.perms, va, kind)?;
            let pa = PhysAddr::from_frame(entry.pfn) + va.page_offset(PageSize::Size4K);
            return Ok(Validation {
                pa,
                latency: dav_latency,
                overlap: false,
                squashed_preload: false,
            });
        }
        let (walk, walk_stall) = self.timed_walk(pt, mem, dram, va);
        let latency = dav_latency + 1 + walk_stall;
        match walk.outcome {
            WalkOutcome::Leaf { pa, perms, page } => {
                self.check(perms, va, kind)?;
                debug_assert_eq!(page, PageSize::Size4K, "DVM-BM fallback uses 4K tables");
                self.tlb.as_mut().expect("tlb").insert(TlbEntry {
                    vpn,
                    pfn: pa.frame(),
                    perms,
                });
                Ok(Validation {
                    pa,
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::PermissionEntry { perms, .. } => {
                // Stale bitmap relative to the page table; trust the table.
                self.check(perms, va, kind)?;
                self.stats.identity_validations.inc();
                Ok(Validation {
                    pa: va.to_identity_pa(),
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::NotMapped { .. } => Err(self.fault(va, kind, FaultKind::NotMapped)),
        }
    }
}
