//! Page-walk cache (PWC) and Access Validation Cache (AVC) models.
//!
//! Both are the same physical structure (paper §4.1.2): a physically
//! indexed, physically tagged, 4-way set-associative cache of 64-byte
//! page-table blocks, 1 KiB total (128 PTEs). They differ only in fill
//! policy:
//!
//! * a conventional **PWC** does *not* cache L1 (leaf-table) PTEs, to avoid
//!   pollution — so every 4K-page walk ends with at least one DRAM access;
//! * the **AVC** caches entries of *all* levels, which is practical only
//!   because Permission Entries make the page table tiny.

use dvm_sim::RatioStat;
use dvm_types::PhysAddr;

/// Configuration of a PWC/AVC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtCacheConfig {
    /// Total cached PTEs (8 bytes each).
    pub pte_entries: u32,
    /// Ways per set.
    pub ways: u32,
    /// Block size in bytes (PTEs are cached in blocks, like a data cache).
    pub block_bytes: u32,
    /// Whether L1 (leaf-table) PTE blocks are cached. `false` = PWC,
    /// `true` = AVC.
    pub cache_l1: bool,
}

impl PtCacheConfig {
    /// The paper's PWC: 128 PTEs, 4-way, 64 B blocks, no L1 caching.
    pub fn paper_pwc() -> Self {
        Self {
            pte_entries: 128,
            ways: 4,
            block_bytes: 64,
            cache_l1: false,
        }
    }

    /// The paper's AVC: same structure, but caches every level.
    pub fn paper_avc() -> Self {
        Self {
            cache_l1: true,
            ..Self::paper_pwc()
        }
    }

    fn num_sets(&self) -> usize {
        let blocks = self.pte_entries * 8 / self.block_bytes;
        (blocks / self.ways) as usize
    }
}

/// Result of a PWC/AVC probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtcLookup {
    /// Block present; 1-cycle access.
    Hit,
    /// Block absent; walker must fetch from DRAM (and fills the cache
    /// unless the level is bypassed).
    Miss,
    /// Level not cached by this structure (PWC + L1): the walker goes
    /// straight to DRAM without probing.
    Bypass,
}

/// A physically indexed cache of page-table blocks.
///
/// # Examples
///
/// ```
/// use dvm_mmu::{PtCache, PtCacheConfig, PtcLookup};
/// use dvm_types::PhysAddr;
///
/// let mut avc = PtCache::new(PtCacheConfig::paper_avc());
/// let pte_pa = PhysAddr::new(0x4008);
/// assert_eq!(avc.access(pte_pa, 1), PtcLookup::Miss);
/// assert_eq!(avc.access(pte_pa, 1), PtcLookup::Hit);
///
/// let mut pwc = PtCache::new(PtCacheConfig::paper_pwc());
/// assert_eq!(pwc.access(pte_pa, 1), PtcLookup::Bypass); // L1 not cached
/// assert_eq!(pwc.access(pte_pa, 2), PtcLookup::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct PtCache {
    config: PtCacheConfig,
    /// Per-set block tags in recency order (offset 0 in the set = LRU):
    /// a hit rotates the tag to the back, eviction shifts out the front
    /// — the exact victim the previous tick-scan picked, since ticks
    /// were unique. Flat `num_sets * ways` array; set `s` occupies
    /// `[s * ways, s * ways + lens[s])`. A walk probes this several
    /// times per access, so the sets live inline instead of behind
    /// per-set `Vec` indirections.
    tags: Box<[u64]>,
    /// Valid tags per set.
    lens: Box<[u32]>,
    num_sets: usize,
    /// Precomputed shift for `block_bytes` (asserted a power of two).
    block_shift: u32,
    /// `num_sets - 1` when the set count is a power of two, replacing
    /// the per-access modulo with a mask; `None` falls back to modulo.
    set_mask: Option<u64>,
    stats: RatioStat,
}

impl PtCache {
    /// Build a cache.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero sets or ways).
    pub fn new(config: PtCacheConfig) -> Self {
        assert!(config.ways > 0, "cache needs ways");
        assert!(config.num_sets() > 0, "cache needs sets");
        assert!(
            config.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        let num_sets = config.num_sets();
        Self {
            config,
            tags: vec![0; num_sets * config.ways as usize].into_boxed_slice(),
            lens: vec![0; num_sets].into_boxed_slice(),
            num_sets,
            block_shift: config.block_bytes.trailing_zeros(),
            set_mask: num_sets.is_power_of_two().then(|| num_sets as u64 - 1),
            stats: RatioStat::new("ptc"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> PtCacheConfig {
        self.config
    }

    /// Hit/miss statistics (bypasses are not counted).
    pub fn stats(&self) -> &RatioStat {
        &self.stats
    }

    /// Probe for the block holding the PTE at `pte_pa` (an entry at
    /// page-table level `level`), filling on miss.
    #[inline]
    pub fn access(&mut self, pte_pa: PhysAddr, level: u8) -> PtcLookup {
        if level == 1 && !self.config.cache_l1 {
            return PtcLookup::Bypass;
        }
        let block = pte_pa.raw() >> self.block_shift;
        // Page-table pages are page-aligned, so an entry's low block bits
        // encode only its index within the table — naive modulo indexing
        // would dump the first entries of *every* table into set 0. Fold
        // the frame bits in (XOR hashing, as real walk caches do).
        let hashed = block ^ (block >> 6) ^ (block >> 12);
        let set_idx = match self.set_mask {
            Some(mask) => (hashed & mask) as usize,
            None => (hashed % self.num_sets as u64) as usize,
        };
        let ways = self.config.ways as usize;
        let base = set_idx * ways;
        let len = self.lens[set_idx] as usize;
        let set = &mut self.tags[base..base + len];
        if let Some(pos) = set.iter().position(|tag| *tag == block) {
            set.copy_within(pos + 1.., pos);
            set[len - 1] = block;
            self.stats.hit();
            return PtcLookup::Hit;
        }
        self.stats.miss();
        if len >= ways {
            let set = &mut self.tags[base..base + ways];
            set.copy_within(1.., 0);
            set[ways - 1] = block;
        } else {
            self.tags[base + len] = block;
            self.lens[set_idx] = len as u32 + 1;
        }
        PtcLookup::Miss
    }

    /// Zero the hit/miss statistics (cached blocks are kept).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Drop all blocks.
    pub fn flush(&mut self) {
        self.lens.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        // 128 PTEs * 8 B = 1 KiB; 64 B blocks -> 16 blocks; 4-way -> 4 sets.
        assert_eq!(PtCacheConfig::paper_avc().num_sets(), 4);
    }

    #[test]
    fn same_block_hits() {
        let mut c = PtCache::new(PtCacheConfig::paper_avc());
        // Two PTEs in the same 64 B block.
        assert_eq!(c.access(PhysAddr::new(0x1000), 2), PtcLookup::Miss);
        assert_eq!(c.access(PhysAddr::new(0x1038), 2), PtcLookup::Hit);
        // Next block misses.
        assert_eq!(c.access(PhysAddr::new(0x1040), 2), PtcLookup::Miss);
    }

    #[test]
    fn pwc_bypasses_l1_only() {
        let mut c = PtCache::new(PtCacheConfig::paper_pwc());
        assert_eq!(c.access(PhysAddr::new(0), 1), PtcLookup::Bypass);
        // Bypass does not fill: L2 access to same block still misses.
        assert_eq!(c.access(PhysAddr::new(0), 2), PtcLookup::Miss);
        assert_eq!(c.access(PhysAddr::new(0), 1), PtcLookup::Bypass);
    }

    #[test]
    fn avc_caches_l1() {
        let mut c = PtCache::new(PtCacheConfig::paper_avc());
        assert_eq!(c.access(PhysAddr::new(0x2000), 1), PtcLookup::Miss);
        assert_eq!(c.access(PhysAddr::new(0x2000), 1), PtcLookup::Hit);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let cfg = PtCacheConfig::paper_avc(); // 16 blocks capacity
        let mut c = PtCache::new(cfg);
        // Far more distinct blocks than capacity: the earliest must be
        // evicted, the latest retained.
        let blocks: Vec<u64> = (0..100).map(|i| i * 64).collect();
        for &b in &blocks {
            c.access(PhysAddr::new(b), 2);
        }
        assert_eq!(c.access(PhysAddr::new(blocks[0]), 2), PtcLookup::Miss);
        assert_eq!(
            c.access(PhysAddr::new(*blocks.last().unwrap()), 2),
            PtcLookup::Hit
        );
    }

    #[test]
    fn low_index_entries_of_different_tables_do_not_collide() {
        // Entry 0 of five different table pages: naive modulo indexing
        // would put all of them in one set (capacity 4); the hashed index
        // must keep them all resident.
        let mut c = PtCache::new(PtCacheConfig::paper_avc());
        let tables: Vec<u64> = (0..5).map(|frame| frame * 4096).collect();
        for &t in &tables {
            c.access(PhysAddr::new(t), 2);
        }
        for &t in &tables {
            assert_eq!(
                c.access(PhysAddr::new(t), 2),
                PtcLookup::Hit,
                "table {t:#x}"
            );
        }
    }

    #[test]
    fn flush_clears() {
        let mut c = PtCache::new(PtCacheConfig::paper_avc());
        c.access(PhysAddr::new(0x40), 3);
        c.flush();
        assert_eq!(c.access(PhysAddr::new(0x40), 3), PtcLookup::Miss);
    }

    #[test]
    fn stats_ignore_bypass() {
        let mut c = PtCache::new(PtCacheConfig::paper_pwc());
        c.access(PhysAddr::new(0), 1);
        assert_eq!(c.stats().total(), 0);
        c.access(PhysAddr::new(0), 2);
        assert_eq!(c.stats().total(), 1);
    }

    /// The pre-optimization store (last-use ticks + `min_by_key` scan),
    /// kept as the oracle the O(1) recency-ordered sets must match.
    struct ScanLruPtCache {
        config: PtCacheConfig,
        sets: Vec<Vec<(u64, u64)>>,
        tick: u64,
    }

    impl ScanLruPtCache {
        fn new(config: PtCacheConfig) -> Self {
            Self {
                config,
                sets: vec![Vec::new(); config.num_sets()],
                tick: 0,
            }
        }

        fn access(&mut self, pte_pa: PhysAddr, level: u8) -> PtcLookup {
            if level == 1 && !self.config.cache_l1 {
                return PtcLookup::Bypass;
            }
            let block = pte_pa.raw() / self.config.block_bytes as u64;
            let hashed = block ^ (block >> 6) ^ (block >> 12);
            let set_idx = (hashed % self.sets.len() as u64) as usize;
            self.tick += 1;
            let tick = self.tick;
            let set = &mut self.sets[set_idx];
            if let Some(slot) = set.iter_mut().find(|(tag, _)| *tag == block) {
                slot.1 = tick;
                return PtcLookup::Hit;
            }
            if set.len() >= self.config.ways as usize {
                let lru = set
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, last))| *last)
                    .map(|(i, _)| i)
                    .expect("non-empty set");
                set.swap_remove(lru);
            }
            set.push((block, tick));
            PtcLookup::Miss
        }

        fn contents(&self) -> Vec<u64> {
            let mut all: Vec<u64> = self
                .sets
                .iter()
                .flat_map(|s| s.iter().map(|(tag, _)| *tag))
                .collect();
            all.sort_unstable();
            all
        }
    }

    impl PtCache {
        fn contents(&self) -> Vec<u64> {
            let ways = self.config.ways as usize;
            let mut all: Vec<u64> = (0..self.num_sets)
                .flat_map(|s| self.tags[s * ways..s * ways + self.lens[s] as usize].iter())
                .copied()
                .collect();
            all.sort_unstable();
            all
        }
    }

    #[test]
    fn matches_scan_lru_oracle() {
        use dvm_sim::DetRng;
        for (cfg, seed) in [
            (PtCacheConfig::paper_pwc(), 1u64),
            (PtCacheConfig::paper_avc(), 2),
            (PtCacheConfig::paper_avc(), 3),
        ] {
            let mut rng = DetRng::new(seed);
            let mut oracle = ScanLruPtCache::new(cfg);
            let mut cache = PtCache::new(cfg);
            for step in 0..20_000 {
                // PTE addresses clustered over a few table pages so sets
                // see real reuse and eviction pressure.
                let pa = PhysAddr::new(rng.skewed_below(8, 1.2) * 4096 + rng.below(512) * 8);
                let level = rng.range(1, 5) as u8;
                assert_eq!(
                    cache.access(pa, level),
                    oracle.access(pa, level),
                    "step {step} pa {pa} level {level}"
                );
                assert_eq!(cache.contents(), oracle.contents(), "step {step}");
            }
        }
    }
}
