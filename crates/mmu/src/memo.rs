//! Memoization of software page-table walks.
//!
//! The simulator performs two kinds of walks through simulated `PhysMem`:
//! *untimed* functional walks (the accelerator runner peeking and poking
//! data without charging cycles) and *timed* walks inside
//! [`Iommu::timed_walk`](crate::Iommu::timed_walk), whose per-step
//! addresses drive the page-walk cache and DRAM models. Both repeat the
//! same 4-level pointer chase for every access to a page, which dominates
//! the simulator's inner loop.
//!
//! Both memos here exploit the same invariant: for a fixed page table
//! (identified by `(PhysMem::pt_gen, root_frame)`), the walk of any
//! virtual address is a pure function of its 4 KiB virtual page number.
//!
//! * every step's PTE address depends only on VA bits ≥ 12;
//! * a `Leaf` outcome is linear inside its page (`pa = base + offset`)
//!   for 4 KiB, 2 MiB and 1 GiB leaves alike;
//! * a `PermissionEntry` outcome's slot index depends only on VA bits
//!   ≥ 13 (slot spans are ≥ 128 KiB);
//! * a `NotMapped` outcome's failing level is offset-independent.
//!
//! So a direct-mapped VPN-indexed cache of the page-base walk reproduces
//! the uncached walk *exactly*, and [`PhysMem::note_pt_mutation`] bumping
//! the generation on every page-table write or table-frame free makes
//! stale entries unreachable.

use core::cell::Cell;
use dvm_mem::PhysMem;
use dvm_pagetable::{PageTable, Walk, WalkOutcome};
use dvm_types::{Permission, PhysAddr, VirtAddr, PAGE_SIZE};

/// log2 of the slot count: 65536 slots cover a ~256 MiB working set per
/// conflict-free stride. The quick-scale RMAT datasets touch tens of
/// thousands of distinct pages; at the previous 4096 slots their
/// random property accesses thrashed the memo and most TLB misses paid
/// a real 4-level walk through cache-cold table frames, which dominated
/// the simulator's miss path.
const LOG2_SLOTS: u32 = 16;
const SLOTS: usize = 1 << LOG2_SLOTS;

/// Fibonacci multiplier; spreads clustered VPNs across slots so distinct
/// arenas laid out at round offsets do not thrash a shared slot.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

#[inline]
fn slot_of(vpn: u64) -> usize {
    (vpn.wrapping_mul(HASH_MUL) >> (64 - LOG2_SLOTS)) as usize
}

/// Identity of the page table a memo entry was computed against.
pub type MemoTag = (u64, u64); // (PhysMem::pt_gen, PageTable::root_frame)

/// Direct-mapped memo of *untimed* translations, owned by
/// [`MemSystem`](crate::MemSystem).
///
/// Uses interior mutability so read-only helpers (`dump_props_*`, the
/// runner's peeks) can populate it through `&MemSystem`. Entries store
/// the 4 KiB page-base physical address with the permission bits packed
/// into the low bits (page bases are 4 KiB-aligned, permissions fit in
/// two bits).
///
/// # Examples
///
/// ```
/// use dvm_mmu::TranslationMemo;
/// let memo = TranslationMemo::new();
/// assert!(memo.is_enabled());
/// assert!(!TranslationMemo::disabled().is_enabled());
/// ```
#[derive(Debug)]
pub struct TranslationMemo {
    tag: Cell<MemoTag>,
    /// `vpn + 1` per slot; 0 marks an empty slot.
    vpns: Box<[Cell<u64>]>,
    /// Page-base PA | permission bits.
    data: Box<[Cell<u64>]>,
}

impl TranslationMemo {
    /// An enabled memo with the default slot count.
    pub fn new() -> Self {
        Self {
            tag: Cell::new((0, 0)),
            vpns: (0..SLOTS).map(|_| Cell::new(0)).collect(),
            data: (0..SLOTS).map(|_| Cell::new(0)).collect(),
        }
    }

    /// A memo that never hits and never stores — every untimed access
    /// falls through to the real walk (used by equivalence tests).
    pub fn disabled() -> Self {
        Self {
            tag: Cell::new((0, 0)),
            vpns: Box::new([]),
            data: Box::new([]),
        }
    }

    /// Whether this memo has any capacity.
    pub fn is_enabled(&self) -> bool {
        !self.vpns.is_empty()
    }

    /// Drop every entry if `tag` no longer matches the tables the memo
    /// was filled against.
    fn revalidate(&self, tag: MemoTag) {
        if self.tag.get() != tag {
            for slot in self.vpns.iter() {
                slot.set(0);
            }
            self.tag.set(tag);
        }
    }

    /// Memoized translation of `va`, if present and still valid.
    #[inline]
    pub fn lookup(&self, tag: MemoTag, va: VirtAddr) -> Option<(PhysAddr, Permission)> {
        if self.vpns.is_empty() {
            return None;
        }
        self.revalidate(tag);
        let offset = va.raw() & (PAGE_SIZE - 1);
        let vpn = va.raw() >> dvm_types::PAGE_SHIFT;
        let slot = slot_of(vpn);
        if self.vpns[slot].get() != vpn + 1 {
            return None;
        }
        let data = self.data[slot].get();
        let pa = PhysAddr::new((data & !(PAGE_SIZE - 1)) + offset);
        let perms = Permission::from_bits((data & 0b11) as u8);
        Some((pa, perms))
    }

    /// Record a translation produced by the real walk.
    #[inline]
    pub fn store(&self, tag: MemoTag, va: VirtAddr, pa: PhysAddr, perms: Permission) {
        if self.vpns.is_empty() {
            return;
        }
        self.revalidate(tag);
        let offset = va.raw() & (PAGE_SIZE - 1);
        let vpn = va.raw() >> dvm_types::PAGE_SHIFT;
        let slot = slot_of(vpn);
        self.vpns[slot].set(vpn + 1);
        self.data[slot].set((pa.raw() - offset) | u64::from(perms.bits()));
    }
}

impl Default for TranslationMemo {
    fn default() -> Self {
        Self::new()
    }
}

/// Direct-mapped memo of full *timed* walks, owned by
/// [`Iommu`](crate::Iommu).
///
/// Stores the complete [`Walk`] (steps and outcome) computed at the
/// page-base address of each VPN; a hit replays the identical step
/// sequence into the page-walk cache and DRAM models and rebases a
/// `Leaf` outcome by the in-page offset, so the result is byte-for-byte
/// the walk `PageTable::walk` would have produced.
#[derive(Debug, Clone)]
pub(crate) struct WalkMemo {
    enabled: bool,
    tag: MemoTag,
    vpns: Box<[u64]>,
    walks: Box<[Walk]>,
}

impl WalkMemo {
    pub(crate) fn new() -> Self {
        let empty = Walk::new(&[], WalkOutcome::NotMapped { level: 0 });
        Self {
            enabled: true,
            tag: (0, 0),
            vpns: vec![0; SLOTS].into_boxed_slice(),
            walks: vec![empty; SLOTS].into_boxed_slice(),
        }
    }

    /// Enable or disable memoization (disabling also clears the store).
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        self.vpns.fill(0);
    }

    /// Walk `va`, reusing the memoized page-base walk when valid.
    #[inline]
    pub(crate) fn walk(&mut self, pt: &PageTable, mem: &PhysMem, va: VirtAddr) -> Walk {
        if !self.enabled {
            return pt.walk(mem, va);
        }
        let tag = (mem.pt_gen(), pt.root_frame());
        if self.tag != tag {
            self.vpns.fill(0);
            self.tag = tag;
        }
        let offset = va.raw() & (PAGE_SIZE - 1);
        let vpn = va.raw() >> dvm_types::PAGE_SHIFT;
        let slot = slot_of(vpn);
        if self.vpns[slot] != vpn + 1 {
            // Walk the page base so the cached entry is offset-free.
            // `VA_LIMIT` is page-aligned, so the canonicality assert
            // inside `PageTable::walk` fires iff it would fire for `va`.
            let walk = pt.walk(mem, VirtAddr::new(va.raw() - offset));
            self.vpns[slot] = vpn + 1;
            self.walks[slot] = walk;
        }
        let mut walk = self.walks[slot];
        if let WalkOutcome::Leaf { pa, .. } = &mut walk.outcome {
            *pa += offset;
        }
        walk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_mem::BuddyAllocator;

    fn harness() -> (PhysMem, BuddyAllocator, PageTable) {
        let mut mem = PhysMem::new(1 << 16);
        let mut alloc = BuddyAllocator::new(1 << 16);
        let pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        (mem, alloc, pt)
    }

    #[test]
    fn translation_memo_hits_after_store() {
        let memo = TranslationMemo::new();
        let tag = (7, 3);
        let va = VirtAddr::new((16 << 20) + 0x123);
        assert_eq!(memo.lookup(tag, va), None);
        memo.store(
            tag,
            va,
            PhysAddr::new((32 << 20) + 0x123),
            Permission::ReadWrite,
        );
        assert_eq!(
            memo.lookup(tag, va),
            Some((PhysAddr::new((32 << 20) + 0x123), Permission::ReadWrite))
        );
        // Same page, different offset: the page base is shared.
        let va2 = VirtAddr::new((16 << 20) + 0xffc);
        assert_eq!(
            memo.lookup(tag, va2),
            Some((PhysAddr::new((32 << 20) + 0xffc), Permission::ReadWrite))
        );
    }

    #[test]
    fn translation_memo_invalidates_on_tag_change() {
        let memo = TranslationMemo::new();
        let va = VirtAddr::new(16 << 20);
        memo.store((1, 3), va, PhysAddr::new(32 << 20), Permission::ReadOnly);
        assert!(memo.lookup((1, 3), va).is_some());
        assert_eq!(memo.lookup((2, 3), va), None, "new pt_gen drops entries");
        assert_eq!(memo.lookup((2, 4), va), None, "new root drops entries");
    }

    #[test]
    fn disabled_memo_never_stores() {
        let memo = TranslationMemo::disabled();
        let va = VirtAddr::new(16 << 20);
        memo.store((1, 1), va, PhysAddr::new(32 << 20), Permission::ReadWrite);
        assert_eq!(memo.lookup((1, 1), va), None);
    }

    #[test]
    fn walk_memo_matches_direct_walks() {
        let (mut mem, mut alloc, mut pt) = harness();
        pt.map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(16 << 20),
            2 << 20,
            Permission::ReadWrite,
        )
        .unwrap();
        pt.map_page(
            &mut mem,
            &mut alloc,
            VirtAddr::new(64 << 20),
            PhysAddr::new(32 << 20),
            dvm_types::PageSize::Size4K,
            Permission::ReadOnly,
        )
        .unwrap();
        let mut memo = WalkMemo::new();
        let vas = [
            VirtAddr::new(16 << 20),
            VirtAddr::new((16 << 20) + 0x7b4),
            VirtAddr::new((64 << 20) + 0xffc),
            VirtAddr::new(900 << 20), // not mapped
        ];
        for _ in 0..3 {
            for va in vas {
                assert_eq!(memo.walk(&pt, &mem, va), pt.walk(&mem, va), "{va}");
            }
        }
    }

    #[test]
    fn walk_memo_sees_page_table_mutations() {
        let (mut mem, mut alloc, mut pt) = harness();
        let va = VirtAddr::new(64 << 20);
        pt.map_page(
            &mut mem,
            &mut alloc,
            va,
            PhysAddr::new(32 << 20),
            dvm_types::PageSize::Size4K,
            Permission::ReadWrite,
        )
        .unwrap();
        let mut memo = WalkMemo::new();
        assert_eq!(memo.walk(&pt, &mem, va), pt.walk(&mem, va));
        pt.unmap_region(&mut mem, &mut alloc, va, PAGE_SIZE)
            .unwrap();
        assert_eq!(memo.walk(&pt, &mem, va), pt.walk(&mem, va), "post-unmap");
        assert!(matches!(
            memo.walk(&pt, &mem, va).outcome,
            WalkOutcome::NotMapped { .. }
        ));
    }
}
