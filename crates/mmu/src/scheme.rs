//! Pluggable translation schemes and the scheme registry.
//!
//! The paper's seven configurations (Figure 8) used to be a closed enum;
//! they are now implementations of [`TranslationScheme`], registered in a
//! process-wide table next to two rival shared-virtual-addressing designs
//! from the literature. Each scheme owns its display name, the leaf page
//! size the OS must map for it, its hardware structures (TLB / page-walk
//! cache / bitmap cache), and the per-access validate/translate path;
//! [`Iommu`](crate::Iommu) is a thin driver that dispatches into the
//! scheme. A [`SchemeId`] is a cheap copyable handle into the registry —
//! the currency every layer above `dvm-mmu` trades in.
//!
//! | name | structures | behaviour |
//! |---|---|---|
//! | `4K/2M/1G,TLB+PWC` | 128-entry FA TLB + 1 KiB PWC | translate, then access |
//! | `DVM-BM` | 128-entry bitmap cache + flat bitmap + FA TLB fallback | 1-step DAV; full translation on `00` |
//! | `DVM-PE` | 1 KiB AVC only | PE page-walk validation, then access |
//! | `DVM-PE+` | 1 KiB AVC | like DVM-PE, but reads overlap DAV with a preload |
//! | `Ideal` | none | direct physical access |
//! | `SVA-Pf` | 128-entry FA TLB + 1 KiB PWC | 4K SVA with next-page TLB prefetch (Kurth et al.) |
//! | `SVA-IOMMU` | 64-entry 8-way TLB + 1 KiB PWC | RISC-V-style IOMMU SVA with a device-context fetch (Koenig et al.) |
//!
//! New schemes register at runtime with [`register_scheme`]; see
//! DESIGN.md, "Adding a translation scheme".

use crate::iommu::{AccessCtx, Iommu, Validation};
use crate::ptcache::PtCacheConfig;
use crate::tlb::{Associativity, TlbConfig, TlbEntry};
use core::fmt;
use dvm_energy::MmEvent;
use dvm_pagetable::{WalkOutcome, VA_LIMIT};
use dvm_types::{AccessKind, Fault, FaultKind, PageSize, PhysAddr, VirtAddr};
use std::sync::{OnceLock, RwLock};

/// Hardware structures a scheme asks the [`Iommu`] to instantiate.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchemeStructures {
    /// Translation (or fallback) TLB.
    pub tlb: Option<TlbConfig>,
    /// Page-walk cache / access-validation cache.
    pub ptc: Option<PtCacheConfig>,
    /// DVM-BM-style bitmap cache.
    pub bitmap_cache: Option<PtCacheConfig>,
}

/// One pluggable memory-management scheme.
///
/// Implementations are stateless: all mutable per-run state (TLB, caches,
/// scratch words, statistics, energy) lives in the [`Iommu`] handed to
/// [`access`](Self::access). That keeps a registered scheme a plain
/// `&'static` object shared by every concurrent sweep unit.
pub trait TranslationScheme: fmt::Debug + Send + Sync {
    /// Display name; unique within the registry (used by CLI filters,
    /// report-cache keys and result documents).
    fn name(&self) -> &'static str;

    /// One-line human description (shown in CLI scheme listings).
    fn describe(&self) -> &'static str;

    /// Page size the OS should use when building page tables for this
    /// scheme (`None` means DVM-style PE tables — or no table at all).
    fn required_leaf_size(&self) -> Option<PageSize> {
        None
    }

    /// Whether the OS must maintain the flat permission bitmap.
    fn needs_bitmap(&self) -> bool {
        false
    }

    /// Physical-memory size the experiment harness should provision for a
    /// graph heap of the given size (rounded up to whole GiB by the
    /// caller). The default gives 1.5x headroom; schemes with coarse
    /// mappings can ask for more.
    fn machine_bytes_hint(&self, graph_heap_bytes: u64) -> u64 {
        (graph_heap_bytes * 3 / 2).max(1 << 30)
    }

    /// Structures the IOMMU should build for this scheme (Table 2 sizes
    /// for the paper set).
    fn structures(&self) -> SchemeStructures;

    /// Validate/translate one access. `iommu` holds the structures built
    /// from [`structures`](Self::structures) plus stats, energy and
    /// scratch state; `ctx` carries the page table, optional bitmap and
    /// the DRAM model.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] the IOMMU would raise on the host CPU when
    /// the access is to unmapped memory or lacks permissions.
    fn access(
        &self,
        iommu: &mut Iommu,
        ctx: &mut AccessCtx<'_>,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Validation, Fault>;
}

/// Handle to a registered [`TranslationScheme`].
///
/// Prints and parses as the scheme's registry name; the numeric index is
/// an implementation detail (report-cache keys and result documents only
/// ever see the name, so registration order can never alias cached data).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemeId(u16);

impl SchemeId {
    /// Conventional 4 KiB paging (`4K,TLB+PWC`).
    pub const CONV_4K: SchemeId = SchemeId(0);
    /// Conventional 2 MiB paging (`2M,TLB+PWC`).
    pub const CONV_2M: SchemeId = SchemeId(1);
    /// Conventional 1 GiB paging (`1G,TLB+PWC`).
    pub const CONV_1G: SchemeId = SchemeId(2);
    /// DVM with the flat permission bitmap (`DVM-BM`).
    pub const DVM_BM: SchemeId = SchemeId(3);
    /// DVM with Permission Entries and the AVC (`DVM-PE`).
    pub const DVM_PE: SchemeId = SchemeId(4);
    /// DVM-PE with the read preload overlap (`DVM-PE+`).
    pub const DVM_PE_PLUS: SchemeId = SchemeId(5);
    /// Direct physical access without translation (`Ideal`).
    pub const IDEAL: SchemeId = SchemeId(6);
    /// 4K SVA with next-page TLB prefetching (`SVA-Pf`, Kurth et al.).
    pub const SVA_PF: SchemeId = SchemeId(7);
    /// RISC-V-style IOMMU SVA (`SVA-IOMMU`, Koenig et al.).
    pub const SVA_IOMMU: SchemeId = SchemeId(8);

    /// The seven configurations evaluated in Figures 8 and 9, in the
    /// paper's order.
    pub const PAPER_SET: [SchemeId; 7] = [
        SchemeId::CONV_4K,
        SchemeId::CONV_2M,
        SchemeId::CONV_1G,
        SchemeId::DVM_BM,
        SchemeId::DVM_PE,
        SchemeId::DVM_PE_PLUS,
        SchemeId::IDEAL,
    ];

    /// The conventional scheme for a page size.
    pub fn conventional(page_size: PageSize) -> SchemeId {
        match page_size {
            PageSize::Size4K => SchemeId::CONV_4K,
            PageSize::Size2M => SchemeId::CONV_2M,
            PageSize::Size1G => SchemeId::CONV_1G,
        }
    }

    /// The registered scheme object behind this id.
    pub fn scheme(self) -> &'static dyn TranslationScheme {
        let reg = registry().read().expect("scheme registry poisoned");
        reg[self.0 as usize]
    }

    /// The scheme's registry (display) name.
    pub fn name(self) -> &'static str {
        self.scheme().name()
    }

    /// See [`TranslationScheme::required_leaf_size`].
    pub fn required_leaf_size(self) -> Option<PageSize> {
        self.scheme().required_leaf_size()
    }

    /// See [`TranslationScheme::needs_bitmap`].
    pub fn needs_bitmap(self) -> bool {
        self.scheme().needs_bitmap()
    }

    /// Every registered scheme, in registration order (builtins first).
    pub fn all() -> Vec<SchemeId> {
        let reg = registry().read().expect("scheme registry poisoned");
        (0..reg.len() as u16).map(SchemeId).collect()
    }

    /// Every registered scheme name, in registration order.
    pub fn registered_names() -> Vec<&'static str> {
        let reg = registry().read().expect("scheme registry poisoned");
        reg.iter().map(|s| s.name()).collect()
    }

    /// Resolve a scheme name. Matching folds case and treats `-` as
    /// equivalent to `,` (so the comma-separated `--schemes` CLI list can
    /// spell `4K,TLB+PWC` as `4K-TLB+PWC`); an unambiguous prefix ending
    /// at a separator also resolves (`4K` -> `4K,TLB+PWC`).
    pub fn parse(text: &str) -> Option<SchemeId> {
        fn canon(s: &str) -> String {
            s.chars()
                .map(|c| match c {
                    ',' => '-',
                    c => c.to_ascii_lowercase(),
                })
                .collect()
        }
        let want = canon(text);
        if want.is_empty() {
            return None;
        }
        let reg = registry().read().expect("scheme registry poisoned");
        let names: Vec<String> = reg.iter().map(|s| canon(s.name())).collect();
        if let Some(i) = names.iter().position(|n| *n == want) {
            return Some(SchemeId(i as u16));
        }
        let prefix = format!("{want}-");
        let mut hits = names
            .iter()
            .enumerate()
            .filter(|(_, n)| n.starts_with(&prefix));
        match (hits.next(), hits.next()) {
            (Some((i, _)), None) => Some(SchemeId(i as u16)),
            _ => None,
        }
    }
}

impl fmt::Debug for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Display for SchemeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn registry() -> &'static RwLock<Vec<&'static dyn TranslationScheme>> {
    static REGISTRY: OnceLock<RwLock<Vec<&'static dyn TranslationScheme>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(builtins()))
}

static CONV_4K_SCHEME: Conventional = Conventional {
    page_size: PageSize::Size4K,
};
static CONV_2M_SCHEME: Conventional = Conventional {
    page_size: PageSize::Size2M,
};
static CONV_1G_SCHEME: Conventional = Conventional {
    page_size: PageSize::Size1G,
};
static DVM_BM_SCHEME: DvmBitmap = DvmBitmap;
static DVM_PE_SCHEME: DvmPe = DvmPe { preload: false };
static DVM_PE_PLUS_SCHEME: DvmPe = DvmPe { preload: true };
static IDEAL_SCHEME: Ideal = Ideal;
static SVA_PF_SCHEME: SvaPf = SvaPf;
static SVA_IOMMU_SCHEME: SvaIommu = SvaIommu;

fn builtins() -> Vec<&'static dyn TranslationScheme> {
    vec![
        &CONV_4K_SCHEME,
        &CONV_2M_SCHEME,
        &CONV_1G_SCHEME,
        &DVM_BM_SCHEME,
        &DVM_PE_SCHEME,
        &DVM_PE_PLUS_SCHEME,
        &IDEAL_SCHEME,
        &SVA_PF_SCHEME,
        &SVA_IOMMU_SCHEME,
    ]
}

/// Statically resolved per-access dispatch.
///
/// Every access the accelerator issues crosses the
/// [`TranslationScheme::access`] boundary; through the registry that is a
/// virtual call the compiler cannot inline, which leaves the whole
/// translate-validate-charge chain opaque to the optimizer. A
/// `SchemeDispatch` implementor is a zero-sized token that routes the
/// call to one concrete builtin scheme *statically* — same code, same
/// state, same counters, but monomorphized so page sizes constant-fold
/// and the TLB/walker fast paths inline into the workload loops.
///
/// [`dispatch::Dyn`] preserves the registry-driven virtual call and is
/// the default everywhere; it is also the only correct choice for
/// schemes registered at runtime. The sweep engine picks the matching
/// static token for builtin schemes (see `dvm-core`).
pub trait SchemeDispatch: Copy + Send + Sync + 'static {
    /// Validate/translate one access exactly as the scheme the token
    /// stands for would.
    ///
    /// # Errors
    ///
    /// Returns the [`Fault`] the scheme raises for unmapped or
    /// permission-violating accesses.
    fn access(
        iommu: &mut Iommu,
        ctx: &mut AccessCtx<'_>,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Validation, Fault>;
}

/// Zero-sized dispatch tokens: one per builtin scheme plus the dynamic
/// fallback. See [`SchemeDispatch`].
pub mod dispatch {
    use super::*;

    /// Registry-driven virtual dispatch (works for every scheme).
    #[derive(Debug, Clone, Copy)]
    pub struct Dyn;

    impl SchemeDispatch for Dyn {
        #[inline]
        fn access(
            iommu: &mut Iommu,
            ctx: &mut AccessCtx<'_>,
            va: VirtAddr,
            kind: AccessKind,
        ) -> Result<Validation, Fault> {
            iommu.scheme().access(iommu, ctx, va, kind)
        }
    }

    macro_rules! static_token {
        ($(#[$doc:meta])* $name:ident, $scheme:ident) => {
            $(#[$doc])*
            #[derive(Debug, Clone, Copy)]
            pub struct $name;

            impl SchemeDispatch for $name {
                #[inline]
                fn access(
                    iommu: &mut Iommu,
                    ctx: &mut AccessCtx<'_>,
                    va: VirtAddr,
                    kind: AccessKind,
                ) -> Result<Validation, Fault> {
                    $scheme.access(iommu, ctx, va, kind)
                }
            }
        };
    }

    static_token!(
        /// `4K,TLB+PWC`.
        Conv4K,
        CONV_4K_SCHEME
    );
    static_token!(
        /// `2M,TLB+PWC`.
        Conv2M,
        CONV_2M_SCHEME
    );
    static_token!(
        /// `1G,TLB+PWC`.
        Conv1G,
        CONV_1G_SCHEME
    );
    static_token!(
        /// `DVM-BM`.
        DvmBm,
        DVM_BM_SCHEME
    );
    static_token!(
        /// `DVM-PE`.
        DvmPe,
        DVM_PE_SCHEME
    );
    static_token!(
        /// `DVM-PE+`.
        DvmPePlus,
        DVM_PE_PLUS_SCHEME
    );
    static_token!(
        /// `Ideal`.
        Ideal,
        IDEAL_SCHEME
    );
    static_token!(
        /// `SVA-Pf`.
        SvaPf,
        SVA_PF_SCHEME
    );
    static_token!(
        /// `SVA-IOMMU`.
        SvaIommu,
        SVA_IOMMU_SCHEME
    );
}

/// Register a new translation scheme; returns its [`SchemeId`].
///
/// The scheme is leaked into the registry for the life of the process
/// (ids must stay valid in every `Iommu` already built from them).
///
/// # Errors
///
/// Rejects an empty name or one that collides (under the
/// [`SchemeId::parse`] folding) with an already-registered scheme.
pub fn register_scheme(scheme: Box<dyn TranslationScheme>) -> Result<SchemeId, String> {
    let name = scheme.name();
    if name.is_empty() {
        return Err("scheme name must not be empty".into());
    }
    let mut reg = registry().write().expect("scheme registry poisoned");
    let folded = |s: &str| s.replace(',', "-").to_ascii_lowercase();
    if let Some(existing) = reg.iter().find(|s| folded(s.name()) == folded(name)) {
        return Err(format!(
            "scheme name '{name}' collides with registered scheme '{}'",
            existing.name()
        ));
    }
    reg.push(Box::leak(scheme));
    Ok(SchemeId(reg.len() as u16 - 1))
}

/// Conventional VM: TLB + page-walk cache at a uniform page size.
#[derive(Debug)]
struct Conventional {
    page_size: PageSize,
}

impl TranslationScheme for Conventional {
    fn name(&self) -> &'static str {
        match self.page_size {
            PageSize::Size4K => "4K,TLB+PWC",
            PageSize::Size2M => "2M,TLB+PWC",
            PageSize::Size1G => "1G,TLB+PWC",
        }
    }

    fn describe(&self) -> &'static str {
        match self.page_size {
            PageSize::Size4K => "conventional 4K paging, 128-entry FA TLB + PWC",
            PageSize::Size2M => "conventional 2M paging, 128-entry FA TLB + PWC",
            PageSize::Size1G => "conventional 1G paging, 128-entry FA TLB + PWC",
        }
    }

    fn required_leaf_size(&self) -> Option<PageSize> {
        Some(self.page_size)
    }

    fn machine_bytes_hint(&self, graph_heap_bytes: u64) -> u64 {
        if self.page_size == PageSize::Size1G {
            // 1G pages waste most of the last gigabyte of every
            // allocation; give the buddy allocator generous headroom.
            graph_heap_bytes + (7u64 << 30)
        } else {
            (graph_heap_bytes * 3 / 2).max(1 << 30)
        }
    }

    fn structures(&self) -> SchemeStructures {
        SchemeStructures {
            tlb: Some(TlbConfig::paper_accelerator(self.page_size)),
            ptc: Some(PtCacheConfig::paper_pwc()),
            bitmap_cache: None,
        }
    }

    #[inline]
    fn access(
        &self,
        iommu: &mut Iommu,
        ctx: &mut AccessCtx<'_>,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Validation, Fault> {
        let page_size = self.page_size;
        iommu.energy.record(iommu.tlb_energy_event());
        let hit = iommu.tlb.as_mut().expect("conventional has TLB").lookup(va);
        if let Some(entry) = hit {
            iommu.check(entry.perms, va, kind)?;
            let pa = PhysAddr::new((entry.pfn << page_size.shift()) | va.page_offset(page_size));
            return Ok(Validation {
                pa,
                latency: 1,
                overlap: false,
                squashed_preload: false,
            });
        }
        let (walk, walk_stall) = iommu.timed_walk(ctx, va);
        let latency = 1 + walk_stall;
        match walk.outcome {
            WalkOutcome::Leaf { pa, perms, page } => {
                iommu.check(perms, va, kind)?;
                debug_assert_eq!(
                    page, page_size,
                    "conventional tables must be uniform (OS layout invariant)"
                );
                iommu.tlb.as_mut().expect("tlb").insert(TlbEntry {
                    vpn: va.vpn(page_size),
                    pfn: pa.raw() >> page_size.shift(),
                    perms,
                });
                Ok(Validation {
                    pa,
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            // Defensive: hardware that understands PEs treats them as
            // identity validations even in conventional mode.
            WalkOutcome::PermissionEntry { perms, .. } => {
                iommu.check(perms, va, kind)?;
                iommu.stats.identity_validations.inc();
                Ok(Validation {
                    pa: va.to_identity_pa(),
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::NotMapped { .. } => Err(iommu.fault(va, kind, FaultKind::NotMapped)),
        }
    }
}

/// DVM with the flat permission bitmap (Border-Control-style DAV).
#[derive(Debug)]
struct DvmBitmap;

impl TranslationScheme for DvmBitmap {
    fn name(&self) -> &'static str {
        "DVM-BM"
    }

    fn describe(&self) -> &'static str {
        "devirtualized memory, flat permission bitmap + bitmap cache"
    }

    fn needs_bitmap(&self) -> bool {
        true
    }

    fn structures(&self) -> SchemeStructures {
        SchemeStructures {
            // Fallback translation TLB, probed in parallel with the
            // bitmap cache so the 00 fallback is not serialized.
            tlb: Some(TlbConfig::paper_accelerator(PageSize::Size4K)),
            ptc: None,
            // 128-entry bitmap cache of 64 B bitmap blocks (each block
            // holds the 2-bit fields of 256 pages).
            bitmap_cache: Some(PtCacheConfig {
                pte_entries: 128,
                ways: 4,
                block_bytes: 64,
                cache_l1: true,
            }),
        }
    }

    #[inline]
    fn access(
        &self,
        iommu: &mut Iommu,
        ctx: &mut AccessCtx<'_>,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Validation, Fault> {
        let bitmap = ctx.bitmap.expect("DVM-BM requires a permission bitmap");
        let vpn = va.vpn(PageSize::Size4K);
        // The bitmap cache and the fallback FA TLB are probed in parallel
        // on every access (so the 00 path is not serialized); both
        // lookups burn energy every time — the reason DVM-BM saves far
        // less energy than DVM-PE (paper Figure 9).
        iommu.energy.record(MmEvent::BitmapCacheLookup);
        let tlb_event = iommu.tlb_energy_event();
        iommu.energy.record(tlb_event);
        let tlb_hit = iommu.tlb.as_mut().expect("fallback TLB").lookup(va);
        let word_pa = bitmap.entry_pa(vpn);
        let cache = iommu
            .bitmap_cache
            .as_mut()
            .expect("DVM-BM has a bitmap cache");
        let (hit, dav_latency) = match cache.access(word_pa, 2) {
            crate::ptcache::PtcLookup::Hit => (true, 1),
            _ => {
                let fetch = ctx.dram.access(word_pa, AccessKind::Read);
                iommu.energy.record(MmEvent::WalkerDram);
                iommu.stats.walk_mem_refs.inc();
                iommu.stats.walker_busy.add(fetch);
                (false, 1 + fetch)
            }
        };
        let _ = hit;
        let perms = bitmap.perms_of(ctx.mem, vpn);
        if perms.is_mapped() {
            // 1-step DAV success: identity access.
            if !perms.allows(kind) {
                return Err(iommu.fault(va, kind, FaultKind::Protection));
            }
            iommu.stats.identity_validations.inc();
            return Ok(Validation {
                pa: va.to_identity_pa(),
                latency: dav_latency,
                overlap: false,
                squashed_preload: false,
            });
        }
        // 00: not identity mapped; full translation, expedited by the TLB
        // that was already probed in parallel.
        iommu.stats.fallback_translations.inc();
        if let Some(entry) = tlb_hit {
            iommu.check(entry.perms, va, kind)?;
            let pa = PhysAddr::from_frame(entry.pfn) + va.page_offset(PageSize::Size4K);
            return Ok(Validation {
                pa,
                latency: dav_latency,
                overlap: false,
                squashed_preload: false,
            });
        }
        let (walk, walk_stall) = iommu.timed_walk(ctx, va);
        let latency = dav_latency + 1 + walk_stall;
        match walk.outcome {
            WalkOutcome::Leaf { pa, perms, page } => {
                iommu.check(perms, va, kind)?;
                debug_assert_eq!(page, PageSize::Size4K, "DVM-BM fallback uses 4K tables");
                iommu.tlb.as_mut().expect("tlb").insert(TlbEntry {
                    vpn,
                    pfn: pa.frame(),
                    perms,
                });
                Ok(Validation {
                    pa,
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::PermissionEntry { perms, .. } => {
                // Stale bitmap relative to the page table; trust the table.
                iommu.check(perms, va, kind)?;
                iommu.stats.identity_validations.inc();
                Ok(Validation {
                    pa: va.to_identity_pa(),
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::NotMapped { .. } => Err(iommu.fault(va, kind, FaultKind::NotMapped)),
        }
    }
}

/// DVM with Permission Entries and the Access Validation Cache.
#[derive(Debug)]
struct DvmPe {
    /// Allow reads to overlap DAV with a preload (DVM-PE+).
    preload: bool,
}

impl TranslationScheme for DvmPe {
    fn name(&self) -> &'static str {
        if self.preload {
            "DVM-PE+"
        } else {
            "DVM-PE"
        }
    }

    fn describe(&self) -> &'static str {
        if self.preload {
            "devirtualized memory, permission entries + AVC + read preload"
        } else {
            "devirtualized memory, permission entries + AVC"
        }
    }

    fn structures(&self) -> SchemeStructures {
        SchemeStructures {
            tlb: None,
            ptc: Some(PtCacheConfig::paper_avc()),
            bitmap_cache: None,
        }
    }

    #[inline]
    fn access(
        &self,
        iommu: &mut Iommu,
        ctx: &mut AccessCtx<'_>,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Validation, Fault> {
        let (walk, walk_stall) = iommu.timed_walk(ctx, va);
        let validation_latency = 1 + walk_stall;
        let predicted = self.preload && kind == AccessKind::Read;
        match walk.outcome {
            WalkOutcome::PermissionEntry { perms, .. } => {
                iommu.check(perms, va, kind).inspect_err(|_| {
                    // A predicted preload to VA==PA was launched; DAV
                    // failed, so it is squashed.
                    if predicted {
                        iommu.stats.preload_squashes.inc();
                        iommu.energy.record(MmEvent::PreloadSquash);
                    }
                })?;
                iommu.stats.identity_validations.inc();
                if predicted {
                    iommu.stats.preload_overlaps.inc();
                }
                Ok(Validation {
                    pa: va.to_identity_pa(),
                    latency: validation_latency,
                    overlap: predicted,
                    squashed_preload: false,
                })
            }
            WalkOutcome::Leaf { pa, perms, .. } => {
                // Non-identity fallback: the leaf PTE already gives the
                // translation, so the fallback costs no extra walk (§4.1.1).
                iommu.stats.fallback_translations.inc();
                let identity = pa.raw() == va.raw();
                let squashed = predicted && !identity;
                if squashed {
                    iommu.stats.preload_squashes.inc();
                    iommu.energy.record(MmEvent::PreloadSquash);
                }
                iommu.check(perms, va, kind)?;
                if predicted && identity {
                    iommu.stats.preload_overlaps.inc();
                }
                Ok(Validation {
                    pa,
                    latency: validation_latency,
                    overlap: predicted && identity,
                    squashed_preload: squashed,
                })
            }
            WalkOutcome::NotMapped { .. } => {
                if predicted {
                    iommu.stats.preload_squashes.inc();
                    iommu.energy.record(MmEvent::PreloadSquash);
                }
                Err(iommu.fault(va, kind, FaultKind::NotMapped))
            }
        }
    }
}

/// Direct physical access without translation or protection.
#[derive(Debug)]
struct Ideal;

impl TranslationScheme for Ideal {
    fn name(&self) -> &'static str {
        "Ideal"
    }

    fn describe(&self) -> &'static str {
        "direct physical access, no translation or protection"
    }

    fn structures(&self) -> SchemeStructures {
        SchemeStructures::default()
    }

    #[inline]
    fn access(
        &self,
        _iommu: &mut Iommu,
        _ctx: &mut AccessCtx<'_>,
        va: VirtAddr,
        _kind: AccessKind,
    ) -> Result<Validation, Fault> {
        Ok(Validation {
            pa: va.to_identity_pa(),
            latency: 0,
            overlap: false,
            squashed_preload: false,
        })
    }
}

/// 4K shared virtual addressing with sequential next-page TLB
/// prefetching, after Kurth et al., "Scalable Shared Virtual Memory
/// Addressing for Heterogeneous SoCs" (arXiv 1808.09751): on a demand
/// TLB miss the walker also resolves the next virtual page in the
/// background, so streaming DMA hides most of its translation stalls.
/// The prefetch walk's memory traffic and energy are charged, but the
/// demand access does not stall on it.
#[derive(Debug)]
struct SvaPf;

/// The page size SVA-Pf (and SVA-IOMMU) maps at.
const SVA_PAGE: PageSize = PageSize::Size4K;

impl SvaPf {
    /// Background next-page prefetch. `iommu.scratch[0]` remembers the
    /// last prefetched vpn (+1 so zero means "none"), filtering repeated
    /// prefetches of the same page on clustered misses.
    #[inline]
    fn prefetch_next(&self, iommu: &mut Iommu, ctx: &mut AccessCtx<'_>, va: VirtAddr) {
        let Some(next) = va.raw().checked_add(SVA_PAGE.bytes()) else {
            return;
        };
        if next >= VA_LIMIT {
            return;
        }
        let next = VirtAddr::new(next);
        let vpn = next.vpn(SVA_PAGE);
        if iommu.scratch[0] == vpn + 1 {
            return;
        }
        iommu.scratch[0] = vpn + 1;
        iommu.stats.tlb_prefetches.inc();
        // The walk is charged (walker occupancy, PWC probes, DRAM
        // fetches) but its stall is discarded: it runs behind the
        // demand access. Faults are dropped — a prefetch must never
        // raise one.
        let (walk, _stall) = iommu.timed_walk(ctx, next);
        if let WalkOutcome::Leaf { pa, perms, page } = walk.outcome {
            if page == SVA_PAGE {
                iommu
                    .tlb
                    .as_mut()
                    .expect("SVA-Pf has a TLB")
                    .insert(TlbEntry {
                        vpn,
                        pfn: pa.raw() >> SVA_PAGE.shift(),
                        perms,
                    });
            }
        }
    }
}

impl TranslationScheme for SvaPf {
    fn name(&self) -> &'static str {
        "SVA-Pf"
    }

    fn describe(&self) -> &'static str {
        "shared virtual addressing, 4K TLB + PWC + next-page prefetch"
    }

    fn required_leaf_size(&self) -> Option<PageSize> {
        Some(SVA_PAGE)
    }

    fn structures(&self) -> SchemeStructures {
        SchemeStructures {
            tlb: Some(TlbConfig::paper_accelerator(SVA_PAGE)),
            ptc: Some(PtCacheConfig::paper_pwc()),
            bitmap_cache: None,
        }
    }

    #[inline]
    fn access(
        &self,
        iommu: &mut Iommu,
        ctx: &mut AccessCtx<'_>,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Validation, Fault> {
        iommu.energy.record(iommu.tlb_energy_event());
        let hit = iommu.tlb.as_mut().expect("SVA-Pf has a TLB").lookup(va);
        if let Some(entry) = hit {
            iommu.check(entry.perms, va, kind)?;
            let pa = PhysAddr::new((entry.pfn << SVA_PAGE.shift()) | va.page_offset(SVA_PAGE));
            return Ok(Validation {
                pa,
                latency: 1,
                overlap: false,
                squashed_preload: false,
            });
        }
        let (walk, walk_stall) = iommu.timed_walk(ctx, va);
        let latency = 1 + walk_stall;
        match walk.outcome {
            WalkOutcome::Leaf { pa, perms, page } => {
                iommu.check(perms, va, kind)?;
                debug_assert_eq!(page, SVA_PAGE, "SVA-Pf maps 4K leaves");
                iommu.tlb.as_mut().expect("tlb").insert(TlbEntry {
                    vpn: va.vpn(SVA_PAGE),
                    pfn: pa.raw() >> SVA_PAGE.shift(),
                    perms,
                });
                self.prefetch_next(iommu, ctx, va);
                Ok(Validation {
                    pa,
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::PermissionEntry { perms, .. } => {
                iommu.check(perms, va, kind)?;
                iommu.stats.identity_validations.inc();
                Ok(Validation {
                    pa: va.to_identity_pa(),
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::NotMapped { .. } => Err(iommu.fault(va, kind, FaultKind::NotMapped)),
        }
    }
}

/// RISC-V-style shared virtual addressing through a standards-track
/// IOMMU, after Koenig et al., "Fast Shared-Memory Barrier
/// Synchronization for a 1024-Cores RISC-V Many-Core Cluster" lineage
/// IOMMU work (arXiv 2502.17398): a modest set-associative IOTLB in
/// front of the PWC, plus a one-time device-context (DDT) fetch from
/// memory before the first walk of a context — the price of the
/// process-to-device binding the spec routes every stream through.
#[derive(Debug)]
struct SvaIommu;

impl TranslationScheme for SvaIommu {
    fn name(&self) -> &'static str {
        "SVA-IOMMU"
    }

    fn describe(&self) -> &'static str {
        "shared virtual addressing, RISC-V IOMMU: 8-way IOTLB + PWC + DDT fetch"
    }

    fn required_leaf_size(&self) -> Option<PageSize> {
        Some(SVA_PAGE)
    }

    fn structures(&self) -> SchemeStructures {
        SchemeStructures {
            // The spec's reference IOTLB organization is set-associative
            // and smaller than the paper's 128-entry CAM.
            tlb: Some(TlbConfig {
                entries: 64,
                assoc: Associativity::SetAssociative { ways: 8 },
                page_size: SVA_PAGE,
            }),
            ptc: Some(PtCacheConfig::paper_pwc()),
            bitmap_cache: None,
        }
    }

    #[inline]
    fn access(
        &self,
        iommu: &mut Iommu,
        ctx: &mut AccessCtx<'_>,
        va: VirtAddr,
        kind: AccessKind,
    ) -> Result<Validation, Fault> {
        iommu.energy.record(iommu.tlb_energy_event());
        let hit = iommu
            .tlb
            .as_mut()
            .expect("SVA-IOMMU has an IOTLB")
            .lookup(va);
        if let Some(entry) = hit {
            iommu.check(entry.perms, va, kind)?;
            let pa = PhysAddr::new((entry.pfn << SVA_PAGE.shift()) | va.page_offset(SVA_PAGE));
            return Ok(Validation {
                pa,
                latency: 1,
                overlap: false,
                squashed_preload: false,
            });
        }
        // First walk of this context: fetch the device directory entry
        // binding the device to the process address space. Cached in the
        // walker afterwards (`scratch[0]`), flushed on context switch.
        let mut ddt_stall = 0;
        if iommu.scratch[0] == 0 {
            iommu.scratch[0] = 1;
            let fetch = ctx.dram.access(PhysAddr::new(0), AccessKind::Read);
            iommu.energy.record(MmEvent::WalkerDram);
            iommu.stats.walk_mem_refs.inc();
            iommu.stats.walker_busy.add(fetch);
            ddt_stall = fetch;
        }
        let (walk, walk_stall) = iommu.timed_walk(ctx, va);
        let latency = 1 + ddt_stall + walk_stall;
        match walk.outcome {
            WalkOutcome::Leaf { pa, perms, page } => {
                iommu.check(perms, va, kind)?;
                debug_assert_eq!(page, SVA_PAGE, "SVA-IOMMU maps 4K leaves");
                iommu.tlb.as_mut().expect("tlb").insert(TlbEntry {
                    vpn: va.vpn(SVA_PAGE),
                    pfn: pa.raw() >> SVA_PAGE.shift(),
                    perms,
                });
                Ok(Validation {
                    pa,
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::PermissionEntry { perms, .. } => {
                iommu.check(perms, va, kind)?;
                iommu.stats.identity_validations.inc();
                Ok(Validation {
                    pa: va.to_identity_pa(),
                    latency,
                    overlap: false,
                    squashed_preload: false,
                })
            }
            WalkOutcome::NotMapped { .. } => Err(iommu.fault(va, kind, FaultKind::NotMapped)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_names_are_stable() {
        let names: Vec<&str> = SchemeId::PAPER_SET.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "4K,TLB+PWC",
                "2M,TLB+PWC",
                "1G,TLB+PWC",
                "DVM-BM",
                "DVM-PE",
                "DVM-PE+",
                "Ideal"
            ]
        );
    }

    /// parse <-> Display round-trips for every registered scheme — the
    /// registry contract the CLI and report cache rely on.
    #[test]
    fn registry_round_trips_every_scheme() {
        for id in SchemeId::all() {
            let name = id.name();
            assert_eq!(SchemeId::parse(name), Some(id), "parse({name})");
            assert_eq!(format!("{id}"), name, "Display");
            assert_eq!(format!("{id:?}"), name, "Debug");
        }
    }

    #[test]
    fn parse_accepts_cli_safe_spellings() {
        // `--schemes` splits on commas, so the comma-bearing paper names
        // have dash and prefix spellings.
        assert_eq!(SchemeId::parse("4K-TLB+PWC"), Some(SchemeId::CONV_4K));
        assert_eq!(SchemeId::parse("4K"), Some(SchemeId::CONV_4K));
        assert_eq!(SchemeId::parse("2m"), Some(SchemeId::CONV_2M));
        assert_eq!(SchemeId::parse("1g"), Some(SchemeId::CONV_1G));
        assert_eq!(SchemeId::parse("dvm-pe"), Some(SchemeId::DVM_PE));
        assert_eq!(SchemeId::parse("DVM-PE+"), Some(SchemeId::DVM_PE_PLUS));
        assert_eq!(SchemeId::parse("sva-pf"), Some(SchemeId::SVA_PF));
        // Ambiguous prefix ("SVA" matches both SVA schemes) and unknown
        // names do not resolve.
        assert_eq!(SchemeId::parse("SVA"), None);
        assert_eq!(SchemeId::parse("nope"), None);
        assert_eq!(SchemeId::parse(""), None);
    }

    #[test]
    fn sva_schemes_are_registered_with_4k_leaves() {
        assert_eq!(
            SchemeId::SVA_PF.required_leaf_size(),
            Some(PageSize::Size4K)
        );
        assert_eq!(
            SchemeId::SVA_IOMMU.required_leaf_size(),
            Some(PageSize::Size4K)
        );
        assert!(!SchemeId::SVA_PF.needs_bitmap());
    }

    #[derive(Debug)]
    struct Toy(&'static str);

    impl TranslationScheme for Toy {
        fn name(&self) -> &'static str {
            self.0
        }
        fn describe(&self) -> &'static str {
            "toy"
        }
        fn structures(&self) -> SchemeStructures {
            SchemeStructures::default()
        }
        fn access(
            &self,
            _iommu: &mut Iommu,
            _ctx: &mut AccessCtx<'_>,
            va: VirtAddr,
            _kind: AccessKind,
        ) -> Result<Validation, Fault> {
            Ok(Validation {
                pa: va.to_identity_pa(),
                latency: 0,
                overlap: false,
                squashed_preload: false,
            })
        }
    }

    #[test]
    fn registration_extends_the_registry_and_rejects_collisions() {
        let id = register_scheme(Box::new(Toy("toy-registered"))).unwrap();
        assert_eq!(id.name(), "toy-registered");
        assert_eq!(SchemeId::parse("toy-registered"), Some(id));
        assert!(SchemeId::all().contains(&id));
        // Exact duplicate and comma/dash-folded collisions are rejected.
        assert!(register_scheme(Box::new(Toy("toy-registered"))).is_err());
        assert!(register_scheme(Box::new(Toy("ideal"))).is_err());
        assert!(register_scheme(Box::new(Toy("4K-TLB+PWC"))).is_err());
        assert!(register_scheme(Box::new(Toy(""))).is_err());
    }
}
