//! Behavioural tests for page-table mapping, walking, demotion and
//! protection changes.

use dvm_mem::{BuddyAllocator, PhysMem};
use dvm_pagetable::{entry_span, slot_span, PageTable, WalkOutcome};
use dvm_types::{DvmError, PageSize, Permission, PhysAddr, VirtAddr};

const MB: u64 = 1 << 20;

fn setup() -> (PhysMem, BuddyAllocator) {
    // 1 GiB of simulated memory for table frames and mapped data.
    (PhysMem::new(1 << 18), BuddyAllocator::new(1 << 18))
}

fn new_pt(mem: &mut PhysMem, alloc: &mut BuddyAllocator) -> PageTable {
    PageTable::new(mem, alloc).unwrap()
}

#[test]
fn identity_pe_walk_hits_l2_pe() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(64 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadWrite)
        .unwrap();
    for probe in [0u64, 0x1000, 128 * 1024, 2 * MB - 8] {
        let walk = pt.walk(&mem, base + probe);
        match walk.outcome {
            WalkOutcome::PermissionEntry { perms, level } => {
                assert_eq!(perms, Permission::ReadWrite);
                assert_eq!(level, 2);
            }
            other => panic!("expected PE, got {other:?}"),
        }
        assert_eq!(walk.steps().len(), 3);
        assert_eq!(
            walk.resolve(base + probe),
            Some((PhysAddr::new(base.raw() + probe), Permission::ReadWrite))
        );
    }
}

#[test]
fn large_identity_region_uses_l3_pe() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    // 128 MiB aligned at a 64 MiB boundary: fits two L3 PE slots.
    let base = VirtAddr::new(128 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 128 * MB, Permission::ReadOnly)
        .unwrap();
    let walk = pt.walk(&mem, base + 5 * MB);
    match walk.outcome {
        WalkOutcome::PermissionEntry { perms, level } => {
            assert_eq!(perms, Permission::ReadOnly);
            assert_eq!(
                level, 3,
                "64 MiB-aligned 128 MiB region should use an L3 PE"
            );
        }
        other => panic!("expected L3 PE, got {other:?}"),
    }
    assert_eq!(walk.steps().len(), 2); // L4 then the L3 PE

    // Size check: no L2 or L1 tables at all.
    let report = pt.size_report(&mem);
    assert_eq!(report.table_frames[0], 0);
    assert_eq!(report.table_frames[1], 0);
    assert_eq!(report.pe_entries[2], 1, "one L3 PE entry");
}

#[test]
fn sub_slot_region_falls_back_to_identity_leaves() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    // 64 KiB is below the 128 KiB L2 slot granularity.
    let base = VirtAddr::new(200 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 64 * 1024, Permission::ReadWrite)
        .unwrap();
    let walk = pt.walk(&mem, base + 0x2000);
    match walk.outcome {
        WalkOutcome::Leaf { pa, perms, page } => {
            assert_eq!(pa, PhysAddr::new(base.raw() + 0x2000));
            assert_eq!(perms, Permission::ReadWrite);
            assert_eq!(page, PageSize::Size4K);
        }
        other => panic!("expected 4K identity leaf, got {other:?}"),
    }
}

#[test]
fn unaligned_region_mixes_pe_and_leaves() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    // One full 2 MiB entry (becomes a PE) + a 4 KiB tail spilling into the
    // next L2 entry (becomes an identity leaf: a PE replaces an entire PTE,
    // so a lone sub-slot tail cannot use one).
    let base = VirtAddr::new(256 * MB);
    let len = 2 * MB + 4096;
    pt.map_identity_pe(&mut mem, &mut alloc, base, len, Permission::ReadWrite)
        .unwrap();
    assert!(pt.walk(&mem, base).is_identity());
    // Tail is mapped but via a leaf (not slot aligned).
    let tail = base + 2 * MB;
    match pt.walk(&mem, tail).outcome {
        WalkOutcome::Leaf { pa, .. } => assert_eq!(pa.raw(), tail.raw()),
        other => panic!("expected leaf for tail, got {other:?}"),
    }
    // One past the end is unmapped.
    assert_eq!(pt.translate(&mem, base + len), None);
}

#[test]
fn gaps_between_pe_slots_fault() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(512 * MB);
    // Map only the first 128 KiB slot of a 2 MiB entry.
    pt.map_identity_pe(
        &mut mem,
        &mut alloc,
        base,
        128 * 1024,
        Permission::ReadWrite,
    )
    .unwrap();
    // Probe inside the same 2 MiB entry but a different slot: PE with 00.
    let gap = base + 512 * 1024;
    match pt.walk(&mem, gap).outcome {
        WalkOutcome::PermissionEntry { perms, .. } => assert_eq!(perms, Permission::None),
        other => panic!("expected empty PE slot, got {other:?}"),
    }
    assert_eq!(pt.translate(&mem, gap), None);
}

#[test]
fn two_regions_share_one_pe() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(1024 * MB);
    pt.map_identity_pe(
        &mut mem,
        &mut alloc,
        base,
        128 * 1024,
        Permission::ReadWrite,
    )
    .unwrap();
    pt.map_identity_pe(
        &mut mem,
        &mut alloc,
        base + 128 * 1024,
        128 * 1024,
        Permission::ReadOnly,
    )
    .unwrap();
    // Both live in the same L2 PE with different slot permissions.
    let report = pt.size_report(&mem);
    assert_eq!(report.pe_entries[1], 1);
    assert_eq!(pt.translate(&mem, base).unwrap().1, Permission::ReadWrite);
    assert_eq!(
        pt.translate(&mem, base + 128 * 1024).unwrap().1,
        Permission::ReadOnly
    );
}

#[test]
fn double_map_is_busy_and_atomic() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(2 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadWrite)
        .unwrap();
    let before = pt.size_report(&mem);
    // Overlapping map fails...
    let err = pt
        .map_identity_pe(
            &mut mem,
            &mut alloc,
            base + MB,
            2 * MB,
            Permission::ReadOnly,
        )
        .unwrap_err();
    assert!(matches!(err, DvmError::VaRangeBusy { .. }));
    // ...and changed nothing.
    assert_eq!(pt.size_report(&mem), before);
    assert_eq!(
        pt.translate(&mem, base + MB).unwrap().1,
        Permission::ReadWrite
    );
    assert_eq!(pt.translate(&mem, base + 3 * MB), None);
}

#[test]
fn map_page_non_identity_translation() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let va = VirtAddr::new(40 * MB);
    let pa = PhysAddr::new(80 * MB);
    pt.map_page(
        &mut mem,
        &mut alloc,
        va,
        pa,
        PageSize::Size4K,
        Permission::ReadWrite,
    )
    .unwrap();
    let walk = pt.walk(&mem, va + 0x123);
    assert!(!walk.is_identity());
    assert_eq!(
        walk.resolve(va + 0x123),
        Some((pa + 0x123, Permission::ReadWrite))
    );
    // Walk visits all four levels for a 4K leaf.
    assert_eq!(walk.steps().len(), 4);
}

#[test]
fn map_page_into_pe_gap_demotes() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(4096 * MB);
    // PE covering one slot; rest of the 2 MiB entry is a gap.
    pt.map_identity_pe(
        &mut mem,
        &mut alloc,
        base,
        128 * 1024,
        Permission::ReadWrite,
    )
    .unwrap();
    // Map a non-identity page into the gap: forces PE demotion.
    let gap_va = base + 256 * 1024;
    let pa = PhysAddr::new(8 * MB);
    pt.map_page(
        &mut mem,
        &mut alloc,
        gap_va,
        pa,
        PageSize::Size4K,
        Permission::ReadOnly,
    )
    .unwrap();
    // The original identity mapping still resolves identically.
    assert_eq!(
        pt.translate(&mem, base + 0x5000),
        Some((PhysAddr::new(base.raw() + 0x5000), Permission::ReadWrite))
    );
    // The new page resolves to its non-identity PA.
    assert_eq!(pt.translate(&mem, gap_va), Some((pa, Permission::ReadOnly)));
}

#[test]
fn huge_leaf_mappings() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(512 * MB);
    pt.map_identity_leaves(
        &mut mem,
        &mut alloc,
        base,
        8 * MB,
        Permission::ReadWrite,
        PageSize::Size2M,
    )
    .unwrap();
    match pt.walk(&mem, base + 3 * MB).outcome {
        WalkOutcome::Leaf { page, pa, .. } => {
            assert_eq!(page, PageSize::Size2M);
            assert_eq!(pa.raw(), base.raw() + 3 * MB);
        }
        other => panic!("expected 2M leaf, got {other:?}"),
    }
    // 8 MiB of 2M leaves: 4 present L2 entries, no L1 tables.
    let report = pt.size_report(&mem);
    assert_eq!(report.huge_leaf_entries, 4);
    assert_eq!(report.table_frames[0], 0);
}

#[test]
fn identity_leaves_unaligned_edges_get_4k() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    // Start 4K-aligned but not 2M-aligned.
    let base = VirtAddr::new(512 * MB + 4096);
    pt.map_identity_leaves(
        &mut mem,
        &mut alloc,
        base,
        4 * MB,
        Permission::ReadWrite,
        PageSize::Size2M,
    )
    .unwrap();
    match pt.walk(&mem, base).outcome {
        WalkOutcome::Leaf { page, .. } => assert_eq!(page, PageSize::Size4K),
        other => panic!("expected 4K edge, got {other:?}"),
    }
    // Interior aligned chunk got a 2M leaf.
    match pt.walk(&mem, VirtAddr::new(514 * MB)).outcome {
        WalkOutcome::Leaf { page, .. } => assert_eq!(page, PageSize::Size2M),
        other => panic!("expected 2M interior, got {other:?}"),
    }
    // Every byte translates identically.
    for off in (0..4 * MB).step_by(137 * 4096) {
        assert_eq!(
            pt.translate(&mem, base + off),
            Some((PhysAddr::new(base.raw() + off), Permission::ReadWrite))
        );
    }
}

#[test]
fn unmap_pe_slots_clears_and_reuses() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(6 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadWrite)
        .unwrap();
    pt.unmap_region(&mut mem, &mut alloc, base, 2 * MB).unwrap();
    assert_eq!(pt.translate(&mem, base), None);
    assert!(pt.is_range_unmapped(&mem, base, 2 * MB));
    // Range can be mapped again with different permissions.
    pt.map_identity_pe(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadOnly)
        .unwrap();
    assert_eq!(pt.translate(&mem, base).unwrap().1, Permission::ReadOnly);
}

#[test]
fn partial_unmap_of_pe_keeps_other_slots() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(6 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadWrite)
        .unwrap();
    // Unmap the middle 128 KiB slot.
    pt.unmap_region(&mut mem, &mut alloc, base + 512 * 1024, 128 * 1024)
        .unwrap();
    assert_eq!(pt.translate(&mem, base + 512 * 1024), None);
    assert!(pt.walk(&mem, base).is_identity());
    assert!(pt.walk(&mem, base + MB).is_identity());
}

#[test]
fn sub_slot_unmap_demotes_pe() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(6 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadWrite)
        .unwrap();
    // Unmap a single 4 KiB page: forces demotion to L1 leaves.
    pt.unmap_region(&mut mem, &mut alloc, base + 0x3000, 4096)
        .unwrap();
    assert_eq!(pt.translate(&mem, base + 0x3000), None);
    // Neighbours survive as identity translations.
    assert_eq!(
        pt.translate(&mem, base + 0x2000),
        Some((PhysAddr::new(base.raw() + 0x2000), Permission::ReadWrite))
    );
    assert_eq!(
        pt.translate(&mem, base + 0x4000),
        Some((PhysAddr::new(base.raw() + 0x4000), Permission::ReadWrite))
    );
}

#[test]
fn protect_whole_pe_region() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(10 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadWrite)
        .unwrap();
    pt.protect_region(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadOnly)
        .unwrap();
    assert_eq!(
        pt.translate(&mem, base + MB).unwrap().1,
        Permission::ReadOnly
    );
    // Still identity mapped (CoW marking must not break VA==PA).
    assert!(pt.walk(&mem, base + MB).is_identity());
}

#[test]
fn protect_single_page_demotes_but_preserves_translations() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(10 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadWrite)
        .unwrap();
    pt.protect_region(
        &mut mem,
        &mut alloc,
        base + 0x8000,
        4096,
        Permission::ReadOnly,
    )
    .unwrap();
    assert_eq!(
        pt.translate(&mem, base + 0x8000),
        Some((PhysAddr::new(base.raw() + 0x8000), Permission::ReadOnly))
    );
    assert_eq!(
        pt.translate(&mem, base + 0x9000),
        Some((PhysAddr::new(base.raw() + 0x9000), Permission::ReadWrite))
    );
}

#[test]
fn remap_page_breaks_identity_for_cow() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(10 * MB);
    pt.map_identity_pe(&mut mem, &mut alloc, base, 2 * MB, Permission::ReadWrite)
        .unwrap();
    let copy_pa = PhysAddr::new(100 * MB);
    pt.remap_page(
        &mut mem,
        &mut alloc,
        base + 0x5000,
        copy_pa,
        Permission::ReadWrite,
    )
    .unwrap();
    // The remapped page is no longer identity.
    let walk = pt.walk(&mem, base + 0x5000);
    assert!(!walk.is_identity());
    assert_eq!(
        walk.resolve(base + 0x5000),
        Some((copy_pa, Permission::ReadWrite))
    );
    // Its neighbours still are.
    assert_eq!(
        pt.translate(&mem, base + 0x6000),
        Some((PhysAddr::new(base.raw() + 0x6000), Permission::ReadWrite))
    );
}

#[test]
fn unmap_frees_empty_child_tables() {
    let (mut mem, mut alloc) = setup();
    let free_before = alloc.free_frames_count();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(40 * MB);
    pt.map_identity_leaves(
        &mut mem,
        &mut alloc,
        base,
        4 * MB,
        Permission::ReadWrite,
        PageSize::Size4K,
    )
    .unwrap();
    pt.unmap_region(&mut mem, &mut alloc, base, 4 * MB).unwrap();
    // Only the root frame remains allocated.
    assert_eq!(alloc.free_frames_count(), free_before - 1);
    pt.free_all(&mut mem, &mut alloc);
    assert_eq!(alloc.free_frames_count(), free_before);
}

#[test]
fn free_all_reclaims_everything() {
    let (mut mem, mut alloc) = setup();
    let free_before = alloc.free_frames_count();
    let mut pt = new_pt(&mut mem, &mut alloc);
    pt.map_identity_pe(
        &mut mem,
        &mut alloc,
        VirtAddr::new(64 * MB),
        32 * MB,
        Permission::ReadWrite,
    )
    .unwrap();
    pt.map_page(
        &mut mem,
        &mut alloc,
        VirtAddr::new(300 * MB),
        PhysAddr::new(2 * MB),
        PageSize::Size4K,
        Permission::ReadOnly,
    )
    .unwrap();
    pt.free_all(&mut mem, &mut alloc);
    assert_eq!(alloc.free_frames_count(), free_before);
}

#[test]
fn slot_and_span_constants_match_paper() {
    // §4.1.1: an L2 PE maps 2 MB of sixteen 128 KB regions; an L3 PE maps
    // 1 GB of sixteen 64 MB regions.
    assert_eq!(entry_span(2), 2 * MB);
    assert_eq!(slot_span(2), 128 * 1024);
    assert_eq!(entry_span(3), 1024 * MB);
    assert_eq!(slot_span(3), 64 * MB);
}

#[test]
fn coarse_pe_fields_need_coarser_alignment() {
    // The paper's "Alternatives": 4 effective fields per L2 entry (spare
    // PTE bits) give 512 KiB regions instead of 128 KiB.
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    let base = VirtAddr::new(128 * MB);

    // A 512 KiB-aligned, 512 KiB region maps as a PE even with 4 fields.
    pt.map_identity_pe_granular(
        &mut mem,
        &mut alloc,
        base,
        512 * 1024,
        Permission::ReadWrite,
        4,
    )
    .unwrap();
    assert!(pt.walk(&mem, base).is_identity());

    // A 128 KiB region (fine for 16 fields) falls back to leaves with 4.
    let base2 = VirtAddr::new(256 * MB);
    pt.map_identity_pe_granular(
        &mut mem,
        &mut alloc,
        base2,
        128 * 1024,
        Permission::ReadWrite,
        4,
    )
    .unwrap();
    match pt.walk(&mem, base2).outcome {
        WalkOutcome::Leaf { page, .. } => assert_eq!(page, PageSize::Size4K),
        other => panic!("expected leaf fallback, got {other:?}"),
    }
    // Same region with 16 fields becomes a PE.
    let base3 = VirtAddr::new(512 * MB);
    pt.map_identity_pe_granular(
        &mut mem,
        &mut alloc,
        base3,
        128 * 1024,
        Permission::ReadWrite,
        16,
    )
    .unwrap();
    assert!(pt.walk(&mem, base3).is_identity());
}

#[test]
fn coarse_pe_tables_are_bigger() {
    // Fewer fields -> more leaf fallbacks -> bigger tables.
    let (mut mem4, mut alloc4) = setup();
    let mut pt4 = new_pt(&mut mem4, &mut alloc4);
    let (mut mem16, mut alloc16) = setup();
    let mut pt16 = new_pt(&mut mem16, &mut alloc16);
    // Map 16 regions of 128 KiB at 2 MiB strides (each slot-aligned).
    for i in 0..16u64 {
        let base = VirtAddr::new(64 * MB + i * 2 * MB);
        pt4.map_identity_pe_granular(
            &mut mem4,
            &mut alloc4,
            base,
            128 * 1024,
            Permission::ReadWrite,
            4,
        )
        .unwrap();
        pt16.map_identity_pe_granular(
            &mut mem16,
            &mut alloc16,
            base,
            128 * 1024,
            Permission::ReadWrite,
            16,
        )
        .unwrap();
    }
    let coarse = pt4.size_report(&mem4);
    let fine = pt16.size_report(&mem16);
    assert!(
        coarse.total_bytes() > fine.total_bytes(),
        "coarse {} vs fine {}",
        coarse.total_bytes(),
        fine.total_bytes()
    );
    assert_eq!(fine.l1_pte_count, 0);
    assert!(coarse.l1_pte_count > 0);
}

#[test]
fn granular_rejects_bad_field_counts() {
    let (mut mem, mut alloc) = setup();
    let mut pt = new_pt(&mut mem, &mut alloc);
    for bad in [0u32, 3, 5, 32] {
        assert!(pt
            .map_identity_pe_granular(
                &mut mem,
                &mut alloc,
                VirtAddr::new(2 * MB),
                2 * MB,
                Permission::ReadWrite,
                bad
            )
            .is_err());
    }
}
