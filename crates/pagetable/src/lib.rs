//! x86-64-style 4-level page tables with the paper's Permission Entries.
//!
//! Tables live inside the simulated [`dvm_mem::PhysMem`], are allocated
//! from the simulated buddy allocator, and are walked by reading simulated
//! memory — so the MMU models in `dvm-mmu` cache page-table entries by the
//! same physical addresses a hardware walker would emit.
//!
//! # Examples
//!
//! ```
//! use dvm_mem::{BuddyAllocator, PhysMem};
//! use dvm_pagetable::{PageTable, WalkOutcome};
//! use dvm_types::{Permission, VirtAddr};
//!
//! # fn main() -> Result<(), dvm_types::DvmError> {
//! let mut mem = PhysMem::new(1 << 16);
//! let mut alloc = BuddyAllocator::new(1 << 16);
//! let mut pt = PageTable::new(&mut mem, &mut alloc)?;
//!
//! // Identity-map 2 MiB at VA==PA 4 MiB with a single L2 Permission Entry.
//! let base = VirtAddr::new(4 << 20);
//! pt.map_identity_pe(&mut mem, &mut alloc, base, 2 << 20, Permission::ReadWrite)?;
//!
//! let walk = pt.walk(&mem, base + 0x1234);
//! assert!(matches!(
//!     walk.outcome,
//!     WalkOutcome::PermissionEntry { perms: Permission::ReadWrite, level: 2 }
//! ));
//! assert_eq!(walk.steps().len(), 3); // read L4, L3, then the L2 PE
//! # Ok(())
//! # }
//! ```

pub mod bitmap;
pub mod entry;
pub mod size;
pub mod table;
pub mod walk;

pub use bitmap::PermBitmap;
pub use entry::{Pte, ENTRIES_PER_TABLE, ENTRY_BYTES, PE_FIELDS};
pub use size::SizeReport;
pub use table::{entry_span, level_shift, slot_span, PageTable, TOP_LEVEL, VA_LIMIT};
pub use walk::{Walk, WalkOutcome, WalkStep};
