//! The flat permission bitmap used by the paper's DVM-BM variant (§6.3).
//!
//! "We store permissions for all VAs in a flat 2MB bitmap in memory for
//! 1-step DAV" — 2 bits per 4 KiB page, so a 2 MiB bitmap covers 32 GiB of
//! virtual address space. The bitmap lives in simulated physical memory
//! (allocated contiguously from the buddy allocator) so bitmap fetches hit
//! simulated DRAM and can be cached by physical address, exactly like
//! Border Control's permission structures.

use dvm_mem::{BuddyAllocator, FrameRange, PhysMem};
use dvm_types::{DvmError, Permission, PhysAddr, VirtAddr, PAGE_SIZE};

/// Flat 2-bit-per-page permission bitmap over a VA prefix `[0, reach)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermBitmap {
    base_frame: u64,
    pages_covered: u64,
}

impl PermBitmap {
    /// Allocate a bitmap covering `reach_bytes` of virtual address space
    /// (rounded up to a whole number of 4 KiB bitmap frames). Every entry
    /// starts as `Permission::None` ("not identity mapped").
    ///
    /// # Errors
    ///
    /// [`DvmError::OutOfMemory`] if the contiguous bitmap allocation fails;
    /// [`DvmError::InvalidArgument`] if `reach_bytes == 0`.
    pub fn new(
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        reach_bytes: u64,
    ) -> Result<Self, DvmError> {
        if reach_bytes == 0 {
            return Err(DvmError::InvalidArgument("bitmap must cover some VA"));
        }
        let pages_covered = reach_bytes.div_ceil(PAGE_SIZE);
        let bitmap_bytes = pages_covered.div_ceil(4); // 2 bits per page
        let frames = bitmap_bytes.div_ceil(PAGE_SIZE);
        let range = alloc.alloc_frames(frames)?;
        mem.zero_bytes(PhysAddr::from_frame(range.start), frames * PAGE_SIZE);
        Ok(Self {
            base_frame: range.start,
            pages_covered,
        })
    }

    /// Bytes of bitmap storage.
    pub fn storage_bytes(&self) -> u64 {
        self.pages_covered.div_ceil(4).div_ceil(PAGE_SIZE) * PAGE_SIZE
    }

    /// The physical frames holding the bitmap.
    pub fn frames(&self) -> FrameRange {
        FrameRange {
            start: self.base_frame,
            count: self.storage_bytes() / PAGE_SIZE,
        }
    }

    /// Number of 4 KiB VA pages covered.
    pub fn pages_covered(&self) -> u64 {
        self.pages_covered
    }

    /// Physical address of the bitmap *byte* holding `vpn`'s field; this is
    /// what the DVM-BM bitmap cache tags on (block-aligned by the cache).
    #[inline]
    pub fn entry_pa(&self, vpn: u64) -> PhysAddr {
        debug_assert!(vpn < self.pages_covered, "vpn beyond bitmap reach");
        PhysAddr::from_frame(self.base_frame) + vpn / 4
    }

    /// Permission recorded for virtual page `vpn`; pages beyond the reach
    /// report `Permission::None` (forcing the fallback translation path).
    pub fn perms_of(&self, mem: &PhysMem, vpn: u64) -> Permission {
        if vpn >= self.pages_covered {
            return Permission::None;
        }
        let byte = mem.read_u8(self.entry_pa(vpn));
        Permission::from_bits((byte >> ((vpn % 4) * 2)) & 0b11)
    }

    /// Record `perms` for `count` pages starting at `start_vpn`. The OS
    /// calls this when identity regions are mapped, unmapped (with
    /// `Permission::None`) or re-protected.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the bitmap's reach.
    pub fn set_range(&self, mem: &mut PhysMem, start_vpn: u64, count: u64, perms: Permission) {
        assert!(
            start_vpn + count <= self.pages_covered,
            "bitmap range [{start_vpn}, +{count}) beyond reach {}",
            self.pages_covered
        );
        for vpn in start_vpn..start_vpn + count {
            let pa = self.entry_pa(vpn);
            let shift = (vpn % 4) * 2;
            let byte = mem.read_u8(pa);
            let updated = (byte & !(0b11 << shift)) | (perms.bits() << shift);
            mem.write_u8(pa, updated);
        }
    }

    /// Record permissions for a byte range (4 KiB-aligned).
    pub fn set_bytes(&self, mem: &mut PhysMem, start: VirtAddr, len: u64, perms: Permission) {
        debug_assert!(start.raw().is_multiple_of(PAGE_SIZE) && len.is_multiple_of(PAGE_SIZE));
        self.set_range(mem, start.raw() / PAGE_SIZE, len / PAGE_SIZE, perms);
    }

    /// Release the bitmap's frames.
    pub fn free(self, mem: &mut PhysMem, alloc: &mut BuddyAllocator) {
        let frames = self.storage_bytes() / PAGE_SIZE;
        for f in self.base_frame..self.base_frame + frames {
            mem.discard_frame(f);
        }
        alloc.free_frames(FrameRange {
            start: self.base_frame,
            count: frames,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, BuddyAllocator) {
        (PhysMem::new(1 << 16), BuddyAllocator::new(1 << 16))
    }

    #[test]
    fn paper_sizing_2mb_for_32gb() {
        let (mut mem, mut alloc) = setup();
        let bm = PermBitmap::new(&mut mem, &mut alloc, 32 << 30).unwrap();
        assert_eq!(bm.storage_bytes(), 2 << 20);
    }

    #[test]
    fn default_is_none() {
        let (mut mem, mut alloc) = setup();
        let bm = PermBitmap::new(&mut mem, &mut alloc, 1 << 30).unwrap();
        assert_eq!(bm.perms_of(&mem, 0), Permission::None);
        assert_eq!(bm.perms_of(&mem, 1234), Permission::None);
    }

    #[test]
    fn set_and_read_back() {
        let (mut mem, mut alloc) = setup();
        let bm = PermBitmap::new(&mut mem, &mut alloc, 1 << 30).unwrap();
        bm.set_range(&mut mem, 10, 5, Permission::ReadWrite);
        assert_eq!(bm.perms_of(&mem, 9), Permission::None);
        for vpn in 10..15 {
            assert_eq!(bm.perms_of(&mem, vpn), Permission::ReadWrite);
        }
        assert_eq!(bm.perms_of(&mem, 15), Permission::None);
        // Overwrite a sub-range.
        bm.set_range(&mut mem, 12, 2, Permission::ReadOnly);
        assert_eq!(bm.perms_of(&mem, 11), Permission::ReadWrite);
        assert_eq!(bm.perms_of(&mem, 12), Permission::ReadOnly);
        assert_eq!(bm.perms_of(&mem, 14), Permission::ReadWrite);
    }

    #[test]
    fn neighbours_in_same_byte_do_not_clobber() {
        let (mut mem, mut alloc) = setup();
        let bm = PermBitmap::new(&mut mem, &mut alloc, 1 << 20).unwrap();
        bm.set_range(&mut mem, 0, 1, Permission::ReadOnly);
        bm.set_range(&mut mem, 1, 1, Permission::ReadWrite);
        bm.set_range(&mut mem, 2, 1, Permission::ReadExec);
        assert_eq!(bm.perms_of(&mem, 0), Permission::ReadOnly);
        assert_eq!(bm.perms_of(&mem, 1), Permission::ReadWrite);
        assert_eq!(bm.perms_of(&mem, 2), Permission::ReadExec);
        assert_eq!(bm.perms_of(&mem, 3), Permission::None);
    }

    #[test]
    fn out_of_reach_is_none() {
        let (mut mem, mut alloc) = setup();
        let bm = PermBitmap::new(&mut mem, &mut alloc, 1 << 20).unwrap();
        assert_eq!(bm.perms_of(&mem, 1 << 40), Permission::None);
    }

    #[test]
    fn frames_cover_storage() {
        let (mut mem, mut alloc) = setup();
        let bm = PermBitmap::new(&mut mem, &mut alloc, 32 << 30).unwrap();
        let range = bm.frames();
        assert_eq!(range.count * PAGE_SIZE, bm.storage_bytes());
        assert_eq!(PhysAddr::from_frame(range.start), bm.entry_pa(0));
    }

    #[test]
    fn free_returns_frames() {
        let (mut mem, mut alloc) = setup();
        let before = alloc.free_frames_count();
        let bm = PermBitmap::new(&mut mem, &mut alloc, 32 << 30).unwrap();
        assert!(alloc.free_frames_count() < before);
        bm.free(&mut mem, &mut alloc);
        assert_eq!(alloc.free_frames_count(), before);
    }

    #[test]
    fn set_bytes_page_granularity() {
        let (mut mem, mut alloc) = setup();
        let bm = PermBitmap::new(&mut mem, &mut alloc, 1 << 30).unwrap();
        bm.set_bytes(
            &mut mem,
            VirtAddr::new(8 * PAGE_SIZE),
            2 * PAGE_SIZE,
            Permission::ReadWrite,
        );
        assert_eq!(bm.perms_of(&mem, 8), Permission::ReadWrite);
        assert_eq!(bm.perms_of(&mem, 9), Permission::ReadWrite);
        assert_eq!(bm.perms_of(&mem, 10), Permission::None);
    }
}
