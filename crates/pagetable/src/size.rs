//! Page-table size accounting (paper Table 1).
//!
//! The paper's observation: for graph heaps, ~98–99% of page-table bytes
//! are L1 PTE pages, and Permission Entries eliminate almost all of them
//! by terminating translation at L2 or above.

use crate::entry::ENTRIES_PER_TABLE;
use crate::table::{PageTable, TOP_LEVEL};
use crate::Pte;
use dvm_mem::PhysMem;
use dvm_types::{PhysAddr, PAGE_SIZE};

/// Size and composition of a page table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SizeReport {
    /// Table pages at each level; index 0 = L1 .. index 3 = L4.
    pub table_frames: [u64; 4],
    /// Present entries at each level (any kind).
    pub present_entries: [u64; 4],
    /// Present L1 leaf PTEs (the paper's "L1PTEs").
    pub l1_pte_count: u64,
    /// Permission Entries at each level.
    pub pe_entries: [u64; 4],
    /// Huge-page leaves (L2/L3 leaf PTEs).
    pub huge_leaf_entries: u64,
}

impl SizeReport {
    /// Total bytes of page-table pages.
    pub fn total_bytes(&self) -> u64 {
        self.table_frames.iter().sum::<u64>() * PAGE_SIZE
    }

    /// Total bytes in kilobytes (paper Table 1 reports KB).
    pub fn total_kb(&self) -> u64 {
        self.total_bytes() / 1024
    }

    /// Fraction of table bytes occupied by L1 table pages — the paper's
    /// "% occupied by L1PTEs" column.
    pub fn l1_fraction(&self) -> f64 {
        let total = self.table_frames.iter().sum::<u64>();
        if total == 0 {
            0.0
        } else {
            self.table_frames[0] as f64 / total as f64
        }
    }

    /// Total Permission Entries at all levels.
    pub fn total_pes(&self) -> u64 {
        self.pe_entries.iter().sum()
    }
}

impl PageTable {
    /// Scan the whole table and report its size and composition.
    pub fn size_report(&self, mem: &PhysMem) -> SizeReport {
        let mut report = SizeReport::default();
        scan(mem, TOP_LEVEL, self.root_frame(), &mut report);
        report
    }

    /// Every physical frame holding a table page of this tree (root
    /// included, leaves and PE targets excluded). Together with the
    /// permission bitmap these frames are the complete translation state:
    /// copying them into a fresh `PhysMem` gives an independent view that
    /// resolves every VA exactly as the original does.
    pub fn table_frames(&self, mem: &PhysMem) -> Vec<u64> {
        let mut frames = Vec::new();
        collect_tables(mem, self.root_frame(), &mut frames);
        frames
    }
}

fn collect_tables(mem: &PhysMem, frame: u64, frames: &mut Vec<u64>) {
    frames.push(frame);
    for idx in 0..ENTRIES_PER_TABLE {
        let pa = PhysAddr::from_frame(frame) + idx as u64 * 8;
        let pte = Pte::from_raw(mem.read_u64(pa));
        if pte.is_present() && !pte.is_pe() && !pte.is_leaf() {
            collect_tables(mem, pte.pfn(), frames);
        }
    }
}

fn scan(mem: &PhysMem, level: u8, frame: u64, report: &mut SizeReport) {
    let li = (level - 1) as usize;
    report.table_frames[li] += 1;
    for idx in 0..ENTRIES_PER_TABLE {
        let pa = PhysAddr::from_frame(frame) + idx as u64 * 8;
        let pte = Pte::from_raw(mem.read_u64(pa));
        if !pte.is_present() {
            continue;
        }
        report.present_entries[li] += 1;
        if pte.is_pe() {
            report.pe_entries[li] += 1;
        } else if pte.is_leaf() {
            if level == 1 {
                report.l1_pte_count += 1;
            } else {
                report.huge_leaf_entries += 1;
            }
        } else {
            scan(mem, level - 1, pte.pfn(), report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvm_mem::{BuddyAllocator, PhysMem};
    use dvm_types::{Permission, VirtAddr};

    fn setup() -> (PhysMem, BuddyAllocator) {
        (PhysMem::new(1 << 16), BuddyAllocator::new(1 << 16))
    }

    #[test]
    fn empty_table_is_one_root_frame() {
        let (mut mem, mut alloc) = setup();
        let pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        let r = pt.size_report(&mem);
        assert_eq!(r.table_frames, [0, 0, 0, 1]);
        assert_eq!(r.total_bytes(), PAGE_SIZE);
        assert_eq!(r.l1_fraction(), 0.0);
    }

    #[test]
    fn pe_mapping_needs_no_l1_tables() {
        let (mut mem, mut alloc) = setup();
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        // 4 MiB identity region aligned to 2 MiB: two L2 PEs, zero L1 pages.
        let base = VirtAddr::new(4 << 20);
        pt.map_identity_pe(&mut mem, &mut alloc, base, 4 << 20, Permission::ReadWrite)
            .unwrap();
        let r = pt.size_report(&mem);
        assert_eq!(r.table_frames[0], 0, "no L1 tables with PEs");
        assert_eq!(r.pe_entries[1], 2, "two L2 PEs");
        assert_eq!(r.l1_pte_count, 0);
    }

    #[test]
    fn leaf_mapping_is_dominated_by_l1() {
        let (mut mem, mut alloc) = setup();
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        // 8 MiB of 4K leaves: 4 L1 tables + 1 L2 + 1 L3 + root.
        let base = VirtAddr::new(16 << 20);
        pt.map_identity_leaves(
            &mut mem,
            &mut alloc,
            base,
            8 << 20,
            Permission::ReadWrite,
            dvm_types::PageSize::Size4K,
        )
        .unwrap();
        let r = pt.size_report(&mem);
        assert_eq!(r.table_frames[0], 4);
        assert_eq!(r.l1_pte_count, 2048);
        assert!(r.l1_fraction() > 0.5);
    }

    #[test]
    fn table_frames_matches_size_report() {
        let (mut mem, mut alloc) = setup();
        let mut pt = PageTable::new(&mut mem, &mut alloc).unwrap();
        pt.map_identity_pe(
            &mut mem,
            &mut alloc,
            VirtAddr::new(4 << 20),
            4 << 20,
            Permission::ReadWrite,
        )
        .unwrap();
        pt.map_identity_leaves(
            &mut mem,
            &mut alloc,
            VirtAddr::new(64 << 20),
            2 << 20,
            Permission::ReadWrite,
            dvm_types::PageSize::Size4K,
        )
        .unwrap();
        let report = pt.size_report(&mem);
        let frames = pt.table_frames(&mem);
        assert_eq!(
            frames.len() as u64,
            report.table_frames.iter().sum::<u64>(),
            "enumerates exactly the table pages the size report counts"
        );
        assert_eq!(frames[0], pt.root_frame());
        // A snapshot of those frames translates like the original memory.
        let snap = mem.clone_frames(frames);
        let va = VirtAddr::new(4 << 20);
        assert_eq!(pt.translate(&snap, va), pt.translate(&mem, va));
        let va = VirtAddr::new(64 << 20);
        assert_eq!(pt.translate(&snap, va), pt.translate(&mem, va));
    }
}
