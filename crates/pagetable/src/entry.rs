//! Page-table entry formats, including the paper's Permission Entry (PE).
//!
//! We use an x86-64-flavoured 8-byte entry with this layout (bit 0 is the
//! LSB):
//!
//! ```text
//! bit  0       PRESENT   entry is valid
//! bit  1       PE        this is a Permission Entry (paper Figure 6)
//! bit  2..=3   PERMS     2-bit permission field for leaf PTEs
//! bit  4       LEAF      terminal translation (4K at L1, 2M at L2, 1G at L3)
//! bit 12..=51  PFN       frame number of the next-level table or mapped page
//! bit 32..=63  P0..P15   sixteen 2-bit permission fields (PE entries only)
//! ```
//!
//! `PFN` and the PE permission fields overlap (bits 32–51), which is safe
//! because a Permission Entry carries no frame number: under DVM the
//! physical address *is* the virtual address (VA==PA), so a PE needs only
//! permissions — precisely the insight of §4.1.1.

use dvm_types::Permission;

/// Number of permission fields in one Permission Entry.
pub const PE_FIELDS: usize = 16;

/// Entries per 4 KiB page-table page.
pub const ENTRIES_PER_TABLE: usize = 512;

/// Size of one entry in bytes.
pub const ENTRY_BYTES: u64 = 8;

const PRESENT_BIT: u64 = 1 << 0;
const PE_BIT: u64 = 1 << 1;
const LEAF_BIT: u64 = 1 << 4;
const PERMS_SHIFT: u32 = 2;
const PERMS_MASK: u64 = 0b11 << PERMS_SHIFT;
const PFN_SHIFT: u32 = 12;
const PFN_MASK: u64 = ((1u64 << 40) - 1) << PFN_SHIFT;
const PE_FIELDS_SHIFT: u32 = 32;

/// One 8-byte page-table entry at any level.
///
/// # Examples
///
/// ```
/// use dvm_pagetable::Pte;
/// use dvm_types::Permission;
///
/// let leaf = Pte::leaf(0x1234, Permission::ReadWrite);
/// assert!(leaf.is_present() && leaf.is_leaf() && !leaf.is_pe());
/// assert_eq!(leaf.pfn(), 0x1234);
/// assert_eq!(leaf.perms(), Permission::ReadWrite);
///
/// let pe = Pte::permission_entry(&[Permission::ReadOnly; 16]);
/// assert!(pe.is_pe());
/// assert_eq!(pe.pe_field(7), Permission::ReadOnly);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(u64);

impl Pte {
    /// The absent (zero) entry.
    pub const EMPTY: Pte = Pte(0);

    /// Reconstruct from the raw stored bits.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Pte(raw)
    }

    /// Raw stored bits.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// An entry pointing at a next-level table in frame `pfn`.
    #[inline]
    pub fn table(pfn: u64) -> Self {
        Pte(PRESENT_BIT | ((pfn << PFN_SHIFT) & PFN_MASK))
    }

    /// A terminal (leaf) translation to frame `pfn` with `perms`.
    ///
    /// At L1 this maps 4 KiB; at L2, 2 MiB (pfn must be 512-aligned); at
    /// L3, 1 GiB (pfn must be 512²-aligned).
    #[inline]
    pub fn leaf(pfn: u64, perms: Permission) -> Self {
        Pte(PRESENT_BIT
            | LEAF_BIT
            | ((perms.bits() as u64) << PERMS_SHIFT)
            | ((pfn << PFN_SHIFT) & PFN_MASK))
    }

    /// A Permission Entry with the given sixteen 2-bit fields
    /// (`fields[0]` covers the lowest-addressed sixteenth of the range).
    #[inline]
    pub fn permission_entry(fields: &[Permission; PE_FIELDS]) -> Self {
        let mut bits = PRESENT_BIT | PE_BIT;
        for (i, p) in fields.iter().enumerate() {
            bits |= (p.bits() as u64) << (PE_FIELDS_SHIFT + 2 * i as u32);
        }
        Pte(bits)
    }

    /// Is the entry valid?
    #[inline]
    pub const fn is_present(self) -> bool {
        self.0 & PRESENT_BIT != 0
    }

    /// Is this a Permission Entry?
    #[inline]
    pub const fn is_pe(self) -> bool {
        self.0 & PE_BIT != 0
    }

    /// Is this a terminal translation (non-PE leaf)?
    #[inline]
    pub const fn is_leaf(self) -> bool {
        self.0 & LEAF_BIT != 0
    }

    /// Does this entry point at a next-level table?
    #[inline]
    pub const fn is_table(self) -> bool {
        self.is_present() && !self.is_pe() && !self.is_leaf()
    }

    /// Frame number (tables and leaves only).
    #[inline]
    pub const fn pfn(self) -> u64 {
        (self.0 & PFN_MASK) >> PFN_SHIFT
    }

    /// Leaf permission field.
    #[inline]
    pub fn perms(self) -> Permission {
        Permission::from_bits(((self.0 & PERMS_MASK) >> PERMS_SHIFT) as u8)
    }

    /// Permission field `i` of a Permission Entry.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 16`.
    #[inline]
    pub fn pe_field(self, i: usize) -> Permission {
        assert!(i < PE_FIELDS, "PE field index {i} out of range");
        Permission::from_bits(((self.0 >> (PE_FIELDS_SHIFT + 2 * i as u32)) & 0b11) as u8)
    }

    /// Copy of all sixteen permission fields of a Permission Entry.
    pub fn pe_fields(self) -> [Permission; PE_FIELDS] {
        core::array::from_fn(|i| self.pe_field(i))
    }

    /// Return a PE with field `i` replaced.
    ///
    /// # Panics
    ///
    /// Panics if this is not a PE or `i >= 16`.
    #[must_use]
    pub fn with_pe_field(self, i: usize, perms: Permission) -> Self {
        assert!(self.is_pe(), "with_pe_field on a non-PE entry");
        assert!(i < PE_FIELDS, "PE field index {i} out of range");
        let shift = PE_FIELDS_SHIFT + 2 * i as u32;
        Pte((self.0 & !(0b11 << shift)) | ((perms.bits() as u64) << shift))
    }

    /// `true` if every permission field of this PE is `None`.
    ///
    /// # Panics
    ///
    /// Panics if this is not a PE.
    pub fn pe_is_empty(self) -> bool {
        assert!(self.is_pe(), "pe_is_empty on a non-PE entry");
        self.pe_fields().iter().all(|p| !p.is_mapped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_entry_is_absent() {
        assert!(!Pte::EMPTY.is_present());
        assert!(!Pte::EMPTY.is_pe());
        assert!(!Pte::EMPTY.is_leaf());
        assert!(!Pte::EMPTY.is_table());
    }

    #[test]
    fn table_entry() {
        let e = Pte::table(42);
        assert!(e.is_present() && e.is_table());
        assert!(!e.is_leaf() && !e.is_pe());
        assert_eq!(e.pfn(), 42);
    }

    #[test]
    fn leaf_entry_roundtrip() {
        for perms in Permission::ALL {
            let e = Pte::leaf(0xfffff, perms);
            assert!(e.is_present() && e.is_leaf() && !e.is_pe());
            assert_eq!(e.pfn(), 0xfffff);
            assert_eq!(e.perms(), perms);
        }
    }

    #[test]
    fn pe_fields_roundtrip() {
        let fields: [Permission; PE_FIELDS] =
            core::array::from_fn(|i| Permission::from_bits((i % 4) as u8));
        let e = Pte::permission_entry(&fields);
        assert!(e.is_present() && e.is_pe() && !e.is_leaf());
        assert_eq!(e.pe_fields(), fields);
        // Raw roundtrip (what the walker reads back from memory).
        let back = Pte::from_raw(e.raw());
        assert_eq!(back.pe_fields(), fields);
    }

    #[test]
    fn with_pe_field_updates_one_slot() {
        let e = Pte::permission_entry(&[Permission::None; PE_FIELDS]);
        let e2 = e.with_pe_field(3, Permission::ReadWrite);
        assert_eq!(e2.pe_field(3), Permission::ReadWrite);
        for i in (0..PE_FIELDS).filter(|&i| i != 3) {
            assert_eq!(e2.pe_field(i), Permission::None);
        }
        assert!(e.pe_is_empty());
        assert!(!e2.pe_is_empty());
    }

    #[test]
    fn pfn_isolated_from_flags() {
        let e = Pte::leaf(u64::MAX >> 24, Permission::ReadExec);
        assert!(e.is_leaf());
        assert_eq!(e.perms(), Permission::ReadExec);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pe_field_bounds() {
        let _ = Pte::permission_entry(&[Permission::None; PE_FIELDS]).pe_field(16);
    }

    #[test]
    #[should_panic(expected = "non-PE")]
    fn with_pe_field_rejects_non_pe() {
        let _ = Pte::leaf(1, Permission::ReadOnly).with_pe_field(0, Permission::None);
    }
}
