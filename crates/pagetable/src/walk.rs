//! Page-walk result types consumed by the MMU models.
//!
//! A walk records every page-table entry it read (level + the *physical*
//! address of the entry), because the paper's PWC and AVC are physically
//! indexed caches of those entry locations (§4.1.2).

use dvm_types::{PageSize, Permission, PhysAddr, VirtAddr};

/// One page-table entry read during a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// Page-table level of the entry (4 = root .. 1 = leaf table).
    pub level: u8,
    /// Physical address of the 8-byte entry that was read.
    pub pte_pa: PhysAddr,
}

/// How a walk terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkOutcome {
    /// The walk hit a Permission Entry: the address is identity mapped
    /// (PA == VA) with the given permissions. `Permission::None` means the
    /// covered slot is an unallocated gap (§4.1.1).
    PermissionEntry {
        /// Permissions of the 1/16 slot covering the address.
        perms: Permission,
        /// Level at which the PE was found (2..=4).
        level: u8,
    },
    /// The walk hit a conventional leaf PTE: a (possibly non-identity)
    /// translation.
    Leaf {
        /// Translated physical address for the queried VA.
        pa: PhysAddr,
        /// Leaf permissions.
        perms: Permission,
        /// Mapped page size (from the level the leaf was found at).
        page: PageSize,
    },
    /// No translation exists.
    NotMapped {
        /// Level at which the walk found a non-present entry.
        level: u8,
    },
}

/// A completed page-table walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Walk {
    steps: [WalkStep; 4],
    num_steps: u8,
    /// How the walk ended.
    pub outcome: WalkOutcome,
}

impl Walk {
    /// Assemble a walk from recorded steps.
    ///
    /// # Panics
    ///
    /// Panics if more than four steps are supplied.
    pub fn new(steps: &[WalkStep], outcome: WalkOutcome) -> Self {
        assert!(steps.len() <= 4, "a 4-level walk has at most 4 steps");
        let mut arr = [WalkStep {
            level: 0,
            pte_pa: PhysAddr::ZERO,
        }; 4];
        arr[..steps.len()].copy_from_slice(steps);
        Self {
            steps: arr,
            num_steps: steps.len() as u8,
            outcome,
        }
    }

    /// The entries read, root first.
    pub fn steps(&self) -> &[WalkStep] {
        &self.steps[..self.num_steps as usize]
    }

    /// Resolve to `(physical address, permissions)` for `va`, treating a
    /// Permission Entry as the identity translation. `None` if unmapped.
    pub fn resolve(&self, va: VirtAddr) -> Option<(PhysAddr, Permission)> {
        match self.outcome {
            WalkOutcome::PermissionEntry { perms, .. } if perms.is_mapped() => {
                Some((va.to_identity_pa(), perms))
            }
            WalkOutcome::Leaf { pa, perms, .. } if perms.is_mapped() => Some((pa, perms)),
            _ => None,
        }
    }

    /// `true` if the walk proves the address is identity mapped.
    pub fn is_identity(&self) -> bool {
        matches!(self.outcome, WalkOutcome::PermissionEntry { perms, .. } if perms.is_mapped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_pe_is_identity() {
        let w = Walk::new(
            &[],
            WalkOutcome::PermissionEntry {
                perms: Permission::ReadWrite,
                level: 2,
            },
        );
        let va = VirtAddr::new(0xabc000);
        assert_eq!(
            w.resolve(va),
            Some((PhysAddr::new(0xabc000), Permission::ReadWrite))
        );
        assert!(w.is_identity());
    }

    #[test]
    fn resolve_gap_pe_is_unmapped() {
        let w = Walk::new(
            &[],
            WalkOutcome::PermissionEntry {
                perms: Permission::None,
                level: 3,
            },
        );
        assert_eq!(w.resolve(VirtAddr::new(0x1000)), None);
        assert!(!w.is_identity());
    }

    #[test]
    fn resolve_leaf_uses_translation() {
        let w = Walk::new(
            &[WalkStep {
                level: 4,
                pte_pa: PhysAddr::new(64),
            }],
            WalkOutcome::Leaf {
                pa: PhysAddr::new(0x5000),
                perms: Permission::ReadOnly,
                page: PageSize::Size4K,
            },
        );
        assert_eq!(
            w.resolve(VirtAddr::new(0x9000)),
            Some((PhysAddr::new(0x5000), Permission::ReadOnly))
        );
        assert!(!w.is_identity());
        assert_eq!(w.steps().len(), 1);
    }

    #[test]
    fn not_mapped_resolves_none() {
        let w = Walk::new(&[], WalkOutcome::NotMapped { level: 4 });
        assert_eq!(w.resolve(VirtAddr::new(0)), None);
    }
}
