//! The 4-level page table, stored *inside* simulated physical memory.
//!
//! Table pages are allocated from the machine's buddy allocator and read
//! and written through [`PhysMem`], so a hardware walk performed by the
//! MMU models touches the same simulated DRAM the workload data lives in —
//! the paper's PWC/AVC cache entries by the physical address of the PTE,
//! and those addresses are real here.
//!
//! Three mapping flavours are provided:
//!
//! * [`PageTable::map_identity_pe`] — DVM: install Permission Entries at
//!   the highest level whose 1/16-slot granularity fits the region
//!   (§4.1.1); falls back to regular identity leaf PTEs below 128 KiB
//!   granularity.
//! * [`PageTable::map_identity_leaves`] — conventional: identity regions
//!   mapped with regular leaf PTEs of at most a chosen page size (4 KiB /
//!   2 MiB / 1 GiB), using larger leaves wherever alignment allows.
//! * [`PageTable::map_page`] — one page at an arbitrary (non-identity)
//!   translation; the demand-paging and copy-on-write path.

use crate::entry::{Pte, ENTRIES_PER_TABLE, ENTRY_BYTES, PE_FIELDS};
use crate::walk::{Walk, WalkOutcome, WalkStep};
use dvm_mem::{BuddyAllocator, FrameRange, PhysMem};
use dvm_types::{align_down, DvmError, PageSize, Permission, PhysAddr, VirtAddr, PAGE_SIZE};

/// Root level of the table (PML4).
pub const TOP_LEVEL: u8 = 4;

/// Highest VA exclusive supported (canonical lower half, 48-bit).
pub const VA_LIMIT: u64 = 1 << 48;

/// log2 of the VA span mapped by one entry at `level`.
#[inline]
pub fn level_shift(level: u8) -> u32 {
    12 + 9 * (level as u32 - 1)
}

/// VA span in bytes mapped by one entry at `level`.
#[inline]
pub fn entry_span(level: u8) -> u64 {
    1u64 << level_shift(level)
}

/// VA span covered by one of the 16 permission fields of a PE at `level`
/// (128 KiB at L2, 64 MiB at L3, 32 GiB at L4 — §4.1.1).
#[inline]
pub fn slot_span(level: u8) -> u64 {
    entry_span(level) / PE_FIELDS as u64
}

/// A process page table rooted in one 4 KiB frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTable {
    root_frame: u64,
}

impl PageTable {
    /// Allocate an empty page table.
    ///
    /// # Errors
    ///
    /// Returns [`DvmError::OutOfMemory`] if no frame is available.
    pub fn new(mem: &mut PhysMem, alloc: &mut BuddyAllocator) -> Result<Self, DvmError> {
        Ok(Self {
            root_frame: Self::alloc_table(mem, alloc)?,
        })
    }

    /// Frame number of the root table (the simulated CR3 / IOMMU base).
    pub fn root_frame(&self) -> u64 {
        self.root_frame
    }

    fn alloc_table(mem: &mut PhysMem, alloc: &mut BuddyAllocator) -> Result<u64, DvmError> {
        let frame = alloc.alloc_frame()?;
        mem.zero_bytes(PhysAddr::from_frame(frame), PAGE_SIZE);
        Ok(frame)
    }

    #[inline]
    fn entry_pa(frame: u64, idx: usize) -> PhysAddr {
        PhysAddr::from_frame(frame) + idx as u64 * ENTRY_BYTES
    }

    #[inline]
    fn read_entry(mem: &PhysMem, frame: u64, idx: usize) -> Pte {
        Pte::from_raw(mem.read_u64(Self::entry_pa(frame, idx)))
    }

    #[inline]
    fn write_entry(mem: &mut PhysMem, frame: u64, idx: usize, pte: Pte) {
        // Every structural mutation of any table funnels through here, so
        // this is the single choke point that invalidates memoized
        // translations (`TranslationMemo` / the IOMMU walk memo).
        mem.note_pt_mutation();
        mem.write_u64(Self::entry_pa(frame, idx), pte.raw());
    }

    /// Perform a hardware page walk for `va`, recording every entry read.
    ///
    /// # Panics
    ///
    /// Panics if `va` is outside the canonical 48-bit range.
    pub fn walk(&self, mem: &PhysMem, va: VirtAddr) -> Walk {
        assert!(va.raw() < VA_LIMIT, "non-canonical address {va}");
        let mut steps = [WalkStep {
            level: 0,
            pte_pa: PhysAddr::ZERO,
        }; 4];
        let mut n = 0usize;
        let mut frame = self.root_frame;
        let mut level = TOP_LEVEL;
        loop {
            let idx = va.pt_index(level);
            steps[n] = WalkStep {
                level,
                pte_pa: Self::entry_pa(frame, idx),
            };
            n += 1;
            let pte = Self::read_entry(mem, frame, idx);
            if !pte.is_present() {
                return Walk::new(&steps[..n], WalkOutcome::NotMapped { level });
            }
            if pte.is_pe() {
                let slot = ((va.raw() >> (level_shift(level) - 4)) & 0xf) as usize;
                return Walk::new(
                    &steps[..n],
                    WalkOutcome::PermissionEntry {
                        perms: pte.pe_field(slot),
                        level,
                    },
                );
            }
            if pte.is_leaf() {
                let page = match level {
                    1 => PageSize::Size4K,
                    2 => PageSize::Size2M,
                    3 => PageSize::Size1G,
                    _ => unreachable!("leaf at level {level}"),
                };
                let pa = PhysAddr::from_frame(pte.pfn()) + (va.raw() & (entry_span(level) - 1));
                return Walk::new(
                    &steps[..n],
                    WalkOutcome::Leaf {
                        pa,
                        perms: pte.perms(),
                        page,
                    },
                );
            }
            frame = pte.pfn();
            level -= 1;
        }
    }

    /// Functional translation: `(PA, perms)` for `va`, or `None`.
    pub fn translate(&self, mem: &PhysMem, va: VirtAddr) -> Option<(PhysAddr, Permission)> {
        self.walk(mem, va).resolve(va)
    }

    /// `true` if no byte of `[start, start+len)` has a mapping (unallocated
    /// PE slots count as unmapped). Used as an atomicity precheck by the
    /// mapping operations so `VaRangeBusy` is raised before any mutation.
    pub fn is_range_unmapped(&self, mem: &PhysMem, start: VirtAddr, len: u64) -> bool {
        self.first_mapped_in(mem, start, len).is_none()
    }

    /// First mapped address in `[start, start+len)`, skipping unmapped
    /// spans at the granularity the walk reveals.
    pub fn first_mapped_in(&self, mem: &PhysMem, start: VirtAddr, len: u64) -> Option<VirtAddr> {
        let lo = start.raw();
        let hi = lo.saturating_add(len).min(VA_LIMIT);
        let mut cursor = lo;
        while cursor < hi {
            let walk = self.walk(mem, VirtAddr::new(cursor));
            match walk.outcome {
                WalkOutcome::NotMapped { level } => {
                    cursor = align_down(cursor, entry_span(level)) + entry_span(level);
                }
                WalkOutcome::PermissionEntry { perms, level } => {
                    if perms.is_mapped() {
                        return Some(VirtAddr::new(cursor));
                    }
                    cursor = align_down(cursor, slot_span(level)) + slot_span(level);
                }
                WalkOutcome::Leaf { .. } => return Some(VirtAddr::new(cursor)),
            }
        }
        None
    }

    /// Map one page of the given size at an arbitrary translation
    /// (`va -> pa`). Permission Entries and huge leaves in the way are
    /// demoted/split as needed. This is the demand-paging / CoW path.
    ///
    /// # Errors
    ///
    /// [`DvmError::VaRangeBusy`] if a mapping already exists at `va`;
    /// [`DvmError::OutOfMemory`] if a table frame cannot be allocated;
    /// [`DvmError::InvalidArgument`] on misaligned addresses.
    pub fn map_page(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        va: VirtAddr,
        pa: PhysAddr,
        page: PageSize,
        perms: Permission,
    ) -> Result<(), DvmError> {
        if !va.is_page_aligned(page) || !pa.is_page_aligned(page) {
            return Err(DvmError::InvalidArgument("map_page: misaligned va/pa"));
        }
        if let Some(busy) = self.first_mapped_in(mem, va, page.bytes()) {
            return Err(DvmError::VaRangeBusy {
                va: busy,
                len: page.bytes(),
            });
        }
        let (frame, idx) = self.ensure_level(mem, alloc, va, page.leaf_level())?;
        let existing = Self::read_entry(mem, frame, idx);
        if existing.is_present() {
            return Err(DvmError::VaRangeBusy {
                va: va.page_base(page),
                len: page.bytes(),
            });
        }
        Self::write_entry(mem, frame, idx, Pte::leaf(pa.frame(), perms));
        Ok(())
    }

    /// Replace or create the 4 KiB mapping at `va` with `va -> pa`,
    /// demoting PEs and splitting huge leaves on the way down. Used to
    /// resolve copy-on-write (the new page is not identity mapped).
    ///
    /// # Errors
    ///
    /// [`DvmError::OutOfMemory`] if demotion needs a table frame.
    pub fn remap_page(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        va: VirtAddr,
        pa: PhysAddr,
        perms: Permission,
    ) -> Result<(), DvmError> {
        let (frame, idx) = self.ensure_level(mem, alloc, va, 1)?;
        Self::write_entry(mem, frame, idx, Pte::leaf(pa.frame(), perms));
        Ok(())
    }

    /// Identity-map `[start, start+len)` (with `PA == VA`) using Permission
    /// Entries at the highest level whose slot granularity fits, regular
    /// identity leaf PTEs otherwise.
    ///
    /// # Errors
    ///
    /// [`DvmError::VaRangeBusy`] if any byte of the range is already
    /// mapped; [`DvmError::OutOfMemory`] on table-frame exhaustion;
    /// [`DvmError::InvalidArgument`] on misalignment or overflow.
    pub fn map_identity_pe(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        start: VirtAddr,
        len: u64,
        perms: Permission,
    ) -> Result<(), DvmError> {
        self.map_identity_pe_granular(mem, alloc, start, len, perms, PE_FIELDS as u32)
    }

    /// [`Self::map_identity_pe`] with a reduced number of *effective*
    /// permission fields per entry — the paper's "Alternatives" design
    /// point (§4.1.1) that packs 4 (L2) or 8 (L3) regions into the spare
    /// bits of regular PTEs instead of adding a 16-field entry format.
    /// Coarser fields mean coarser slot alignment, so more regions fall
    /// back to leaf tables; the `ablate_pe` benchmark quantifies this.
    ///
    /// # Errors
    ///
    /// As for [`Self::map_identity_pe`], plus [`DvmError::InvalidArgument`]
    /// if `fields` is not a power of two in `1..=16`.
    pub fn map_identity_pe_granular(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        start: VirtAddr,
        len: u64,
        perms: Permission,
        fields: u32,
    ) -> Result<(), DvmError> {
        if fields == 0 || fields > PE_FIELDS as u32 || !fields.is_power_of_two() {
            return Err(DvmError::InvalidArgument("PE fields must be 1|2|4|8|16"));
        }
        let (lo, hi) = Self::check_range(start, len)?;
        if let Some(va) = self.first_mapped_in(mem, start, len) {
            return Err(DvmError::VaRangeBusy { va, len });
        }
        self.map_pe_rec(
            mem,
            alloc,
            TOP_LEVEL,
            self.root_frame,
            0,
            lo,
            hi,
            perms,
            fields,
        )
    }

    /// Identity-map `[start, start+len)` with conventional leaf PTEs,
    /// using the largest page size `<= max_page` that alignment permits at
    /// each point (interior gets huge leaves, edges get 4 KiB).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::map_identity_pe`].
    pub fn map_identity_leaves(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        start: VirtAddr,
        len: u64,
        perms: Permission,
        max_page: PageSize,
    ) -> Result<(), DvmError> {
        let (lo, hi) = Self::check_range(start, len)?;
        if let Some(va) = self.first_mapped_in(mem, start, len) {
            return Err(DvmError::VaRangeBusy { va, len });
        }
        let mut cursor = lo;
        while cursor < hi {
            let mut chosen = PageSize::Size4K;
            for page in [PageSize::Size1G, PageSize::Size2M] {
                if page <= max_page && cursor % page.bytes() == 0 && cursor + page.bytes() <= hi {
                    chosen = page;
                    break;
                }
            }
            self.map_page(
                mem,
                alloc,
                VirtAddr::new(cursor),
                PhysAddr::new(cursor),
                chosen,
                perms,
            )?;
            cursor += chosen.bytes();
        }
        Ok(())
    }

    /// Remove all mappings intersecting `[start, start+len)`. Unmapped
    /// gaps inside the range are ignored. Child tables left empty are
    /// freed.
    ///
    /// # Errors
    ///
    /// [`DvmError::OutOfMemory`] if a partial unmap needs to demote a PE
    /// or split a huge leaf and no table frame is available;
    /// [`DvmError::InvalidArgument`] on misalignment.
    pub fn unmap_region(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        start: VirtAddr,
        len: u64,
    ) -> Result<(), DvmError> {
        let (lo, hi) = Self::check_range(start, len)?;
        self.unmap_rec(mem, alloc, TOP_LEVEL, self.root_frame, 0, lo, hi)?;
        Ok(())
    }

    /// Set the permissions of every mapped page intersecting
    /// `[start, start+len)` (used to mark CoW ranges read-only). Unmapped
    /// gaps are ignored; identity and non-identity mappings both keep
    /// their translations.
    ///
    /// # Errors
    ///
    /// [`DvmError::OutOfMemory`] if a partial update needs to demote a PE
    /// or split a huge leaf; [`DvmError::InvalidArgument`] on misalignment.
    pub fn protect_region(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        start: VirtAddr,
        len: u64,
        perms: Permission,
    ) -> Result<(), DvmError> {
        let (lo, hi) = Self::check_range(start, len)?;
        self.protect_rec(mem, alloc, TOP_LEVEL, self.root_frame, 0, lo, hi, perms)
    }

    /// Tear down the whole table, freeing every table frame (but not the
    /// mapped data frames — those belong to the OS's VMAs).
    pub fn free_all(self, mem: &mut PhysMem, alloc: &mut BuddyAllocator) {
        Self::free_rec(mem, alloc, TOP_LEVEL, self.root_frame);
    }

    fn check_range(start: VirtAddr, len: u64) -> Result<(u64, u64), DvmError> {
        if len == 0 {
            return Err(DvmError::InvalidArgument("zero-length range"));
        }
        if !start.is_page_aligned(PageSize::Size4K) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(DvmError::InvalidArgument("range not 4K aligned"));
        }
        let hi = start
            .raw()
            .checked_add(len)
            .filter(|&hi| hi <= VA_LIMIT)
            .ok_or(DvmError::InvalidArgument("range beyond canonical VA"))?;
        Ok((start.raw(), hi))
    }

    /// Descend to `target_level` for `va`, creating tables and demoting
    /// PEs / splitting huge leaves on the way. Returns `(frame, index)` of
    /// the entry at `target_level`.
    fn ensure_level(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        va: VirtAddr,
        target_level: u8,
    ) -> Result<(u64, usize), DvmError> {
        let mut frame = self.root_frame;
        let mut level = TOP_LEVEL;
        while level > target_level {
            let idx = va.pt_index(level);
            let pte = Self::read_entry(mem, frame, idx);
            let child = if !pte.is_present() {
                let child = Self::alloc_table(mem, alloc)?;
                Self::write_entry(mem, frame, idx, Pte::table(child));
                child
            } else if pte.is_table() {
                pte.pfn()
            } else if pte.is_pe() {
                let base = align_down(va.raw(), entry_span(level));
                self.demote_entry(mem, alloc, frame, idx, level, base)?
            } else {
                // Huge leaf in the way: split it one level down.
                let base = align_down(va.raw(), entry_span(level));
                self.demote_entry(mem, alloc, frame, idx, level, base)?
            };
            frame = child;
            level -= 1;
        }
        Ok((frame, va.pt_index(level)))
    }

    /// Expand the PE or huge leaf at (`frame`, `idx`, `level`) into a
    /// child table one level down with equivalent mappings; returns the
    /// child frame.
    fn demote_entry(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        frame: u64,
        idx: usize,
        level: u8,
        entry_base_va: u64,
    ) -> Result<u64, DvmError> {
        let pte = Self::read_entry(mem, frame, idx);
        debug_assert!(level >= 2, "nothing to demote below L2");
        let child = Self::alloc_table(mem, alloc)?;
        let child_level = level - 1;
        let child_span = entry_span(child_level);
        for i in 0..ENTRIES_PER_TABLE {
            let e = if pte.is_pe() {
                let perms = pte.pe_field(i / (ENTRIES_PER_TABLE / PE_FIELDS));
                if !perms.is_mapped() {
                    Pte::EMPTY
                } else if child_level == 1 {
                    // Identity leaf: PA == VA by the PE invariant.
                    let child_va = entry_base_va + i as u64 * child_span;
                    Pte::leaf(child_va >> 12, perms)
                } else {
                    Pte::permission_entry(&[perms; PE_FIELDS])
                }
            } else {
                // Huge leaf split: contiguous translation, smaller leaves.
                debug_assert!(pte.is_leaf());
                let child_pfn = pte.pfn() + i as u64 * (child_span / PAGE_SIZE);
                Pte::leaf(child_pfn, pte.perms())
            };
            Self::write_entry(mem, child, i, e);
        }
        Self::write_entry(mem, frame, idx, Pte::table(child));
        Ok(child)
    }

    #[allow(clippy::too_many_arguments)]
    fn map_pe_rec(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        level: u8,
        frame: u64,
        table_base: u64,
        lo: u64,
        hi: u64,
        perms: Permission,
        fields: u32,
    ) -> Result<(), DvmError> {
        let span = entry_span(level);
        let idx_lo = ((lo - table_base) >> level_shift(level)) as usize;
        let idx_hi = ((hi - 1 - table_base) >> level_shift(level)) as usize;
        for idx in idx_lo..=idx_hi {
            let entry_lo = table_base + idx as u64 * span;
            let entry_hi = entry_lo + span;
            let seg_lo = lo.max(entry_lo);
            let seg_hi = hi.min(entry_hi);
            let pte = Self::read_entry(mem, frame, idx);
            // Effective slot: coarser when fewer fields are available.
            let slot = slot_span(level) * (PE_FIELDS as u64 / fields as u64);
            let pe_able = level >= 2
                && seg_lo.is_multiple_of(slot)
                && seg_hi.is_multiple_of(slot)
                && (!pte.is_present() || pte.is_pe());
            if pe_able {
                let mut pe = if pte.is_present() {
                    pte
                } else {
                    Pte::permission_entry(&[Permission::None; PE_FIELDS])
                };
                let phys_slot = slot_span(level);
                let f_lo = ((seg_lo - entry_lo) / phys_slot) as usize;
                let f_hi = ((seg_hi - entry_lo) / phys_slot) as usize;
                for f in f_lo..f_hi {
                    if pe.pe_field(f).is_mapped() {
                        return Err(DvmError::VaRangeBusy {
                            va: VirtAddr::new(entry_lo + f as u64 * phys_slot),
                            len: phys_slot,
                        });
                    }
                    pe = pe.with_pe_field(f, perms);
                }
                Self::write_entry(mem, frame, idx, pe);
            } else if level == 1 {
                if pte.is_present() {
                    return Err(DvmError::VaRangeBusy {
                        va: VirtAddr::new(entry_lo),
                        len: span,
                    });
                }
                debug_assert!(seg_lo == entry_lo && seg_hi == entry_hi);
                Self::write_entry(mem, frame, idx, Pte::leaf(entry_lo >> 12, perms));
            } else {
                let child = if !pte.is_present() {
                    let child = Self::alloc_table(mem, alloc)?;
                    Self::write_entry(mem, frame, idx, Pte::table(child));
                    child
                } else if pte.is_table() {
                    pte.pfn()
                } else if pte.is_pe() {
                    self.demote_entry(mem, alloc, frame, idx, level, entry_lo)?
                } else {
                    return Err(DvmError::VaRangeBusy {
                        va: VirtAddr::new(entry_lo),
                        len: span,
                    });
                };
                self.map_pe_rec(
                    mem,
                    alloc,
                    level - 1,
                    child,
                    entry_lo,
                    seg_lo,
                    seg_hi,
                    perms,
                    fields,
                )?;
            }
        }
        Ok(())
    }

    /// Returns `true` if the table at `frame` became empty.
    #[allow(clippy::too_many_arguments)]
    fn unmap_rec(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        level: u8,
        frame: u64,
        table_base: u64,
        lo: u64,
        hi: u64,
    ) -> Result<bool, DvmError> {
        let span = entry_span(level);
        let idx_lo = ((lo - table_base) >> level_shift(level)) as usize;
        let idx_hi = ((hi - 1 - table_base) >> level_shift(level)) as usize;
        for idx in idx_lo..=idx_hi {
            let entry_lo = table_base + idx as u64 * span;
            let entry_hi = entry_lo + span;
            let seg_lo = lo.max(entry_lo);
            let seg_hi = hi.min(entry_hi);
            let full = seg_lo == entry_lo && seg_hi == entry_hi;
            let pte = Self::read_entry(mem, frame, idx);
            if !pte.is_present() {
                continue;
            }
            if pte.is_pe() {
                let slot = slot_span(level);
                if seg_lo.is_multiple_of(slot) && seg_hi.is_multiple_of(slot) {
                    let mut pe = pte;
                    let f_lo = ((seg_lo - entry_lo) / slot) as usize;
                    let f_hi = ((seg_hi - entry_lo) / slot) as usize;
                    for f in f_lo..f_hi {
                        pe = pe.with_pe_field(f, Permission::None);
                    }
                    Self::write_entry(
                        mem,
                        frame,
                        idx,
                        if pe.pe_is_empty() { Pte::EMPTY } else { pe },
                    );
                } else {
                    let child = self.demote_entry(mem, alloc, frame, idx, level, entry_lo)?;
                    if self.unmap_rec(mem, alloc, level - 1, child, entry_lo, seg_lo, seg_hi)? {
                        Self::free_table_frame(mem, alloc, child);
                        Self::write_entry(mem, frame, idx, Pte::EMPTY);
                    }
                }
            } else if pte.is_leaf() {
                if full || level == 1 {
                    Self::write_entry(mem, frame, idx, Pte::EMPTY);
                } else {
                    let child = self.demote_entry(mem, alloc, frame, idx, level, entry_lo)?;
                    if self.unmap_rec(mem, alloc, level - 1, child, entry_lo, seg_lo, seg_hi)? {
                        Self::free_table_frame(mem, alloc, child);
                        Self::write_entry(mem, frame, idx, Pte::EMPTY);
                    }
                }
            } else {
                let child = pte.pfn();
                if self.unmap_rec(mem, alloc, level - 1, child, entry_lo, seg_lo, seg_hi)? {
                    Self::free_table_frame(mem, alloc, child);
                    Self::write_entry(mem, frame, idx, Pte::EMPTY);
                }
            }
        }
        Ok(Self::table_is_empty(mem, frame))
    }

    #[allow(clippy::too_many_arguments)]
    fn protect_rec(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BuddyAllocator,
        level: u8,
        frame: u64,
        table_base: u64,
        lo: u64,
        hi: u64,
        perms: Permission,
    ) -> Result<(), DvmError> {
        let span = entry_span(level);
        let idx_lo = ((lo - table_base) >> level_shift(level)) as usize;
        let idx_hi = ((hi - 1 - table_base) >> level_shift(level)) as usize;
        for idx in idx_lo..=idx_hi {
            let entry_lo = table_base + idx as u64 * span;
            let entry_hi = entry_lo + span;
            let seg_lo = lo.max(entry_lo);
            let seg_hi = hi.min(entry_hi);
            let full = seg_lo == entry_lo && seg_hi == entry_hi;
            let pte = Self::read_entry(mem, frame, idx);
            if !pte.is_present() {
                continue;
            }
            if pte.is_pe() {
                let slot = slot_span(level);
                if seg_lo.is_multiple_of(slot) && seg_hi.is_multiple_of(slot) {
                    let mut pe = pte;
                    let f_lo = ((seg_lo - entry_lo) / slot) as usize;
                    let f_hi = ((seg_hi - entry_lo) / slot) as usize;
                    for f in f_lo..f_hi {
                        if pe.pe_field(f).is_mapped() {
                            pe = pe.with_pe_field(f, perms);
                        }
                    }
                    Self::write_entry(mem, frame, idx, pe);
                } else {
                    let child = self.demote_entry(mem, alloc, frame, idx, level, entry_lo)?;
                    self.protect_rec(
                        mem,
                        alloc,
                        level - 1,
                        child,
                        entry_lo,
                        seg_lo,
                        seg_hi,
                        perms,
                    )?;
                }
            } else if pte.is_leaf() {
                if full || level == 1 {
                    Self::write_entry(mem, frame, idx, Pte::leaf(pte.pfn(), perms));
                } else {
                    let child = self.demote_entry(mem, alloc, frame, idx, level, entry_lo)?;
                    self.protect_rec(
                        mem,
                        alloc,
                        level - 1,
                        child,
                        entry_lo,
                        seg_lo,
                        seg_hi,
                        perms,
                    )?;
                }
            } else {
                self.protect_rec(
                    mem,
                    alloc,
                    level - 1,
                    pte.pfn(),
                    entry_lo,
                    seg_lo,
                    seg_hi,
                    perms,
                )?;
            }
        }
        Ok(())
    }

    fn table_is_empty(mem: &PhysMem, frame: u64) -> bool {
        (0..ENTRIES_PER_TABLE).all(|i| !Self::read_entry(mem, frame, i).is_present())
    }

    fn free_table_frame(mem: &mut PhysMem, alloc: &mut BuddyAllocator, frame: u64) {
        mem.note_pt_mutation();
        mem.discard_frame(frame);
        alloc.free_frames(FrameRange {
            start: frame,
            count: 1,
        });
    }

    fn free_rec(mem: &mut PhysMem, alloc: &mut BuddyAllocator, level: u8, frame: u64) {
        if level > 1 {
            for idx in 0..ENTRIES_PER_TABLE {
                let pte = Self::read_entry(mem, frame, idx);
                if pte.is_table() {
                    Self::free_rec(mem, alloc, level - 1, pte.pfn());
                }
            }
        }
        Self::free_table_frame(mem, alloc, frame);
    }
}
