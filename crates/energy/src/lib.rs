//! Dynamic-energy model for memory-management hardware (paper §6.3.2).
//!
//! The paper computes the dynamic energy spent on address translation /
//! access validation by summing, over the run, the per-access energies of
//! every TLB lookup, page-walk-cache (or AVC) lookup and page-table-walker
//! memory access, with per-structure energies from Cacti 6.5. Figure 9
//! reports the result normalized to the 4K TLB+PWC baseline.
//!
//! We use fixed per-event energies consistent with published Cacti-class
//! numbers for the paper's structures (Table 2):
//!
//! | event | structure | energy |
//! |---|---|---|
//! | FA TLB lookup | 128-entry fully associative CAM | 18 pJ |
//! | SA TLB lookup | 128-entry 4-way SRAM | 2.5 pJ |
//! | PWC/AVC lookup | 1 KiB 4-way SRAM | 1.2 pJ |
//! | bitmap-cache lookup | 1 KiB 4-way SRAM | 1.2 pJ |
//! | walker DRAM access | one 64 B DRAM transaction | 55 pJ |
//! | squashed preload | one wasted 64 B DRAM transaction | 55 pJ |
//!
//! Only *ratios* matter for the reproduced figure; the constants are
//! configuration so ablations can vary them.
//!
//! # Examples
//!
//! ```
//! use dvm_energy::{EnergyAccount, EnergyParams, MmEvent};
//! let mut acct = EnergyAccount::new(EnergyParams::default());
//! acct.record(MmEvent::FaTlbLookup);
//! acct.record_n(MmEvent::WalkerDram, 2);
//! assert_eq!(acct.count(MmEvent::FaTlbLookup), 1);
//! assert!(acct.total_pj() > 100.0);
//! ```

use core::fmt;

/// A memory-management energy event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MmEvent {
    /// Lookup in a fully associative TLB (CAM match on all entries).
    FaTlbLookup,
    /// Lookup in a set-associative TLB.
    SaTlbLookup,
    /// Lookup in the page-walk cache or Access Validation Cache.
    PtcLookup,
    /// Lookup in the DVM-BM bitmap cache.
    BitmapCacheLookup,
    /// DRAM access issued by the page-table walker (or bitmap fetch).
    WalkerDram,
    /// DRAM access for a preload that was squashed (DVM-PE+ mispredict).
    PreloadSquash,
}

impl MmEvent {
    /// All event kinds, in reporting order.
    pub const ALL: [MmEvent; 6] = [
        MmEvent::FaTlbLookup,
        MmEvent::SaTlbLookup,
        MmEvent::PtcLookup,
        MmEvent::BitmapCacheLookup,
        MmEvent::WalkerDram,
        MmEvent::PreloadSquash,
    ];

    fn index(self) -> usize {
        match self {
            MmEvent::FaTlbLookup => 0,
            MmEvent::SaTlbLookup => 1,
            MmEvent::PtcLookup => 2,
            MmEvent::BitmapCacheLookup => 3,
            MmEvent::WalkerDram => 4,
            MmEvent::PreloadSquash => 5,
        }
    }
}

impl fmt::Display for MmEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MmEvent::FaTlbLookup => "fa-tlb lookup",
            MmEvent::SaTlbLookup => "sa-tlb lookup",
            MmEvent::PtcLookup => "pwc/avc lookup",
            MmEvent::BitmapCacheLookup => "bitmap-cache lookup",
            MmEvent::WalkerDram => "walker DRAM access",
            MmEvent::PreloadSquash => "squashed preload",
        };
        f.write_str(name)
    }
}

/// Per-event energies in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Fully associative 128-entry TLB lookup.
    pub fa_tlb_pj: f64,
    /// 4-way set-associative TLB lookup.
    pub sa_tlb_pj: f64,
    /// 1 KiB 4-way PWC/AVC lookup.
    pub ptc_pj: f64,
    /// Bitmap-cache lookup (same structure class as the PWC).
    pub bitmap_cache_pj: f64,
    /// One 64 B DRAM transaction by the walker (or squashed preload).
    pub dram_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            fa_tlb_pj: 18.0,
            sa_tlb_pj: 2.5,
            ptc_pj: 1.2,
            bitmap_cache_pj: 1.2,
            dram_pj: 55.0,
        }
    }
}

impl EnergyParams {
    /// Energy of one event in picojoules.
    pub fn energy_of(&self, event: MmEvent) -> f64 {
        match event {
            MmEvent::FaTlbLookup => self.fa_tlb_pj,
            MmEvent::SaTlbLookup => self.sa_tlb_pj,
            MmEvent::PtcLookup => self.ptc_pj,
            MmEvent::BitmapCacheLookup => self.bitmap_cache_pj,
            MmEvent::WalkerDram | MmEvent::PreloadSquash => self.dram_pj,
        }
    }
}

/// Event-count accumulator with an energy roll-up.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyAccount {
    params: EnergyParams,
    counts: [u64; 6],
}

impl EnergyAccount {
    /// Create an empty account using the given per-event energies.
    pub fn new(params: EnergyParams) -> Self {
        Self {
            params,
            counts: [0; 6],
        }
    }

    /// Record one event.
    #[inline]
    pub fn record(&mut self, event: MmEvent) {
        self.counts[event.index()] += 1;
    }

    /// Record `n` events of one kind.
    #[inline]
    pub fn record_n(&mut self, event: MmEvent, n: u64) {
        self.counts[event.index()] += n;
    }

    /// Count of one event kind.
    pub fn count(&self, event: MmEvent) -> u64 {
        self.counts[event.index()]
    }

    /// Total dynamic energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        MmEvent::ALL
            .iter()
            .map(|&e| self.count(e) as f64 * self.params.energy_of(e))
            .sum()
    }

    /// The parameters used by this account.
    pub fn params(&self) -> EnergyParams {
        self.params
    }

    /// Reset all counts.
    pub fn reset(&mut self) {
        self.counts = [0; 6];
    }

    /// Merge the counts of another account (same params assumed).
    pub fn merge(&mut self, other: &EnergyAccount) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for EnergyAccount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dynamic MM energy: {:.1} pJ", self.total_pj())?;
        for e in MmEvent::ALL {
            if self.count(e) > 0 {
                writeln!(
                    f,
                    "  {e}: {} x {:.1} pJ",
                    self.count(e),
                    self.params.energy_of(e)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_are_weighted_sums() {
        let params = EnergyParams::default();
        let mut acct = EnergyAccount::new(params);
        acct.record_n(MmEvent::FaTlbLookup, 10);
        acct.record_n(MmEvent::PtcLookup, 5);
        acct.record(MmEvent::WalkerDram);
        let want = 10.0 * params.fa_tlb_pj + 5.0 * params.ptc_pj + params.dram_pj;
        assert!((acct.total_pj() - want).abs() < 1e-9);
    }

    #[test]
    fn fa_tlb_costs_more_than_sa_structures() {
        // The paper's energy claim rests on this ordering (§4.1.2).
        let p = EnergyParams::default();
        assert!(p.fa_tlb_pj > p.sa_tlb_pj);
        assert!(p.fa_tlb_pj > p.ptc_pj);
        assert!(p.dram_pj > p.fa_tlb_pj);
    }

    #[test]
    fn squash_counts_as_dram_energy() {
        let p = EnergyParams::default();
        assert_eq!(
            p.energy_of(MmEvent::PreloadSquash),
            p.energy_of(MmEvent::WalkerDram)
        );
    }

    #[test]
    fn merge_and_reset() {
        let mut a = EnergyAccount::new(EnergyParams::default());
        let mut b = EnergyAccount::new(EnergyParams::default());
        a.record(MmEvent::PtcLookup);
        b.record_n(MmEvent::PtcLookup, 2);
        a.merge(&b);
        assert_eq!(a.count(MmEvent::PtcLookup), 3);
        a.reset();
        assert_eq!(a.total_pj(), 0.0);
    }

    #[test]
    fn display_lists_nonzero_events() {
        let mut a = EnergyAccount::new(EnergyParams::default());
        a.record(MmEvent::BitmapCacheLookup);
        let s = a.to_string();
        assert!(s.contains("bitmap-cache"));
        assert!(!s.contains("squashed"));
    }
}
