//! Core types shared by every crate in the DVM reproduction.
//!
//! This crate defines the vocabulary of the simulated machine: physical and
//! virtual addresses, page sizes, the paper's 2-bit permission encoding, the
//! kinds of memory accesses, and the error types that flow across crate
//! boundaries.
//!
//! The paper ("Devirtualizing Memory in Heterogeneous Systems", ASPLOS 2018)
//! uses the 2-bit encoding `00`: No Permission, `01`: Read-Only, `10`:
//! Read-Write, `11`: Read-Execute (§4.1). [`Permission`] mirrors that
//! encoding exactly so Permission Entry bit-fields round-trip losslessly.
//!
//! # Examples
//!
//! ```
//! use dvm_types::{VirtAddr, PhysAddr, PageSize, Permission, AccessKind};
//!
//! let va = VirtAddr::new(0x4000_2000);
//! assert_eq!(va.page_offset(PageSize::Size4K), 0);
//! assert_eq!(va.vpn(PageSize::Size4K), 0x4000_2);
//! assert!(Permission::ReadWrite.allows(AccessKind::Write));
//! assert!(!Permission::ReadOnly.allows(AccessKind::Write));
//! let pa = PhysAddr::new(va.raw()); // identity mapping: VA == PA
//! assert_eq!(pa.raw(), va.raw());
//! ```

pub mod addr;
pub mod error;
pub mod perms;

pub use addr::{PhysAddr, VirtAddr, PAGE_SHIFT, PAGE_SIZE};
pub use error::{DvmError, Fault, FaultKind};
pub use perms::{AccessKind, Permission};

use core::fmt;

/// Hardware page sizes supported by the simulated x86-64-style MMU.
///
/// The paper evaluates conventional translation with 4 KB, 2 MB and 1 GB
/// pages (Figure 8); page-table walks terminate one level earlier for each
/// size step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageSize {
    /// 4 KiB base pages (leaf PTE at level 1).
    Size4K,
    /// 2 MiB huge pages (leaf PTE at level 2).
    Size2M,
    /// 1 GiB huge pages (leaf PTE at level 3).
    Size1G,
}

impl PageSize {
    /// All supported page sizes, smallest first.
    pub const ALL: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

    /// Size of one page in bytes.
    ///
    /// ```
    /// # use dvm_types::PageSize;
    /// assert_eq!(PageSize::Size4K.bytes(), 4096);
    /// assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
    /// assert_eq!(PageSize::Size1G.bytes(), 1024 * 1024 * 1024);
    /// ```
    #[inline]
    pub const fn bytes(self) -> u64 {
        1u64 << self.shift()
    }

    /// Base-2 logarithm of the page size.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            PageSize::Size4K => 12,
            PageSize::Size2M => 21,
            PageSize::Size1G => 30,
        }
    }

    /// Page-table level at which a leaf entry of this size resides
    /// (1 = L1 page table, 2 = L2 page directory, 3 = L3 PDPT).
    #[inline]
    pub const fn leaf_level(self) -> u8 {
        match self {
            PageSize::Size4K => 1,
            PageSize::Size2M => 2,
            PageSize::Size1G => 3,
        }
    }

    /// Number of 4 KiB base frames that back one page of this size.
    #[inline]
    pub const fn base_frames(self) -> u64 {
        self.bytes() / PAGE_SIZE
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4K"),
            PageSize::Size2M => write!(f, "2M"),
            PageSize::Size1G => write!(f, "1G"),
        }
    }
}

/// Round `value` up to the next multiple of `align` (a power of two).
///
/// # Panics
///
/// Panics in debug builds if `align` is not a power of two.
#[inline]
pub const fn align_up(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (value + align - 1) & !(align - 1)
}

/// Round `value` down to the previous multiple of `align` (a power of two).
///
/// # Panics
///
/// Panics in debug builds if `align` is not a power of two.
#[inline]
pub const fn align_down(value: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    value & !(align - 1)
}

/// `true` if `value` is a multiple of `align` (a power of two).
#[inline]
pub const fn is_aligned(value: u64, align: u64) -> bool {
    debug_assert!(align.is_power_of_two());
    value & (align - 1) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_bytes_and_shift_agree() {
        for ps in PageSize::ALL {
            assert_eq!(ps.bytes(), 1u64 << ps.shift());
        }
    }

    #[test]
    fn page_size_leaf_levels() {
        assert_eq!(PageSize::Size4K.leaf_level(), 1);
        assert_eq!(PageSize::Size2M.leaf_level(), 2);
        assert_eq!(PageSize::Size1G.leaf_level(), 3);
    }

    #[test]
    fn base_frames_counts() {
        assert_eq!(PageSize::Size4K.base_frames(), 1);
        assert_eq!(PageSize::Size2M.base_frames(), 512);
        assert_eq!(PageSize::Size1G.base_frames(), 512 * 512);
    }

    #[test]
    fn align_helpers() {
        assert_eq!(align_up(0, 4096), 0);
        assert_eq!(align_up(1, 4096), 4096);
        assert_eq!(align_up(4096, 4096), 4096);
        assert_eq!(align_down(4097, 4096), 4096);
        assert!(is_aligned(8192, 4096));
        assert!(!is_aligned(8193, 4096));
    }

    #[test]
    fn display_page_sizes() {
        assert_eq!(PageSize::Size4K.to_string(), "4K");
        assert_eq!(PageSize::Size2M.to_string(), "2M");
        assert_eq!(PageSize::Size1G.to_string(), "1G");
    }
}
