//! Physical and virtual address newtypes.
//!
//! Keeping [`VirtAddr`] and [`PhysAddr`] as distinct types statically rules
//! out the classic simulator bug of feeding an untranslated address into a
//! physical structure. Identity mapping (the heart of DVM) is the *one*
//! place where the two coincide, and the conversion there is explicit:
//! [`VirtAddr::to_identity_pa`] / [`PhysAddr::to_identity_va`].

use crate::PageSize;
use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Base page shift (4 KiB pages).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes (4 KiB).
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

macro_rules! addr_common {
    ($name:ident, $doc_kind:literal) => {
        impl $name {
            /// Construct from a raw 64-bit address.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The zero address.
            pub const ZERO: Self = Self(0);

            /// Raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Offset of this address within a page of the given size.
            #[inline]
            pub const fn page_offset(self, size: PageSize) -> u64 {
                self.0 & (size.bytes() - 1)
            }

            /// Align down to the containing page boundary.
            #[inline]
            pub const fn page_base(self, size: PageSize) -> Self {
                Self(self.0 & !(size.bytes() - 1))
            }

            /// `true` if aligned to a page of the given size.
            #[inline]
            pub const fn is_page_aligned(self, size: PageSize) -> bool {
                self.page_offset(size) == 0
            }

            /// Checked addition of a byte offset.
            #[inline]
            pub fn checked_add(self, offset: u64) -> Option<Self> {
                self.0.checked_add(offset).map(Self)
            }
        }

        impl Add<u64> for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: u64) -> Self {
                Self(self.0 + rhs)
            }
        }

        impl AddAssign<u64> for $name {
            #[inline]
            fn add_assign(&mut self, rhs: u64) {
                self.0 += rhs;
            }
        }

        impl Sub<$name> for $name {
            type Output = u64;
            #[inline]
            fn sub(self, rhs: $name) -> u64 {
                self.0 - rhs.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($doc_kind, "{:#x}"), self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            #[inline]
            fn from(a: $name) -> u64 {
                a.0
            }
        }
    };
}

/// A virtual address in a simulated process address space.
///
/// # Examples
///
/// ```
/// use dvm_types::{VirtAddr, PageSize};
/// let va = VirtAddr::new(0x1234_5678);
/// assert_eq!(va.vpn(PageSize::Size4K), 0x1234_5);
/// assert_eq!(va.page_offset(PageSize::Size4K), 0x678);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

/// A physical address in simulated machine memory.
///
/// # Examples
///
/// ```
/// use dvm_types::PhysAddr;
/// let pa = PhysAddr::new(0x8000);
/// assert_eq!(pa.frame(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

addr_common!(VirtAddr, "va:");
addr_common!(PhysAddr, "pa:");

impl VirtAddr {
    /// Virtual page number for the given page size.
    #[inline]
    pub const fn vpn(self, size: PageSize) -> u64 {
        self.0 >> size.shift()
    }

    /// The physical address this VA maps to *if it is identity mapped*
    /// (VA == PA). The caller must have validated the mapping; this is the
    /// "predicted PA" used by DVM preloads.
    #[inline]
    pub const fn to_identity_pa(self) -> PhysAddr {
        PhysAddr(self.0)
    }

    /// Index into the page-table at `level` (4 = root), 9 bits per level.
    #[inline]
    pub const fn pt_index(self, level: u8) -> usize {
        ((self.0 >> (PAGE_SHIFT + 9 * (level as u32 - 1))) & 0x1ff) as usize
    }
}

impl PhysAddr {
    /// Physical frame number (4 KiB frames).
    #[inline]
    pub const fn frame(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }

    /// Physical address of the start of frame `frame`.
    #[inline]
    pub const fn from_frame(frame: u64) -> Self {
        Self(frame << PAGE_SHIFT)
    }

    /// The virtual address equal to this PA under identity mapping.
    #[inline]
    pub const fn to_identity_va(self) -> VirtAddr {
        VirtAddr(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_and_offset() {
        let va = VirtAddr::new(0x0000_7fff_dead_beef);
        assert_eq!(va.vpn(PageSize::Size4K), 0x0000_7fff_dead_beef >> 12);
        assert_eq!(va.page_offset(PageSize::Size4K), 0xeef);
        assert_eq!(va.page_offset(PageSize::Size2M), 0x0ad_beef % (2 << 20));
    }

    #[test]
    fn pt_indices_cover_nine_bits_each() {
        // Build a VA with distinct indices: L4=1, L3=2, L2=3, L1=4.
        let raw = (1u64 << (12 + 27)) | (2u64 << (12 + 18)) | (3u64 << (12 + 9)) | (4u64 << 12);
        let va = VirtAddr::new(raw);
        assert_eq!(va.pt_index(4), 1);
        assert_eq!(va.pt_index(3), 2);
        assert_eq!(va.pt_index(2), 3);
        assert_eq!(va.pt_index(1), 4);
    }

    #[test]
    fn identity_roundtrip() {
        let va = VirtAddr::new(0xabc0_0000);
        assert_eq!(va.to_identity_pa().to_identity_va(), va);
    }

    #[test]
    fn frames() {
        assert_eq!(PhysAddr::from_frame(42).raw(), 42 << 12);
        assert_eq!(PhysAddr::new(0x5000).frame(), 5);
    }

    #[test]
    fn arithmetic_and_display() {
        let a = PhysAddr::new(0x1000);
        assert_eq!((a + 0x10).raw(), 0x1010);
        assert_eq!((a + 0x10) - a, 0x10);
        assert_eq!(a.to_string(), "pa:0x1000");
        assert_eq!(VirtAddr::new(0x2000).to_string(), "va:0x2000");
        let mut b = a;
        b += 0x1000;
        assert_eq!(b.frame(), 2);
    }

    #[test]
    fn page_base_alignment() {
        let va = VirtAddr::new(0x0040_0FFF);
        assert_eq!(va.page_base(PageSize::Size4K).raw(), 0x0040_0000);
        assert!(va
            .page_base(PageSize::Size2M)
            .is_page_aligned(PageSize::Size2M));
    }

    #[test]
    fn checked_add_overflow() {
        assert!(VirtAddr::new(u64::MAX).checked_add(1).is_none());
        assert_eq!(VirtAddr::new(10).checked_add(5), Some(VirtAddr::new(15)));
    }
}
